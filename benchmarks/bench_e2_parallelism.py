"""E2 / §2: elasticity economics.

Claim 1: "executing the task using 1 machine for 100 minutes incurs the
same dollar cost as executing the task using 100 machines for 1 minute,
but the second configuration has a 100x performance advantage" — true
for embarrassingly parallel scans.

Claim 2: "over-scaling the cluster size ... not only wastes resources but
also could have a negative impact on query latency" — true for
shuffle-heavy joins: a latency U-curve with a cost blow-up past the knee.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines.tshirt import uniform_dops
from repro.plan.pipelines import decompose_pipelines
from repro.util.tables import TextTable

DOPS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_e2_scan_vs_shuffle_scaling(benchmark, estimator):
    def experiment():
        # SF 1000 (6B-row lineitem): the long-running tasks the paper's
        # "100 machines for 1 minute" argument is about.
        from repro.sql.binder import Binder
        from repro.optimizer.dag_planner import DagPlanner
        from repro.workloads.tpch_stats import synthetic_tpch_catalog

        catalog = synthetic_tpch_catalog(1000.0)
        binder = Binder(catalog)
        planner = DagPlanner(catalog)
        scan_plan = planner.plan(
            binder.bind_sql("SELECT count(*) AS c FROM lineitem")
        )
        join_plan = planner.plan(
            binder.bind_sql(
                "SELECT count(*) AS c FROM orders, lineitem "
                "WHERE o_orderkey = l_orderkey"
            )
        )
        results = {}
        for label, plan in (("parallel scan", scan_plan), ("shuffle join", join_plan)):
            dag = decompose_pipelines(plan)
            table = TextTable(
                ["dop", "latency (s)", "speedup", "cost ($)", "cost vs dop=1"],
                title=f"E2 — {label}",
            )
            base = estimator.estimate_dag(dag, uniform_dops(dag, 1))
            series = []
            for dop in DOPS:
                estimate = estimator.estimate_dag(dag, uniform_dops(dag, dop))
                series.append((dop, estimate.latency, estimate.total_dollars))
                table.add_row(
                    [
                        dop,
                        f"{estimate.latency:.2f}",
                        f"{base.latency / estimate.latency:.1f}x",
                        f"{estimate.total_dollars:.4f}",
                        f"{estimate.total_dollars / base.total_dollars:.2f}x",
                    ]
                )
            print()
            print(table)
            results[label] = series

        # Shape checks — scan: near-linear speedup, bounded cost growth.
        scan = results["parallel scan"]
        speedup_16 = scan[0][1] / scan[4][1]
        assert speedup_16 > 8, "scan should speed up near-linearly to dop 16"
        cost_ratio_16 = scan[4][2] / scan[0][2]
        assert cost_ratio_16 < 3.0, "scan cost should stay near-flat"

        # Join: latency U-curve (a knee exists) and super-linear cost.
        join = results["shuffle join"]
        latencies = [latency for _, latency, _ in join]
        knee = latencies.index(min(latencies))
        assert 0 < knee < len(DOPS) - 1, "join latency should have a U-curve"
        assert latencies[-1] > min(latencies), "over-scaling hurts latency"
        join_cost_ratio = join[-1][2] / join[0][2]
        assert join_cost_ratio > cost_ratio_16, "join cost blows up faster than scan"
        return knee

    run_once(benchmark, experiment)
