"""E5 / §3.2: bushy join variants trade machine time for latency.

"A 'bushier' plan enables more concurrency in pipeline executions and is
more likely to have a lower query latency.  However ... it may cost more
computations (and total machine time)."
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.dop.constraints import sla_constraint
from repro.dop.planner import DopPlanner
from repro.optimizer.bushy import bushiness, bushy_variants
from repro.plan.pipelines import decompose_pipelines
from repro.util.tables import TextTable
from repro.workloads.tpch_queries import instantiate


def test_e5_bushy_latency_cost_tradeoff(benchmark, catalog, binder, planner, estimator):
    def experiment():
        bound = binder.bind_sql(instantiate("q5_local_supplier", seed=1))
        base = {
            ref.name: planner.base_relation(bound, ref.name) for ref in bound.tables
        }
        tree = planner.choose_join_tree(bound)
        variants = bushy_variants(
            tree, base, bound.join_edges, planner.estimator, max_variants=6
        )
        assert len(variants) >= 2

        dop_planner = DopPlanner(estimator, max_dop=128)
        table = TextTable(
            ["variant", "bushiness", "pipelines", "latency (s)", "machine (s)", "cost ($)"],
            title="E5 — left-deep vs increasingly bushy variants (tight SLA)",
        )
        rows = []
        for index, variant in enumerate(variants):
            plan = planner.plan_with_tree(bound, variant)
            dag = decompose_pipelines(plan)
            dop_plan = dop_planner.plan(dag, sla_constraint(8.0))
            estimate = dop_plan.estimate
            rows.append((bushiness(variant), estimate))
            table.add_row(
                [
                    variant.describe()[:46],
                    bushiness(variant),
                    len(dag),
                    f"{estimate.latency:.2f}",
                    f"{estimate.machine_seconds:.1f}",
                    f"{estimate.total_dollars:.4f}",
                ]
            )
        print()
        print(table)

        left_deep = next(e for b, e in rows if b == 0)
        bushiest = max(rows, key=lambda r: r[0])[1]
        # Bushy plans cost more computation — the paper's caveat: "a
        # bushier plan may not be optimal in terms of join cardinalities,
        # and it may, therefore, cost more computations (and total
        # machine time)".
        assert bushiest.machine_seconds >= left_deep.machine_seconds * 0.95

        # Exploring variants can only help the optimizer (variant 0 *is*
        # the left-deep plan), and under a loose SLA the cheaper
        # left-deep plan must win.
        full = BiObjectiveOptimizer(catalog, estimator, max_dop=128, max_variants=6)
        left_only = BiObjectiveOptimizer(
            catalog, estimator, max_dop=128, explore_bushy=False
        )
        tight_sla = sla_constraint(6.0)
        tight_full = full.optimize(bound, tight_sla)
        tight_left = left_only.optimize(bound, tight_sla)
        loose = full.optimize(bound, sla_constraint(60.0))
        print(
            f"optimizer picks: bushiness={tight_full.bushiness} under 6s SLA "
            f"(${tight_full.dop_plan.estimate.total_dollars:.4f} vs "
            f"${tight_left.dop_plan.estimate.total_dollars:.4f} left-deep-only), "
            f"bushiness={loose.bushiness} under 60s SLA"
        )
        assert (
            tight_full.dop_plan.estimate.total_dollars
            <= tight_left.dop_plan.estimate.total_dollars + 1e-9
        )
        # Under a loose SLA the optimizer picks the cheapest variant —
        # never worse than restricting the search to left-deep.
        loose_left = left_only.optimize(bound, sla_constraint(60.0))
        assert (
            loose.dop_plan.estimate.total_dollars
            <= loose_left.dop_plan.estimate.total_dollars + 1e-9
        )
        return bushiest.machine_seconds / left_deep.machine_seconds

    run_once(benchmark, experiment)
