"""Shared benchmark fixtures: large stats-only catalogs and helpers.

Every benchmark prints the table/series its experiment reproduces, then
registers a scalar with pytest-benchmark so regressions are visible.
"""

from __future__ import annotations

import pytest

from repro.cost.estimator import CostEstimator
from repro.optimizer.dag_planner import DagPlanner
from repro.sql.binder import Binder
from repro.workloads.tpch_stats import synthetic_tpch_catalog

BENCH_SCALE_FACTOR = 100.0


@pytest.fixture(scope="session")
def catalog():
    """SF-100 statistics-only catalog (lineitem = 600M rows, ~25 GB)."""
    return synthetic_tpch_catalog(
        BENCH_SCALE_FACTOR,
        cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"},
    )


@pytest.fixture(scope="session")
def binder(catalog):
    return Binder(catalog)


@pytest.fixture(scope="session")
def planner(catalog):
    return DagPlanner(catalog)


@pytest.fixture(scope="session")
def estimator():
    return CostEstimator()


def run_once(benchmark, fn):
    """Execute an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
