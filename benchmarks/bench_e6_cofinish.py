"""E6 / §3.2: the co-finish heuristic C1/T1(DOP1) ≈ C2/T2(DOP2).

Sibling pipelines feeding one consumer should finish together; otherwise
the early finisher's nodes idle (billed) until the consumer starts.
Compares uniform DOP vs co-finish-equalized DOPs vs exhaustive search.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.dop.cofinish import equalize_siblings
from repro.dop.constraints import sla_constraint
from repro.dop.planner import exhaustive_search
from repro.plan.pipelines import decompose_pipelines
from repro.util.tables import TextTable

# lineitem probes two hash tables built by *sibling* pipelines (orders
# and part are both blocking deps of the same probe pipeline) with very
# different input sizes — the classic co-finish scenario: at uniform DOP
# the small build finishes early and its nodes idle until the big one is
# done.
SQL = (
    "SELECT count(*) AS c "
    "FROM part, orders, lineitem "
    "WHERE l_partkey = p_partkey AND o_orderkey = l_orderkey"
)


def test_e6_cofinish_cuts_waste(benchmark, binder, planner, estimator):
    def experiment():
        plan = planner.plan(binder.bind_sql(SQL))
        dag = decompose_pipelines(plan)

        uniform = {p.pipeline_id: 16 for p in dag}
        uniform_estimate = estimator.estimate_dag(dag, uniform)

        balanced = equalize_siblings(dag, uniform, estimator.models, max_dop=64)
        balanced_estimate = estimator.estimate_dag(dag, balanced)

        constraint = sla_constraint(uniform_estimate.latency * 1.001)
        optimal = exhaustive_search(
            dag, constraint, estimator, dop_choices=(1, 2, 4, 8, 16)
        )

        table = TextTable(
            ["assignment", "latency (s)", "idle node-s (waste)", "cost ($)", "evals"],
            title="E6 — co-finishing dependent pipelines (waste = pinned idle time)",
        )
        for label, estimate, evals in (
            ("uniform dop=16", uniform_estimate, 1),
            ("co-finish heuristic", balanced_estimate, len(dag)),
            ("exhaustive optimum", optimal.estimate, optimal.evaluations),
        ):
            table.add_row(
                [
                    label,
                    f"{estimate.latency:.2f}",
                    f"{estimate.total_waste_seconds:.1f}",
                    f"{estimate.total_dollars:.4f}",
                    evals,
                ]
            )
        print()
        print(table)

        assert balanced_estimate.latency <= uniform_estimate.latency * 1.05
        assert (
            balanced_estimate.total_waste_seconds
            < uniform_estimate.total_waste_seconds
        ), "co-finish must cut pinned idle time"
        assert balanced_estimate.total_dollars < uniform_estimate.total_dollars
        # Near-exhaustive quality at a tiny fraction of the search cost.
        assert (
            balanced_estimate.total_dollars
            <= optimal.estimate.total_dollars * 1.6
        )
        waste_cut = 1.0 - (
            balanced_estimate.total_waste_seconds
            / max(uniform_estimate.total_waste_seconds, 1e-9)
        )
        print(f"waste reduction: {waste_cut:.0%}")
        return waste_cut

    run_once(benchmark, experiment)
