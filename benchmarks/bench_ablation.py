"""Ablations of the design choices DESIGN.md calls out.

A1 — staged search vs unified search (§3.2): the paper separates DOP
     planning from DAG planning because "enumerating the DOP for each
     pipeline while exploring the physical plan shape makes the search
     space explode".  Measures cost-model evaluations and wall time of
     the staged greedy search vs an exhaustive DOP grid, and how much
     plan quality the separation gives up.

A2 — left-deep vs full-DP join ordering: what the DAG-planning stage's
     left-deep restriction costs in C_out and buys in planning time.

A3 — broadcast threshold: disabling broadcast joins forces shuffles on
     tiny dimension tables; the default threshold should win.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.dop.constraints import sla_constraint
from repro.dop.planner import DopPlanner, exhaustive_search
from repro.optimizer.dag_planner import DagPlanner
from repro.optimizer.join_order import order_joins
from repro.plan.pipelines import decompose_pipelines
from repro.util.tables import TextTable
from repro.workloads.tpch_queries import instantiate

SLA = 6.0


def test_a1_staged_vs_unified_search(benchmark, binder, planner, estimator):
    def experiment():
        bound = binder.bind_sql(instantiate("q5_local_supplier", seed=1))
        dag = decompose_pipelines(planner.plan(bound))
        constraint = sla_constraint(SLA)

        started = time.perf_counter()
        staged = DopPlanner(estimator, max_dop=64).plan(dag, constraint)
        staged_seconds = time.perf_counter() - started

        started = time.perf_counter()
        unified = exhaustive_search(
            dag, constraint, estimator, dop_choices=(1, 8, 64)
        )
        unified_seconds = time.perf_counter() - started

        table = TextTable(
            ["search", "evaluations", "time (s)", "cost ($)", "latency (s)"],
            title="A1 — staged greedy vs exhaustive DOP search (8 pipelines)",
        )
        for label, plan, seconds in (
            ("staged greedy (ours)", staged, staged_seconds),
            ("exhaustive grid", unified, unified_seconds),
        ):
            table.add_row(
                [
                    label,
                    plan.evaluations,
                    f"{seconds:.2f}",
                    f"{plan.estimate.total_dollars:.4f}",
                    f"{plan.estimate.latency:.2f}",
                ]
            )
        print()
        print(table)

        assert staged.evaluations < unified.evaluations / 20
        assert staged_seconds < unified_seconds
        # Bounded quality loss from the staged search.
        assert (
            staged.estimate.total_dollars
            <= unified.estimate.total_dollars * 1.6
        )
        return staged.evaluations / unified.evaluations

    run_once(benchmark, experiment)


def test_a2_left_deep_vs_full_dp(benchmark, catalog, binder, planner):
    def experiment():
        bound = binder.bind_sql(instantiate("q5_local_supplier", seed=1))
        base = {
            ref.name: planner.base_relation(bound, ref.name)
            for ref in bound.tables
        }

        started = time.perf_counter()
        _, left_cost = order_joins(
            base, bound.join_edges, planner.estimator, left_deep_only=True
        )
        left_seconds = time.perf_counter() - started

        started = time.perf_counter()
        _, full_cost = order_joins(
            base, bound.join_edges, planner.estimator, left_deep_only=False
        )
        full_seconds = time.perf_counter() - started

        table = TextTable(
            ["DP space", "C_out (rows)", "time (s)"],
            title="A2 — left-deep DP vs full (bushy) DP, 6-relation query",
        )
        table.add_row(["left-deep", f"{left_cost:,.0f}", f"{left_seconds:.4f}"])
        table.add_row(["full", f"{full_cost:,.0f}", f"{full_seconds:.4f}"])
        print()
        print(table)

        assert full_cost <= left_cost + 1e-6, "full DP is never worse on C_out"
        # With FK-PK TPC-H joins, left-deep typically matches full DP —
        # the restriction is cheap, which is why DAG planning keeps it.
        assert left_cost <= full_cost * 1.5
        return left_cost / max(full_cost, 1.0)

    run_once(benchmark, experiment)


def test_a3_broadcast_threshold(benchmark, catalog, binder, estimator):
    def experiment():
        bound = binder.bind_sql(instantiate("q5_local_supplier", seed=1))
        table = TextTable(
            ["broadcast threshold", "cost ($)", "latency (s)"],
            title="A3 — broadcast-join threshold ablation (uniform dop=8)",
        )
        outcomes = {}
        for label, threshold in (("disabled (0B)", 0.0), ("default (32MB)", None)):
            dag_planner = (
                DagPlanner(catalog)
                if threshold is None
                else DagPlanner(catalog, broadcast_threshold=threshold)
            )
            plan = dag_planner.plan(bound)
            dag = decompose_pipelines(plan)
            estimate = estimator.estimate_dag(
                dag, {p.pipeline_id: 8 for p in dag}
            )
            outcomes[label] = estimate
            table.add_row(
                [label, f"{estimate.total_dollars:.4f}", f"{estimate.latency:.2f}"]
            )
        print()
        print(table)
        assert (
            outcomes["default (32MB)"].total_dollars
            <= outcomes["disabled (0B)"].total_dollars
        ), "broadcasting tiny dimensions must not cost more than shuffling them"
        return outcomes["default (32MB)"].total_dollars

    run_once(benchmark, experiment)
