"""E4 / §3.2: constrained bi-objective optimization vs baselines.

min-$ under SLA and min-latency under budget, against:
- T-shirt sizing (with the §2 one-step over-provisioning habit),
- performance-only planning (classical optimizer behavior),
- serverless per-task execution (Starling/Lambada family).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines.perfonly import PerformanceOnlyPlanner
from repro.baselines.serverless import serverless_estimate
from repro.baselines.tshirt import TShirtProvisioner, uniform_dops
from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.plan.pipelines import decompose_pipelines
from repro.util.tables import TextTable
from repro.workloads.tpch_queries import instantiate

QUERIES = ("q1_pricing_summary", "q5_local_supplier", "q18_large_orders", "q12_shipmode")
SLA_SECONDS = 12.0


def test_e4_sla_mode_vs_baselines(benchmark, catalog, binder, planner, estimator):
    def experiment():
        optimizer = BiObjectiveOptimizer(catalog, estimator, max_dop=128)
        tshirt = TShirtProvisioner(estimator, overprovision_steps=1)
        perfonly = PerformanceOnlyPlanner(estimator, max_dop=128)

        table = TextTable(
            [
                "query", "ours $ (lat)", "t-shirt $ (lat)",
                "perf-only $ (lat)", "serverless $ (lat)",
            ],
            title=f"E4 — min cost s.t. latency <= {SLA_SECONDS}s (estimates)",
        )
        ours_total = tshirt_total = perf_total = 0.0
        for name in QUERIES:
            bound = binder.bind_sql(instantiate(name, seed=1))
            dag = decompose_pipelines(planner.plan(bound))

            choice = optimizer.optimize(bound, sla_constraint(SLA_SECONDS))
            ours = choice.dop_plan.estimate

            pick = tshirt.pick_for_sla([dag], SLA_SECONDS)
            shirt = estimator.estimate_dag(dag, uniform_dops(dag, pick.nodes))

            perf = perfonly.plan(dag).estimate
            functions = serverless_estimate(dag, estimator.models)

            ours_total += ours.total_dollars
            tshirt_total += shirt.total_dollars
            perf_total += perf.total_dollars
            table.add_row(
                [
                    name,
                    f"{ours.total_dollars:.4f} ({ours.latency:.1f}s)",
                    f"{shirt.total_dollars:.4f} ({shirt.latency:.1f}s, {pick.size_name})",
                    f"{perf.total_dollars:.4f} ({perf.latency:.1f}s)",
                    f"{functions.dollars:.4f} ({functions.latency:.1f}s)",
                ]
            )
        print()
        print(table)
        savings_vs_tshirt = 1.0 - ours_total / tshirt_total
        savings_vs_perf = 1.0 - ours_total / perf_total
        print(
            f"workload savings: {savings_vs_tshirt:.0%} vs T-shirt, "
            f"{savings_vs_perf:.0%} vs performance-only"
        )
        assert ours_total < tshirt_total, "bi-objective must beat T-shirt sizing"
        assert ours_total < perf_total, "bi-objective must beat latency-only planning"
        return savings_vs_tshirt

    run_once(benchmark, experiment)


def test_e4_budget_mode_frontier(benchmark, catalog, binder, estimator):
    def experiment():
        optimizer = BiObjectiveOptimizer(catalog, estimator, max_dop=128)
        bound = binder.bind_sql(instantiate("q5_local_supplier", seed=1))
        table = TextTable(
            ["budget ($)", "latency (s)", "cost ($)", "max dop"],
            title="E4 — min latency s.t. budget (the user's other paradigm)",
        )
        latencies = []
        for budget in (0.002, 0.005, 0.01, 0.03, 0.1):
            choice = optimizer.optimize(bound, budget_constraint(budget))
            estimate = choice.dop_plan.estimate
            latencies.append(estimate.latency)
            table.add_row(
                [
                    f"{budget:.3f}",
                    f"{estimate.latency:.2f}",
                    f"{estimate.total_dollars:.4f}",
                    choice.dop_plan.max_dop,
                ]
            )
        print()
        print(table)
        # More budget must never slow the query down.
        assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))
        assert latencies[-1] < latencies[0], "budget should buy latency"
        return latencies[-1]

    run_once(benchmark, experiment)
