"""E11 / §1: consumer profit Π = U(p) − C under step-function utility.

"A typical database user today treats performance as a requirement
rather than an optimization target ... because the performance beyond
often contributes little to the application's revenue (i.e., U(p) is a
step function)."  With step utility, maximizing profit = meeting the SLA
at minimal cost — exactly what the bi-objective optimizer does; fixed
provisioning either misses the step (zero utility) or overpays for
latency beyond it.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines.tshirt import uniform_dops
from repro.compute.pricing import TSHIRT_SIZES
from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.dop.constraints import sla_constraint
from repro.plan.pipelines import decompose_pipelines
from repro.util.tables import TextTable
from repro.workloads.tpch_queries import instantiate

UTILITY_DOLLARS = 0.05  # revenue earned per on-time query result
QUERY = "q5_local_supplier"


def step_utility(latency, sla):
    return UTILITY_DOLLARS if latency <= sla else 0.0


def test_e11_profit_maximization(benchmark, catalog, binder, planner, estimator):
    def experiment():
        bound = binder.bind_sql(instantiate(QUERY, seed=1))
        dag = decompose_pipelines(planner.plan(bound))
        optimizer = BiObjectiveOptimizer(catalog, estimator, max_dop=128)

        table = TextTable(
            ["SLA (s)", "config", "latency (s)", "cost ($)", "profit Π ($)"],
            title="E11 — profit Π = U(p) − C under step utility",
        )
        winners = []
        for sla in (20.0, 10.0, 6.0):
            rows = []
            for name, nodes in list(TSHIRT_SIZES.items())[:6]:
                estimate = estimator.estimate_dag(dag, uniform_dops(dag, nodes))
                profit = step_utility(estimate.latency, sla) - estimate.total_dollars
                rows.append((f"T-shirt {name}", estimate.latency, estimate.total_dollars, profit))
            choice = optimizer.optimize(bound, sla_constraint(sla))
            estimate = choice.dop_plan.estimate
            profit = step_utility(estimate.latency, sla) - estimate.total_dollars
            rows.append(("cost-intelligent", estimate.latency, estimate.total_dollars, profit))

            best = max(rows, key=lambda r: r[3])
            winners.append(best[0])
            for label, latency, dollars, pi in rows:
                marker = " <-- best" if label == best[0] else ""
                table.add_row(
                    [sla, label + marker, f"{latency:.2f}", f"{dollars:.4f}", f"{pi:+.4f}"]
                )
        print()
        print(table)

        assert all(w == "cost-intelligent" for w in winners), (
            "the cost-intelligent configuration must maximize profit at "
            f"every SLA; winners were {winners}"
        )
        return winners.count("cost-intelligent") / len(winners)

    run_once(benchmark, experiment)
