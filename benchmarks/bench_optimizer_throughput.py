"""Optimizer throughput: queries-optimized-per-second over the TPC-H pool.

A/B of the estimation hot path:

- **baseline**: uncached estimator + naive DOP search (every candidate
  move re-times every pipeline) — the pre-overhaul behavior, kept behind
  ``CostEstimator(enable_cache=False)`` / ``DopPlanner(incremental=False)``;
- **cached**: memoized volumes/timings + incremental DAG re-costing
  (one new timing per candidate move, cheap ASAP re-schedule).

Reports mean ``optimize()`` wall time, optimizer throughput, and actual
timing-model evaluations, then writes ``BENCH_optimizer.json`` next to
the repo root so the perf trajectory is tracked across PRs.  The two
paths must agree bit-for-bit on estimates and chosen plans (also
enforced by ``tests/cost/test_estimation_parity.py``); this script
re-checks as a guard.

Usage::

    python benchmarks/bench_optimizer_throughput.py           # full pool
    python benchmarks/bench_optimizer_throughput.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.bioptimizer import BiObjectiveOptimizer  # noqa: E402
from repro.cost.estimator import CostEstimator  # noqa: E402
from repro.dop.constraints import budget_constraint, sla_constraint  # noqa: E402
from repro.sql.binder import Binder  # noqa: E402
from repro.workloads.tpch_queries import instantiate, template_names  # noqa: E402
from repro.workloads.tpch_stats import synthetic_tpch_catalog  # noqa: E402

SLA_SECONDS = 12.0
BUDGET_DOLLARS = 0.05
SPEEDUP_FLOOR = 3.0
TIMING_REDUCTION_FLOOR = 5.0


def run_pool(catalog, bounds, constraints, *, cached: bool, rounds: int) -> dict:
    """Optimize the whole pool ``rounds`` times; return aggregate metrics.

    One untimed warmup pass precedes measurement: the serving-layer
    metric is steady-state throughput, not interpreter/allocator warmup.
    """
    estimator = CostEstimator(enable_cache=cached)
    optimizer = BiObjectiveOptimizer(
        catalog, estimator, max_dop=64, incremental_dop=cached
    )
    for bound in bounds:
        for constraint in constraints:
            optimizer.optimize(bound, constraint)
    estimator.models.timing_computations = 0
    choices = []
    per_optimize: list[float] = []
    start = time.perf_counter()
    for _ in range(rounds):
        choices = []
        for bound in bounds:
            for constraint in constraints:
                t0 = time.perf_counter()
                choices.append(optimizer.optimize(bound, constraint))
                per_optimize.append(time.perf_counter() - t0)
    wall = time.perf_counter() - start
    optimizes = len(bounds) * len(constraints) * rounds
    return {
        "mode": "cached" if cached else "baseline",
        "optimizes": optimizes,
        "wall_s": wall,
        "mean_optimize_s": sum(per_optimize) / len(per_optimize),
        "optimizes_per_s": optimizes / wall,
        "timing_evaluations": estimator.models.timing_computations,
        "choices": choices,  # stripped before JSON
    }


def check_parity(baseline_choices, cached_choices) -> int:
    """Count plan/estimate mismatches between the two paths."""
    mismatches = 0
    for a, b in zip(baseline_choices, cached_choices):
        ea, eb = a.dop_plan.estimate, b.dop_plan.estimate
        same = (
            a.dop_plan.dops == b.dop_plan.dops
            and a.variant_index == b.variant_index
            and ea.latency == eb.latency
            and ea.machine_seconds == eb.machine_seconds
            and ea.dollars == eb.dollars
            and ea.scan_request_dollars == eb.scan_request_dollars
        )
        mismatches += 0 if same else 1
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small pool + 1 round (CI smoke)"
    )
    parser.add_argument("--sf", type=float, default=100.0, help="stats scale factor")
    parser.add_argument("--rounds", type=int, default=3, help="pool repetitions")
    parser.add_argument(
        "--seeds", type=int, default=3, help="parameter instantiations per template"
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_optimizer.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report only; do not enforce speedup floors",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.rounds = 1
        args.seeds = 1
    if args.seeds < 1 or args.rounds < 1:
        parser.error("--seeds and --rounds must be >= 1")

    catalog = synthetic_tpch_catalog(
        args.sf, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )
    binder = Binder(catalog)
    names = template_names()
    bounds = [
        binder.bind_sql(instantiate(name, seed=seed))
        for name in names
        for seed in range(1, args.seeds + 1)
    ]
    constraints = [sla_constraint(SLA_SECONDS), budget_constraint(BUDGET_DOLLARS)]
    print(
        f"pool: {len(names)} templates x {args.seeds} seeds x "
        f"{len(constraints)} constraints, SF {args.sf:g}, {args.rounds} round(s)"
    )

    baseline = run_pool(catalog, bounds, constraints, cached=False, rounds=args.rounds)
    cached = run_pool(catalog, bounds, constraints, cached=True, rounds=args.rounds)
    mismatches = check_parity(baseline.pop("choices"), cached.pop("choices"))

    speedup = baseline["mean_optimize_s"] / cached["mean_optimize_s"]
    reduction = baseline["timing_evaluations"] / max(1, cached["timing_evaluations"])
    for result in (baseline, cached):
        print(
            f"{result['mode']:>8}: {result['optimizes_per_s']:8.1f} optimizes/s, "
            f"mean {result['mean_optimize_s'] * 1e3:6.2f} ms, "
            f"{result['timing_evaluations']:6d} timing evaluations"
        )
    print(
        f"speedup {speedup:.2f}x wall, {reduction:.2f}x fewer timing evaluations, "
        f"{mismatches} parity mismatches"
    )

    report = {
        "benchmark": "optimizer_throughput",
        "scale_factor": args.sf,
        "templates": len(names),
        "seeds": args.seeds,
        "rounds": args.rounds,
        "baseline": baseline,
        "cached": cached,
        "speedup_wall": speedup,
        "timing_evaluation_reduction": reduction,
        "parity_mismatches": mismatches,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if mismatches:
        print("FAIL: cached path diverged from baseline plans/estimates")
        return 1
    if args.sf < 100.0 and not args.no_assert:
        # Small catalogs shrink the DOP search (plans are cheap at DOP 1),
        # so estimation is a smaller share of optimize time and the
        # SF-100-calibrated floors don't apply.
        print(f"note: floors calibrated for SF >= 100, skipping at SF {args.sf:g}")
        return 0
    if not args.no_assert:
        if args.quick:
            # One noisy round on a shared runner can't support a
            # wall-clock assertion; quick mode gates on the
            # deterministic metrics (evaluation counts + parity) only.
            print("note: --quick skips the wall-speedup floor (single round)")
        elif speedup < SPEEDUP_FLOOR:
            print(f"FAIL: wall speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor")
            return 1
        if reduction < TIMING_REDUCTION_FLOOR:
            print(
                f"FAIL: timing-evaluation reduction {reduction:.2f}x "
                f"< {TIMING_REDUCTION_FLOOR}x floor"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
