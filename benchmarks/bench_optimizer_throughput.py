"""Optimizer throughput: queries-optimized-per-second over the TPC-H pool.

Two workloads, three modes:

**Fixed pool** (identical SQL re-optimized, PR 1's A/B):

- **baseline**: uncached estimator + naive DOP search (every candidate
  move re-times every pipeline) — the pre-overhaul behavior, kept behind
  ``CostEstimator(enable_cache=False)`` / ``DopPlanner(incremental=False)``;
- **cached**: memoized volumes/timings + incremental DAG re-costing
  (one new timing per candidate move, cheap ASAP re-schedule).

**Literal-varying pool** (each arrival re-instantiates its template with
fresh constants — the recurring-report traffic shape, where exact-match
plan caching gets 0% hits):

- **cached** again, as the PR 1 reference: fresh bind + fresh optimize
  per arrival;
- **parameterized**: the serving path through ``Session.plan`` (the
  public serving API over ``CostIntelligentWarehouse``) — literal
  extraction, exact-level then skeleton-level plan cache, DAG-planning
  memo, and batched greedy DOP rounds.  Skeleton hits skip join-order
  DP and bushy generation and re-run only binding, cardinality
  re-estimation, and the incremental DOP search.

**Governed pool** (eviction pressure: multi-tenant literal-varying
traffic over a deliberately tiny skeleton cache, one hot recurring
template interleaved with a sweep of cold ones):

- **lru** vs **cost-aware** retention, same traffic, same capacity.
  Plain recency ages the hot template out between its arrivals; the
  cost-aware policy keeps it by forecast frequency x re-optimization
  cost saved, so its skeleton hit rate must strictly exceed LRU's (the
  report records both, and CI gates on the comparison).  The cost-aware
  rate wobbles a few points across runs — retention scores use
  *measured* planning seconds, so eviction ties among cold templates
  break on real wall time — but the gap over LRU (~40% vs 0%) dwarfs
  the wobble, and plans stay bit-identical either way.

**Resilient pool** (failure-domain overhead: identical fault-free
literal-varying traffic through ``Session.submit`` on two identical
warehouses):

- **bare** (``ResiliencePolicy(enabled=False)``) vs **hardened**
  (default policy).  The only difference is the per-request
  ``StageGuard`` wrapping the bind/optimize stages, so fault-free the
  hardened path must be pure bookkeeping: zero retries, zero degraded
  outcomes, bit-identical plans, and a median paired-chunk wall
  overhead under 5% (gated in CI from the written report).

**Journaled / observed pools** (same paired-chunk A/B shape): the
write-ahead journal and the scheduled cost-snapshot collector each run
against an identical bare warehouse on their own disjoint literal seeds;
both must stay under 5% median paired-chunk overhead with bit-identical
plans (and, for the observed pool, exact drill-down reconciliation of
every collected snapshot against the ledger-unit bills).

Reports wall times, throughput, timing-model evaluations, a per-stage
time breakdown (join ordering / bushy generation / physical planning /
DOP search / bind+serve overhead), and cache hit rates, then writes
``BENCH_optimizer.json`` next to the repo root so the perf trajectory is
tracked across PRs.  Every fast path must agree bit-for-bit on estimates
and chosen plans with fresh optimization of the same SQL (also enforced
by ``tests/cost/test_estimation_parity.py``); this script re-checks as a
guard and fails on any mismatch — including between the two retention
policies, which may only change *when* plans are re-derived, never what
is served.

Usage::

    python benchmarks/bench_optimizer_throughput.py           # full pool
    python benchmarks/bench_optimizer_throughput.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.service import QueryRequest  # noqa: E402
from repro.core.bioptimizer import BiObjectiveOptimizer  # noqa: E402
from repro.core.journal import WriteAheadJournal  # noqa: E402
from repro.core.resilience import ResiliencePolicy  # noqa: E402
from repro.core.warehouse import CostIntelligentWarehouse  # noqa: E402
from repro.cost.estimator import CostEstimator  # noqa: E402
from repro.obsvc.drilldown import DrillDownNavigator  # noqa: E402
from repro.dop.constraints import budget_constraint, sla_constraint  # noqa: E402
from repro.sql.binder import Binder  # noqa: E402
from repro.workloads.tpch_queries import instantiate, template_names  # noqa: E402
from repro.workloads.tpch_stats import synthetic_tpch_catalog  # noqa: E402

SLA_SECONDS = 12.0
BUDGET_DOLLARS = 0.05
SPEEDUP_FLOOR = 3.0
TIMING_REDUCTION_FLOOR = 5.0
#: Required optimizes/s gain of the parameterized serving path over the
#: PR 1 cached path on the literal-varying workload.
PARAMETERIZED_SPEEDUP_FLOOR = 2.0

CONSTRAINTS = (sla_constraint(SLA_SECONDS), budget_constraint(BUDGET_DOLLARS))


def fresh_optimizer(catalog, *, cached: bool) -> BiObjectiveOptimizer:
    """PR 1's two modes: ``cached`` toggles every PR 1 optimization; the
    DAG memo and batched rounds (this PR) stay off so the reference
    numbers keep meaning "PR 1's cached path"."""
    optimizer = BiObjectiveOptimizer(
        catalog,
        CostEstimator(enable_cache=cached),
        max_dop=64,
        incremental_dop=cached,
        memoize_dag=False,
    )
    optimizer.dop_planner.batched = False
    return optimizer


def run_fixed_pool(catalog, bounds, constraints, *, rounds: int) -> tuple[dict, dict]:
    """A/B the optimizer modes over the fixed pool (identical SQL).

    One untimed warmup pass per mode precedes measurement (the
    serving-layer metric is steady-state throughput, not
    interpreter/allocator warmup); the two modes then run in
    alternating per-round order and are compared on their fastest
    rounds, so ambient CPU noise cancels.
    """
    optimizers = {
        "baseline": fresh_optimizer(catalog, cached=False),
        "cached": fresh_optimizer(catalog, cached=True),
    }
    for optimizer in optimizers.values():
        for bound in bounds:
            for constraint in constraints:
                optimizer.optimize(bound, constraint)
        optimizer.estimator.models.timing_computations = 0

    walls: dict[str, list[float]] = {"baseline": [], "cached": []}
    choices: dict[str, list] = {"baseline": [], "cached": []}
    modes = list(optimizers)
    for round_index in range(rounds):
        ordering = modes if round_index % 2 == 0 else modes[::-1]
        for mode in ordering:
            optimizer = optimizers[mode]
            round_choices = []
            start = time.perf_counter()
            for bound in bounds:
                for constraint in constraints:
                    round_choices.append(optimizer.optimize(bound, constraint))
            walls[mode].append(time.perf_counter() - start)
            choices[mode] = round_choices

    pool_size = len(bounds) * len(constraints)

    def result(mode: str) -> dict:
        wall = sum(walls[mode])
        # Noise on a shared/single-core runner is strictly additive, so
        # (as timeit's docs recommend) the fastest round is the best
        # estimator of the true cost.
        best = min(walls[mode])
        return {
            "mode": mode,
            "optimizes": pool_size * rounds,
            "wall_s": wall,
            "mean_optimize_s": best / pool_size,
            "optimizes_per_s": pool_size / best,
            "round_walls_s": walls[mode],
            "timing_evaluations": optimizers[
                mode
            ].estimator.models.timing_computations,
            "choices": choices[mode],  # stripped before JSON
        }

    return result("baseline"), result("cached")


def literal_varying_workload(names, *, seeds: int, rounds: int) -> list[list[str]]:
    """The recurring-report traffic shape: every arrival re-issues a
    template with constants never seen before, so the exact-match plan
    cache cannot hit.  Returned in per-round chunks so the two serving
    paths can be measured interleaved (paired design — ambient CPU
    noise hits both modes alike)."""
    chunks: list[list[str]] = []
    seed = 1000  # disjoint from the fixed pool's seeds
    for _ in range(rounds):
        chunk: list[str] = []
        for name in names:
            for _ in range(seeds):
                chunk.append(instantiate(name, seed=seed))
                seed += 1
        chunks.append(chunk)
    return chunks


def pr1_warehouse(catalog) -> CostIntelligentWarehouse:
    """A warehouse restricted to PR 1's serving semantics: exact-match
    plan cache only (default capacity, misses and evicts on this
    traffic), keys recomputed per submission, no DAG memo, per-candidate
    DOP costing."""
    warehouse = CostIntelligentWarehouse(catalog=catalog, parameterized_serving=False)
    warehouse.optimizer._dag_memo = None
    warehouse.optimizer.dop_planner.batched = False
    return warehouse


def run_literal_varying(catalog, chunks, constraints) -> tuple[dict, dict]:
    """A/B the serving paths on literal-varying traffic.

    Both modes run the full ``CostIntelligentWarehouse.plan`` path; the
    reference is PR 1's configuration (its exact-match cache misses on
    every arrival), the contender is the parameterized two-level cache.
    Chunks are measured alternately.
    """
    reference = pr1_warehouse(catalog)
    parameterized = CostIntelligentWarehouse(catalog=catalog, plan_cache_size=1024)
    sessions = {
        "cached": reference.session(tenant="bench"),
        "parameterized": parameterized.session(tenant="bench"),
    }
    for mode, warehouse in (("cached", reference), ("parameterized", parameterized)):
        # Warmup: one out-of-band instantiation per template populates
        # the skeleton cache (where present) and warms the interpreter.
        session = sessions[mode]
        for name in template_names():
            warm = instantiate(name, seed=999)
            for constraint in constraints:
                session.plan(warm, constraint)
        warehouse.estimator.models.timing_computations = 0
        warehouse.reset_cache_stats()
    stage_times = parameterized.optimizer.stage_times

    chunk_walls: dict[str, list[float]] = {"cached": [], "parameterized": []}
    choices: dict[str, list] = {"cached": [], "parameterized": []}
    pairing = [("cached", sessions["cached"]), ("parameterized", sessions["parameterized"])]
    for index, chunk in enumerate(chunks):
        # Alternate which mode goes first so ordering bias (caches,
        # frequency scaling) cancels across chunks.
        ordering = pairing if index % 2 == 0 else pairing[::-1]
        for mode, session in ordering:
            start = time.perf_counter()
            for sql in chunk:
                for constraint in constraints:
                    choices[mode].append(session.plan(sql, constraint)[1])
            chunk_walls[mode].append(time.perf_counter() - start)

    optimizes = sum(len(chunk) for chunk in chunks) * len(constraints)
    chunk_optimizes = optimizes / len(chunks)

    def result(mode: str, warehouse) -> dict:
        walls = chunk_walls[mode]
        wall = sum(walls)
        # Noise on a shared/single-core runner is strictly additive, so
        # (as timeit's docs recommend) the fastest chunk is the best
        # estimator of the true cost; the total wall is reported
        # alongside.
        best = min(walls)
        return {
            "mode": mode,
            "optimizes": optimizes,
            "wall_s": wall,
            "mean_optimize_s": best / chunk_optimizes,
            "optimizes_per_s": chunk_optimizes / best,
            "mean_optimize_total_s": wall / optimizes,
            "timing_evaluations": warehouse.estimator.models.timing_computations,
            "choices": choices[mode],
        }

    reference_result = result("cached", reference)
    parameterized_result = result("parameterized", parameterized)
    stages = {f"{name}_s": seconds for name, seconds in stage_times.items()}
    stages["bind_and_serve_s"] = sum(chunk_walls["parameterized"]) - sum(
        stage_times.values()
    )
    parameterized_result["stage_breakdown"] = stages
    parameterized_result["caches"] = parameterized.describe_caches()
    # Chunk-paired speedups: each chunk's two walls are adjacent in
    # time, so slow-drifting machine noise cancels within the pair; the
    # median over chunks resists the occasional scheduler spike.
    parameterized_result["chunk_speedups"] = [
        cached_wall / parameterized_wall
        for cached_wall, parameterized_wall in zip(
            chunk_walls["cached"], chunk_walls["parameterized"]
        )
    ]
    return reference_result, parameterized_result


#: Skeleton-cache capacity for the eviction-pressure (governed) pool —
#: deliberately smaller than the distinct templates in flight.
GOVERNED_CAPACITY = 4
#: Arrivals per phase (warmup builds the Statistics Service log the
#: forecasts read; the measured phase starts from clean counters).
GOVERNED_ARRIVALS = 45
#: Every 5th arrival re-issues the hot template; the cold sweep between
#: two hot arrivals exceeds GOVERNED_CAPACITY, so plain LRU always ages
#: the hot skeleton out before it is needed again.
GOVERNED_HOT_EVERY = 5


def governed_traffic(names, *, arrivals: int, phase: int) -> list[tuple[str, str]]:
    """(template, sql) arrivals: one hot recurring report (tenant
    "reports") interleaved with an ad-hoc sweep of every other template
    (tenant "adhoc"), all with fresh literals."""
    hot, cold = names[0], list(names[1:])
    sequence = []
    seed = 20_000 + phase * arrivals
    for index in range(arrivals):
        name = hot if index % GOVERNED_HOT_EVERY == 0 else cold[index % len(cold)]
        sequence.append((name, instantiate(name, seed=seed)))
        seed += 1
    return sequence


def run_governed(catalog, constraint) -> dict:
    """A/B the retention policies under multi-tenant eviction pressure.

    Both warehouses serve identical traffic through ``Session.submit``
    (logged, so the Statistics Service forecasts feed the cost-aware
    policy) over a skeleton cache too small for the distinct templates
    in flight.  The metric is the measured-phase skeleton hit rate;
    plans are parity-checked across policies.
    """
    names = template_names()
    results: dict[str, dict] = {}
    choices: dict[str, list] = {}
    for policy in ("lru", "cost-aware"):
        warehouse = CostIntelligentWarehouse(
            catalog=catalog,
            plan_cache_size=GOVERNED_CAPACITY,
            retention_policy=policy,
        )
        sessions = {
            "reports": warehouse.session(tenant="reports", constraint=constraint),
            "adhoc": warehouse.session(tenant="adhoc", constraint=constraint),
        }
        hot = names[0]
        clock = 0.0
        for phase in (0, 1):
            if phase == 1:
                # Measured phase: forecasts fresh, counters clean.
                warehouse.frequency.invalidate()
                warehouse.reset_cache_stats()
                choices[policy] = []
            for name, sql in governed_traffic(
                names, arrivals=GOVERNED_ARRIVALS, phase=phase
            ):
                session = sessions["reports" if name == hot else "adhoc"]
                handle = session.submit(
                    QueryRequest(
                        sql=sql, template=name, at_time=clock, simulate=False
                    )
                )
                clock += 60.0
                if phase == 1:
                    choices[policy].append(handle.result().choice)
        skeleton = warehouse.describe_caches()["skeleton_cache"]
        results[policy] = {
            "skeleton_hit_rate": skeleton["hit_rate"],
            "skeleton_hits": skeleton["hits"],
            "skeleton_evictions": skeleton["evictions"],
        }
    mismatches = check_parity(choices["lru"], choices["cost-aware"])
    return {
        "mode": "governed",
        "capacity": GOVERNED_CAPACITY,
        "templates": len(names),
        "arrivals": GOVERNED_ARRIVALS,
        "hot_template": names[0],
        "lru": results["lru"],
        "cost_aware": results["cost-aware"],
        "parity_mismatches": mismatches,
    }


#: Paired interleaved chunks for the resilient-overhead A/B.  Fixed —
#: independent of ``--rounds`` — so the median stays meaningful in
#: ``--quick`` CI runs (a single-chunk median would be one noisy draw).
RESILIENT_CHUNKS = 6
#: Hard ceiling on the fault-free cost of resilient serving: the
#: hardened path (per-request StageGuard wrapping bind/optimize) must
#: stay under 5% median paired-chunk wall overhead vs the identical
#: warehouse with resilience disabled.
RESILIENT_OVERHEAD_CEILING = 0.05


def resilient_traffic(names, *, chunks: int, seed: int = 40_000) -> list[list[str]]:
    """Literal-varying chunks for the overhead A/Bs (fresh constants per
    arrival; each A/B's seed base is disjoint from every other pool)."""
    sequence: list[list[str]] = []
    for _ in range(chunks):
        chunk: list[str] = []
        for name in names:
            chunk.append(instantiate(name, seed=seed))
            seed += 1
        sequence.append(chunk)
    return sequence


def run_resilient(catalog, constraint) -> dict:
    """A/B fault-free serving with resilience on vs off.

    Identical literal-varying traffic through ``Session.submit`` on two
    identical warehouses; the only difference is the per-request
    ``StageGuard`` (retry/deadline/fault orchestration) around the bind
    and optimize stages.  With no faults injected the guard must be
    bookkeeping only: zero retries, zero degraded outcomes, plan
    parity, and a small wall overhead.  Chunks are measured interleaved
    in alternating order and compared pairwise, so slow-drifting
    machine noise cancels within each pair and the median over chunks
    resists the occasional scheduler spike.
    """
    names = template_names()
    chunks = resilient_traffic(names, chunks=RESILIENT_CHUNKS)
    policies = {
        "bare": ResiliencePolicy(enabled=False),
        "hardened": ResiliencePolicy(),
    }
    warehouses = {
        mode: CostIntelligentWarehouse(
            catalog=catalog, plan_cache_size=1024, resilience=policy
        )
        for mode, policy in policies.items()
    }
    sessions = {
        mode: warehouse.session(tenant="bench", constraint=constraint)
        for mode, warehouse in warehouses.items()
    }
    clocks = dict.fromkeys(policies, 0.0)

    def submit(mode: str, sql: str):
        outcome = sessions[mode].submit(
            QueryRequest(sql=sql, at_time=clocks[mode], simulate=False)
        ).result()
        clocks[mode] += 60.0
        return outcome

    for mode in policies:
        # Warmup: one out-of-band instantiation per template populates
        # the caches identically and warms the interpreter.
        for name in names:
            submit(mode, instantiate(name, seed=999))

    walls: dict[str, list[float]] = {"bare": [], "hardened": []}
    choices: dict[str, list] = {"bare": [], "hardened": []}
    pairing = list(policies)
    for index, chunk in enumerate(chunks):
        ordering = pairing if index % 2 == 0 else pairing[::-1]
        for mode in ordering:
            start = time.perf_counter()
            for sql in chunk:
                choices[mode].append(submit(mode, sql).choice)
            walls[mode].append(time.perf_counter() - start)

    chunk_overheads = [
        hardened / bare - 1.0
        for bare, hardened in zip(walls["bare"], walls["hardened"])
    ]
    health = warehouses["hardened"].describe_health()["resilience"]
    return {
        "mode": "resilient",
        "queries": sum(len(chunk) for chunk in chunks),
        "chunks": RESILIENT_CHUNKS,
        "bare_wall_s": sum(walls["bare"]),
        "hardened_wall_s": sum(walls["hardened"]),
        "chunk_overheads": chunk_overheads,
        "overhead": statistics.median(chunk_overheads),
        "overhead_ceiling": RESILIENT_OVERHEAD_CEILING,
        "retries": health["retries"],
        "degraded_queries": health["degraded_queries"],
        "parity_mismatches": check_parity(choices["bare"], choices["hardened"]),
    }


#: Hard ceiling on the fault-free cost of durability: serving with a
#: write-ahead journal (one redo record appended ahead of every log
#: apply, periodic in-memory checkpoints) must stay under 5% median
#: paired-chunk wall overhead vs the identical unjournaled warehouse.
JOURNALED_OVERHEAD_CEILING = 0.05
#: Checkpoint cadence for the journaled A/B — frequent enough that the
#: measured overhead includes checkpoint construction, not just appends.
JOURNALED_CHECKPOINT_EVERY = 32


def run_journaled(catalog, constraint) -> dict:
    """A/B fault-free serving with the write-ahead journal on vs off.

    Identical literal-varying traffic through ``Session.submit`` on two
    identical warehouses; the only difference is the attached
    ``WriteAheadJournal`` (a ``QueryServed`` redo record appended before
    every log apply, plus a checkpoint every
    ``JOURNALED_CHECKPOINT_EVERY`` records).  Chunks are measured
    interleaved in alternating order and compared pairwise, exactly as
    in :func:`run_resilient`, so machine noise cancels within pairs and
    the median over chunks resists scheduler spikes.
    """
    names = template_names()
    chunks = resilient_traffic(names, chunks=RESILIENT_CHUNKS, seed=50_000)
    journal = WriteAheadJournal(checkpoint_every=JOURNALED_CHECKPOINT_EVERY)
    warehouses = {
        "bare": CostIntelligentWarehouse(catalog=catalog, plan_cache_size=1024),
        "journaled": CostIntelligentWarehouse(
            catalog=catalog, plan_cache_size=1024, journal=journal
        ),
    }
    sessions = {
        mode: warehouse.session(tenant="bench", constraint=constraint)
        for mode, warehouse in warehouses.items()
    }
    clocks = dict.fromkeys(warehouses, 0.0)

    def submit(mode: str, sql: str):
        outcome = sessions[mode].submit(
            QueryRequest(sql=sql, at_time=clocks[mode], simulate=False)
        ).result()
        clocks[mode] += 60.0
        return outcome

    for mode in warehouses:
        for name in names:
            submit(mode, instantiate(name, seed=999))

    walls: dict[str, list[float]] = {"bare": [], "journaled": []}
    choices: dict[str, list] = {"bare": [], "journaled": []}
    pairing = list(warehouses)
    for index, chunk in enumerate(chunks):
        ordering = pairing if index % 2 == 0 else pairing[::-1]
        for mode in ordering:
            start = time.perf_counter()
            for sql in chunk:
                choices[mode].append(submit(mode, sql).choice)
            walls[mode].append(time.perf_counter() - start)

    chunk_overheads = [
        journaled / bare - 1.0
        for bare, journaled in zip(walls["bare"], walls["journaled"])
    ]
    durability = warehouses["journaled"].describe_health()["durability"]
    return {
        "mode": "journaled",
        "queries": sum(len(chunk) for chunk in chunks),
        "chunks": RESILIENT_CHUNKS,
        "bare_wall_s": sum(walls["bare"]),
        "journaled_wall_s": sum(walls["journaled"]),
        "chunk_overheads": chunk_overheads,
        "overhead": statistics.median(chunk_overheads),
        "overhead_ceiling": JOURNALED_OVERHEAD_CEILING,
        "journal_records": durability["journal_records"],
        "checkpoints": durability["last_checkpoint_id"],
        "parity_mismatches": check_parity(choices["bare"], choices["journaled"]),
    }


#: Hard ceiling on the fault-free cost of scheduled cost observation:
#: serving with the snapshot collector enabled (fold the stats log into
#: a per-tenant drill-down snapshot every few queries) must stay under
#: 5% median paired-chunk wall overhead vs the identical bare warehouse.
OBSERVED_OVERHEAD_CEILING = 0.05
#: Collection cadence for the observed A/B — frequent enough that the
#: measured overhead includes real snapshot folds, not just the
#: per-query due-date check.
OBSERVED_CADENCE_QUERIES = 4
#: The true collection cost is ~1-3%, close to the 5% ceiling, so the
#: observed A/B uses more and larger paired chunks than the resilient/
#: journaled pools: per-chunk scheduler spikes average out within a
#: 3-sweep chunk and the median tightens over 12 pairs.
OBSERVED_CHUNKS = 12
OBSERVED_SWEEPS_PER_CHUNK = 3


def run_observed(catalog, constraint) -> dict:
    """A/B fault-free serving with the snapshot collector on vs off.

    Identical literal-varying traffic through ``Session.submit`` on two
    identical warehouses; the only difference is
    ``enable_collection(cadence_queries=OBSERVED_CADENCE_QUERIES)`` on
    one of them, so every few queries the collector folds the new log
    records into a per-tenant cost snapshot.  Observation must be pure
    bookkeeping: bit-identical plans, exact drill-down reconciliation
    against the ledger-unit bills, and a small wall overhead.  Chunks
    are measured interleaved in alternating order and compared
    pairwise, exactly as in :func:`run_resilient`.
    """
    names = template_names()
    sweeps = resilient_traffic(
        names, chunks=OBSERVED_CHUNKS * OBSERVED_SWEEPS_PER_CHUNK, seed=60_000
    )
    chunks = [
        [
            sql
            for sweep in sweeps[
                index * OBSERVED_SWEEPS_PER_CHUNK:
                (index + 1) * OBSERVED_SWEEPS_PER_CHUNK
            ]
            for sql in sweep
        ]
        for index in range(OBSERVED_CHUNKS)
    ]
    warehouses = {
        "bare": CostIntelligentWarehouse(catalog=catalog, plan_cache_size=1024),
        "observed": CostIntelligentWarehouse(
            catalog=catalog, plan_cache_size=1024
        ),
    }
    warehouses["observed"].enable_collection(
        cadence_queries=OBSERVED_CADENCE_QUERIES
    )
    sessions = {
        mode: warehouse.session(tenant="bench", constraint=constraint)
        for mode, warehouse in warehouses.items()
    }
    clocks = dict.fromkeys(warehouses, 0.0)

    def submit(mode: str, sql: str):
        outcome = sessions[mode].submit(
            QueryRequest(sql=sql, at_time=clocks[mode], simulate=False)
        ).result()
        clocks[mode] += 60.0
        return outcome

    for mode in warehouses:
        for name in names:
            submit(mode, instantiate(name, seed=999))

    walls: dict[str, list[float]] = {"bare": [], "observed": []}
    choices: dict[str, list] = {"bare": [], "observed": []}
    pairing = list(warehouses)
    for index, chunk in enumerate(chunks):
        ordering = pairing if index % 2 == 0 else pairing[::-1]
        for mode in ordering:
            start = time.perf_counter()
            for sql in chunk:
                choices[mode].append(submit(mode, sql).choice)
            walls[mode].append(time.perf_counter() - start)

    chunk_overheads = [
        observed / bare - 1.0
        for bare, observed in zip(walls["bare"], walls["observed"])
    ]
    observed = warehouses["observed"]
    final = observed.collector.collect_now()
    totals = DrillDownNavigator(final).reconcile()
    reconciled = all(
        units == observed.billing[tenant].total_units
        for tenant, units in totals.items()
    )
    return {
        "mode": "observed",
        "queries": sum(len(chunk) for chunk in chunks),
        "chunks": OBSERVED_CHUNKS,
        "bare_wall_s": sum(walls["bare"]),
        "observed_wall_s": sum(walls["observed"]),
        "chunk_overheads": chunk_overheads,
        "overhead": statistics.median(chunk_overheads),
        "overhead_ceiling": OBSERVED_OVERHEAD_CEILING,
        "snapshots": observed.metrics.value("repro_cost_snapshots_total"),
        "reconciled": reconciled,
        "parity_mismatches": check_parity(choices["bare"], choices["observed"]),
    }


#: Worker counts the sharded A/B sweeps: the overhead ceiling applies
#: at one worker, the speedup floor at the widest pool.
SHARDED_WORKER_COUNTS = (1, 2, 4)
SHARDED_CHUNKS = 6
SHARDED_SWEEPS_PER_CHUNK = 3
#: Required best-chunk throughput gain of process-sharded serving over
#: the threaded scheduler at the widest pool.  Planning is GIL-bound,
#: so the gain only exists with real cores to scale onto — the floor
#: binds when ``cpu_count >= 4``; smaller hosts record the numbers for
#: trend tracking with a printed note.
SHARDED_SPEEDUP_FLOOR = 2.0
#: Ceiling on single-worker dispatch overhead (task pickling + two pipe
#: hops per query), likewise enforced only when the coordinator and the
#: worker are not competing for the same core.
SHARDED_OVERHEAD_CEILING = 0.05


def run_sharded(catalog, constraint) -> dict:
    """A/B batch serving: threaded scheduler vs process-sharded pools.

    Identical literal-varying batches through ``Session.submit_many``
    on paired warehouses — one threaded, one with ``enable_sharding``
    at each worker count — measured interleaved in alternating chunk
    order like every other A/B here.  Plan parity and zero worker
    restarts are hard gates at any scale; the wall floors are
    cores-conditional (see the constants above).
    """
    names = template_names()
    seed = 70_000
    pools: dict[str, dict] = {}
    for workers in SHARDED_WORKER_COUNTS:
        sweeps = resilient_traffic(
            names, chunks=SHARDED_CHUNKS * SHARDED_SWEEPS_PER_CHUNK, seed=seed
        )
        seed += 10_000  # disjoint constants per worker count
        chunks = [
            [
                sql
                for sweep in sweeps[
                    index * SHARDED_SWEEPS_PER_CHUNK:
                    (index + 1) * SHARDED_SWEEPS_PER_CHUNK
                ]
                for sql in sweep
            ]
            for index in range(SHARDED_CHUNKS)
        ]
        warehouses = {
            "threaded": CostIntelligentWarehouse(
                catalog=catalog, plan_cache_size=1024
            ),
            "sharded": CostIntelligentWarehouse(
                catalog=catalog, plan_cache_size=1024
            ),
        }
        warehouses["sharded"].enable_sharding(workers=workers)
        try:
            sessions = {
                mode: warehouse.session(tenant="bench", constraint=constraint)
                for mode, warehouse in warehouses.items()
            }
            clocks = dict.fromkeys(warehouses, 0.0)

            def run_batch(mode: str, sqls: list[str]) -> list:
                requests = []
                for sql in sqls:
                    requests.append(
                        QueryRequest(
                            sql=sql, at_time=clocks[mode], simulate=False
                        )
                    )
                    clocks[mode] += 60.0
                handles = sessions[mode].submit_many(requests, max_workers=4)
                return [handle.result().choice for handle in handles]

            for mode in warehouses:
                # Warmup: one out-of-band sweep populates the coordinator
                # caches and (sharded) the worker-private caches alike.
                run_batch(mode, [instantiate(name, seed=999) for name in names])

            walls: dict[str, list[float]] = {"threaded": [], "sharded": []}
            choices: dict[str, list] = {"threaded": [], "sharded": []}
            pairing = list(warehouses)
            for index, chunk in enumerate(chunks):
                ordering = pairing if index % 2 == 0 else pairing[::-1]
                for mode in ordering:
                    start = time.perf_counter()
                    choices[mode].extend(run_batch(mode, chunk))
                    walls[mode].append(time.perf_counter() - start)

            pool = warehouses["sharded"].worker_pool
            chunk_size = len(chunks[0])
            chunk_overheads = [
                sharded / threaded - 1.0
                for threaded, sharded in zip(walls["threaded"], walls["sharded"])
            ]
            pools[str(workers)] = {
                "workers": workers,
                "queries": sum(len(chunk) for chunk in chunks),
                "threaded_wall_s": sum(walls["threaded"]),
                "sharded_wall_s": sum(walls["sharded"]),
                "threaded_qps": chunk_size / min(walls["threaded"]),
                "sharded_qps": chunk_size / min(walls["sharded"]),
                "speedup": min(walls["threaded"]) / min(walls["sharded"]),
                "chunk_overheads": chunk_overheads,
                "overhead": statistics.median(chunk_overheads),
                "tasks_dispatched": pool.tasks_dispatched,
                "warm_skeleton_hits": pool.warm_skeleton_hits,
                "restarts": pool.restarts,
                "parity_mismatches": check_parity(
                    choices["threaded"], choices["sharded"]
                ),
            }
        finally:
            warehouses["sharded"].disable_sharding()
    return {
        "mode": "sharded",
        "cpu_count": os.cpu_count(),
        "worker_counts": list(SHARDED_WORKER_COUNTS),
        "speedup_floor": SHARDED_SPEEDUP_FLOOR,
        "overhead_ceiling": SHARDED_OVERHEAD_CEILING,
        "pools": pools,
    }


def check_parity(reference_choices, fast_choices) -> int:
    """Count plan/estimate mismatches between two choice sequences."""
    mismatches = 0
    for a, b in zip(reference_choices, fast_choices):
        ea, eb = a.dop_plan.estimate, b.dop_plan.estimate
        same = (
            a.dop_plan.dops == b.dop_plan.dops
            and a.variant_index == b.variant_index
            and ea.latency == eb.latency
            and ea.machine_seconds == eb.machine_seconds
            and ea.dollars == eb.dollars
            and ea.scan_request_dollars == eb.scan_request_dollars
        )
        mismatches += 0 if same else 1
    return mismatches


def fresh_reference_choices(catalog, workload, constraints) -> list:
    """Bit-identity oracle for the literal-varying fast paths: a fresh
    bind + full optimization (baseline flags) of every arrival."""
    optimizer = fresh_optimizer(catalog, cached=False)
    binder = Binder(catalog)
    choices = []
    for sql in workload:
        bound = binder.bind_sql(sql)
        for constraint in constraints:
            choices.append(optimizer.optimize(bound, constraint))
    return choices


def print_result(result: dict) -> None:
    print(
        f"{result['mode']:>13}: {result['optimizes_per_s']:8.1f} optimizes/s, "
        f"mean {result['mean_optimize_s'] * 1e3:6.2f} ms, "
        f"{result['timing_evaluations']:6d} timing evaluations"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small pool + 1 round (CI smoke)"
    )
    parser.add_argument("--sf", type=float, default=100.0, help="stats scale factor")
    parser.add_argument("--rounds", type=int, default=8, help="pool repetitions")
    parser.add_argument(
        "--seeds", type=int, default=3, help="parameter instantiations per template"
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_optimizer.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--serving-output", default=str(REPO_ROOT / "BENCH_serving.json"),
        help="where to write the sharded-serving JSON report",
    )
    parser.add_argument(
        "--no-assert", action="store_true",
        help="report only; do not enforce speedup floors",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.rounds = 1
        args.seeds = 1
    if args.seeds < 1 or args.rounds < 1:
        parser.error("--seeds and --rounds must be >= 1")

    catalog = synthetic_tpch_catalog(
        args.sf, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )
    binder = Binder(catalog)
    names = template_names()
    bounds = [
        binder.bind_sql(instantiate(name, seed=seed))
        for name in names
        for seed in range(1, args.seeds + 1)
    ]
    constraints = list(CONSTRAINTS)
    print(
        f"fixed pool: {len(names)} templates x {args.seeds} seeds x "
        f"{len(constraints)} constraints, SF {args.sf:g}, {args.rounds} round(s)"
    )

    baseline, cached = run_fixed_pool(
        catalog, bounds, constraints, rounds=args.rounds
    )
    mismatches = check_parity(baseline.pop("choices"), cached.pop("choices"))

    speedup = baseline["mean_optimize_s"] / cached["mean_optimize_s"]
    reduction = baseline["timing_evaluations"] / max(1, cached["timing_evaluations"])
    for result in (baseline, cached):
        print_result(result)
    print(
        f"speedup {speedup:.2f}x wall, {reduction:.2f}x fewer timing evaluations, "
        f"{mismatches} parity mismatches"
    )

    chunks = literal_varying_workload(names, seeds=args.seeds, rounds=args.rounds)
    workload = [sql for chunk in chunks for sql in chunk]
    print(
        f"\nliteral-varying pool: {len(workload)} arrivals x "
        f"{len(constraints)} constraints (every arrival has fresh constants)"
    )
    lv_cached, lv_param = run_literal_varying(catalog, chunks, constraints)
    reference = fresh_reference_choices(catalog, workload, constraints)
    lv_mismatches = check_parity(reference, lv_cached.pop("choices"))
    param_mismatches = check_parity(reference, lv_param.pop("choices"))
    param_speedup = lv_cached["mean_optimize_s"] / lv_param["mean_optimize_s"]
    for result in (lv_cached, lv_param):
        print_result(result)
    stages = lv_param["stage_breakdown"]
    print(
        "parameterized stage breakdown: "
        + ", ".join(f"{k[:-2]}={v * 1e3:.1f}ms" for k, v in stages.items())
    )
    skeleton = lv_param["caches"]["skeleton_cache"]
    print(
        f"parameterized speedup {param_speedup:.2f}x wall vs cached "
        f"(best of {len(lv_param['chunk_speedups'])} interleaved chunks per mode), "
        f"skeleton hit rate {skeleton['hit_rate']:.0%}, "
        f"{lv_mismatches}+{param_mismatches} parity mismatches"
    )

    governed = run_governed(catalog, sla_constraint(SLA_SECONDS))
    print(
        f"\ngoverned pool (eviction pressure, cache capacity "
        f"{governed['capacity']} over {governed['templates']} templates): "
        f"skeleton hit rate lru {governed['lru']['skeleton_hit_rate']:.0%} vs "
        f"cost-aware {governed['cost_aware']['skeleton_hit_rate']:.0%}, "
        f"{governed['parity_mismatches']} parity mismatches"
    )

    resilient = run_resilient(catalog, sla_constraint(SLA_SECONDS))
    print(
        f"\nresilient pool (fault-free overhead A/B, {resilient['queries']} "
        f"submits over {resilient['chunks']} paired chunks): median overhead "
        f"{resilient['overhead']:+.1%} (ceiling "
        f"{RESILIENT_OVERHEAD_CEILING:.0%}), {resilient['retries']} retries, "
        f"{resilient['degraded_queries']} degraded, "
        f"{resilient['parity_mismatches']} parity mismatches"
    )

    journaled = run_journaled(catalog, sla_constraint(SLA_SECONDS))
    print(
        f"\njournaled pool (fault-free overhead A/B, {journaled['queries']} "
        f"submits over {journaled['chunks']} paired chunks): median overhead "
        f"{journaled['overhead']:+.1%} (ceiling "
        f"{JOURNALED_OVERHEAD_CEILING:.0%}), {journaled['journal_records']} "
        f"journal records, {journaled['checkpoints']} checkpoints, "
        f"{journaled['parity_mismatches']} parity mismatches"
    )

    observed = run_observed(catalog, sla_constraint(SLA_SECONDS))
    print(
        f"\nobserved pool (fault-free overhead A/B, {observed['queries']} "
        f"submits over {observed['chunks']} paired chunks): median overhead "
        f"{observed['overhead']:+.1%} (ceiling "
        f"{OBSERVED_OVERHEAD_CEILING:.0%}), {observed['snapshots']} "
        f"snapshots, reconciled={observed['reconciled']}, "
        f"{observed['parity_mismatches']} parity mismatches"
    )

    sharded = run_sharded(catalog, sla_constraint(SLA_SECONDS))
    print(
        f"\nsharded pool (threaded-vs-process A/B, "
        f"{sharded['cpu_count']} host core(s)):"
    )
    for pool_result in sharded["pools"].values():
        print(
            f"  {pool_result['workers']} worker(s): "
            f"{pool_result['sharded_qps']:7.1f} qps vs "
            f"{pool_result['threaded_qps']:7.1f} threaded "
            f"(speedup {pool_result['speedup']:.2f}x, median overhead "
            f"{pool_result['overhead']:+.1%}), "
            f"{pool_result['warm_skeleton_hits']} warm skeleton hits, "
            f"{pool_result['restarts']} restart(s), "
            f"{pool_result['parity_mismatches']} parity mismatches"
        )

    total_mismatches = (
        mismatches
        + lv_mismatches
        + param_mismatches
        + governed["parity_mismatches"]
        + resilient["parity_mismatches"]
        + journaled["parity_mismatches"]
        + observed["parity_mismatches"]
        + sum(p["parity_mismatches"] for p in sharded["pools"].values())
    )
    report = {
        "benchmark": "optimizer_throughput",
        "scale_factor": args.sf,
        "templates": len(names),
        "seeds": args.seeds,
        "rounds": args.rounds,
        "baseline": baseline,
        "cached": cached,
        "speedup_wall": speedup,
        "timing_evaluation_reduction": reduction,
        "literal_varying_queries": len(workload) * len(constraints),
        "cached_literal_varying": lv_cached,
        "parameterized": lv_param,
        "parameterized_speedup_wall": param_speedup,
        "governed": governed,
        "resilient": resilient,
        "journaled": journaled,
        "observed": observed,
        "sharded": sharded,
        "parity_mismatches": total_mismatches,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    serving_report = {
        "benchmark": "sharded_serving",
        "scale_factor": args.sf,
        "quick": args.quick,
        **sharded,
    }
    Path(args.serving_output).write_text(
        json.dumps(serving_report, indent=2) + "\n"
    )
    print(f"wrote {args.serving_output}")

    if total_mismatches:
        print("FAIL: a fast path diverged from fresh plans/estimates")
        return 1
    if not args.no_assert:
        # The cost-aware hit rate itself varies a few points run to run
        # (retention scores use *measured* planning seconds), but the
        # gate is on the direction only, and the gap over LRU's 0% is an
        # order of magnitude wider than the wobble — enforce at any SF
        # and in quick mode alike.
        if (
            governed["cost_aware"]["skeleton_hit_rate"]
            <= governed["lru"]["skeleton_hit_rate"]
        ):
            print(
                "FAIL: cost-aware skeleton hit rate "
                f"{governed['cost_aware']['skeleton_hit_rate']:.0%} does not "
                f"exceed LRU's {governed['lru']['skeleton_hit_rate']:.0%} "
                "under eviction pressure"
            )
            return 1
        # Fault-free resilient serving must be bookkeeping only —
        # retries/degradations here mean a guard misfires without
        # faults (deterministic, enforced at any SF and in quick mode).
        if resilient["retries"] or resilient["degraded_queries"]:
            print(
                "FAIL: fault-free resilient serving "
                f"retried {resilient['retries']} time(s) / degraded "
                f"{resilient['degraded_queries']} query(ies)"
            )
            return 1
        if resilient["overhead"] >= RESILIENT_OVERHEAD_CEILING:
            print(
                f"FAIL: resilient serving overhead {resilient['overhead']:+.1%} "
                f">= {RESILIENT_OVERHEAD_CEILING:.0%} ceiling"
            )
            return 1
        # Durability must actually journal (a silently detached journal
        # would gate nothing) and stay near-free in fault-free serving.
        if not journaled["journal_records"] or not journaled["checkpoints"]:
            print(
                "FAIL: journaled A/B recorded "
                f"{journaled['journal_records']} records / "
                f"{journaled['checkpoints']} checkpoints"
            )
            return 1
        if journaled["overhead"] >= JOURNALED_OVERHEAD_CEILING:
            print(
                f"FAIL: journaled serving overhead {journaled['overhead']:+.1%} "
                f">= {JOURNALED_OVERHEAD_CEILING:.0%} ceiling"
            )
            return 1
        # Observation must actually observe (a never-firing collector
        # would gate nothing) and reconcile exactly against the bills.
        if not observed["snapshots"] or not observed["reconciled"]:
            print(
                "FAIL: observed A/B collected "
                f"{observed['snapshots']} snapshots / "
                f"reconciled={observed['reconciled']}"
            )
            return 1
        if observed["overhead"] >= OBSERVED_OVERHEAD_CEILING:
            print(
                f"FAIL: observed serving overhead {observed['overhead']:+.1%} "
                f">= {OBSERVED_OVERHEAD_CEILING:.0%} ceiling"
            )
            return 1
        # A fault-free sharded A/B must never restart a worker: a
        # restart here means a crash or hang in steady-state serving.
        sharded_restarts = sum(
            p["restarts"] for p in sharded["pools"].values()
        )
        if sharded_restarts:
            print(
                f"FAIL: fault-free sharded serving restarted workers "
                f"{sharded_restarts} time(s)"
            )
            return 1
    if args.sf < 100.0 and not args.no_assert:
        # Small catalogs shrink the DOP search (plans are cheap at DOP 1),
        # so estimation is a smaller share of optimize time and the
        # SF-100-calibrated floors don't apply.
        print(f"note: floors calibrated for SF >= 100, skipping at SF {args.sf:g}")
        return 0
    if not args.no_assert:
        if args.quick:
            # One noisy round on a shared runner can't support a
            # wall-clock assertion; quick mode gates on the
            # deterministic metrics (evaluation counts + parity) only.
            print("note: --quick skips the wall-speedup floors (single round)")
        else:
            if speedup < SPEEDUP_FLOOR:
                print(f"FAIL: wall speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor")
                return 1
            if param_speedup < PARAMETERIZED_SPEEDUP_FLOOR:
                print(
                    f"FAIL: parameterized speedup {param_speedup:.2f}x "
                    f"< {PARAMETERIZED_SPEEDUP_FLOOR}x floor"
                )
                return 1
        if reduction < TIMING_REDUCTION_FLOOR:
            print(
                f"FAIL: timing-evaluation reduction {reduction:.2f}x "
                f"< {TIMING_REDUCTION_FLOOR}x floor"
            )
            return 1
        cores = sharded["cpu_count"] or 1
        if cores < 4:
            print(
                f"note: {cores} host core(s) cannot scale a process pool; "
                "skipping the sharded wall floors (recorded for trend only)"
            )
        elif not args.quick:
            widest = sharded["pools"][str(max(SHARDED_WORKER_COUNTS))]
            single = sharded["pools"]["1"]
            if widest["speedup"] < SHARDED_SPEEDUP_FLOOR:
                print(
                    f"FAIL: sharded speedup {widest['speedup']:.2f}x at "
                    f"{widest['workers']} workers < "
                    f"{SHARDED_SPEEDUP_FLOOR}x floor"
                )
                return 1
            if single["overhead"] >= SHARDED_OVERHEAD_CEILING:
                print(
                    f"FAIL: single-worker dispatch overhead "
                    f"{single['overhead']:+.1%} >= "
                    f"{SHARDED_OVERHEAD_CEILING:.0%} ceiling"
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
