"""E9 / §4: reclustering a huge table — break-even analysis.

The paper's cautionary example: reclustering a petabyte-scale table
speeds up pruning-friendly queries but "the cost of repopulating a
petabyte-sized table is enormous".  The report must recommend the action
only when the workload volume amortizes the rewrite.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.statsvc.forecast import TemplateForecast
from repro.tuning.clustering import ReclusterCandidate, recluster_one_time_cost
from repro.tuning.whatif import WhatIfService
from repro.util.tables import TextTable
from repro.workloads.tpch_stats import synthetic_tpch_catalog

DATE_SQL = (
    "SELECT count(*) AS c FROM lineitem "
    "WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1995-02-01'"
)
RATES = (0.05, 1.0, 20.0, 200.0)


def _forecast(rate):
    return TemplateForecast(
        template="dateq", rate_per_hour=rate, periodic=False, period_s=None,
        observed_count=50, avg_dollars=0.02, avg_machine_seconds=20.0,
    )


def test_e9_recluster_break_even(benchmark, estimator):
    def experiment():
        # Far bigger than the shared fixture: SF 10000 ~ 60B lineitem rows.
        catalog = synthetic_tpch_catalog(10_000.0)
        from repro.sql.binder import Binder

        binder = Binder(catalog)
        bound = binder.bind_sql(DATE_SQL)
        candidate = ReclusterCandidate("lineitem", "l_receiptdate")
        machine_s, one_time = recluster_one_time_cost(
            candidate, catalog, estimator.hw
        )
        whatif = WhatIfService(catalog, estimator, churn_fraction_per_hour=1e-4)

        table = TextTable(
            ["query rate (q/h)", "x $/h", "y $/h", "one-time $", "break-even (h)", "verdict"],
            title="E9 — recluster lineitem (60B rows, multi-TB) on l_receiptdate",
        )
        break_evens = []
        verdicts = []
        for rate in RATES:
            report = whatif.evaluate_recluster(
                candidate, {"dateq": (bound, _forecast(rate))}
            )
            break_evens.append(report.break_even_hours)
            verdicts.append(report.profitable)
            horizon = (
                f"{report.break_even_hours:,.0f}"
                if report.break_even_hours != float("inf")
                else "never"
            )
            table.add_row(
                [
                    rate,
                    f"{report.savings_per_hour:.4f}",
                    f"{report.cost_per_hour:.4f}",
                    f"{report.one_time_dollars:,.2f}",
                    horizon,
                    "ACCEPT" if report.profitable else "REJECT",
                ]
            )
        print()
        print(table)
        print(f"full rewrite: {machine_s:,.0f} machine-seconds = ${one_time:,.2f}")

        assert one_time > 1.0, "repopulating a 6B-row table costs real dollars"
        assert verdicts[-1], "a hot date-filtered workload justifies reclustering"
        finite = [b for b in break_evens if b != float("inf")]
        assert all(b2 <= b1 for b1, b2 in zip(finite, finite[1:])), (
            "break-even horizon shrinks as the workload heats up"
        )
        return one_time

    run_once(benchmark, experiment)
