"""E10 / §4: the Statistics Service's own cost-efficiency.

Sweeps the log sampling rate: summary error (access counts, join-graph
weights, template counts) rises as the rate drops while the service's
processing cost falls proportionally; hot/cold tiering cuts the summary
storage bill.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.statsvc.logs import QueryLogStore, QueryRecord
from repro.statsvc.sampling import StatsServiceCostModel, summary_error
from repro.statsvc.summaries import build_summary
from repro.util.rng import derive_rng
from repro.util.tables import TextTable

TEMPLATES = {
    "q3": ("customer", "orders", "lineitem"),
    "q5": ("customer", "orders", "lineitem", "supplier", "nation", "region"),
    "q12": ("orders", "lineitem"),
    "adhoc": ("lineitem", "part"),
}
SAMPLE_RATES = (1.0, 0.5, 0.2, 0.05, 0.01)
NUM_RECORDS = 5000


def _synth_log(seed=0):
    rng = derive_rng(seed, "e10")
    store = QueryLogStore()
    names = list(TEMPLATES)
    weights = np.array([0.4, 0.15, 0.25, 0.2])
    time = 0.0
    for i in range(NUM_RECORDS):
        template = names[int(rng.choice(len(names), p=weights))]
        tables = TEMPLATES[template]
        edges = tuple(
            (f"{a}.key", f"{b}.key") for a, b in zip(tables, tables[1:])
        )
        time += float(rng.exponential(30.0))
        store.append(
            QueryRecord(
                query_id=i,
                timestamp=time,
                sql="...",
                template=template,
                tables=tables,
                columns=tuple(f"{t}.key" for t in tables),
                join_edges=edges,
                filter_columns=(f"{tables[0]}.key",),
                latency_s=1.0,
                machine_seconds=5.0,
                dollars=0.005,
                bytes_scanned=1e8,
            )
        )
    return store


def test_e10_sampling_tradeoff(benchmark):
    def experiment():
        store = _synth_log()
        records = list(store)
        reference = build_summary(records)
        cost_model = StatsServiceCostModel()
        records_per_hour = len(records) / (store.horizon[1] / 3600.0)

        table = TextTable(
            ["sample rate", "attr err", "edge err", "template err", "service $/h"],
            title="E10 — Statistics Service: sampling rate vs accuracy vs cost",
        )
        errors = []
        costs = []
        for rate in SAMPLE_RATES:
            sampled = build_summary(records, sample_rate=rate, seed=5)
            err = summary_error(reference, sampled)
            dollars = cost_model.total_dollars_per_hour(
                sampled, records_per_hour=records_per_hour
            )
            errors.append(err["attribute_access"])
            costs.append(dollars)
            table.add_row(
                [
                    rate,
                    f"{err['attribute_access']:.3f}",
                    f"{err['join_edges']:.3f}",
                    f"{err['template_counts']:.3f}",
                    f"{dollars:.6f}",
                ]
            )
        print()
        print(table)

        tier_table = TextTable(
            ["hot fraction", "storage $/h"],
            title="E10 — hot/cold tiering of the summary store",
        )
        tier_costs = []
        for hot in (1.0, 0.5, 0.2, 0.0):
            dollars = cost_model.storage_dollars_per_hour(reference, hot_fraction=hot)
            tier_costs.append(dollars)
            tier_table.add_row([hot, f"{dollars:.8f}"])
        print(tier_table)

        assert errors[0] == 0.0, "full-rate summary is exact"
        assert errors[-1] > errors[1], "1% sampling is noticeably worse than 50%"
        assert costs[-1] < costs[0] * 0.15, "1% sampling cuts cost ~proportionally"
        assert tier_costs == sorted(tier_costs, reverse=True)
        return errors[-1]

    run_once(benchmark, experiment)
