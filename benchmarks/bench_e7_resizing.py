"""E7 + E12 / §3.3: dynamic cluster resizing under cardinality errors.

Injects cardinality estimation errors (1/8x .. 8x) and compares:
- static plan execution (no adaptation);
- the pipeline-granular DOP monitor (ours);
- whole-cluster interval scaling (Jockey/Ellis family);
- per-stage scaling with materialized "clean cuts" (BigQuery family).

Metrics: SLA attainment and dollars, plus the E12 claim that clean cuts
impose overhead streaming resizing avoids.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.dop.constraints import sla_constraint
from repro.dop.planner import DopPlanner
from repro.monitor.policies import (
    IntervalScalerPolicy,
    PerStageScalerPolicy,
    PipelineDopMonitor,
    StaticPolicy,
)
from repro.plan.pipelines import decompose_pipelines
from repro.sim.distsim import DistributedSimulator, SimConfig
from repro.util.tables import TextTable

SQL = (
    "SELECT count(*) AS c FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 200000"
)
SLA = 25.0
ERROR_FACTORS = (0.25, 1.0, 4.0, 8.0)


def _policy(name, dag, dop_plan, estimator):
    if name == "static":
        return StaticPolicy(), SimConfig(seed=17)
    if name == "dop-monitor":
        return (
            PipelineDopMonitor(
                dag, estimator, sla_constraint(SLA), dop_plan.dops,
                planned_latency=dop_plan.estimate.latency,
                planned_durations={
                    pid: p.duration
                    for pid, p in dop_plan.estimate.pipelines.items()
                },
                max_dop=64,
            ),
            SimConfig(seed=17),
        )
    if name == "interval":
        durations = {pid: p.duration for pid, p in dop_plan.estimate.pipelines.items()}
        return (
            IntervalScalerPolicy(dag, SLA, dop_plan.dops, durations, max_dop=64),
            SimConfig(seed=17),
        )
    return (
        PerStageScalerPolicy(dag, dop_plan.dops, max_dop=64),
        SimConfig(seed=17, materialize_exchanges=True),
    )


def test_e7_resizing_policies(benchmark, binder, planner, estimator):
    def experiment():
        plan = planner.plan(binder.bind_sql(SQL))
        dag = decompose_pipelines(plan)
        dop_plan = DopPlanner(estimator, max_dop=64).plan(dag, sla_constraint(SLA))

        policies = ("static", "dop-monitor", "interval", "stage")
        table = TextTable(
            ["card error", *[f"{p} lat/$" for p in policies]],
            title=f"E7 — resizing policies under cardinality errors (SLA={SLA}s)",
        )
        outcomes = {p: [] for p in policies}
        for factor in ERROR_FACTORS:
            truth = {
                pipe.ops[0].node.node_id: float(pipe.ops[0].node.est_rows) * factor
                for pipe in dag
            }
            row = [f"{factor}x"]
            for name in policies:
                policy, config = _policy(name, dag, dop_plan, estimator)
                sim = DistributedSimulator(
                    dag, dop_plan.dops, estimator.models,
                    truth=truth, planned=dop_plan.estimate,
                    policy=policy, config=config,
                )
                result = sim.run()
                met = result.latency <= SLA
                outcomes[name].append((met, result.total_dollars, result.latency))
                row.append(
                    f"{result.latency:.1f}s{'✓' if met else '✗'}/"
                    f"${result.total_dollars:.4f}"
                )
            table.add_row(row)
        print()
        print(table)

        sla_rate = {
            name: sum(met for met, _, _ in runs) / len(runs)
            for name, runs in outcomes.items()
        }
        cost = {
            name: sum(dollars for _, dollars, _ in runs)
            for name, runs in outcomes.items()
        }
        lateness = {
            name: sum(latency / SLA for _, _, latency in runs) / len(runs)
            for name, runs in outcomes.items()
        }
        print(f"SLA attainment: { {k: f'{v:.0%}' for k, v in sla_rate.items()} }")
        print(f"mean lateness:  { {k: f'{v:.2f}' for k, v in lateness.items()} }")
        print(f"total dollars:  { {k: f'{v:.4f}' for k, v in cost.items()} }")

        # Pipeline-granular resizing keeps queries closest to the SLA...
        assert lateness["dop-monitor"] < lateness["static"]
        assert lateness["dop-monitor"] < lateness["interval"]
        assert lateness["dop-monitor"] < lateness["stage"]
        assert sla_rate["dop-monitor"] >= sla_rate["static"]
        # ...at lower cost than whole-cluster scaling, which inflates
        # every pipeline by the same factor.
        assert cost["dop-monitor"] < cost["interval"]
        # E12: "clean cuts" pay pure materialization overhead even when
        # the estimates were perfect (the 1.0x row has no error at all).
        no_error_index = ERROR_FACTORS.index(1.0)
        stage_clean = outcomes["stage"][no_error_index][1]
        monitor_clean = outcomes["dop-monitor"][no_error_index][1]
        assert stage_clean > monitor_clean * 1.5
        return lateness["dop-monitor"]

    run_once(benchmark, experiment)
