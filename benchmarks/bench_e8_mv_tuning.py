"""E8 / §4: the MV what-if dollar logic (accept iff x − y > 0).

Sweeps the query arrival rate for one recurring join+aggregate family and
shows the What-If report flipping from REJECT to ACCEPT exactly where the
savings rate x crosses the maintenance rate y, with the break-even
horizon shrinking as the workload heats up.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.statsvc.forecast import TemplateForecast
from repro.tuning.mv import mv_candidate_from_query
from repro.tuning.whatif import WhatIfService
from repro.util.tables import TextTable

SQL = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = 2 GROUP BY n_name"
)
RATES_PER_HOUR = (0.01, 0.1, 1.0, 10.0, 100.0)


def _forecast(rate):
    return TemplateForecast(
        template="fam", rate_per_hour=rate, periodic=True,
        period_s=3600.0 / rate, observed_count=20,
        avg_dollars=0.01, avg_machine_seconds=10.0,
    )


def test_e8_mv_accept_threshold(benchmark, catalog, binder, estimator):
    def experiment():
        bound = binder.bind_sql(SQL)
        candidate = mv_candidate_from_query(bound, catalog, name="mv_fam")
        whatif = WhatIfService(catalog, estimator, churn_fraction_per_hour=0.02)

        table = TextTable(
            ["rate (q/h)", "x savings $/h", "y cost $/h", "net $/h", "verdict", "break-even (h)"],
            title="E8 — MV what-if: accept iff x − y > 0",
        )
        verdicts = []
        for rate in RATES_PER_HOUR:
            report = whatif.evaluate_mv(candidate, {"fam": (bound, _forecast(rate))})
            verdicts.append(report.profitable)
            horizon = (
                f"{report.break_even_hours:.1f}"
                if report.break_even_hours != float("inf")
                else "never"
            )
            table.add_row(
                [
                    rate,
                    f"{report.savings_per_hour:.5f}",
                    f"{report.cost_per_hour:.5f}",
                    f"{report.net_per_hour:+.5f}",
                    "ACCEPT" if report.profitable else "REJECT",
                    horizon,
                ]
            )
        print()
        print(table)

        # Cold workload rejected, hot workload accepted, one threshold.
        assert verdicts[0] is False
        assert verdicts[-1] is True
        flips = sum(a != b for a, b in zip(verdicts, verdicts[1:]))
        assert flips == 1, "verdict must flip exactly once along the rate sweep"

        # Decision matches the post-hoc oracle (net/hour sign).
        report = whatif.evaluate_mv(
            candidate, {"fam": (bound, _forecast(10.0))}
        )
        oracle_net = report.savings_per_hour - report.cost_per_hour
        assert report.profitable == (oracle_net > 0)
        return flips

    run_once(benchmark, experiment)
