"""E3 / §3.1: the cost estimator is accurate, lightweight, explainable.

- Accuracy: predicted vs simulated (ground-truth) latency across the
  query suite and a DOP grid, before and after regression calibration of
  the exchange models.
- Lightweightness: estimator invocations per second (it is called
  thousands of times per optimization).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.baselines.tshirt import uniform_dops
from repro.cost.estimator import CostEstimator
from repro.cost.operator_models import OperatorModels
from repro.cost.regression import calibrate_exchange
from repro.plan.pipelines import decompose_pipelines
from repro.sim.distsim import DistributedSimulator, SimConfig, measure_exchange
from repro.util.tables import TextTable
from repro.workloads.tpch_queries import instantiate

QUERIES = ("q1_pricing_summary", "q5_local_supplier", "q12_shipmode", "scan_orders")
DOPS = (2, 8, 32)


def _mean_abs_rel_error(estimator, dags, truth_models, seed=3, skew=0.0):
    """Prediction error vs simulator ground truth.

    The simulator always runs on ``truth_models`` (the fixed "real
    cluster"), independent of the estimator under evaluation.  Skew
    defaults to off here: stragglers are a *run-time* deviation the DOP
    monitor absorbs (§3.3), not something a plan-time estimator is
    expected to predict; the benchmark reports the with-skew residual
    separately.
    """
    errors = []
    for dag in dags:
        for dop in DOPS:
            dops = uniform_dops(dag, dop)
            predicted = estimator.estimate_dag(dag, dops)
            sim = DistributedSimulator(
                dag, dops, truth_models,
                planned=predicted,
                config=SimConfig(seed=seed, skew_zipf_s=skew),
            )
            truth = sim.run()
            errors.append(abs(predicted.latency - truth.latency) / truth.latency)
    return sum(errors) / len(errors)


def test_e3_estimator_accuracy_and_speed(benchmark, binder, planner, estimator):
    def experiment():
        dags = [
            decompose_pipelines(planner.plan(binder.bind_sql(instantiate(q, seed=2))))
            for q in QUERIES
        ]

        truth_models = OperatorModels()
        default_error = _mean_abs_rel_error(estimator, dags, truth_models)

        # Calibration, as §3.1 prescribes, happens "before the service
        # starts" from micro-benchmarks on the real substrate:
        # (a) CPU rates from a single-node run (recovers the hidden
        #     cpu_rate_multiplier the simulator applies);
        # (b) exchange regression models from synthetic transfer sweeps.
        models = truth_models
        sim_truth = SimConfig(noise_sigma=0.0, skew_zipf_s=0.0)
        cpu_factor = sim_truth.cpu_rate_multiplier
        from repro.cost.hardware import HardwareCalibration

        cpu_calibrated_hw = HardwareCalibration.calibrated(
            "standard",
            scan_bytes_per_core=models.hw.scan_bytes_per_core * cpu_factor,
            filter_rows_per_core=models.hw.filter_rows_per_core * cpu_factor,
            project_rows_per_core_per_expr=models.hw.project_rows_per_core_per_expr * cpu_factor,
            hash_build_rows_per_core=models.hw.hash_build_rows_per_core * cpu_factor,
            hash_probe_rows_per_core=models.hw.hash_probe_rows_per_core * cpu_factor,
            agg_rows_per_core=models.hw.agg_rows_per_core * cpu_factor,
            state_scan_rows_per_core=models.hw.state_scan_rows_per_core * cpu_factor,
            sort_rows_per_core=models.hw.sort_rows_per_core * cpu_factor,
        )
        calibration = calibrate_exchange(
            lambda kind, payload, dop: measure_exchange(
                kind, payload, dop, models=models, config=sim_truth,
            ),
            hardware=models.hw,
        )
        calibrated = CostEstimator(
            cpu_calibrated_hw, exchange_calibration=calibration
        )
        calibrated_error = _mean_abs_rel_error(calibrated, dags, truth_models)
        residual_with_skew = _mean_abs_rel_error(calibrated, dags, truth_models, skew=0.5)

        # Lightweightness: invocations/second on the largest DAG.
        biggest = max(dags, key=len)
        dops = uniform_dops(biggest, 8)
        started = time.perf_counter()
        invocations = 300
        for _ in range(invocations):
            calibrated.estimate_dag(biggest, dops)
        per_second = invocations / (time.perf_counter() - started)

        table = TextTable(
            ["estimator", "mean |rel latency error|", "invocations/s"],
            title="E3 — estimator accuracy (vs simulator truth) and speed",
        )
        table.add_row(["analytic defaults", f"{default_error:.3f}", "-"])
        table.add_row(
            ["calibrated (cpu + exchange)", f"{calibrated_error:.3f}", f"{per_second:,.0f}"]
        )
        table.add_row(
            ["calibrated, skewed truth", f"{residual_with_skew:.3f}", "-"]
        )
        print()
        print(table)

        assert calibrated_error < default_error, "calibration must improve accuracy"
        assert calibrated_error < 0.15, "calibrated estimator within 15% of truth"
        assert residual_with_skew > calibrated_error, (
            "skew is the run-time residual the DOP monitor exists for"
        )
        assert per_second > 200, "estimator must support thousands of calls/query"
        return calibrated_error

    run_once(benchmark, experiment)
