"""E1 / paper Figure 2: the cost-performance Pareto frontier.

Sweeps warehouse configurations for a mixed workload and shows:
- the (latency, dollars) cloud of T-shirt configurations;
- the Pareto frontier of that cloud;
- that the bi-objective optimizer lands on/near the frontier for any
  SLA, while fixed T-shirt picks are mostly dominated.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines.tshirt import uniform_dops
from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.compute.pricing import TSHIRT_SIZES
from repro.dop.constraints import sla_constraint
from repro.plan.pipelines import decompose_pipelines
from repro.util.pareto import ParetoPoint, distance_to_frontier, pareto_frontier
from repro.util.tables import TextTable
from repro.workloads.tpch_queries import instantiate

WORKLOAD = ("q1_pricing_summary", "q5_local_supplier", "q18_large_orders")


def test_fig2_pareto_frontier(benchmark, catalog, binder, planner, estimator):
    def experiment():
        dags = [
            decompose_pipelines(planner.plan(binder.bind_sql(instantiate(n, seed=1))))
            for n in WORKLOAD
        ]

        # T-shirt cloud: one uniform size for the whole workload.
        cloud: list[ParetoPoint] = []
        for name, nodes in TSHIRT_SIZES.items():
            latency = dollars = 0.0
            for dag in dags:
                estimate = estimator.estimate_dag(dag, uniform_dops(dag, nodes))
                latency += estimate.latency
                dollars += estimate.total_dollars
            cloud.append(ParetoPoint(latency, dollars, payload=name))
        frontier = pareto_frontier(cloud)

        table = TextTable(
            ["config", "workload latency (s)", "workload cost ($)", "on frontier"],
            title="Figure 2 — T-shirt configurations vs Pareto frontier",
        )
        frontier_names = {p.payload for p in frontier}
        for point in cloud:
            table.add_row(
                [
                    point.payload,
                    f"{point.latency:.2f}",
                    f"{point.dollars:.4f}",
                    "yes" if point.payload in frontier_names else "dominated",
                ]
            )
        print()
        print(table)

        # The cost-intelligent optimizer at several SLAs.
        optimizer = BiObjectiveOptimizer(catalog, estimator, max_dop=128)
        table2 = TextTable(
            ["SLA (s)", "latency (s)", "cost ($)", "distance to frontier"],
            title="Bi-objective optimizer sliding along the frontier",
        )
        latency_scale = max(p.latency for p in cloud)
        dollar_scale = max(p.dollars for p in cloud)
        distances = []
        for sla_each in (30.0, 15.0, 8.0):
            latency = dollars = 0.0
            for name in WORKLOAD:
                bound = binder.bind_sql(instantiate(name, seed=1))
                choice = optimizer.optimize(bound, sla_constraint(sla_each))
                latency += choice.dop_plan.estimate.latency
                dollars += choice.dop_plan.estimate.total_dollars
            point = ParetoPoint(latency, dollars)
            distance = distance_to_frontier(
                point, frontier,
                latency_scale=latency_scale, dollar_scale=dollar_scale,
            )
            distances.append(distance)
            table2.add_row(
                [sla_each * len(WORKLOAD), f"{latency:.2f}", f"{dollars:.4f}", f"{distance:.4f}"]
            )
        print(table2)

        dominated = len(cloud) - len(frontier)
        assert dominated >= 3, "most T-shirt sizes should be dominated"
        # The optimizer's points hug the frontier (normalized distance).
        assert max(distances) < 0.35
        return max(distances)

    run_once(benchmark, experiment)
