"""Setuptools shim.

Kept alongside pyproject.toml so the package can be installed in
environments without the ``wheel`` package (legacy editable installs via
``python setup.py develop``); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
