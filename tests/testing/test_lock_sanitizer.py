"""Unit tests for the lock-order sanitizer (repro.testing.locks)."""

from __future__ import annotations

import threading

import pytest

from repro.core.service import QueryRequest
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.testing import (
    LockOrderError,
    LockOrderSanitizer,
    SanitizedLock,
    instrument_warehouse,
)
from repro.workloads.tpch_stats import synthetic_tpch_catalog


def make_pair(sanitizer):
    a = sanitizer.wrap(threading.Lock(), "a")
    b = sanitizer.wrap(threading.Lock(), "b")
    return a, b


def test_wrapper_preserves_lock_semantics():
    sanitizer = LockOrderSanitizer()
    lock = sanitizer.wrap(threading.Lock(), "l")
    assert isinstance(lock, SanitizedLock)
    assert not lock.locked()
    with lock:
        assert lock.locked()
        # non-blocking probe against a held lock fails cleanly and must
        # not corrupt the held-stack bookkeeping
        assert lock.acquire(False) is False
    assert not lock.locked()
    assert sanitizer.acquisitions == 1
    # wrapping an already-wrapped lock is a no-op
    assert sanitizer.wrap(lock, "l2") is lock


def test_consistent_order_is_clean():
    sanitizer = LockOrderSanitizer()
    a, b = make_pair(sanitizer)
    for _ in range(3):
        with a:
            with b:
                pass
    assert sanitizer.edges()["a"] == frozenset({"b"})
    assert sanitizer.violations == []
    sanitizer.assert_clean()


def test_opposite_orders_detected_without_interleaving():
    """a->b in one thread, b->a in another is a latent deadlock even
    when the threads never actually contend."""
    sanitizer = LockOrderSanitizer()
    a, b = make_pair(sanitizer)

    with a:
        with b:
            pass

    def reversed_order():
        with b:
            with a:
                pass

    worker = threading.Thread(target=reversed_order)
    worker.start()
    worker.join()

    assert len(sanitizer.violations) == 1
    assert "a -> b" in sanitizer.violations[0]
    assert "b -> a" in sanitizer.violations[0]
    with pytest.raises(LockOrderError):
        sanitizer.assert_clean()


def test_three_lock_cycle_detected():
    sanitizer = LockOrderSanitizer()
    a = sanitizer.wrap(threading.Lock(), "a")
    b = sanitizer.wrap(threading.Lock(), "b")
    c = sanitizer.wrap(threading.Lock(), "c")

    def ordered(first, second):
        with first:
            with second:
                pass

    for first, second in ((a, b), (b, c)):
        t = threading.Thread(target=ordered, args=(first, second))
        t.start()
        t.join()
    assert sanitizer.violations == []
    t = threading.Thread(target=ordered, args=(c, a))
    t.start()
    t.join()
    assert len(sanitizer.violations) == 1
    assert "a -> b" in sanitizer.violations[0]
    assert "c -> a" in sanitizer.violations[0]


def test_raise_on_cycle_mode():
    sanitizer = LockOrderSanitizer(raise_on_cycle=True)
    a, b = make_pair(sanitizer)
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderError):
            a.acquire()


def test_reentrant_rlock_makes_no_self_edge():
    sanitizer = LockOrderSanitizer()
    r = sanitizer.wrap(threading.RLock(), "r")
    with r:
        with r:
            pass
    assert sanitizer.violations == []
    assert sanitizer.edges()["r"] == frozenset()


def test_describe_reports_graph():
    sanitizer = LockOrderSanitizer()
    a, b = make_pair(sanitizer)
    with a:
        with b:
            pass
    report = sanitizer.describe()
    assert report["locks"] == ["a", "b"]
    assert ("a", "b") in report["edges"]
    assert report["acquisitions"] == 2
    assert report["violations"] == []


def test_instrument_warehouse_covers_core_locks_and_serving_works():
    wh = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(0.1),
        retention_policy="cost-aware",
    )
    sanitizer = instrument_warehouse(wh)
    assert isinstance(wh._serving_lock, SanitizedLock)
    assert all(
        isinstance(s.lock, SanitizedLock) for s in wh.plan_cache._stripes
    )
    assert isinstance(wh.admission._lock, SanitizedLock)
    assert isinstance(wh.statsvc_breaker._lock, SanitizedLock)

    session = wh.session(tenant="t", constraint=sla_constraint(30.0))
    requests = [
        QueryRequest(
            sql="SELECT count(*) AS c FROM orders WHERE o_totalprice > 100",
            at_time=30.0 * i,
        )
        for i in range(4)
    ]
    handles = session.submit_many(requests, max_workers=2)
    assert all(h.done for h in handles)
    assert sanitizer.acquisitions > 0
    sanitizer.assert_clean()

    # idempotent: instrumenting again must not double-wrap
    again = instrument_warehouse(wh, sanitizer)
    assert again is sanitizer
    assert isinstance(wh._serving_lock, SanitizedLock)
    assert not isinstance(wh._serving_lock._inner_lock, SanitizedLock)
