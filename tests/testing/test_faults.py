"""Unit tests for the deterministic fault-injection harness (PR 6)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import BindError, ReproError, TransientError
from repro.testing import (
    CRASH_POINTS,
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SimulatedCrashError,
    crash_probes,
    kill,
    outage,
)


def drain(plan: FaultPlan, point: str, n: int) -> list:
    return [plan.draw(point) for _ in range(n)]


def test_same_seed_same_schedule():
    def build():
        return FaultPlan(
            [FaultSpec(point="optimize", error_rate=0.3, latency_rate=0.2, latency_s=1.5)],
            seed=7,
        )

    a = [
        (d.invocation, type(d.error).__name__ if d.error else None, d.latency_s)
        for d in drain(build(), "optimize", 50)
        if d is not None
    ]
    b = [
        (d.invocation, type(d.error).__name__ if d.error else None, d.latency_s)
        for d in drain(build(), "optimize", 50)
        if d is not None
    ]
    assert a == b
    assert a  # a 30% rate over 50 draws fires at least once


def test_different_seeds_differ():
    def fires(seed):
        plan = FaultPlan([FaultSpec(point="bind", error_rate=0.5)], seed=seed)
        return [d.invocation for d in drain(plan, "bind", 40) if d is not None]

    assert fires(1) != fires(2)


def test_outage_window_after_and_limit():
    plan = FaultPlan([outage("statsvc", after=2, limit=3)])
    decisions = drain(plan, "statsvc", 10)
    fired = [i for i, d in enumerate(decisions) if d is not None]
    assert fired == [2, 3, 4]  # starts after 2 invocations, fires 3 times
    assert plan.fired == {"statsvc": 3}
    assert plan.invocations == {"statsvc": 10}


def test_injected_fault_is_transient_and_traceable():
    plan = FaultPlan([outage("simulate")])
    decision = plan.draw("simulate")
    assert decision is not None
    assert isinstance(decision.error, InjectedFault)
    assert isinstance(decision.error, TransientError)
    assert decision.error.point == "simulate"
    assert decision.error.invocation == 0


def test_custom_error_factory_builds_deterministic_errors():
    plan = FaultPlan([FaultSpec(point="bind", error_rate=1.0, error=BindError)])
    decision = plan.draw("bind")
    assert isinstance(decision.error, BindError)
    assert not isinstance(decision.error, TransientError)


def test_latency_only_spec_charges_without_error():
    plan = FaultPlan(
        [FaultSpec(point="optimize", latency_rate=1.0, latency_s=2.5)]
    )
    decision = plan.draw("optimize")
    assert decision.error is None
    assert decision.latency_s == 2.5


def test_unknown_point_rejected_and_rates_validated():
    with pytest.raises(ReproError):
        FaultSpec(point="no-such-point", error_rate=1.0)
    with pytest.raises(ReproError):
        FaultSpec(point="bind", error_rate=1.5)
    with pytest.raises(ReproError):
        FaultSpec(point="bind", latency_s=-1.0)
    with pytest.raises(ReproError):
        FaultSpec(point="bind", limit=-1)


def test_points_are_independent_streams():
    """Exercising one point never perturbs another's schedule."""
    plain = FaultPlan(
        [
            FaultSpec(point="optimize", error_rate=0.4),
            FaultSpec(point="bind", error_rate=0.4),
        ],
        seed=3,
    )
    noisy = FaultPlan(
        [
            FaultSpec(point="optimize", error_rate=0.4),
            FaultSpec(point="bind", error_rate=0.4),
        ],
        seed=3,
    )
    plain_fires = []
    noisy_fires = []
    for i in range(30):
        noisy.draw("bind")  # interleaved traffic on another point
        if plain.draw("optimize") is not None:
            plain_fires.append(i)
        if noisy.draw("optimize") is not None:
            noisy_fires.append(i)
    assert plain_fires == noisy_fires


def test_concurrent_draws_cover_every_invocation_exactly_once():
    plan = FaultPlan([FaultSpec(point="simulate", error_rate=0.5)], seed=9)
    seen: list[int] = []
    lock = threading.Lock()

    def worker():
        for _ in range(25):
            decision = plan.draw("simulate")
            if decision is not None:
                with lock:
                    seen.append(decision.invocation)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert plan.invocations == {"simulate": 100}
    assert len(seen) == len(set(seen))  # each invocation decided once
    # The set of firing invocations equals the single-threaded schedule.
    reference = FaultPlan([FaultSpec(point="simulate", error_rate=0.5)], seed=9)
    expected = [
        d.invocation for d in drain(reference, "simulate", 100) if d is not None
    ]
    assert sorted(seen) == expected


def test_describe_mentions_points_and_fired_counts():
    plan = FaultPlan([outage("tuning_apply", limit=1)], seed=5)
    plan.draw("tuning_apply")
    text = plan.describe()
    assert "tuning_apply" in text
    assert "seed=5" in text


def test_fault_points_snapshot():
    assert FAULT_POINTS == (
        "bind",
        "optimize",
        "simulate",
        "statsvc",
        "tuning_apply",
        "worker_crash",
    )


# --------------------------------------------------------------------- #
# Crash fault family (PR 7)
# --------------------------------------------------------------------- #
def test_crash_points_snapshot():
    """The kill points are a separate family at journal-record
    boundaries; adding one requires extending the recovery matrix."""
    assert CRASH_POINTS == (
        "crash_pre_write",
        "crash_post_write",
        "crash_pre_commit",
    )
    assert not set(CRASH_POINTS) & set(FAULT_POINTS)


def test_kill_fires_exactly_once_at_the_given_invocation():
    plan = FaultPlan([kill("crash_post_write", at=2)])
    decisions = drain(plan, "crash_post_write", 6)
    fired = [i for i, d in enumerate(decisions) if d is not None]
    assert fired == [2]
    assert plan.fired == {"crash_post_write": 1}


def test_kill_rejects_non_crash_points():
    with pytest.raises(ReproError):
        kill("optimize")


def test_simulated_crash_is_base_exception():
    """A crash must sever the process: no ``except Exception`` handler
    (serve_one, the scheduler, apply_all) may swallow it."""
    plan = FaultPlan([kill("crash_pre_write")])
    decision = plan.draw("crash_pre_write")
    assert isinstance(decision.error, SimulatedCrashError)
    assert isinstance(decision.error, BaseException)
    assert not isinstance(decision.error, Exception)
    assert decision.error.point == "crash_pre_write"
    assert decision.error.invocation == 0


def test_crash_probes_count_without_firing():
    """Zero-rate probes enumerate reachable kill points: invocations
    tally, nothing raises."""
    plan = FaultPlan(crash_probes())
    for point in CRASH_POINTS:
        assert drain(plan, point, 3) == [None, None, None]
    assert plan.invocations == {point: 3 for point in CRASH_POINTS}
    assert not any(plan.fired.values())


def test_crash_spec_with_custom_error_keeps_the_custom_type():
    plan = FaultPlan(
        [FaultSpec(point="crash_pre_commit", error_rate=1.0, error=BindError)]
    )
    assert isinstance(plan.draw("crash_pre_commit").error, BindError)
