import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan.expressions import (
    AggCall,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    conjuncts,
    contains_aggregate,
    is_equi_join_condition,
    make_and,
    referenced_columns,
)


@pytest.fixture()
def batch():
    return {
        "a": np.array([1.0, 2.0, 3.0, 4.0]),
        "b": np.array([10.0, 20.0, 30.0, 40.0]),
        "c": np.array([1, 0, 1, 0], dtype=np.int64),
    }


def test_column_ref_eval(batch):
    assert np.array_equal(ColumnRef("a").evaluate(batch), batch["a"])
    with pytest.raises(PlanError):
        ColumnRef("zz").evaluate(batch)


def test_arithmetic_matches_numpy(batch):
    expr = BinaryOp("*", ColumnRef("a"), BinaryOp("+", ColumnRef("b"), Literal(1)))
    assert np.allclose(expr.evaluate(batch), batch["a"] * (batch["b"] + 1))


def test_division_is_float(batch):
    expr = BinaryOp("/", ColumnRef("c"), Literal(2))
    result = expr.evaluate(batch)
    assert result.dtype == np.float64


def test_comparisons(batch):
    expr = BinaryOp("<=", ColumnRef("a"), Literal(2))
    assert expr.evaluate(batch).tolist() == [True, True, False, False]
    expr = BinaryOp("<>", ColumnRef("c"), Literal(0))
    assert expr.evaluate(batch).tolist() == [True, False, True, False]


def test_logical_ops(batch):
    left = BinaryOp(">", ColumnRef("a"), Literal(1))
    right = BinaryOp("<", ColumnRef("b"), Literal(40))
    both = BinaryOp("and", left, right)
    either = BinaryOp("or", left, right)
    negated = UnaryOp("not", left)
    assert both.evaluate(batch).tolist() == [False, True, True, False]
    assert either.evaluate(batch).tolist() == [True, True, True, True]
    assert negated.evaluate(batch).tolist() == [True, False, False, False]


def test_in_list(batch):
    expr = InList(ColumnRef("a"), (1, 3))
    assert expr.evaluate(batch).tolist() == [True, False, True, False]
    assert InList(ColumnRef("a"), (1, 3), negated=True).evaluate(batch).tolist() == [
        False,
        True,
        False,
        True,
    ]


def test_scalar_funcs(batch):
    expr = FuncCall("abs", (UnaryOp("-", ColumnRef("a")),))
    assert np.allclose(expr.evaluate(batch), batch["a"])
    year = FuncCall("year", (Literal(9131),))  # 1995-01-01 = epoch day 9131
    assert int(year.evaluate(batch)) == 1995


def test_unknown_operator_rejected():
    with pytest.raises(PlanError):
        BinaryOp("%", Literal(1), Literal(2))
    with pytest.raises(PlanError):
        UnaryOp("!", Literal(1))
    with pytest.raises(PlanError):
        FuncCall("sqrt", (Literal(1),))


def test_string_literal_eval_rejected(batch):
    with pytest.raises(PlanError):
        Literal("raw").evaluate(batch)


def test_aggcall_validation():
    with pytest.raises(PlanError):
        AggCall(func="median", arg=ColumnRef("a"))
    with pytest.raises(PlanError):
        AggCall(func="sum", arg=None)
    with pytest.raises(PlanError):
        AggCall(func="sum", arg=ColumnRef("a")).evaluate({})


def test_conjuncts_flatten():
    a = BinaryOp(">", ColumnRef("a"), Literal(1))
    b = BinaryOp("<", ColumnRef("b"), Literal(2))
    c = BinaryOp("=", ColumnRef("c"), Literal(3))
    combined = BinaryOp("and", BinaryOp("and", a, b), c)
    assert conjuncts(combined) == [a, b, c]
    assert conjuncts(None) == []


def test_make_and_roundtrip():
    parts = [
        BinaryOp(">", ColumnRef("a"), Literal(1)),
        BinaryOp("<", ColumnRef("b"), Literal(2)),
    ]
    assert conjuncts(make_and(parts)) == parts
    assert make_and([]) is None


def test_referenced_columns():
    expr = BinaryOp("+", ColumnRef("a"), FuncCall("abs", (ColumnRef("b"),)))
    assert referenced_columns(expr) == {"a", "b"}


def test_contains_aggregate():
    assert contains_aggregate(
        BinaryOp("+", Literal(1), AggCall(func="count", arg=None))
    )
    assert not contains_aggregate(Literal(1))


def test_is_equi_join_condition():
    good = BinaryOp("=", ColumnRef("a", "t1"), ColumnRef("b", "t2"))
    assert is_equi_join_condition(good) is not None
    same_table = BinaryOp("=", ColumnRef("a", "t1"), ColumnRef("b", "t1"))
    assert is_equi_join_condition(same_table) is None
    not_eq = BinaryOp("<", ColumnRef("a", "t1"), ColumnRef("b", "t2"))
    assert is_equi_join_condition(not_eq) is None


def test_sql_rendering():
    expr = BinaryOp("and", BinaryOp(">", ColumnRef("a", "t"), Literal(1)), InList(ColumnRef("b"), (1, 2)))
    text = expr.sql()
    assert "t.a" in text and "AND" in text and "IN" in text
