import pytest

from repro.errors import PlanError
from repro.plan.pipelines import (
    Pipeline,
    PipelineDag,
    ROLE_BUILD,
    ROLE_PROBE,
    ROLE_SINK_AGG,
    ROLE_SOURCE_SCAN,
    ROLE_SOURCE_STATE,
    decompose_pipelines,
)


def plan_for(binder, planner, sql):
    return planner.plan(binder.bind_sql(sql))


def test_scan_agg_query_has_two_pipelines(tpch_binder, tpch_planner):
    plan = plan_for(
        tpch_binder, tpch_planner, "SELECT count(*) AS c FROM orders"
    )
    dag = decompose_pipelines(plan)
    # P0: scan -> partial agg -> gather exchange -> final agg (sink)
    # P1: state source -> result gather
    assert len(dag) == 2
    roots = [p for p in dag if p.is_root]
    assert len(roots) == 1
    assert roots[0].source.role == ROLE_SOURCE_STATE


def test_join_query_pipeline_roles(tpch_binder, tpch_planner):
    plan = plan_for(
        tpch_binder,
        tpch_planner,
        "SELECT o_orderkey, c_acctbal FROM customer, orders WHERE c_custkey = o_custkey",
    )
    dag = decompose_pipelines(plan)
    build_pipelines = [p for p in dag if p.sink.role == ROLE_BUILD]
    assert len(build_pipelines) == 1
    build = build_pipelines[0]
    consumer = dag.pipeline(build.consumer_id)
    assert any(op.role == ROLE_PROBE for op in consumer.ops)
    assert build.pipeline_id in consumer.blocking_deps


def test_multi_join_pipeline_count(tpch_binder, tpch_planner):
    plan = plan_for(
        tpch_binder,
        tpch_planner,
        "SELECT n_name, sum(o_totalprice) AS v FROM customer, orders, nation "
        "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey GROUP BY n_name",
    )
    dag = decompose_pipelines(plan)
    builds = [p for p in dag if p.sink.role == ROLE_BUILD]
    assert len(builds) == 2  # two hash joins
    assert len(dag) >= 4


def test_topological_order_respects_deps(tpch_binder, tpch_planner):
    plan = plan_for(
        tpch_binder,
        tpch_planner,
        "SELECT n_name, count(*) AS c FROM customer, nation "
        "WHERE c_nationkey = n_nationkey GROUP BY n_name ORDER BY c DESC",
    )
    dag = decompose_pipelines(plan)
    seen = set()
    for pipeline in dag.topological_order():
        for dep in pipeline.blocking_deps:
            assert dep in seen
        seen.add(pipeline.pipeline_id)


def test_siblings_share_consumer(tpch_binder, tpch_planner):
    plan = plan_for(
        tpch_binder,
        tpch_planner,
        "SELECT count(*) AS c FROM customer, orders, nation "
        "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey",
    )
    dag = decompose_pipelines(plan)
    for pipeline in dag:
        siblings = dag.siblings(pipeline.pipeline_id)
        assert pipeline.pipeline_id in [s.pipeline_id for s in siblings]


def test_source_scan_role(tpch_binder, tpch_planner):
    plan = plan_for(tpch_binder, tpch_planner, "SELECT o_orderkey FROM orders")
    dag = decompose_pipelines(plan)
    scans = [p for p in dag if p.source.role == ROLE_SOURCE_SCAN]
    assert len(scans) == 1


def test_cycle_detection():
    a = Pipeline(pipeline_id=0, blocking_deps=[1])
    b = Pipeline(pipeline_id=1, blocking_deps=[0])
    with pytest.raises(PlanError):
        PipelineDag(pipelines={0: a, 1: b}, root_id=0)


def test_unknown_dep_detection():
    a = Pipeline(pipeline_id=0, blocking_deps=[7])
    with pytest.raises(PlanError):
        PipelineDag(pipelines={0: a}, root_id=0)


def test_describe_lists_all(tpch_binder, tpch_planner):
    plan = plan_for(tpch_binder, tpch_planner, "SELECT count(*) AS c FROM region")
    dag = decompose_pipelines(plan)
    text = dag.describe()
    assert text.count("P") >= len(dag)
