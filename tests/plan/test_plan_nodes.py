"""Physical/logical node helpers: describe, walk, signatures, validation."""

import pytest

from repro.errors import PlanError
from repro.plan.expressions import AggCall, BinaryOp, ColumnRef, Literal
from repro.plan.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    walk_logical,
)
from repro.plan.physical import (
    PhysFilter,
    PhysLimit,
    PhysProject,
    PhysScan,
    PhysSort,
    plan_signature,
    walk_physical,
)


def test_physical_node_ids_unique():
    a = PhysScan(table="t", columns=("a",))
    b = PhysScan(table="t", columns=("a",))
    assert a.node_id != b.node_id


def test_walk_physical_preorder():
    scan = PhysScan(table="t", columns=("a",))
    filt = PhysFilter(child=scan, predicate=BinaryOp(">", ColumnRef("a"), Literal(0)))
    limit = PhysLimit(child=filt, limit=5)
    nodes = list(walk_physical(limit))
    assert nodes == [limit, filt, scan]


def test_plan_signature_stable_and_structural():
    scan = PhysScan(table="t", columns=("a",))
    plan1 = PhysLimit(child=scan, limit=5)
    scan2 = PhysScan(table="t", columns=("a",))
    plan2 = PhysLimit(child=scan2, limit=5)
    assert plan_signature(plan1) == plan_signature(plan2)
    plan3 = PhysLimit(child=scan2, limit=6)
    assert plan_signature(plan1) != plan_signature(plan3)


def test_phys_validation_errors():
    scan = PhysScan(table="t", columns=("a",))
    with pytest.raises(PlanError):
        PhysProject(child=scan, exprs=(ColumnRef("a"),), names=("x", "y"))


def test_pretty_includes_estimates():
    scan = PhysScan(table="t", columns=("a",))
    scan.est_rows = 42
    assert "rows=42" in scan.pretty()


def test_sort_describe_directions():
    scan = PhysScan(table="t", columns=("a", "b"))
    sort = PhysSort(child=scan, keys=("a", "b"), ascending=(True, False), limit=3)
    text = sort.describe()
    assert "a ASC" in text and "b DESC" in text and "limit=3" in text


# ----------------------------- logical -------------------------------- #
def test_logical_tree_construction_and_walk():
    scan = LogicalScan(table="t", columns=("a", "b"))
    filt = LogicalFilter(child=scan, predicate=BinaryOp(">", ColumnRef("a"), Literal(1)))
    proj = LogicalProject(child=filt, exprs=(ColumnRef("a"),), names=("a",))
    agg = LogicalAggregate(
        child=proj,
        group_keys=(ColumnRef("a"),),
        aggregates=(AggCall("count", None),),
        agg_names=("c",),
    )
    sort = LogicalSort(child=agg, keys=("c",), ascending=(False,))
    limit = LogicalLimit(child=sort, limit=10)
    assert len(list(walk_logical(limit))) == 6
    assert limit.output_columns() == ("a", "c")
    assert "Aggregate" in agg.describe()
    assert limit.pretty().count("\n") == 5


def test_logical_join_validation():
    left = LogicalScan(table="l", columns=("a",))
    right = LogicalScan(table="r", columns=("b",))
    join = LogicalJoin(
        left=left,
        right=right,
        left_keys=(ColumnRef("a", "l"),),
        right_keys=(ColumnRef("b", "r"),),
    )
    assert join.output_columns() == ("a", "b")
    with pytest.raises(PlanError):
        LogicalJoin(left=left, right=right, left_keys=(), right_keys=())
    with pytest.raises(PlanError):
        LogicalJoin(
            left=left,
            right=right,
            left_keys=(ColumnRef("a", "l"),),
            right_keys=(),
        )


def test_logical_validation_errors():
    scan = LogicalScan(table="t", columns=("a",))
    with pytest.raises(PlanError):
        LogicalProject(child=scan, exprs=(ColumnRef("a"),), names=())
    with pytest.raises(PlanError):
        LogicalSort(child=scan, keys=("a",), ascending=())
    with pytest.raises(PlanError):
        LogicalLimit(child=scan, limit=-1)
