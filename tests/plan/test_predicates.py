from repro.plan.expressions import BinaryOp, ColumnRef, InList, Literal, make_and
from repro.plan.predicates import ColumnRange, extract_column_ranges, in_list_values


def col(name):
    return ColumnRef(name)


def test_range_from_comparisons():
    predicate = make_and(
        [
            BinaryOp(">=", col("a"), Literal(5)),
            BinaryOp("<", col("a"), Literal(10)),
            BinaryOp("=", col("b"), Literal(3)),
        ]
    )
    ranges = extract_column_ranges(predicate)
    assert ranges["a"].lo == 5 and ranges["a"].hi == 10
    assert ranges["b"].lo == 3 and ranges["b"].hi == 3


def test_flipped_orientation():
    predicate = BinaryOp("<", Literal(7), col("a"))  # 7 < a  =>  a > 7
    ranges = extract_column_ranges(predicate)
    assert ranges["a"].lo == 7 and ranges["a"].hi is None


def test_conflicting_bounds_tighten():
    predicate = make_and(
        [
            BinaryOp(">=", col("a"), Literal(5)),
            BinaryOp(">=", col("a"), Literal(8)),
            BinaryOp("<=", col("a"), Literal(20)),
            BinaryOp("<=", col("a"), Literal(12)),
        ]
    )
    r = extract_column_ranges(predicate)["a"]
    assert (r.lo, r.hi) == (8, 12)


def test_empty_range_detection():
    r = ColumnRange(lo=10, hi=5)
    assert r.is_empty
    assert not ColumnRange(lo=1, hi=2).is_empty
    assert not ColumnRange().is_empty


def test_non_simple_conjuncts_ignored():
    predicate = make_and(
        [
            BinaryOp(
                "or",
                BinaryOp("=", col("a"), Literal(1)),
                BinaryOp("=", col("a"), Literal(2)),
            ),
            BinaryOp(">", col("b"), Literal(0)),
        ]
    )
    ranges = extract_column_ranges(predicate)
    assert "a" not in ranges  # OR is not a sound range source
    assert ranges["b"].lo == 0


def test_none_predicate():
    assert extract_column_ranges(None) == {}


def test_in_list_values():
    expr = InList(col("a"), (1, 2, 3))
    assert in_list_values(expr) == ("a", (1.0, 2.0, 3.0))
    assert in_list_values(InList(col("a"), (1,), negated=True)) is None
    assert in_list_values(BinaryOp("=", col("a"), Literal(1))) is None
