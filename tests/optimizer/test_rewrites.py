from repro.optimizer.rewrites import fold_constants, simplify_predicate
from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    UnaryOp,
    conjuncts,
    make_and,
)


def test_fold_arithmetic():
    expr = BinaryOp("-", Literal(1), Literal(0.06))
    folded = fold_constants(expr)
    assert isinstance(folded, Literal)
    assert folded.value == 0.94


def test_fold_nested_in_column_expression():
    expr = BinaryOp(
        "*",
        ColumnRef("x"),
        BinaryOp("+", Literal(2), Literal(3)),
    )
    folded = fold_constants(expr)
    assert isinstance(folded.right, Literal)
    assert folded.right.value == 5


def test_fold_unary_negation():
    folded = fold_constants(UnaryOp("-", Literal(4)))
    assert isinstance(folded, Literal) and folded.value == -4


def test_fold_inside_function():
    expr = FuncCall("abs", (BinaryOp("*", Literal(2), Literal(-3)),))
    folded = fold_constants(expr)
    assert isinstance(folded.args[0], Literal)


def test_fold_leaves_columns_alone():
    expr = BinaryOp("+", ColumnRef("x"), Literal(1))
    assert fold_constants(expr) == expr


def test_simplify_drops_always_true_marker():
    always = BinaryOp(">=", ColumnRef("c"), Literal(-1))
    real = BinaryOp(">", ColumnRef("c"), Literal(5))
    simplified = simplify_predicate(make_and([always, real]))
    assert conjuncts(simplified) == [real]


def test_simplify_detects_unsatisfiable():
    impossible = BinaryOp("<", ColumnRef("c"), Literal(-1))
    real = BinaryOp(">", ColumnRef("c"), Literal(5))
    simplified = simplify_predicate(make_and([real, impossible]))
    assert simplified == impossible


def test_simplify_all_true_returns_none():
    always = BinaryOp(">=", ColumnRef("c"), Literal(-1))
    assert simplify_predicate(always) is None
    assert simplify_predicate(None) is None
