import pytest

from repro.optimizer.cardinality import CardinalityEstimator, _filtered_ndv
from repro.plan.expressions import BinaryOp, ColumnRef, InList, Literal, UnaryOp, make_and
from repro.sql.binder import JoinEdge


@pytest.fixture(scope="module")
def card(tpch_db):
    return CardinalityEstimator(tpch_db.catalog)


def test_no_predicate_full_selectivity(card):
    assert card.selectivity("orders", None) == 1.0


def test_range_selectivity_accuracy(card, tpch_db):
    # o_totalprice uniform in [850, 450000]; predicate selects ~half.
    predicate = BinaryOp("<", ColumnRef("o_totalprice", "orders"), Literal(225_000))
    selectivity = card.selectivity("orders", predicate)
    assert selectivity == pytest.approx(0.5, abs=0.05)


def test_conjunct_independence(card):
    p1 = BinaryOp("<", ColumnRef("o_totalprice", "orders"), Literal(225_000))
    p2 = BinaryOp(">=", ColumnRef("o_totalprice", "orders"), Literal(225_000))
    combined = make_and([p1, p2])
    sel = card.selectivity("orders", combined)
    # Independence multiplies: ~0.25 even though truly disjoint.
    assert sel == pytest.approx(0.25, abs=0.05)


def test_or_selectivity(card):
    p1 = BinaryOp("<", ColumnRef("o_totalprice", "orders"), Literal(100_000))
    p2 = BinaryOp(">", ColumnRef("o_totalprice", "orders"), Literal(400_000))
    either = BinaryOp("or", p1, p2)
    sel = card.selectivity("orders", either)
    lone = card.selectivity("orders", p1)
    assert sel > lone


def test_not_selectivity(card):
    p = BinaryOp("<", ColumnRef("o_totalprice", "orders"), Literal(225_000))
    inverted = UnaryOp("not", p)
    assert card.selectivity("orders", inverted) == pytest.approx(
        1.0 - card.selectivity("orders", p), abs=1e-9
    )


def test_equality_selectivity_low_cardinality(card):
    p = BinaryOp("=", ColumnRef("l_returnflag", "lineitem"), Literal(0))
    sel = card.selectivity("lineitem", p)
    assert sel == pytest.approx(1.0 / 3.0, abs=0.1)


def test_in_list_selectivity(card):
    p = InList(ColumnRef("l_shipmode", "lineitem"), (0, 1))
    sel = card.selectivity("lineitem", p)
    assert sel == pytest.approx(2.0 / 7.0, abs=0.1)


def test_base_relation_rows_and_width(card, tpch_db):
    rel = card.base_relation("orders", None, ("o_orderkey", "o_totalprice"))
    assert rel.rows == tpch_db.catalog.table("orders").row_count
    assert rel.width_bytes == 16.0
    assert rel.column_ndv("o_orderkey") == rel.rows


def test_join_estimate_fk_pk(card, tpch_db):
    lineitem = card.base_relation("lineitem", None, ("l_orderkey",))
    orders = card.base_relation("orders", None, ("o_orderkey",))
    edge = JoinEdge(
        left=ColumnRef("l_orderkey", "lineitem"),
        right=ColumnRef("o_orderkey", "orders"),
    )
    joined = card.join(lineitem, orders, [edge])
    # FK-PK join keeps lineitem cardinality (approximately).
    true_rows = tpch_db.catalog.table("lineitem").row_count
    assert joined.rows == pytest.approx(true_rows, rel=0.15)
    assert joined.tables == frozenset({"lineitem", "orders"})


def test_group_count_capped_by_rows(card):
    rel = card.base_relation("lineitem", None, ("l_returnflag", "l_shipmode"))
    groups = card.group_count(rel, ("l_returnflag", "l_shipmode"))
    assert groups <= 21 + 1  # 3 flags x 7 modes


def test_partition_fraction_clustered(card, tpch_db):
    # lineitem is clustered on l_shipdate in the fixture.
    predicate = make_and(
        [
            BinaryOp(">=", ColumnRef("l_shipdate", "lineitem"), Literal(9131)),
            BinaryOp("<", ColumnRef("l_shipdate", "lineitem"), Literal(9200)),
        ]
    )
    fraction = card.scan_partition_fraction("lineitem", predicate)
    assert fraction < 0.3


def test_partition_fraction_unclustered_column(card):
    predicate = BinaryOp(">", ColumnRef("l_quantity", "lineitem"), Literal(49))
    assert card.scan_partition_fraction("lineitem", predicate) == 1.0


def test_partition_fraction_no_clustering(card):
    predicate = BinaryOp(">", ColumnRef("c_acctbal", "customer"), Literal(0))
    assert card.scan_partition_fraction("customer", predicate) == 1.0


def test_filtered_ndv_bounds():
    assert _filtered_ndv(100, 1000, 1.0) == 100
    assert _filtered_ndv(100, 1000, 0.0) == 1.0
    mid = _filtered_ndv(100, 1000, 0.3)
    assert 1.0 <= mid <= 100
    # With 10 rows per value, a 30% filter keeps most values.
    assert mid > 90
