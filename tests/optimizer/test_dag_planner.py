import pytest

from repro.optimizer.dag_planner import DagPlanner
from repro.plan.physical import (
    AggMode,
    ExchangeKind,
    PhysAggregate,
    PhysExchange,
    PhysHashJoin,
    PhysScan,
    PhysSort,
    walk_physical,
)
from repro.workloads.tpch_queries import instantiate


def nodes_of(plan, cls):
    return [n for n in walk_physical(plan) if isinstance(n, cls)]


def test_root_is_gather(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(tpch_binder.bind_sql("SELECT o_orderkey FROM orders"))
    assert isinstance(plan, PhysExchange)
    assert plan.kind is ExchangeKind.GATHER


def test_small_build_broadcast(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql(
            "SELECT n_name, c_acctbal FROM customer, nation "
            "WHERE c_nationkey = n_nationkey"
        )
    )
    joins = nodes_of(plan, PhysHashJoin)
    assert len(joins) == 1
    assert joins[0].broadcast_build  # nation is tiny
    # Build side is nation (smaller).
    build_scans = nodes_of(joins[0].build, PhysScan)
    assert build_scans[0].table == "nation"


def test_large_join_shuffles_both_sides(big_binder, big_planner):
    plan = big_planner.plan(
        big_binder.bind_sql(
            "SELECT count(*) AS c FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
    )
    joins = nodes_of(plan, PhysHashJoin)
    assert len(joins) == 1
    assert not joins[0].broadcast_build
    shuffles = nodes_of(plan, PhysExchange)
    shuffle_keys = {
        e.keys for e in shuffles if e.kind is ExchangeKind.SHUFFLE
    }
    assert ("o_orderkey",) in shuffle_keys
    assert ("l_orderkey",) in shuffle_keys


def test_two_phase_aggregation(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql(
            "SELECT l_returnflag, sum(l_quantity) AS q FROM lineitem GROUP BY l_returnflag"
        )
    )
    aggs = nodes_of(plan, PhysAggregate)
    modes = {a.mode for a in aggs}
    assert AggMode.PARTIAL in modes and AggMode.FINAL in modes


def test_single_phase_agg_when_partitioned_on_group_key(big_binder, big_planner):
    # Group key == shuffle key from the join: no second shuffle needed.
    plan = big_planner.plan(
        big_binder.bind_sql(
            "SELECT l_orderkey, count(*) AS c FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey GROUP BY l_orderkey"
        )
    )
    aggs = nodes_of(plan, PhysAggregate)
    assert [a.mode for a in aggs] == [AggMode.SINGLE]


def test_single_phase_agg_applies_having(big_binder, big_planner):
    """Regression: the pre-partitioned (single-phase) aggregation branch
    returned before applying HAVING, silently dropping the predicate."""
    from repro.plan.physical import PhysFilter

    sql = (
        "SELECT l_orderkey, count(*) AS c FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey GROUP BY l_orderkey "
        "HAVING count(*) > 3"
    )
    plan = big_planner.plan(big_binder.bind_sql(sql))
    aggs = nodes_of(plan, PhysAggregate)
    assert [a.mode for a in aggs] == [AggMode.SINGLE]
    filters = nodes_of(plan, PhysFilter)
    having = [
        f for f in filters if "agg0" in {c for c in _filter_columns(f.predicate)}
    ]
    assert having, "HAVING predicate missing from the single-phase plan"
    # The HAVING filter sits above the aggregate.
    assert nodes_of(having[0], PhysAggregate)


def _filter_columns(predicate):
    from repro.plan.expressions import referenced_columns

    return referenced_columns(predicate)


def test_join_memo_distinguishes_subtree_shapes():
    """Regression: bushy variants shape the same table subset differently
    ((C⋈O)⋈L vs C⋈(O⋈L)); the per-query join memo must not hand one
    shape the other's cardinality estimate.  Every variant planned by a
    memo-warm planner must be node-for-node identical to the same tree
    planned by a fresh planner."""
    from repro.optimizer.bushy import bushy_variants
    from repro.workloads.tpch_stats import synthetic_tpch_catalog
    from repro.sql.binder import Binder

    catalog = synthetic_tpch_catalog(1.0)
    bound = Binder(catalog).bind_sql(
        "SELECT count(*) AS c FROM region, nation, customer, orders, lineitem "
        "WHERE r_regionkey = n_regionkey AND n_nationkey = c_nationkey "
        "AND c_custkey = o_custkey AND o_orderkey = l_orderkey "
        "AND c_acctbal < 100"
    )
    shared = DagPlanner(catalog)
    tree = shared.choose_join_tree(bound)
    base = {r.name: shared.base_relation(bound, r.name) for r in bound.tables}
    variants = bushy_variants(tree, base, bound.join_edges, shared.estimator)
    assert len(variants) > 2  # the collision needs multiple shapes
    for variant in variants:
        warm = shared._plan_join_tree(bound, variant)
        cold = DagPlanner(catalog)._plan_join_tree(bound, variant)
        assert warm.rel.rows == cold.rel.rows
        assert warm.rel.bytes == cold.rel.bytes
        assert warm.rel.ndv == cold.rel.ndv
        warm_plan = shared.plan_with_tree(bound, variant)
        cold_plan = DagPlanner(catalog).plan_with_tree(bound, variant)
        for a, b in zip(walk_physical(warm_plan), walk_physical(cold_plan)):
            assert type(a) is type(b)
            assert a.est_rows == b.est_rows
            assert a.est_bytes == b.est_bytes


def test_global_agg_gathers_partials(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql("SELECT count(*) AS c FROM lineitem")
    )
    gathers = [
        e
        for e in nodes_of(plan, PhysExchange)
        if e.kind is ExchangeKind.GATHER
    ]
    assert len(gathers) == 2  # partial->final gather + result gather


def test_scan_pushdown_and_projection(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql(
            "SELECT sum(o_totalprice) AS s FROM orders WHERE o_totalprice > 100000"
        )
    )
    scans = nodes_of(plan, PhysScan)
    assert len(scans) == 1
    assert scans[0].predicate is not None
    assert scans[0].columns == ("o_totalprice",)
    assert scans[0].est_rows < scans[0].input_rows


def test_scan_partition_fraction_on_clustered_column(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql(
            "SELECT count(*) AS c FROM lineitem "
            "WHERE l_shipdate >= DATE '1995-01-01' AND l_shipdate < DATE '1995-02-01'"
        )
    )
    scan = nodes_of(plan, PhysScan)[0]
    assert scan.partition_fraction < 0.5


def test_sort_with_limit_becomes_topk(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql(
            "SELECT o_custkey, sum(o_totalprice) AS s FROM orders "
            "GROUP BY o_custkey ORDER BY s DESC LIMIT 5"
        )
    )
    sorts = nodes_of(plan, PhysSort)
    assert len(sorts) == 1
    assert sorts[0].limit == 5
    assert sorts[0].est_rows == 5


def test_estimates_annotated_everywhere(tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    )
    for node in walk_physical(plan):
        assert node.est_rows >= 0
        assert node.est_bytes >= 0


def test_all_templates_plan(tpch_binder, tpch_planner):
    from repro.workloads.tpch_queries import QUERY_TEMPLATES

    for name in QUERY_TEMPLATES:
        plan = tpch_planner.plan(tpch_binder.bind_sql(instantiate(name, seed=4)))
        assert plan is not None
