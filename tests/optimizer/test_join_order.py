import pytest

from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.join_order import JoinTree, Leaf, linearize, order_joins
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5_parts(tpch_db, tpch_binder):
    bound = tpch_binder.bind_sql(instantiate("q5_local_supplier", seed=3))
    card = CardinalityEstimator(tpch_db.catalog)
    base = {
        ref.name: card.base_relation(
            ref.name,
            None,
            tpch_db.catalog.table(ref.name).schema.column_names,
        )
        for ref in bound.tables
    }
    return bound, card, base


def test_left_deep_dp_produces_connected_tree(q5_parts):
    bound, card, base = q5_parts
    tree, cost = order_joins(base, bound.join_edges, card, left_deep_only=True)
    assert isinstance(tree, JoinTree)
    assert tree.tables() == frozenset(t.name for t in bound.tables)
    assert cost > 0
    # Left-deep: right child of every join is a leaf.
    node = tree
    while isinstance(node, JoinTree):
        assert isinstance(node.right, Leaf)
        node = node.left


def test_full_dp_no_worse_than_left_deep(q5_parts):
    bound, card, base = q5_parts
    _, left_deep_cost = order_joins(base, bound.join_edges, card, left_deep_only=True)
    _, bushy_cost = order_joins(base, bound.join_edges, card, left_deep_only=False)
    assert bushy_cost <= left_deep_cost + 1e-6


def test_single_relation():
    from repro.optimizer.cardinality import EstimatedRelation

    base = {"t": EstimatedRelation(rows=10, ndv={}, width_bytes=8, tables=frozenset(["t"]))}
    tree, cost = order_joins(base, [], None)
    assert isinstance(tree, Leaf)
    assert cost == 0.0


def test_disconnected_graph_rejected(q5_parts):
    bound, card, base = q5_parts
    with pytest.raises(OptimizerError):
        order_joins(base, [], card)


def test_linearize_covers_all_tables(q5_parts):
    bound, card, base = q5_parts
    tree, _ = order_joins(base, bound.join_edges, card)
    assert sorted(linearize(tree)) == sorted(base)


def test_dp_matches_brute_force_small(tpch_db, tpch_binder):
    """On a 3-relation query the DP must find the true C_out optimum."""
    import itertools

    bound = tpch_binder.bind_sql(
        "SELECT count(*) AS c FROM customer, orders, nation "
        "WHERE c_custkey = o_custkey AND c_nationkey = n_nationkey"
    )
    card = CardinalityEstimator(tpch_db.catalog)
    base = {
        ref.name: card.base_relation(
            ref.name, None, tpch_db.catalog.table(ref.name).schema.column_names
        )
        for ref in bound.tables
    }
    _, dp_cost = order_joins(base, bound.join_edges, card, left_deep_only=True)

    def tree_cost(order):
        from repro.optimizer.join_order import connecting_edges

        rel = base[order[0]]
        merged = frozenset([order[0]])
        total = 0.0
        for table in order[1:]:
            edges = connecting_edges(bound.join_edges, merged, frozenset([table]))
            if not edges:
                return None
            rel = card.join(rel, base[table], list(edges))
            merged = merged | {table}
            total += rel.rows
        return total

    best = min(
        cost
        for perm in itertools.permutations(base)
        if (cost := tree_cost(list(perm))) is not None
    )
    assert dp_cost == pytest.approx(best, rel=1e-9)
