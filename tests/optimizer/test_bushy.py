import pytest

from repro.optimizer.bushy import bushiness, bushy_variants, estimate_tree, tree_depth
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.join_order import JoinTree, order_joins
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5_setup(tpch_db, tpch_binder):
    bound = tpch_binder.bind_sql(instantiate("q5_local_supplier", seed=3))
    card = CardinalityEstimator(tpch_db.catalog)
    base = {
        ref.name: card.base_relation(
            ref.name, None, tpch_db.catalog.table(ref.name).schema.column_names
        )
        for ref in bound.tables
    }
    tree, _ = order_joins(base, bound.join_edges, card, left_deep_only=True)
    return bound, card, base, tree


def test_variants_include_original_first(q5_setup):
    bound, card, base, tree = q5_setup
    variants = bushy_variants(tree, base, bound.join_edges, card)
    assert variants[0].describe() == tree.describe()
    assert len(variants) >= 2  # a 6-table query should admit bushy shapes


def test_variants_sorted_by_bushiness(q5_setup):
    bound, card, base, tree = q5_setup
    variants = bushy_variants(tree, base, bound.join_edges, card)
    scores = [bushiness(v) for v in variants]
    assert scores == sorted(scores)
    assert scores[0] == 0  # left-deep
    assert scores[-1] >= 1  # at least one genuinely bushy variant


def test_variants_cover_all_tables(q5_setup):
    bound, card, base, tree = q5_setup
    for variant in bushy_variants(tree, base, bound.join_edges, card):
        assert variant.tables() == tree.tables()


def test_variants_have_connected_joins(q5_setup):
    bound, card, base, tree = q5_setup

    def check(node):
        if isinstance(node, JoinTree):
            assert node.edges, "join node must have connecting edges"
            check(node.left)
            check(node.right)

    for variant in bushy_variants(tree, base, bound.join_edges, card):
        check(variant)


def test_bushy_reduces_depth(q5_setup):
    bound, card, base, tree = q5_setup
    variants = bushy_variants(tree, base, bound.join_edges, card)
    depths = [tree_depth(v) for v in variants]
    assert min(depths[1:], default=depths[0]) < depths[0]


def test_estimate_tree_consistent(q5_setup):
    bound, card, base, tree = q5_setup
    rel = estimate_tree(tree, base, card)
    assert rel.tables == tree.tables()
    assert rel.rows >= 0


def test_expansion_limit_prunes(q5_setup):
    bound, card, base, tree = q5_setup
    strict = bushy_variants(
        tree, base, bound.join_edges, card, expansion_limit=1e-9
    )
    loose = bushy_variants(
        tree, base, bound.join_edges, card, expansion_limit=1e9
    )
    assert len(strict) <= len(loose)
    assert len(strict) == 1  # only the original survives an impossible limit
