import numpy as np
import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.catalog.statistics import (
    ColumnStats,
    EquiDepthHistogram,
    build_column_stats,
    build_table_stats,
)
from repro.errors import CatalogError


@pytest.fixture(scope="module")
def uniform_histogram():
    values = np.arange(10_000, dtype=np.float64)
    return EquiDepthHistogram.from_values(values, num_buckets=32)


def test_histogram_mass_conserved(uniform_histogram):
    assert uniform_histogram.total_count == 10_000


def test_histogram_counts_roughly_equal(uniform_histogram):
    counts = np.array(uniform_histogram.counts)
    assert counts.max() - counts.min() <= 2


def test_selectivity_le_midpoint(uniform_histogram):
    assert uniform_histogram.selectivity_le(4999.5) == pytest.approx(0.5, abs=0.02)


def test_selectivity_le_bounds(uniform_histogram):
    assert uniform_histogram.selectivity_le(-1) == 0.0
    assert uniform_histogram.selectivity_le(1e9) == 1.0


def test_selectivity_range(uniform_histogram):
    sel = uniform_histogram.selectivity_range(2500, 7500)
    assert sel == pytest.approx(0.5, abs=0.03)


def test_selectivity_range_open_ends(uniform_histogram):
    assert uniform_histogram.selectivity_range(None, None) == pytest.approx(1.0)


def test_selectivity_eq_uniform(uniform_histogram):
    sel = uniform_histogram.selectivity_eq(5000.0, ndv=10_000)
    assert sel == pytest.approx(1.0 / 10_000, rel=0.5)


def test_selectivity_eq_out_of_domain(uniform_histogram):
    assert uniform_histogram.selectivity_eq(-5.0, ndv=10_000) == 0.0


def test_histogram_skewed_data_still_conserves_mass():
    values = np.concatenate([np.zeros(9000), np.arange(1000)])
    histogram = EquiDepthHistogram.from_values(values, num_buckets=16)
    assert histogram.total_count == 10_000


def test_histogram_invalid_shapes():
    with pytest.raises(CatalogError):
        EquiDepthHistogram(bounds=(0.0, 1.0), counts=(1, 2))
    with pytest.raises(CatalogError):
        EquiDepthHistogram(bounds=(1.0, 0.0), counts=(1,))
    with pytest.raises(CatalogError):
        EquiDepthHistogram(bounds=(0.0, 1.0), counts=(-1,))


def test_column_stats_validation():
    col = Column("a", DataType.INT64)
    with pytest.raises(CatalogError):
        ColumnStats(column=col, row_count=10, ndv=11, min_value=0, max_value=1)
    with pytest.raises(CatalogError):
        ColumnStats(column=col, row_count=-1, ndv=0, min_value=0, max_value=1)


def test_build_column_stats_full():
    col = Column("a", DataType.INT64)
    values = np.arange(5000)
    stats = build_column_stats(col, values)
    assert stats.row_count == 5000
    assert stats.ndv == 5000
    assert stats.min_value == 0.0
    assert stats.max_value == 4999.0


def test_build_column_stats_sampled_scales():
    col = Column("a", DataType.INT64)
    rng = np.random.default_rng(0)
    values = rng.integers(0, 100, size=20_000)
    stats = build_column_stats(col, values, sample_rate=0.1, rng=rng)
    assert stats.row_count == 20_000
    # NDV of a 100-value domain should be near 100 even from a sample.
    assert 30 <= stats.ndv <= 200


def test_build_column_stats_invalid_rate():
    col = Column("a", DataType.INT64)
    with pytest.raises(CatalogError):
        build_column_stats(col, np.arange(5), sample_rate=0.0)


def test_build_table_stats_ragged_rejected():
    schema = TableSchema(
        "t", (Column("a", DataType.INT64), Column("b", DataType.INT64))
    )
    with pytest.raises(CatalogError):
        build_table_stats(schema, {"a": np.arange(5), "b": np.arange(6)})


def test_scaled_stats():
    col = Column("a", DataType.INT64)
    stats = build_column_stats(col, np.arange(1000))
    scaled = stats.scaled(0.5)
    assert scaled.row_count == 500
    assert scaled.ndv <= 500
