import numpy as np
import pytest

from repro.catalog.catalog import Catalog, MaterializedViewDef, TableEntry
from repro.catalog.schema import Column, DataType, TableSchema
from repro.catalog.statistics import build_table_stats
from repro.errors import CatalogError


def make_entry(name="t", rows=100):
    schema = TableSchema(name, (Column("a", DataType.INT64),))
    stats = build_table_stats(schema, {"a": np.arange(rows)})
    return TableEntry(schema=schema, stats=stats, storage_bytes=rows * 8)


def test_register_and_lookup():
    catalog = Catalog()
    catalog.register_table(make_entry())
    assert catalog.has_table("t")
    assert catalog.table("t").row_count == 100
    assert catalog.table_names == ("t",)


def test_duplicate_registration_rejected():
    catalog = Catalog()
    catalog.register_table(make_entry())
    with pytest.raises(CatalogError):
        catalog.register_table(make_entry())
    catalog.register_table(make_entry(rows=5), replace_existing=True)
    assert catalog.table("t").row_count == 5


def test_unknown_table():
    with pytest.raises(CatalogError):
        Catalog().table("missing")


def test_drop_table():
    catalog = Catalog()
    catalog.register_table(make_entry())
    catalog.drop_table("t")
    assert not catalog.has_table("t")
    with pytest.raises(CatalogError):
        catalog.drop_table("t")


def test_set_clustering_updates_schema_and_depth():
    catalog = Catalog()
    catalog.register_table(make_entry())
    catalog.set_clustering("t", "a", 0.05)
    entry = catalog.table("t")
    assert entry.schema.clustering_key == "a"
    assert entry.clustering_depth == 0.05
    with pytest.raises(CatalogError):
        catalog.set_clustering("t", "a", 0.0)


def test_overlay_is_isolated():
    catalog = Catalog()
    catalog.register_table(make_entry())
    overlay = catalog.overlay()
    overlay.register_table(make_entry(name="u"))
    overlay.set_clustering("t", "a", 0.1)
    assert not catalog.has_table("u")
    assert catalog.table("t").clustering_depth == 1.0
    assert overlay.table("t").clustering_depth == 0.1


def test_views_share_name_with_backing_table():
    catalog = Catalog()
    catalog.register_table(make_entry(name="mv1"))
    view = MaterializedViewDef(
        name="mv1", base_tables=("t",), join_keys=(), row_count=10
    )
    catalog.register_view(view)
    assert catalog.has_view("mv1")
    with pytest.raises(CatalogError):
        catalog.register_view(view)
    catalog.drop_view("mv1")
    assert not catalog.has_view("mv1")


def test_total_storage_counts_views():
    catalog = Catalog()
    catalog.register_table(make_entry())
    catalog.register_view(
        MaterializedViewDef(
            name="v", base_tables=("t",), join_keys=(), storage_bytes=123
        )
    )
    assert catalog.total_storage_bytes() == 100 * 8 + 123


def test_describe_mentions_tables():
    catalog = Catalog()
    catalog.register_table(make_entry())
    assert "table t" in catalog.describe()
