import numpy as np
import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import CatalogError


def test_datatype_widths():
    assert DataType.INT64.width_bytes == 8
    assert DataType.STRING.width_bytes == 16
    assert DataType.BOOL.width_bytes == 1


def test_datatype_numpy_dtypes():
    assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
    assert DataType.STRING.numpy_dtype == np.dtype(np.int64)  # dictionary codes
    assert DataType.BOOL.numpy_dtype == np.dtype(np.bool_)


def test_is_numeric():
    assert DataType.DATE.is_numeric
    assert not DataType.STRING.is_numeric


def test_invalid_column_name():
    with pytest.raises(CatalogError):
        Column("not a name", DataType.INT64)


def test_schema_duplicate_columns_rejected():
    with pytest.raises(CatalogError):
        TableSchema("t", (Column("a", DataType.INT64), Column("a", DataType.INT64)))


def test_schema_primary_key_must_exist():
    with pytest.raises(CatalogError):
        TableSchema("t", (Column("a", DataType.INT64),), primary_key=("b",))


def test_schema_clustering_key_must_exist():
    with pytest.raises(CatalogError):
        TableSchema("t", (Column("a", DataType.INT64),), clustering_key="z")


def test_row_width_sums_columns():
    schema = TableSchema(
        "t",
        (Column("a", DataType.INT64), Column("s", DataType.STRING)),
    )
    assert schema.row_width_bytes == 24


def test_column_lookup():
    schema = TableSchema("t", (Column("a", DataType.INT64),))
    assert schema.column("a").dtype is DataType.INT64
    assert schema.has_column("a")
    assert not schema.has_column("b")
    with pytest.raises(CatalogError):
        schema.column("b")


def test_with_clustering_key_returns_copy():
    schema = TableSchema("t", (Column("a", DataType.INT64),))
    clustered = schema.with_clustering_key("a")
    assert clustered.clustering_key == "a"
    assert schema.clustering_key is None
