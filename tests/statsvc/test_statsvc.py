"""Statistics Service: logs, summaries, join graph, forecasts, sampling."""

import pytest

from repro.errors import ReproError
from repro.statsvc.forecast import WorkloadForecaster
from repro.statsvc.join_graph import JoinGraph
from repro.statsvc.logs import QueryLogStore, QueryRecord
from repro.statsvc.sampling import StatsServiceCostModel, summary_error
from repro.statsvc.summaries import build_summary


def record(
    query_id,
    timestamp,
    template="t1",
    tables=("orders", "lineitem"),
    dollars=0.01,
):
    return QueryRecord(
        query_id=query_id,
        timestamp=timestamp,
        sql="SELECT ...",
        template=template,
        tables=tables,
        columns=tuple(f"{t}.key" for t in tables),
        join_edges=(("orders.o_orderkey", "lineitem.l_orderkey"),)
        if len(tables) > 1
        else (),
        filter_columns=("o_orderdate",),
        latency_s=1.0,
        machine_seconds=4.0,
        dollars=dollars,
        bytes_scanned=1e6,
        sla_seconds=5.0,
    )


@pytest.fixture()
def store():
    store = QueryLogStore()
    for i in range(100):
        store.append(record(i, float(i * 60), template="t1" if i % 2 else "t2"))
    return store


def test_log_ordering_enforced():
    store = QueryLogStore()
    store.append(record(1, 100.0))
    with pytest.raises(ReproError):
        store.append(record(2, 50.0))


def test_log_window(store):
    window = store.window(0.0, 600.0)
    assert len(window) == 10
    assert store.horizon == (0.0, 99 * 60.0)


def test_log_by_template(store):
    grouped = store.by_template()
    assert set(grouped) == {"t1", "t2"}
    assert len(grouped["t1"]) == 50


def test_sla_met_property():
    r = record(1, 0.0)
    assert r.sla_met is True


# --------------------------- summaries -------------------------------- #
def test_summary_counts(store):
    summary = build_summary(list(store))
    assert summary.num_queries == 100
    assert summary.table_access["orders"] == 100
    assert summary.attribute_access["orders.key"] == 100
    assert summary.template_counts["t1"] == 50
    assert summary.total_dollars == pytest.approx(1.0)


def test_summary_rates(store):
    summary = build_summary(list(store))
    assert summary.queries_per_hour == pytest.approx(
        100 * 3600 / (99 * 60), rel=0.01
    )
    assert summary.template_rate_per_hour("t1") == pytest.approx(
        50 * 3600 / (99 * 60), rel=0.01
    )


def test_sampled_summary_approximates(store):
    reference = build_summary(list(store))
    sampled = build_summary(list(store), sample_rate=0.5, seed=1)
    errors = summary_error(reference, sampled)
    assert errors["attribute_access"] < 0.5
    assert errors["template_counts"] < 0.5


def test_lower_sampling_rate_higher_error(store):
    reference = build_summary(list(store))
    mild = summary_error(reference, build_summary(list(store), sample_rate=0.8, seed=3))
    harsh = summary_error(reference, build_summary(list(store), sample_rate=0.05, seed=3))
    assert harsh["attribute_access"] >= mild["attribute_access"]


def test_invalid_sample_rate(store):
    with pytest.raises(ReproError):
        build_summary(list(store), sample_rate=0.0)


# --------------------------- join graph ------------------------------- #
def test_join_graph_weights(store):
    graph = JoinGraph.from_records(list(store))
    assert graph.edge_count("orders.o_orderkey", "lineitem.l_orderkey") == 100
    hottest = graph.hottest_edges(1)
    assert hottest[0].count == 100
    assert graph.tables() == {"orders", "lineitem"}


def test_join_graph_groups(store):
    graph = JoinGraph.from_records(list(store))
    groups = graph.connected_table_groups()
    assert {"orders", "lineitem"} in groups


# --------------------------- forecasting ------------------------------ #
def test_periodic_template_detected():
    store = QueryLogStore()
    for i in range(20):
        store.append(record(i, float(i) * 3600.0, template="daily"))
    forecaster = WorkloadForecaster()
    forecast = forecaster.forecast(store)["daily"]
    assert forecast.periodic
    assert forecast.period_s == pytest.approx(3600.0, rel=0.01)
    assert forecast.rate_per_hour == pytest.approx(1.0, rel=0.05)


def test_poisson_template_not_periodic():
    import numpy as np

    rng = np.random.default_rng(0)
    times = np.cumsum(rng.exponential(600.0, size=200))
    store = QueryLogStore()
    for i, t in enumerate(times):
        store.append(record(i, float(t), template="adhoc"))
    forecast = WorkloadForecaster().forecast(store)["adhoc"]
    assert not forecast.periodic
    # ~6 arrivals/hour
    assert forecast.rate_per_hour == pytest.approx(6.0, rel=0.8)


def test_forecast_dollar_rate():
    store = QueryLogStore()
    for i in range(10):
        store.append(record(i, float(i) * 1800.0, template="t", dollars=0.5))
    forecast = WorkloadForecaster().forecast(store)["t"]
    assert forecast.dollars_per_hour == pytest.approx(
        forecast.rate_per_hour * 0.5
    )


# --------------------------- cost model ------------------------------- #
def test_stats_service_cost_scales_with_rate(store):
    model = StatsServiceCostModel()
    summary = build_summary(list(store))
    full = model.total_dollars_per_hour(summary, records_per_hour=10_000)
    sampled_summary = build_summary(list(store), sample_rate=0.1)
    sampled = model.total_dollars_per_hour(sampled_summary, records_per_hour=10_000)
    assert sampled < full


def test_tiering_cheaper_with_more_cold(store):
    model = StatsServiceCostModel()
    summary = build_summary(list(store))
    hot = model.storage_dollars_per_hour(summary, hot_fraction=1.0)
    cold = model.storage_dollars_per_hour(summary, hot_fraction=0.0)
    assert cold < hot


# ---------------- forecasting edge cases (gate auto-apply) ------------ #
# TuningPolicy auto-apply is fed by these forecasts, so degenerate
# arrival patterns must produce sane (never-crashing, never-periodic)
# rates rather than garbage break-even horizons.
def test_forecast_single_arrival_template():
    store = QueryLogStore()
    store.append(record(1, 1200.0, template="once"))
    forecast = WorkloadForecaster().forecast(store)["once"]
    assert not forecast.periodic
    assert forecast.period_s is None
    assert forecast.observed_count == 1
    # One arrival in one (zero-span -> bin-sized) window: 6/hour at the
    # default 600 s bin.
    assert forecast.rate_per_hour == pytest.approx(6.0)


def test_forecast_duplicate_timestamps_not_periodic():
    store = QueryLogStore()
    for i in range(5):
        store.append(record(i, 500.0, template="burst"))
    forecast = WorkloadForecaster().forecast(store)["burst"]
    # All gaps are zero and get filtered; no periodicity claimed.
    assert not forecast.periodic
    assert forecast.period_s is None


def test_forecast_two_arrivals_below_min_observations():
    store = QueryLogStore()
    store.append(record(1, 0.0, template="pair"))
    store.append(record(2, 3600.0, template="pair"))
    periodic, period = WorkloadForecaster()._detect_period(
        __import__("numpy").array([0.0, 3600.0]), 0.0, 3600.0
    )
    assert (periodic, period) == (False, None)
    forecast = WorkloadForecaster().forecast(store)["pair"]
    assert not forecast.periodic


def test_detect_period_irregular_gaps_rejected():
    import numpy as np

    # Gap coefficient-of-variation far above the 0.25 threshold.
    times = np.array([0.0, 100.0, 2000.0, 2100.0, 9000.0, 9050.0])
    periodic, period = WorkloadForecaster()._detect_period(
        times, 0.0, 9050.0
    )
    assert not periodic and period is None


def test_detect_period_tolerates_small_jitter():
    import numpy as np

    rng = np.random.default_rng(7)
    times = np.cumsum(np.full(24, 3600.0) + rng.normal(0.0, 30.0, size=24))
    periodic, period = WorkloadForecaster()._detect_period(
        times, float(times[0]), float(times[-1] - times[0])
    )
    assert periodic
    assert period == pytest.approx(3600.0, rel=0.05)


def test_forecast_template_rejects_empty_records():
    with pytest.raises(ReproError):
        WorkloadForecaster().forecast_template("ghost", [], (0.0, 100.0))


def test_tenant_counts_by_template():
    store = QueryLogStore()
    for i in range(4):
        store.append(record(i, float(i * 60), template="hot"))
    assert store.tenant_counts() == {"default": 4}
    assert store.tenant_counts(templates={"hot"}) == {"default": 4}
    assert store.tenant_counts(templates={"cold"}) == {}
    view = store.for_tenant("default")
    assert view.tenant_counts({"hot"}) == {"default": 4}
    assert store.for_tenant("ghost").tenant_counts() == {}


def test_template_counts_on_store_and_tenant_view():
    store = QueryLogStore()
    for i in range(6):
        store.append(record(i, float(i * 60), template="hot" if i % 2 else "cold"))
    assert store.template_counts() == {"hot": 3, "cold": 3}
    # The per-tenant view mirrors the store's read API over its slice.
    assert store.for_tenant("default").template_counts() == {"hot": 3, "cold": 3}
    assert store.for_tenant("ghost").template_counts() == {}


def test_forecaster_rates_per_family():
    store = QueryLogStore()
    for i in range(12):
        store.append(record(i, float(i * 300), template="hot" if i % 2 else "cold"))
    rates = WorkloadForecaster().rates(store)
    assert set(rates) == {"hot", "cold"}
    forecasts = WorkloadForecaster().forecast(store)
    for family, rate in rates.items():
        assert rate == forecasts[family].rate_per_hour
        assert rate > 0
