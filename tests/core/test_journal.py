"""Unit tests for the write-ahead journal and recovery primitives (PR 7).

Covers the durability substrate below the chaos matrix
(``tests/chaos/test_crash_recovery.py``): record round-trips through
pickle, the dyadic fixed-point billing ledger, LSN-level replay
idempotence (crash *during* replay), journal persistence, checkpoint
cadence, and the ``describe_health()`` durability block.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.journal import (
    LEDGER_SCALE,
    AdmissionDecision,
    Checkpoint,
    CheckpointState,
    CostSnapshotTaken,
    DurableRecommendation,
    JournalEntry,
    QueryServed,
    RECORD_TYPES,
    RetryCharge,
    RollbackCommit,
    RollbackIntent,
    TuningCommit,
    TuningFailed,
    TuningIntent,
    UndoSnapshot,
    WriteAheadJournal,
    from_ledger_units,
    shares_dict,
    shares_tuple,
    to_ledger_units,
)
from repro.core.recovery import apply_entry, recover_warehouse
from repro.core.service import QueryRequest, TenantBill
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.errors import JournalError, RecoveryError, ReproError
from repro.statsvc.logs import QueryRecord
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)


def make_record(query_id: int = 1, tenant: str = "acme") -> QueryRecord:
    return QueryRecord(
        query_id=query_id,
        timestamp=10.0 * query_id,
        sql=T_JOIN.format(v=query_id % 4),
        template="q5ish",
        tables=("customer", "nation"),
        columns=("customer.c_acctbal", "nation.n_name"),
        join_edges=(("customer.c_nationkey", "nation.n_nationkey"),),
        group_keys=("n_name",),
        dollars=0.000123456789,
        machine_seconds=1.5,
        tenant=tenant,
    )


def sample_records() -> list:
    undo = UndoSnapshot(
        action_name="mv_q5ish",
        kind="materialized-view",
        dollars=0.0,
        physical=False,
        base_tables=("customer", "nation"),
    )
    return [
        QueryServed(record=make_record()),
        AdmissionDecision(tenant="acme", verdict="admit"),
        RetryCharge(tenant="acme", dollars=0.001),
        TuningIntent(
            rec_id=1,
            name="mv_q5ish",
            kind="materialized-view",
            undo=undo,
            tenant_shares=(("acme", 0.75), ("bolt", 0.25)),
        ),
        TuningCommit(
            rec_id=1,
            name="mv_q5ish",
            kind="materialized-view",
            dollars=0.25,
            tenant_shares=(("acme", 0.75), ("bolt", 0.25)),
        ),
        TuningFailed(rec_id=2, name="rc_x", kind="recluster", message="boom"),
        RollbackIntent(
            rec_id=1, name="mv_q5ish", kind="materialized-view", undo=undo
        ),
        RollbackCommit(rec_id=1, name="mv_q5ish", kind="materialized-view"),
        CostSnapshotTaken(
            seq=1,
            clock=30.0,
            log_len=3,
            tenants=(
                (
                    "acme",
                    3,
                    4.5,
                    to_ledger_units(0.000370370367),
                    0,
                    0,
                    0,
                    0,
                    (("q5ish", "P0", "Scan[source_scan]", 123456),),
                ),
            ),
        ),
        Checkpoint(
            checkpoint_id=1,
            state=CheckpointState(
                clock=30.0,
                records=(make_record(),),
                bills=(TenantBill("acme").ledger_snapshot(),),
                verdicts=(("acme", (("admit", 3),)),),
                applied_mvs=(),
                durable_tuning=(
                    DurableRecommendation(
                        rec_id=1,
                        name="mv_q5ish",
                        kind="materialized-view",
                        state="applied",
                        undo=undo,
                    ),
                ),
            ),
        ),
    ]


# --------------------------------------------------------------------- #
# Fixed-point billing (satellite: float-drift audit)
# --------------------------------------------------------------------- #
def test_ledger_units_round_trip_is_lossless_for_dollar_amounts():
    """2^80 units/dollar sits below the mantissa of any amount >= 2^-27
    dollars, so conversion drops no bits at all."""
    for dollars in (0.000123456789, 0.1, 1.0 / 3.0, 7.25, 1234.5678):
        assert from_ledger_units(to_ledger_units(dollars)) == dollars
    assert LEDGER_SCALE == 1 << 80  # a power of two: conversion is a shift


def test_tenant_bill_accumulates_in_integral_units():
    bill = TenantBill("acme")
    record = make_record()
    bill.charge(record)
    assert bill.dollars == record.dollars  # single charge: exact
    bill.charge_background(0.25)
    bill.charge_retry(0.001)
    assert bill.total_dollars == from_ledger_units(
        to_ledger_units(record.dollars)
        + to_ledger_units(0.25)
        + to_ledger_units(0.001)
    )
    snapshot = bill.ledger_snapshot()
    assert snapshot[0] == "acme"
    restored = TenantBill.from_ledger_snapshot(snapshot)
    assert restored.ledger_snapshot() == snapshot


def test_replayed_billing_equals_live_billing_to_the_last_bit():
    """The satellite regression: journal replay reproduces TenantBill
    totals bitwise, not approximately."""
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    live = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    session = live.session(tenant="acme", constraint=SLA)
    for i in range(4):
        session.submit(
            QueryRequest(sql=T_JOIN.format(v=i % 4), at_time=10.0 * i)
        ).result()
    live._charge_retry("acme", 0.0001230000000000000081)
    live_snapshots = {t: b.ledger_snapshot() for t, b in live.billing.items()}

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert {
        t: b.ledger_snapshot() for t, b in recovered.billing.items()
    } == live_snapshots
    for tenant, bill in recovered.billing.items():
        assert bill.dollars == live.billing[tenant].dollars
        assert bill.total_dollars == live.billing[tenant].total_dollars
        assert bill.machine_seconds == live.billing[tenant].machine_seconds


# --------------------------------------------------------------------- #
# Record round-trips (satellite: serialization)
# --------------------------------------------------------------------- #
def test_every_record_type_survives_pickle():
    samples = sample_records()
    assert {type(r) for r in samples} == set(RECORD_TYPES)
    for record in samples:
        clone = pickle.loads(pickle.dumps(record))
        assert type(clone) is type(record)
        if not isinstance(record, Checkpoint):
            assert clone == record


def test_journal_save_load_round_trip(tmp_path):
    journal = WriteAheadJournal(checkpoint_every=8)
    for record in sample_records():
        journal.append(record)
    path = str(tmp_path / "wal.pkl")
    journal.save(path)
    loaded = WriteAheadJournal.load(path)
    assert len(loaded) == len(journal)
    assert loaded.checkpoint_every == 8
    assert loaded.last_checkpoint_id == journal.last_checkpoint_id
    assert [e.lsn for e in loaded.entries()] == [
        e.lsn for e in journal.entries()
    ]
    assert loaded.next_checkpoint_id() == journal.next_checkpoint_id()


def test_journal_load_failure_raises_journal_error(tmp_path):
    path = tmp_path / "garbage.pkl"
    path.write_bytes(b"not a pickle")
    with pytest.raises(JournalError):
        WriteAheadJournal.load(str(path))
    with pytest.raises(JournalError):
        WriteAheadJournal.load(str(tmp_path / "missing.pkl"))


def test_journal_rejects_unknown_record_types():
    journal = WriteAheadJournal()
    with pytest.raises(JournalError):
        journal.append(object())
    with pytest.raises(JournalError):
        WriteAheadJournal(checkpoint_every=0)


def test_lsns_are_sequential_and_gap_free():
    journal = WriteAheadJournal()
    lsns = [
        journal.append(AdmissionDecision(tenant="t", verdict="admit")).lsn
        for _ in range(5)
    ]
    assert lsns == [1, 2, 3, 4, 5]
    assert [e.lsn for e in journal.entries(after_lsn=2)] == [3, 4, 5]


def test_shares_helpers_are_canonical():
    assert shares_tuple({"b": 0.25, "a": 0.75}) == (("a", 0.75), ("b", 0.25))
    assert shares_tuple(None) == ()
    assert shares_dict((("a", 0.75), ("b", 0.25))) == {"a": 0.75, "b": 0.25}


# --------------------------------------------------------------------- #
# Replay idempotence (satellite: crash during replay)
# --------------------------------------------------------------------- #
def test_apply_entry_skips_at_or_below_the_watermark():
    """Re-applying a replayed record after a crash-during-replay never
    double-logs or double-bills: the LSN watermark makes apply_entry
    idempotent."""
    catalog = synthetic_tpch_catalog(1.0)
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    entry = JournalEntry(lsn=1, record=QueryServed(record=make_record()))
    assert apply_entry(warehouse, entry) is True
    assert len(warehouse.logs) == 1
    assert warehouse.billing["acme"].queries == 1
    # Replaying the same entry (crash between watermark bump and the
    # next record) is a no-op.
    assert apply_entry(warehouse, entry) is False
    assert len(warehouse.logs) == 1
    assert warehouse.billing["acme"].queries == 1


def test_recovery_is_idempotent_under_restart():
    """Recovering, crashing (discarding the result), and recovering
    again from the same journal yields identical state — replay has no
    side effects on the journal or the catalog."""
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    live = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    session = live.session(tenant="acme", constraint=SLA)
    for i in range(3):
        session.submit(
            QueryRequest(sql=T_JOIN.format(v=i % 4), at_time=10.0 * i)
        ).result()
    length_before = len(journal)

    first = CostIntelligentWarehouse(catalog=catalog)
    recover_warehouse(first, journal)  # no post-recovery checkpoint taken
    assert len(journal) == length_before  # replay journals nothing
    second = CostIntelligentWarehouse(catalog=catalog)
    recover_warehouse(second, journal)
    assert [r.query_id for r in second.logs] == [r.query_id for r in first.logs]
    assert {t: b.ledger_snapshot() for t, b in second.billing.items()} == {
        t: b.ledger_snapshot() for t, b in first.billing.items()
    }


def test_recover_refuses_a_dirty_warehouse():
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    live = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    live.session(tenant="acme", constraint=SLA).submit(
        QueryRequest(sql=T_JOIN.format(v=0), at_time=0.0)
    ).result()
    with pytest.raises(RecoveryError):
        recover_warehouse(live, journal)  # journal attached + state present
    with pytest.raises(TypeError):
        # recover() attaches the journal itself; passing journal= again
        # collides with its first parameter.
        CostIntelligentWarehouse.recover(
            journal, catalog=catalog, journal=journal
        )


def test_undo_snapshot_apply_is_idempotent():
    """Resolving the same in-doubt MV apply twice (crash during
    recovery) is safe: every undo step checks current state first."""
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    warehouse = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    session = warehouse.session(tenant="acme", constraint=SLA)
    for i in range(4):
        session.submit(
            QueryRequest(
                sql=T_JOIN.format(v=i % 4), template="q5ish", at_time=10.0 * i
            )
        ).result()
    recs = [
        r
        for r in warehouse.tuning.propose()
        if r.action.kind == "materialized-view"
    ]
    assert recs
    rec = recs[0]
    if not rec.accepted:
        warehouse.tuning.accept(rec)
    warehouse.tuning.apply(rec)
    durable = warehouse._durable_tuning[rec.rec_id]
    assert durable.state == "applied" and durable.undo is not None
    name = durable.name
    assert catalog.has_view(name) and catalog.has_table(name)
    durable.undo.apply(warehouse.database, catalog)
    assert not catalog.has_view(name) and not catalog.has_table(name)
    durable.undo.apply(warehouse.database, catalog)  # second pass: no-op
    assert not catalog.has_view(name) and not catalog.has_table(name)


# --------------------------------------------------------------------- #
# Checkpoint cadence + observability (satellite: health block)
# --------------------------------------------------------------------- #
def test_checkpoint_every_rolls_checkpoints_automatically():
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal(checkpoint_every=2)
    warehouse = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    session = warehouse.session(tenant="acme", constraint=SLA)
    for i in range(4):
        session.submit(
            QueryRequest(sql=T_JOIN.format(v=i % 4), at_time=10.0 * i)
        ).result()
    assert journal.last_checkpoint_id is not None
    assert journal.records_since_checkpoint < 2 + 1
    # Recovery starts from the checkpoint, not LSN 0.
    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert recovered.last_recovery.checkpoint_id is not None
    assert len(recovered.logs) == 4


def test_checkpoint_requires_a_journal():
    warehouse = CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))
    with pytest.raises(ReproError):
        warehouse.checkpoint()


def test_describe_health_durability_block_tracks_the_journal():
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    warehouse = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    session = warehouse.session(tenant="acme", constraint=SLA)
    session.submit(QueryRequest(sql=T_JOIN.format(v=0), at_time=0.0)).result()
    block = warehouse.describe_health()["durability"]
    assert block["journaled"] is True
    assert block["journal_records"] == len(journal) > 0
    assert block["recovered"] is False

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    block = recovered.describe_health()["durability"]
    assert block["recovered"] is True
    assert block["records_replayed"] == recovered.last_recovery.records_replayed
    assert block["last_checkpoint_id"] == journal.last_checkpoint_id
    assert block["in_doubt_forward"] == 0 and block["in_doubt_back"] == 0


def test_reset_cache_stats_zeroes_resilience_counters():
    """The PR 6 audit: reset_cache_stats() missed the retry/degraded
    tallies, so benchmarks reported steady-state cache rates against
    warmup failures."""
    warehouse = CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))
    stats = warehouse.resilience_stats
    stats.note_retry(0.25)
    stats.note_deadline()
    stats.note_degraded()
    before = stats.snapshot()
    assert before["retries"] == 1 and before["degraded_queries"] == 1
    warehouse.reset_cache_stats()
    after = stats.snapshot()
    assert after["retries"] == 0
    assert after["retry_dollars"] == 0.0
    assert after["deadline_hits"] == 0
    assert after["degraded_queries"] == 0
