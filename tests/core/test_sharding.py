"""Process-sharded serving: pool lifecycle, parity, and recovery.

Every behavioral claim the sharded path makes is pinned here against
the threaded baseline: bit-identical plans, logs, and ledger bills;
warm worker caches; crash restart with exactly-once effects; hang
detection feeding the degraded fallback; and cache-coherency
broadcasts on catalog changes.  The heavier seeded sweeps live in
``tests/chaos/test_sharded_matrix.py`` — this file is the fast
functional surface.
"""

from __future__ import annotations

import pytest

from repro.core.service import QueryRequest
from repro.core.sharding import PlannerWorkerPool, _worker_index_for
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.errors import ReproError
from repro.testing.faults import FaultPlan, FaultSpec
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)


def make_requests(count=6, start=0):
    requests = []
    for i in range(start, start + count):
        requests.append(
            QueryRequest(sql=T_ORDERS.format(v=100_000 + i), at_time=30.0 * i)
        )
        requests.append(
            QueryRequest(sql=T_JOIN.format(v=i % 4), at_time=30.0 * i + 10)
        )
    return requests


def make_warehouse(plan=None):
    warehouse = CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))
    if plan is not None:
        warehouse.inject_faults(plan)
    return warehouse


def outcomes(handles):
    result = []
    for handle in handles:
        outcome = handle.result()
        result.append(
            (
                outcome.sql,
                outcome.record.dollars,
                outcome.record.latency_s,
                dict(outcome.choice.dop_plan.dops),
                outcome.choice.variant_index,
            )
        )
    return result


def observable_state(warehouse):
    return (
        {t: b.ledger_snapshot() for t, b in warehouse.billing.items()},
        [
            (r.timestamp, r.template, r.dollars, r.machine_seconds)
            for r in warehouse.logs.tail(200)
        ],
    )


def serve(warehouse, requests, *, sharded, workers=2, **pool_kwargs):
    if sharded:
        warehouse.enable_sharding(workers=workers, **pool_kwargs)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        served = outcomes(session.submit_many(requests, max_workers=4))
        return served, observable_state(warehouse)
    finally:
        if sharded:
            warehouse.disable_sharding()


@pytest.fixture(scope="module")
def threaded_baseline():
    warehouse = make_warehouse()
    return serve(warehouse, make_requests(), sharded=False)


# ----------------------------- lifecycle ------------------------------ #
def test_enable_disable_lifecycle():
    warehouse = make_warehouse()
    assert warehouse.worker_pool is None
    warehouse.enable_sharding(workers=2)
    pool = warehouse.worker_pool
    assert pool is not None and pool.alive and pool.size == 2
    assert "2 worker(s)" in pool.describe()
    # re-enabling replaces the pool; disabling is idempotent
    warehouse.enable_sharding(workers=1)
    second = warehouse.worker_pool
    assert second is not pool and second.size == 1
    assert not pool.alive
    warehouse.disable_sharding()
    warehouse.disable_sharding()
    assert warehouse.worker_pool is None
    assert not second.alive


def test_worker_affinity_is_deterministic():
    assert _worker_index_for(("a", "b"), 4) == _worker_index_for(("a", "b"), 4)
    spread = {_worker_index_for((f"t{i}",), 4) for i in range(32)}
    assert len(spread) > 1  # templates actually spread across workers


# ------------------------------- parity -------------------------------- #
def test_sharded_matches_threaded_bit_for_bit(threaded_baseline):
    served, state = serve(make_warehouse(), make_requests(), sharded=True)
    assert (served, state) == threaded_baseline


def test_single_worker_parity(threaded_baseline):
    served, state = serve(
        make_warehouse(), make_requests(), sharded=True, workers=1
    )
    assert (served, state) == threaded_baseline


def test_warm_caches_hit_on_repeat_templates():
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        outcomes(session.submit_many(make_requests(3), max_workers=4))
        pool = warehouse.worker_pool
        # literal-varying repeats of the same templates: skeletons (and
        # for repeated literals, bindings) are served from worker-local
        # caches, not recomputed
        assert pool.warm_skeleton_hits > 0
        assert pool.tasks_dispatched == 6
    finally:
        warehouse.disable_sharding()


def test_exact_cache_hits_skip_dispatch():
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        first = make_requests(2)
        outcomes(session.submit_many(first, max_workers=4))
        dispatched = warehouse.worker_pool.tasks_dispatched
        # identical SQL again: the coordinator's exact plan cache
        # answers, nothing crosses a pipe
        repeat = [
            QueryRequest(sql=r.sql, at_time=r.at_time + 500.0) for r in first
        ]
        outcomes(session.submit_many(repeat, max_workers=4))
        assert warehouse.worker_pool.tasks_dispatched == dispatched
    finally:
        warehouse.disable_sharding()


def test_ineligible_requests_stage_inline(threaded_baseline):
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        requests = [
            QueryRequest(
                sql=r.sql, at_time=r.at_time, use_plan_cache=False
            )
            for r in make_requests()
        ]
        served = outcomes(session.submit_many(requests, max_workers=4))
        assert warehouse.worker_pool.tasks_dispatched == 0
        assert served == threaded_baseline[0]
    finally:
        warehouse.disable_sharding()


def test_deep_single_template_batch_does_not_deadlock():
    # 48 literal variations of one template all key to one worker: far
    # past the per-worker in-flight cap, this would fill both pipe
    # directions and deadlock without dispatch-side backpressure.
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        requests = [
            QueryRequest(sql=T_ORDERS.format(v=200_000 + i), at_time=30.0 * i)
            for i in range(48)
        ]
        served = outcomes(session.submit_many(requests, max_workers=4))
        assert len(served) == 48
        pool = warehouse.worker_pool
        assert pool.tasks_dispatched == 48
        assert pool.restarts == 0
    finally:
        warehouse.disable_sharding()


# ------------------------------ recovery -------------------------------- #
def test_kill_worker_between_batches_restarts_warm(threaded_baseline):
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        requests = make_requests()
        served = outcomes(session.submit_many(requests[:6], max_workers=4))
        warehouse.worker_pool.kill_worker(0)
        warehouse.worker_pool.kill_worker(1)
        served += outcomes(session.submit_many(requests[6:], max_workers=4))
        assert warehouse.worker_pool.restarts >= 1
        assert (served, observable_state(warehouse)) == threaded_baseline
    finally:
        warehouse.disable_sharding()


def test_injected_worker_crash_keeps_parity(threaded_baseline):
    plan = FaultPlan(
        [FaultSpec(point="worker_crash", error_rate=1.0, limit=3)], seed=11
    )
    warehouse = make_warehouse(plan)
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        served = outcomes(session.submit_many(make_requests(), max_workers=4))
        pool = warehouse.worker_pool
        assert pool.injected_kills == 3
        assert pool.restarts >= 1 and pool.restaged_tasks >= 1
        # crash recovery is free for tenants: no retry charges, same bills
        assert (served, observable_state(warehouse)) == threaded_baseline
        assert warehouse.resilience_stats.retries == 0
    finally:
        warehouse.disable_sharding()


def test_hung_worker_takes_degraded_fallback_and_restages():
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2, liveness_timeout_s=1.5)
    try:
        pool = warehouse.worker_pool
        session = warehouse.session(tenant="t1", constraint=SLA)
        pool.hang_worker(0)
        pool.hang_worker(1)
        served = outcomes(session.submit_many(make_requests(2), max_workers=4))
        assert len(served) == 4  # every query still answered
        assert pool.restarts >= 1
        assert warehouse.metrics.value("repro_degraded_queries_total") >= 1
        assert warehouse.resilience_stats.deadline_hits >= 1
    finally:
        warehouse.disable_sharding()


def test_result_for_unknown_task_raises():
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=1)
    try:
        with pytest.raises(ReproError):
            warehouse.worker_pool.result_for(999)
    finally:
        warehouse.disable_sharding()


# ----------------------------- coherency -------------------------------- #
def test_stats_refresh_broadcasts_before_dispatch():
    threaded = make_warehouse()
    sharded = make_warehouse()
    sharded.enable_sharding(workers=2)
    try:
        requests = make_requests()
        results = []
        for warehouse in (threaded, sharded):
            session = warehouse.session(tenant="t1", constraint=SLA)
            served = outcomes(session.submit_many(requests[:6], max_workers=4))
            catalog = warehouse.catalog
            catalog.update_stats("orders", catalog.table("orders").stats)
            served += outcomes(session.submit_many(requests[6:], max_workers=4))
            results.append((served, observable_state(warehouse)))
        assert results[0] == results[1]
        assert sharded.worker_pool.restarts == 0  # refresh, not restart
    finally:
        sharded.disable_sharding()


def test_plan_cache_invalidation_reaches_workers():
    warehouse = make_warehouse()
    warehouse.enable_sharding(workers=2)
    try:
        pool = warehouse.worker_pool
        session = warehouse.session(tenant="t1", constraint=SLA)
        outcomes(session.submit_many(make_requests(2), max_workers=4))
        warehouse.invalidate_plan_cache()
        outcomes(session.submit_many(make_requests(2), max_workers=4))
        # the flush epoch changed the fingerprint: identical SQL was
        # re-dispatched (no exact-cache hits survive the flush)
        assert pool.tasks_dispatched == 8
    finally:
        warehouse.disable_sharding()


# ---------------------------- observability ----------------------------- #
def test_worker_pool_metrics_are_sourced():
    warehouse = make_warehouse()
    assert warehouse.metrics.value("repro_worker_pool_size") == 0
    warehouse.enable_sharding(workers=2)
    try:
        session = warehouse.session(tenant="t1", constraint=SLA)
        outcomes(session.submit_many(make_requests(3), max_workers=4))
        metrics = warehouse.metrics
        assert metrics.value("repro_worker_pool_size") == 2
        assert metrics.value("repro_worker_restarts_total") == 0
        sourced = metrics.sourced("repro_worker_warm_task_hits_total")
        assert set(sourced) == {("bind",), ("skeleton",)}
        samples = {s.name for s in metrics.collect()}
        assert "repro_worker_ipc_roundtrip_seconds" in samples
    finally:
        warehouse.disable_sharding()
