"""Tests for the warehouse plan cache and batched submission."""

import pytest

from repro.core.plan_cache import PlanCache, normalize_sql
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.errors import ReproError
from repro.workloads.tpch_queries import instantiate


@pytest.fixture()
def warehouse(tpch_db):
    return CostIntelligentWarehouse(tpch_db)


Q1 = "SELECT count(*) AS n FROM orders"


# --------------------------- normalize_sql ---------------------------- #
def test_normalize_sql_collapses_formatting():
    assert normalize_sql("SELECT  *  FROM t") == normalize_sql(
        "select *\n from T -- comment\n"
    )


def test_normalize_sql_keeps_literals_distinct():
    assert normalize_sql("SELECT a FROM t WHERE a < 5") != normalize_sql(
        "SELECT a FROM t WHERE a < 6"
    )
    assert normalize_sql("SELECT a FROM t WHERE s = 'X'") != normalize_sql(
        "SELECT a FROM t WHERE s = 'Y'"
    )


# ----------------------------- PlanCache ------------------------------ #
def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    cache.store("a", "bound-a", "choice-a")
    cache.store("b", "bound-b", "choice-b")
    assert cache.lookup("a") == ("bound-a", "choice-a")  # refresh a
    cache.store("c", "bound-c", "choice-c")  # evicts b
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None
    assert cache.evictions == 1
    assert 0.0 < cache.hit_rate < 1.0
    assert "entries" in cache.describe()


def test_plan_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# --------------------------- warehouse hits --------------------------- #
def test_repeat_submission_hits_cache(warehouse):
    constraint = sla_constraint(12.0)
    first = warehouse.submit(Q1, constraint)
    second = warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 1
    assert second.choice is first.choice
    # Logging still happens per submission.
    assert len(warehouse.logs) == 2


def test_formatting_variants_share_one_plan(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit("select COUNT( * ) as N\nfrom ORDERS", constraint)
    assert warehouse.plan_cache.hits == 1


def test_different_constraints_plan_separately(warehouse):
    warehouse.submit(Q1, sla_constraint(12.0))
    warehouse.submit(Q1, budget_constraint(0.05))
    warehouse.submit(Q1, sla_constraint(5.0))
    assert warehouse.plan_cache.hits == 0
    assert warehouse.plan_cache.misses == 3


def test_use_plan_cache_false_bypasses(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit(Q1, constraint, use_plan_cache=False)
    assert warehouse.plan_cache.hits == 0


def test_plan_cache_disabled_by_size_zero(tpch_db):
    warehouse = CostIntelligentWarehouse(tpch_db, plan_cache_size=0)
    assert warehouse.plan_cache is None
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit(Q1, constraint)  # no cache, no crash
    warehouse.invalidate_plan_cache()  # no-op


# --------------------------- invalidation ----------------------------- #
def test_stats_change_invalidates(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    catalog = warehouse.catalog
    version = catalog.version
    catalog.update_stats("orders", catalog.table("orders").stats)
    assert catalog.version == version + 1
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 0
    assert warehouse.plan_cache.misses == 2


def test_explicit_invalidation(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.invalidate_plan_cache()
    assert len(warehouse.plan_cache) == 0
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 0


def test_tuning_apply_invalidates_via_version(warehouse):
    """Catalog mutations from auto-tuning invalidate cached plans."""
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.catalog.set_clustering("orders", "o_orderdate", 0.2)
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 0


# --------------------------- submit_many ------------------------------ #
def test_submit_many_shared_constraint(warehouse):
    sql = instantiate("q1_pricing_summary", seed=1)
    outcomes = warehouse.submit_many([sql, sql, Q1], constraint=sla_constraint(12.0))
    assert len(outcomes) == 3
    assert warehouse.plan_cache.hits == 1
    assert outcomes[1].choice is outcomes[0].choice


def test_submit_many_per_item_constraints(warehouse):
    pairs = [(Q1, sla_constraint(12.0)), (Q1, budget_constraint(0.05))]
    outcomes = warehouse.submit_many(pairs)
    assert len(outcomes) == 2
    assert warehouse.plan_cache.misses == 2


def test_submit_many_requires_constraint_for_bare_sql(warehouse):
    with pytest.raises(ReproError):
        warehouse.submit_many([Q1])
