"""Tests for the warehouse plan caches and batched submission."""

import pytest

from repro.core.plan_cache import (
    BindingCache,
    PlanCache,
    SkeletonCache,
    normalize_sql,
)
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.errors import ReproError
from repro.workloads.tpch_queries import instantiate


@pytest.fixture()
def warehouse(tpch_db):
    return CostIntelligentWarehouse(tpch_db)


Q1 = "SELECT count(*) AS n FROM orders"


# --------------------------- normalize_sql ---------------------------- #
def test_normalize_sql_collapses_formatting():
    assert normalize_sql("SELECT  *  FROM t") == normalize_sql(
        "select *\n from T -- comment\n"
    )


def test_normalize_sql_keeps_literals_distinct():
    assert normalize_sql("SELECT a FROM t WHERE a < 5") != normalize_sql(
        "SELECT a FROM t WHERE a < 6"
    )
    assert normalize_sql("SELECT a FROM t WHERE s = 'X'") != normalize_sql(
        "SELECT a FROM t WHERE s = 'Y'"
    )


# ----------------------------- PlanCache ------------------------------ #
def test_plan_cache_lru_eviction():
    cache = PlanCache(capacity=2)
    cache.store("a", "bound-a", "choice-a")
    cache.store("b", "bound-b", "choice-b")
    assert cache.lookup("a") == ("bound-a", "choice-a")  # refresh a
    cache.store("c", "bound-c", "choice-c")  # evicts b
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None
    assert cache.evictions == 1
    assert 0.0 < cache.hit_rate < 1.0
    assert "entries" in cache.describe()


def test_plan_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# --------------------------- lock striping ---------------------------- #
def test_small_caches_stay_single_stripe():
    """Tiny capacities collapse to one stripe so sequential LRU
    eviction semantics are exact (the tests above rely on this)."""
    assert PlanCache(capacity=2).stripe_count == 1
    assert PlanCache(capacity=63).stripe_count == 1


def test_default_capacity_is_striped():
    cache = PlanCache(capacity=256)
    assert cache.stripe_count == 4
    # Stripe capacities sum to the nominal capacity.
    assert sum(s.capacity for s in cache._stripes) == 256


def test_striped_cache_aggregates_counters():
    cache = PlanCache(capacity=256)
    for index in range(32):
        cache.store(("key", index), "bound", "choice")
    assert len(cache) == 32
    hits = sum(cache.lookup(("key", index)) is not None for index in range(32))
    assert hits == 32 and cache.hits == 32
    assert cache.lookup("missing") is None
    assert cache.misses == 1
    assert "stripe" in cache.describe()
    cache.reset_stats()
    assert cache.hits == cache.misses == 0
    cache.invalidate()
    assert len(cache) == 0


def test_striped_cache_survives_concurrent_hammer():
    """Threads mixing lookups and stores over a shared striped cache
    must never corrupt it (the scheduler's planning threads do this)."""
    import threading

    cache = PlanCache(capacity=256)
    errors = []

    def worker(worker_id: int) -> None:
        try:
            for step in range(400):
                key = ("q", (worker_id * 7 + step) % 97)
                found = cache.lookup(key)
                if found is None:
                    cache.store(key, f"bound-{key}", f"choice-{key}")
                else:
                    assert found == (f"bound-{key}", f"choice-{key}")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 256
    assert cache.hits + cache.misses == 8 * 400


def test_striped_eviction_goes_through_the_policy():
    """Over-filling a multi-stripe cache evicts within each full stripe
    via the retention policy; the policy counter matches the striping
    counter and entries never exceed capacity."""
    cache = PlanCache(capacity=256)  # 4 stripes of 64
    for index in range(1000):
        cache.store(("key", index), "bound", "choice")
    assert len(cache) <= 256
    assert cache.evictions == 1000 - len(cache)
    assert cache.policy.evictions == cache.evictions
    # The survivors are the most recently stored keys *of each stripe*.
    for stripe in cache._stripes:
        assert len(stripe.entries) <= stripe.capacity


# --------------------------- warehouse hits --------------------------- #
def test_repeat_submission_hits_cache(warehouse):
    constraint = sla_constraint(12.0)
    first = warehouse.submit(Q1, constraint)
    second = warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 1
    assert second.choice is first.choice
    # Logging still happens per submission.
    assert len(warehouse.logs) == 2


def test_formatting_variants_share_one_plan(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit("select COUNT( * ) as N\nfrom ORDERS", constraint)
    assert warehouse.plan_cache.hits == 1


def test_different_constraints_plan_separately(warehouse):
    warehouse.submit(Q1, sla_constraint(12.0))
    warehouse.submit(Q1, budget_constraint(0.05))
    warehouse.submit(Q1, sla_constraint(5.0))
    assert warehouse.plan_cache.hits == 0
    assert warehouse.plan_cache.misses == 3


def test_use_plan_cache_false_bypasses(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit(Q1, constraint, use_plan_cache=False)
    assert warehouse.plan_cache.hits == 0


def test_plan_cache_disabled_by_size_zero(tpch_db):
    warehouse = CostIntelligentWarehouse(tpch_db, plan_cache_size=0)
    assert warehouse.plan_cache is None
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit(Q1, constraint)  # no cache, no crash
    warehouse.invalidate_plan_cache()  # no-op


# ------------------------- two-level serving -------------------------- #
def test_literal_variants_hit_the_skeleton_level(warehouse):
    """Same template, different constants: exact level misses, skeleton
    level serves the join shapes (no join-order DP re-run)."""
    constraint = sla_constraint(12.0)
    warehouse.submit(instantiate("q1_pricing_summary", seed=1), constraint)
    dag_plans_after_first = warehouse.optimizer.dag_plans
    join_order_s = warehouse.optimizer.stage_times["join_order"]
    warehouse.submit(instantiate("q1_pricing_summary", seed=2), constraint)
    assert warehouse.plan_cache.hits == 0  # different literals
    assert warehouse.skeleton_cache.hits == 1
    # DAG planning ran for the new literals, but skipped the join DP.
    assert warehouse.optimizer.dag_plans == dag_plans_after_first + 1
    assert warehouse.optimizer.stage_times["join_order"] == join_order_s


def test_skeleton_key_separates_constraint_kinds(warehouse):
    sql = instantiate("q1_pricing_summary", seed=1)
    warehouse.submit(sql, sla_constraint(12.0))
    warehouse.submit(sql, budget_constraint(0.05))
    # Same kind, different bound: the skeleton is shared.
    warehouse.submit(instantiate("q1_pricing_summary", seed=2), sla_constraint(5.0))
    assert warehouse.skeleton_cache.misses == 2  # one per kind
    assert warehouse.skeleton_cache.hits == 1


def test_binding_shared_across_constraints(warehouse):
    sql = instantiate("q1_pricing_summary", seed=1)
    first = warehouse.submit(sql, sla_constraint(12.0))
    second = warehouse.submit(sql, budget_constraint(0.05))
    assert warehouse.binding_cache.hits == 1
    assert second.record.sql == first.record.sql


def test_parameterized_serving_disabled_restores_pr1_path(tpch_db):
    warehouse = CostIntelligentWarehouse(tpch_db, parameterized_serving=False)
    assert warehouse.skeleton_cache is None
    assert warehouse.binding_cache is None
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 1  # exact level still works


def test_describe_caches_reports_all_levels(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(instantiate("q1_pricing_summary", seed=1), constraint)
    warehouse.submit(instantiate("q1_pricing_summary", seed=2), constraint)
    report = warehouse.describe_caches()
    assert report["plan_cache"]["misses"] == 2
    assert report["skeleton_cache"]["hits"] == 1
    assert report["skeleton_cache"]["hit_rate"] == 0.5
    assert report["timing_cache"]["timing_computations"] > 0
    assert 0.0 <= report["timing_cache"]["timing_hit_rate"] <= 1.0
    warehouse.reset_cache_stats()
    report = warehouse.describe_caches()
    assert report["plan_cache"]["hits"] == 0
    assert report["skeleton_cache"]["misses"] == 0
    # Entries survive a stats reset.
    assert report["plan_cache"]["entries"] == 2


def test_skeleton_and_binding_caches_are_lru():
    skeletons = SkeletonCache(capacity=1)
    skeletons.store("a", ("tree-a",))
    skeletons.store("b", ("tree-b",))
    assert skeletons.lookup("a") is None
    assert skeletons.lookup("b") == ("tree-b",)
    assert skeletons.evictions == 1
    bindings = BindingCache(capacity=1)
    bindings.store("a", "bound-a")
    bindings.store("b", "bound-b")
    assert bindings.lookup("a") is None
    assert bindings.lookup("b") == "bound-b"


# --------------------------- invalidation ----------------------------- #
def test_stats_change_invalidates(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    catalog = warehouse.catalog
    version = catalog.version
    catalog.update_stats("orders", catalog.table("orders").stats)
    assert catalog.version == version + 1
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 0
    assert warehouse.plan_cache.misses == 2


def test_explicit_invalidation(warehouse):
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.invalidate_plan_cache()
    assert len(warehouse.plan_cache) == 0
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 0


def test_tuning_apply_invalidates_via_version(warehouse):
    """Catalog mutations from auto-tuning invalidate cached plans."""
    constraint = sla_constraint(12.0)
    warehouse.submit(Q1, constraint)
    warehouse.catalog.set_clustering("orders", "o_orderdate", 0.2)
    warehouse.submit(Q1, constraint)
    assert warehouse.plan_cache.hits == 0


# --------------------------- submit_many ------------------------------ #
def test_submit_many_request_items_inherit_shared_settings(warehouse):
    """QueryRequest items honor the shared constraint and batch-wide
    keyword arguments, like str/tuple items do."""
    from repro.core.service import QueryRequest

    outcomes = warehouse.submit_many(
        [QueryRequest(sql=Q1), QueryRequest(sql=Q1)],
        constraint=sla_constraint(12.0),
        simulate=False,
    )
    assert all(o.sim is None for o in outcomes)
    assert all(o.constraint.latency_sla == 12.0 for o in outcomes)


def test_submit_many_shared_constraint(warehouse):
    sql = instantiate("q1_pricing_summary", seed=1)
    outcomes = warehouse.submit_many([sql, sql, Q1], constraint=sla_constraint(12.0))
    assert len(outcomes) == 3
    assert warehouse.plan_cache.hits == 1
    assert outcomes[1].choice is outcomes[0].choice


def test_submit_many_per_item_constraints(warehouse):
    pairs = [(Q1, sla_constraint(12.0)), (Q1, budget_constraint(0.05))]
    outcomes = warehouse.submit_many(pairs)
    assert len(outcomes) == 2
    assert warehouse.plan_cache.misses == 2


def test_submit_many_requires_constraint_for_bare_sql(warehouse):
    with pytest.raises(ReproError):
        warehouse.submit_many([Q1])
