"""API-surface snapshot: the public names and signatures callers rely on.

A failing test here means a breaking change to the serving API — update
the snapshot deliberately, alongside the examples and the quickstart.
"""

import inspect
import warnings

import pytest

import repro
from repro import (
    CostIntelligentWarehouse,
    MaterializeView,
    QueryHandle,
    QueryRequest,
    QueryState,
    Recluster,
    Recommendation,
    RecommendationState,
    ResizeWarehouse,
    Session,
    TenantBudget,
    TuningAction,
    TuningPolicy,
    TuningService,
)
from repro.dop.constraints import sla_constraint

EXPECTED_ALL = [
    "Catalog",
    "BiObjectiveOptimizer",
    "CostIntelligentWarehouse",
    "QueryHandle",
    "QueryOutcome",
    "QueryRequest",
    "QueryState",
    "ServingScheduler",
    "Session",
    "AdmissionController",
    "AdmissionVerdict",
    "AdmissionDeniedError",
    "TenantBudget",
    "RetentionPolicy",
    "LruPolicy",
    "CostAwarePolicy",
    "ResiliencePolicy",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "Deadline",
    "TransientError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "CostEstimator",
    "HardwareCalibration",
    "DopPlanner",
    "sla_constraint",
    "budget_constraint",
    "Database",
    "LocalExecutor",
    "DistributedSimulator",
    "SimConfig",
    "Binder",
    "TuningAction",
    "MaterializeView",
    "Recluster",
    "ResizeWarehouse",
    "Recommendation",
    "RecommendationState",
    "TuningPolicy",
    "TuningReport",
    "TuningService",
    "load_tpch",
    "synthetic_tpch_catalog",
    "__version__",
]


def test_repro_all_snapshot():
    assert list(repro.__all__) == EXPECTED_ALL
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ exports missing name {name}"


def test_query_request_field_snapshot():
    assert [f.name for f in QueryRequest.__dataclass_fields__.values()] == [
        "sql",
        "constraint",
        "template",
        "at_time",
        "policy",
        "execute_locally",
        "simulate",
        "truth",
        "use_plan_cache",
        "tenant",
    ]
    # Only the SQL is required; everything else defaults or resolves
    # from the session.
    parameters = inspect.signature(QueryRequest).parameters
    required = [n for n, p in parameters.items() if p.default is inspect.Parameter.empty]
    assert required == ["sql"]


def test_session_signatures():
    submit = inspect.signature(Session.submit)
    assert list(submit.parameters) == ["self", "request", "constraint"]
    submit_many = inspect.signature(Session.submit_many)
    assert list(submit_many.parameters) == [
        "self",
        "items",
        "constraint",
        "fail_fast",
        "max_workers",
    ]
    assert submit_many.parameters["fail_fast"].default is False
    session_factory = inspect.signature(CostIntelligentWarehouse.session)
    assert list(session_factory.parameters) == [
        "self",
        "tenant",
        "constraint",
        "policy",
        "template_namespace",
    ]


def test_handle_surface():
    members = {"result", "describe", "done", "failed", "denied"}
    assert members <= {name for name in dir(QueryHandle) if not name.startswith("_")}
    assert {state.name for state in QueryState} == {
        "QUEUED",
        "BOUND",
        "PLANNED",
        "SIMULATED",
        "DONE",
        "FAILED",
        "DENIED",
    }


def test_warehouse_submit_shim_signature_unchanged():
    """The legacy entry point keeps its exact keyword surface."""
    signature = inspect.signature(CostIntelligentWarehouse.submit)
    assert list(signature.parameters) == [
        "self",
        "sql",
        "constraint",
        "template",
        "at_time",
        "policy",
        "execute_locally",
        "simulate",
        "truth",
        "use_plan_cache",
    ]


@pytest.fixture()
def stats_warehouse():
    from repro.workloads.tpch_stats import synthetic_tpch_catalog

    return CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))


def test_submit_shim_emits_no_warnings(stats_warehouse):
    """The legacy submit()/submit_many() shims are supported API, not a
    deprecation trap: using them must stay silent."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        outcome = stats_warehouse.submit(
            "SELECT count(*) AS c FROM orders", sla_constraint(15.0)
        )
        stats_warehouse.submit_many(
            ["SELECT count(*) AS c FROM orders"], constraint=sla_constraint(15.0)
        )
    assert outcome.constraint_met is not None


# --------------------------------------------------------------------- #
# Governance surface (PR 5)
# --------------------------------------------------------------------- #
def test_warehouse_constructor_governance_keywords():
    parameters = inspect.signature(CostIntelligentWarehouse).parameters
    assert "retention_policy" in parameters
    assert parameters["retention_policy"].default == "lru"
    assert "tenant_budgets" in parameters
    assert parameters["tenant_budgets"].default is None
    warm = inspect.signature(CostIntelligentWarehouse.warm_cache)
    assert list(warm.parameters) == ["self", "workload", "constraint", "top"]


def test_tenant_budget_field_snapshot():
    assert [f.name for f in TenantBudget.__dataclass_fields__.values()] == [
        "dollars",
        "throttle_at",
        "defer_at",
    ]


def test_describe_caches_snapshot(stats_warehouse):
    """describe_caches() reports retention + admission observability:
    each cache block carries the policy name and its eviction counter,
    and the admission block counts per-tenant verdicts."""
    stats_warehouse.submit(
        "SELECT count(*) AS c FROM orders", sla_constraint(15.0)
    )
    report = stats_warehouse.describe_caches()
    assert set(report) == {
        "plan_cache",
        "skeleton_cache",
        "binding_cache",
        "timing_cache",
        "admission",
    }
    for label in ("plan_cache", "skeleton_cache", "binding_cache"):
        assert set(report[label]) == {
            "entries",
            "capacity",
            "hits",
            "misses",
            "evictions",
            "hit_rate",
            "policy",
            "policy_evictions",
        }
        assert report[label]["policy"] == "lru"
        assert report[label]["policy_evictions"] == 0
    # No budgets configured: the admit-all fast path counts nothing.
    assert report["admission"] == {}


def test_reset_cache_stats_zeroes_governance_counters(stats_warehouse):
    stats_warehouse.admission.set_budget("analyst", 100.0)
    session = stats_warehouse.session(tenant="analyst")
    session.submit(
        "SELECT count(*) AS c FROM orders", sla_constraint(15.0)
    ).result()
    report = stats_warehouse.describe_caches()
    assert report["admission"]["analyst"]["admit"] == 1
    stats_warehouse.reset_cache_stats()
    report = stats_warehouse.describe_caches()
    assert report["admission"] == {}
    assert report["plan_cache"]["policy_evictions"] == 0
    # Budgets survive a stats reset (only counters are zeroed).
    assert stats_warehouse.admission.budget_for("analyst") is not None


# --------------------------------------------------------------------- #
# Resilience surface (PR 6)
# --------------------------------------------------------------------- #
def test_warehouse_constructor_resilience_keyword():
    parameters = inspect.signature(CostIntelligentWarehouse).parameters
    assert "resilience" in parameters
    assert parameters["resilience"].default is None


def test_resilience_policy_field_snapshot():
    from repro import ResiliencePolicy, RetryPolicy

    assert [f.name for f in ResiliencePolicy.__dataclass_fields__.values()] == [
        "retry",
        "request_deadline_s",
        "stage_deadline_s",
        "degraded_fallback",
        "enabled",
    ]
    assert [f.name for f in RetryPolicy.__dataclass_fields__.values()] == [
        "max_attempts",
        "backoff_base_s",
        "backoff_multiplier",
        "jitter",
        "seed",
        "dollars_per_retry_s",
    ]


def test_describe_health_snapshot(stats_warehouse):
    """describe_health() is the resilience observability surface: retry
    and degraded counters, breaker states, and the tuning service's last
    swallowed error."""
    report = stats_warehouse.describe_health()
    assert set(report) == {
        "resilience",
        "durability",
        "breakers",
        "tuning",
        "faults",
    }
    assert set(report["durability"]) == {
        "journaled",
        "journal_records",
        "last_checkpoint_id",
        "records_since_checkpoint",
        "recovered",
        "records_replayed",
        "in_doubt_forward",
        "in_doubt_back",
    }
    assert report["durability"]["journaled"] is False
    assert report["durability"]["recovered"] is False
    assert set(report["breakers"]) == {"statsvc", "tuning"}
    for block in report["breakers"].values():
        assert set(block) == {"state", "consecutive_failures", "opens"}
        assert block["state"] == "closed"
    assert set(report["tuning"]) == {
        "cycles_run",
        "consecutive_failures",
        "last_error",
    }
    assert report["tuning"]["last_error"] is None
    assert report["faults"]["active"] is False
    assert report["resilience"]["enabled"] is True
    assert report["resilience"]["retries"] == 0
    assert report["resilience"]["degraded_queries"] == 0


def test_query_outcome_degraded_surface():
    from repro import QueryOutcome

    fields = {f.name for f in QueryOutcome.__dataclass_fields__.values()}
    assert {"degraded", "degraded_mode"} <= fields
    members = {name for name in dir(QueryHandle) if not name.startswith("_")}
    assert "degraded" in members  # retries is a per-instance counter


# --------------------------------------------------------------------- #
# Tuning surface (PR 4)
# --------------------------------------------------------------------- #
def test_tuning_service_signatures():
    propose = inspect.signature(TuningService.propose)
    assert list(propose.parameters) == ["self", "storage_budget_bytes"]
    assert list(inspect.signature(TuningService.apply).parameters) == [
        "self",
        "rec",
    ]
    assert list(inspect.signature(TuningService.apply_all).parameters) == [
        "self",
        "recommendations",
    ]
    assert list(inspect.signature(TuningService.rollback).parameters) == [
        "self",
        "rec",
    ]
    assert list(
        inspect.signature(TuningService.maybe_run_cycle).parameters
    ) == ["self"]


def test_tuning_policy_field_snapshot():
    assert [f.name for f in TuningPolicy.__dataclass_fields__.values()] == [
        "cadence_queries",
        "cadence_seconds",
        "tenant",
        "storage_budget_bytes",
        "min_forecast_observations",
        "auto_apply",
        "auto_apply_net_threshold",
        "auto_apply_break_even_hours",
    ]


def test_recommendation_lifecycle_surface():
    assert {state.name for state in RecommendationState} == {
        "PROPOSED",
        "ACCEPTED",
        "APPLYING",
        "APPLIED",
        "REJECTED",
        "ROLLED_BACK",
        "FAILED",
    }
    members = {"describe", "applied", "accepted"}
    assert members <= {
        name for name in dir(Recommendation) if not name.startswith("_")
    }


def test_tuning_actions_are_frozen_and_typed():
    import dataclasses

    for action_cls in (MaterializeView, Recluster, ResizeWarehouse):
        assert issubclass(action_cls, TuningAction)
        assert dataclasses.is_dataclass(action_cls)
        assert action_cls.__dataclass_params__.frozen
    assert MaterializeView.kind == "materialized-view"
    assert Recluster.kind == "recluster"
    assert ResizeWarehouse(target_nodes=8).name == "resize_warehouse_to_8"


def test_run_tuning_cycle_shim_signature_and_silence(stats_warehouse):
    """The legacy tuning entry point keeps its keyword surface and stays
    silent (shim, not a deprecation trap)."""
    signature = inspect.signature(CostIntelligentWarehouse.run_tuning_cycle)
    assert list(signature.parameters) == [
        "self",
        "apply",
        "storage_budget_bytes",
    ]
    for i in range(3):
        stats_warehouse.submit(
            "SELECT count(*) AS c FROM orders WHERE o_totalprice > 100",
            sla_constraint(15.0),
            template="counts",
            at_time=float(i * 60),
        )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        proposals = stats_warehouse.run_tuning_cycle(apply=False)
    assert proposals is stats_warehouse.tuning.last_proposals
