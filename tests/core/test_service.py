"""The serving-layer request model: QueryRequest / QueryHandle / Session
and the concurrent ServingScheduler."""

import dataclasses

import pytest

from repro.core.service import (
    QueryHandle,
    QueryRequest,
    QueryState,
    ServingScheduler,
    Session,
    STATE_ORDER,
)
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.errors import QueryFailedError, ReproError
from repro.workloads.tpch_queries import instantiate
from repro.workloads.tpch_stats import synthetic_tpch_catalog

Q_COUNT = "SELECT count(*) AS c FROM orders"


@pytest.fixture()
def warehouse():
    return CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(
            1.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
        )
    )


# ----------------------------- QueryRequest ---------------------------- #
def test_request_is_frozen():
    request = QueryRequest(sql=Q_COUNT, constraint=sla_constraint(10.0))
    with pytest.raises(dataclasses.FrozenInstanceError):
        request.sql = "SELECT 1"


def test_request_replace_returns_new_copy():
    request = QueryRequest(sql=Q_COUNT, constraint=sla_constraint(10.0))
    tightened = request.replace(constraint=sla_constraint(2.0))
    assert request.constraint.latency_sla == 10.0
    assert tightened.constraint.latency_sla == 2.0
    assert tightened.sql == request.sql


# ------------------------------ lifecycle ------------------------------ #
def test_handle_lifecycle_and_stage_timings(warehouse):
    session = warehouse.session()
    handle = session.submit(QueryRequest(sql=Q_COUNT, constraint=sla_constraint(10.0)))
    assert handle.state is QueryState.DONE
    assert handle.done and not handle.failed
    # Every stage the request went through left a wall-time entry.
    for stage in ("queued", "bind", "plan", "simulate", "finalize"):
        assert handle.stage_timings[stage] >= 0.0
    assert handle.result().sql == Q_COUNT
    assert "done" in handle.describe()


def test_simulate_false_skips_simulated_state(warehouse):
    session = warehouse.session()
    handle = session.submit(
        QueryRequest(sql=Q_COUNT, constraint=sla_constraint(10.0), simulate=False)
    )
    assert handle.state is QueryState.DONE
    assert "simulate" not in handle.stage_timings
    assert handle.result().sim is None


def test_state_order_is_the_documented_progression():
    assert STATE_ORDER == (
        QueryState.QUEUED,
        QueryState.BOUND,
        QueryState.PLANNED,
        QueryState.SIMULATED,
        QueryState.DONE,
    )


def test_unfinished_handle_result_raises():
    handle = QueryHandle(QueryRequest(sql=Q_COUNT))
    with pytest.raises(ReproError):
        handle.result()


# ------------------------------- Session ------------------------------- #
def test_session_default_constraint_applies(warehouse):
    session = warehouse.session(constraint=sla_constraint(15.0))
    outcome = session.submit(Q_COUNT).result()
    assert outcome.constraint.latency_sla == 15.0
    # An explicit request constraint wins over the session default.
    budgeted = session.submit(
        QueryRequest(sql=Q_COUNT, constraint=budget_constraint(0.5))
    ).result()
    assert budgeted.constraint.budget == 0.5


def test_submit_without_any_constraint_fails_the_handle(warehouse):
    """Session.submit never raises: even resolution failures (no
    constraint anywhere) come back on the handle."""
    session = warehouse.session()
    handle = session.submit(Q_COUNT)
    assert handle.state is QueryState.FAILED
    assert "constraint" in str(handle.error)
    with pytest.raises(ReproError):
        handle.result()


def test_resolution_failure_in_batch_spares_other_items(warehouse):
    """A constraint-less request inside a fail_fast=False batch fails
    its own handle (with its index) without aborting the rest."""
    session = warehouse.session()  # no default constraint
    handles = session.submit_many(
        [
            QueryRequest(sql=Q_COUNT, constraint=sla_constraint(15.0)),
            QueryRequest(sql=Q_COUNT),  # unresolvable: no constraint
            QueryRequest(sql=Q_COUNT, constraint=budget_constraint(0.5)),
        ]
    )
    assert [h.state for h in handles] == [
        QueryState.DONE,
        QueryState.FAILED,
        QueryState.DONE,
    ]
    assert handles[1].error.index == 1
    with pytest.raises(ReproError):
        session.submit_many([QueryRequest(sql=Q_COUNT)], fail_fast=True)


def test_resolve_is_idempotent_for_namespaced_templates(warehouse):
    """Resubmitting handle.request (already resolved) must not
    double-prefix the template and split its family."""
    session = warehouse.session(
        constraint=sla_constraint(15.0), template_namespace="acme"
    )
    first = session.submit(QueryRequest(sql=Q_COUNT, template="counts"))
    again = session.submit(first.request)
    assert first.result().record.template == "acme.counts"
    assert again.result().record.template == "acme.counts"
    assert set(session.logs.by_template()) == {"acme.counts"}


def test_template_namespace_prefixes_log_records(warehouse):
    session = warehouse.session(
        tenant="acme", constraint=sla_constraint(15.0), template_namespace="acme"
    )
    session.submit(QueryRequest(sql=Q_COUNT, template="counts"))
    record = next(iter(session.logs))
    assert record.template == "acme.counts"
    assert "acme.counts" in warehouse.template_queries


def test_tenant_log_views_are_isolated(warehouse):
    alpha = warehouse.session(tenant="alpha", constraint=sla_constraint(15.0))
    beta = warehouse.session(tenant="beta", constraint=sla_constraint(15.0))
    alpha.submit(Q_COUNT)
    alpha.submit(Q_COUNT)
    beta.submit(Q_COUNT)
    assert len(alpha.logs) == 2
    assert len(beta.logs) == 1
    assert len(warehouse.logs) == 3
    assert all(r.tenant == "alpha" for r in alpha.logs)
    assert set(beta.logs.by_template()) == {"adhoc"}


def test_tenant_dollars_roll_up_into_warehouse_billing(warehouse):
    alpha = warehouse.session(tenant="alpha", constraint=sla_constraint(15.0))
    beta = warehouse.session(tenant="beta", constraint=budget_constraint(0.5))
    alpha.submit(Q_COUNT)
    beta.submit(instantiate("q1_pricing_summary", seed=1))
    beta.submit(instantiate("q6_revenue_forecast", seed=1))
    assert alpha.dollars_spent == alpha.logs.total_dollars > 0
    assert beta.bill.queries == 2
    assert warehouse.billed_dollars == pytest.approx(
        alpha.dollars_spent + beta.dollars_spent
    )
    assert warehouse.billed_dollars == pytest.approx(warehouse.logs.total_dollars)
    assert "alpha" in warehouse.describe_billing()


def test_session_plan_uses_default_constraint(warehouse):
    session = warehouse.session(constraint=sla_constraint(15.0))
    bound, choice = session.plan(Q_COUNT)
    assert choice.dop_plan.feasible
    with pytest.raises(ReproError):
        warehouse.session().plan(Q_COUNT)


# --------------------------- error reporting --------------------------- #
def test_failed_item_reports_index_and_sql_prefix(warehouse):
    session = warehouse.session(constraint=sla_constraint(15.0))
    handles = session.submit_many(
        [Q_COUNT, "SELECT broken FROM no_such_table", Q_COUNT]
    )
    assert [h.state for h in handles] == [
        QueryState.DONE,
        QueryState.FAILED,
        QueryState.DONE,
    ]
    error = handles[1].error
    assert isinstance(error, QueryFailedError)
    assert error.index == 1
    assert "no_such_table" in error.sql_prefix
    assert "query #1" in str(error)
    with pytest.raises(QueryFailedError):
        handles[1].result()
    # The rest of the batch completed and was logged.
    assert len(warehouse.logs) == 2


def test_fail_fast_aborts_the_batch(warehouse):
    session = warehouse.session(constraint=sla_constraint(15.0))
    with pytest.raises(QueryFailedError) as excinfo:
        session.submit_many(
            ["SELECT broken FROM no_such_table", Q_COUNT], fail_fast=True
        )
    assert excinfo.value.index == 0


def test_warehouse_submit_shim_raises_original_error_types(warehouse):
    """Legacy contract: warehouse.submit() surfaces the original error
    class (BindError, ...), not the QueryFailedError serving wrapper."""
    from repro.errors import BindError

    with pytest.raises(BindError):
        warehouse.submit("SELECT x FROM no_such_table", sla_constraint(15.0))


def test_warehouse_submit_many_keeps_abort_behavior(warehouse):
    with pytest.raises(QueryFailedError) as excinfo:
        warehouse.submit_many(
            [Q_COUNT, "SELECT broken FROM no_such_table"],
            constraint=sla_constraint(15.0),
        )
    assert excinfo.value.index == 1
    assert "broken" in excinfo.value.sql_prefix


def test_sql_prefix_is_truncated():
    long_sql = "SELECT " + ", ".join(f"col_{i}" for i in range(60)) + " FROM t"
    error = QueryFailedError("boom", index=3, sql=long_sql)
    assert len(error.sql_prefix) == 80
    assert error.sql_prefix.endswith("...")


# ------------------------ concurrency parity --------------------------- #
def _parity_workload():
    templates = ("q1_pricing_summary", "q6_revenue_forecast", "scan_orders")
    requests = []
    seed = 1
    for round_index in range(2):
        for template in templates:
            constraint = (
                sla_constraint(25.0) if round_index % 2 == 0 else budget_constraint(0.05)
            )
            requests.append(
                QueryRequest(
                    sql=instantiate(template, seed=seed),
                    constraint=constraint,
                    template=template,
                )
            )
            seed += 1
    return requests


def _fingerprint(handle):
    outcome = handle.result()
    estimate = outcome.choice.dop_plan.estimate
    return (
        outcome.record,  # full log record: id, timestamp, dollars, tenant...
        tuple(sorted(outcome.choice.dop_plan.dops.items())),
        outcome.choice.variant_index,
        estimate.latency,
        estimate.total_dollars,
        outcome.latency,
        outcome.dollars,
    )


def test_threaded_scheduler_matches_sequential_bit_for_bit():
    """The acceptance gate: a literal-varying workload served by the
    threaded scheduler is bit-identical to sequential submission —
    plans, estimates, simulated outcomes, and the full log records in
    the same deterministic order — and per-tenant dollars sum to the
    warehouse bill."""
    catalog = synthetic_tpch_catalog(
        1.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )
    requests = _parity_workload()

    sequential_wh = CostIntelligentWarehouse(catalog=catalog)
    sequential = sequential_wh.session(tenant="acme").submit_many(
        requests, max_workers=1
    )
    threaded_wh = CostIntelligentWarehouse(catalog=catalog)
    threaded = threaded_wh.session(tenant="acme").submit_many(requests, max_workers=4)

    assert [h.state for h in sequential] == [h.state for h in threaded]
    for left, right in zip(sequential, threaded):
        assert _fingerprint(left) == _fingerprint(right)
    # Deterministic log ordering: identical record sequences.
    assert list(sequential_wh.logs) == list(threaded_wh.logs)
    # Tenant accounting rolls up identically.
    assert threaded_wh.billed_dollars == sequential_wh.billed_dollars
    assert threaded_wh.billed_dollars == pytest.approx(
        threaded_wh.logs.total_dollars
    )


def test_scheduler_rejects_bad_worker_count(warehouse):
    with pytest.raises(ReproError):
        ServingScheduler(warehouse.session(), max_workers=0)


def test_scheduler_timestamps_match_sequential_clock(warehouse):
    session = warehouse.session(constraint=sla_constraint(15.0))
    handles = session.submit_many(
        [
            QueryRequest(sql=Q_COUNT, at_time=10.0),
            QueryRequest(sql=Q_COUNT),  # inherits the advanced clock
            QueryRequest(sql=Q_COUNT, at_time=30.0),
        ],
        max_workers=2,
    )
    assert [h.result().record.timestamp for h in handles] == [10.0, 10.0, 30.0]
    assert warehouse.clock == 30.0


# ---------------------- satellite regressions -------------------------- #
def test_template_bindings_invisible_after_stats_change(warehouse):
    """The tuning advisor must never see bound queries from a previous
    stats version (regression: invalidate_plan_cache left them)."""
    session = warehouse.session(constraint=sla_constraint(15.0))
    session.submit(QueryRequest(sql=Q_COUNT, template="counts"))
    assert "counts" in warehouse.template_queries
    warehouse.catalog.set_clustering("orders", "o_orderdate", 0.2)
    assert warehouse.template_queries == {}
    # Serving the template again under the new stats restores it.
    session.submit(QueryRequest(sql=Q_COUNT, template="counts"))
    assert "counts" in warehouse.template_queries


def test_invalidate_plan_cache_clears_template_bindings(warehouse):
    session = warehouse.session(constraint=sla_constraint(15.0))
    session.submit(QueryRequest(sql=Q_COUNT, template="counts"))
    warehouse.invalidate_plan_cache()
    assert warehouse.template_queries == {}


def test_stage_scaler_does_not_mutate_shared_sim_config(warehouse):
    """_simulate must derive the materializing config via
    dataclasses.replace, leaving the warehouse's SimConfig untouched."""
    assert warehouse.sim_config.materialize_exchanges is False
    warehouse.submit(
        instantiate("q12_shipmode", seed=1),
        sla_constraint(25.0),
        policy="stage-scaler",
    )
    assert warehouse.sim_config.materialize_exchanges is False


def test_optimizer_reset_counters(warehouse):
    warehouse.submit(Q_COUNT, sla_constraint(15.0))
    optimizer = warehouse.optimizer
    assert optimizer.dag_plans > 0
    assert sum(optimizer.stage_times.values()) > 0
    warehouse.reset_cache_stats()
    assert optimizer.dag_plans == 0
    assert optimizer.dag_memo_hits == 0
    assert sum(optimizer.stage_times.values()) == 0.0
