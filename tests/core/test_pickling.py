"""Pickle round-trips for everything that crosses a worker pipe.

Process-sharded serving ships :class:`StageTask` to planner workers and
:class:`StagedPlan` back; inside those ride bound queries, plan
choices, skeleton trees, constraints, and parameterized-SQL keys.  A
field that silently stops pickling turns into a runtime protocol
failure on every sharded dispatch, so each wire type gets an explicit
round-trip here — value equality where the type defines it, behavioral
equivalence where it does not.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.core.sharding import (
    RefreshState,
    StagedPlan,
    StageTask,
    WorkerFailure,
    WorkerSpec,
)
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.errors import ReproError
from repro.sql.binder import Binder
from repro.sql.parameterize import parameterize_sql
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SQL = "SELECT count(*) AS c FROM orders WHERE o_totalprice > 1000"
JOIN_SQL = (
    "SELECT n_name, count(*) AS cnt FROM customer, nation "
    "WHERE c_nationkey = n_nationkey GROUP BY n_name"
)


@pytest.fixture(scope="module")
def catalog():
    return synthetic_tpch_catalog(1.0)


@pytest.fixture(scope="module")
def optimizer(catalog):
    return BiObjectiveOptimizer(catalog, CostEstimator())


@pytest.fixture(scope="module")
def bound(catalog):
    return Binder(catalog).bind_sql(JOIN_SQL)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def plan_snapshot(choice):
    estimate = choice.dop_plan.estimate
    return (
        choice.join_tree.describe(),
        dict(choice.dop_plan.dops),
        estimate.latency,
        estimate.total_dollars,
        estimate.machine_seconds,
        choice.variant_index,
    )


# ----------------------------- constraints ---------------------------- #
def test_constraints_roundtrip():
    for constraint in (sla_constraint(20.0), budget_constraint(0.5)):
        restored = roundtrip(constraint)
        assert restored == constraint
        assert restored.is_sla == constraint.is_sla


# --------------------------- parameterized keys ------------------------ #
def test_hashed_keys_roundtrip():
    parameterized = parameterize_sql(SQL)
    for key in (parameterized.template_key, parameterized.normalized):
        restored = roundtrip(key)
        assert restored == key
        assert hash(restored) == hash(key)
        assert type(restored) is type(key)


# ------------------------------ plan choice ---------------------------- #
def test_plan_choice_roundtrips_bit_identically(optimizer, bound):
    choice = optimizer.optimize(bound, sla_constraint(20.0))
    restored = roundtrip(choice)
    assert plan_snapshot(restored) == plan_snapshot(choice)


def test_bound_query_roundtrip_replans_identically(optimizer, bound):
    constraint = budget_constraint(1.0)
    baseline = optimizer.optimize(bound, constraint)
    replanned = optimizer.optimize(roundtrip(bound), constraint)
    assert plan_snapshot(replanned) == plan_snapshot(baseline)


# --------------------------- skeleton entries -------------------------- #
def test_skeleton_trees_roundtrip_and_replan(optimizer, bound):
    constraint = sla_constraint(20.0)
    trees = optimizer.variant_trees(bound)
    restored = roundtrip(trees)
    assert len(restored) == len(trees)
    assert [t.describe() for t in restored] == [t.describe() for t in trees]
    from_restored = optimizer.optimize(bound, constraint, skeleton_trees=restored)
    from_original = optimizer.optimize(bound, constraint, skeleton_trees=trees)
    assert plan_snapshot(from_restored) == plan_snapshot(from_original)


# ------------------------------ wire records --------------------------- #
def test_stage_task_roundtrip(optimizer, bound, catalog):
    parameterized = parameterize_sql(SQL)
    task = StageTask(
        task_id=7,
        sql=SQL,
        constraint=sla_constraint(20.0),
        template_key=parameterized.template_key,
        stats_version=catalog.version,
        skeleton_trees=optimizer.variant_trees(bound),
    )
    restored = roundtrip(task)
    assert restored.task_id == task.task_id
    assert restored.sql == task.sql
    assert restored.constraint == task.constraint
    assert restored.template_key == task.template_key
    assert restored.stats_version == task.stats_version
    assert len(restored.skeleton_trees) == len(task.skeleton_trees)


def test_staged_plan_roundtrip(optimizer, bound):
    choice = optimizer.optimize(bound, sla_constraint(20.0))
    plan = StagedPlan(
        task_id=7,
        bound=bound,
        choice=choice,
        new_skeleton_trees=optimizer.variant_trees(bound),
        bind_s=0.001,
        optimize_s=0.002,
        warm_bind=True,
        warm_skeleton=False,
    )
    restored = roundtrip(plan)
    assert restored.task_id == plan.task_id
    assert plan_snapshot(restored.choice) == plan_snapshot(choice)
    assert restored.warm_bind and not restored.warm_skeleton


def test_worker_failure_roundtrip_preserves_typed_error():
    failure = WorkerFailure(
        task_id=3, error=ReproError("bad stats"), stage="bind"
    )
    restored = roundtrip(failure)
    assert isinstance(restored.error, ReproError)
    assert str(restored.error) == "bad stats"
    assert restored.stage == "bind"


def test_worker_spec_and_refresh_state_roundtrip(catalog):
    spec = WorkerSpec(
        worker_index=1,
        seed=1234,
        catalog=catalog,
        hardware=None,
        max_dop=64,
        explore_bushy=False,
        applied_mvs=(),
        skeleton_seed=(),
        fingerprint=(catalog.version, (), 0),
    )
    restored = roundtrip(spec)
    assert restored.worker_index == 1
    assert restored.catalog.version == catalog.version
    assert restored.fingerprint == spec.fingerprint

    refresh = RefreshState(
        catalog=catalog, applied_mvs=(), fingerprint=(catalog.version, (), 0)
    )
    restored = roundtrip(refresh)
    assert restored.fingerprint == refresh.fingerprint


# A restored catalog must bind + plan identically: workers receive the
# catalog through WorkerSpec/RefreshState pickles, and any drift here
# would silently break sharded/threaded plan parity.
def test_catalog_roundtrip_plans_identically(catalog, optimizer):
    restored_catalog = roundtrip(catalog)
    assert restored_catalog.version == catalog.version
    bound = Binder(restored_catalog).bind_sql(JOIN_SQL)
    remote = BiObjectiveOptimizer(restored_catalog, CostEstimator())
    constraint = sla_constraint(20.0)
    baseline = optimizer.optimize(Binder(catalog).bind_sql(JOIN_SQL), constraint)
    assert plan_snapshot(remote.optimize(bound, constraint)) == plan_snapshot(
        baseline
    )
