"""Unit tests for the resilience primitives (PR 6).

RetryPolicy (deterministic seeded backoff, budget-aware attempts),
Deadline (virtual time), CircuitBreaker (call-counted cooldown),
StageGuard (retry/deadline/fault orchestration), and the picklable
cause-chain contract on the serving errors.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilienceStats,
    RetryPolicy,
    StageGuard,
)
from repro.errors import (
    AdmissionDeniedError,
    BindError,
    DeadlineExceededError,
    QueryFailedError,
    ReproError,
    RetryExhaustedError,
    TransientError,
)
from repro.testing import FaultDecision


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #
def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=2.0, jitter=0.25)
    first = policy.backoff_s("optimize", 1)
    assert first == policy.backoff_s("optimize", 1)  # pure function
    assert RetryPolicy(seed=0).backoff_s("bind", 2) == RetryPolicy(
        seed=0
    ).backoff_s("bind", 2)
    # Jitter stays within [base*(1-j), base*(1+j)], growing exponentially.
    for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4)):
        value = policy.backoff_s("optimize", attempt)
        assert base * 0.75 <= value <= base * 1.25


def test_backoff_seed_and_stage_change_the_draw():
    a = RetryPolicy(seed=1, jitter=0.25)
    b = RetryPolicy(seed=2, jitter=0.25)
    assert a.backoff_s("bind", 1) != b.backoff_s("bind", 1)
    assert a.backoff_s("bind", 1) != a.backoff_s("optimize", 1)


def test_backoff_without_jitter_is_exact():
    policy = RetryPolicy(backoff_base_s=0.05, backoff_multiplier=3.0, jitter=0.0)
    assert policy.backoff_s("simulate", 1) == 0.05
    assert policy.backoff_s("simulate", 2) == pytest.approx(0.15)


def test_attempts_for_shrinks_with_admission_pressure():
    policy = RetryPolicy(max_attempts=3)
    assert policy.attempts_for(0) == 3  # ADMIT
    assert policy.attempts_for(1) == 2  # THROTTLE
    assert policy.attempts_for(2) == 1  # DEFER
    assert policy.attempts_for(3) == 1  # DENY: still served once, no retries
    assert policy.attempts_for(-5) == 3  # garbage pressure is clamped


def test_retry_policy_validation():
    with pytest.raises(ReproError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ReproError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ReproError):
        RetryPolicy(jitter=1.5)


# --------------------------------------------------------------------- #
# Deadline
# --------------------------------------------------------------------- #
def test_deadline_none_never_expires():
    deadline = Deadline(None)
    deadline.charge(1e9)
    assert not deadline.expired
    deadline.check("optimize")  # no raise


def test_deadline_virtual_charge_trips_expiry():
    deadline = Deadline(1.0)
    assert not deadline.expired
    deadline.charge(0.4)
    assert not deadline.expired
    deadline.charge(0.7)
    assert deadline.expired
    with pytest.raises(DeadlineExceededError) as excinfo:
        deadline.check("optimize")
    assert excinfo.value.stage == "optimize"
    assert excinfo.value.deadline_s == 1.0
    assert excinfo.value.elapsed_s >= 1.0


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ReproError):
        Deadline(0.0)


# --------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------- #
def test_breaker_opens_after_threshold_and_cools_down_by_calls():
    breaker = CircuitBreaker("dep", failure_threshold=3, cooldown_calls=2)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 1
    # Cooldown counts *denied calls*: first denial, then the probe.
    assert not breaker.allow()
    assert breaker.allow()  # second call flips to HALF_OPEN: the probe
    assert breaker.state is BreakerState.HALF_OPEN


def test_breaker_probe_success_closes_probe_failure_reopens():
    breaker = CircuitBreaker("dep", failure_threshold=1, cooldown_calls=1)
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.allow()  # probe
    breaker.record_failure()  # probe failed: reopen immediately
    assert breaker.state is BreakerState.OPEN
    assert breaker.opens == 2
    assert breaker.allow()  # cooldown_calls=1: straight back to probe
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.consecutive_failures == 0
    assert breaker.allow()


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker("dep", failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED  # streak broken, never 2 in a row


def test_breaker_snapshot_shape():
    breaker = CircuitBreaker("dep")
    assert breaker.snapshot() == {
        "state": "closed",
        "consecutive_failures": 0,
        "opens": 0,
    }


# --------------------------------------------------------------------- #
# StageGuard
# --------------------------------------------------------------------- #
class Flaky:
    """Fails with ``error`` the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, error: Exception | None = None):
        self.failures = failures
        self.calls = 0
        self.error = error or TransientError("blip")

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


def test_guard_passthrough_without_faults():
    guard = StageGuard(ResiliencePolicy(), attempts=3)
    assert guard.run("bind", lambda: 42) == 42
    assert guard.retries == 0


def test_guard_retries_transient_then_succeeds_and_meters_dollars():
    charged = []
    stats = ResilienceStats()
    policy = ResiliencePolicy(retry=RetryPolicy(jitter=0.0, backoff_base_s=0.5))
    guard = StageGuard(
        policy, attempts=3, charge_retry=charged.append, stats=stats
    )
    flaky = Flaky(2)
    assert guard.run("optimize", flaky) == "ok"
    assert flaky.calls == 3
    assert guard.retries == 2
    # jitter=0: backoffs are exactly 0.5s and 1.0s at $0.01/s.
    assert charged == pytest.approx([0.005, 0.01])
    snap = stats.snapshot()
    assert snap["retries"] == 2
    assert snap["retry_dollars"] == pytest.approx(0.015)
    # Modeled backoff charged the request deadline as virtual time.
    assert guard.deadline.elapsed_s >= 1.5


def test_retry_stats_accumulate_in_exact_ledger_units():
    """Regression for the analyzer's float-billing rule: retry metering
    must accumulate integral ledger units, not float ``+=``, so the
    health snapshot matches the journaled per-tenant charges exactly."""
    from repro.util.units import to_ledger_units

    stats = ResilienceStats()
    charges = [0.1] * 10 + [0.005, 1e-9, 123.456]
    for dollars in charges:
        stats.note_retry(dollars)
    expected_units = sum(to_ledger_units(d) for d in charges)
    assert stats._retry_units == expected_units
    # Notably 10 * $0.10 contributes exactly 1.0 despite 0.1 being
    # inexact in binary — integer accumulation has no drift.
    snap = stats.snapshot()
    assert snap["retry_dollars"] == stats.retry_dollars
    assert stats.retry_dollars * (1 << 80) == float(expected_units)
    stats.reset()
    assert stats._retry_units == 0
    assert stats.retry_dollars == 0.0


def test_guard_exhaustion_raises_typed_error_with_cause_summary():
    guard = StageGuard(ResiliencePolicy(), attempts=2)
    with pytest.raises(RetryExhaustedError) as excinfo:
        guard.run("simulate", Flaky(99))
    error = excinfo.value
    assert error.stage == "simulate"
    assert error.attempts == 2
    assert error.cause_type == "TransientError"
    assert error.cause_message == "blip"
    assert isinstance(error.__cause__, TransientError)


def test_guard_single_attempt_surfaces_original_error():
    """attempts=1 (tenant out of retry budget) must not claim exhaustion."""
    guard = StageGuard(ResiliencePolicy(), attempts=1)
    with pytest.raises(TransientError):
        guard.run("bind", Flaky(99))


def test_guard_never_retries_deterministic_errors():
    flaky = Flaky(99, error=BindError("no such column"))
    guard = StageGuard(ResiliencePolicy(), attempts=3)
    with pytest.raises(BindError):
        guard.run("bind", flaky)
    assert flaky.calls == 1
    assert guard.retries == 0


def test_guard_injected_latency_charges_deadline():
    decisions = iter(
        [FaultDecision(point="optimize", invocation=0, latency_s=5.0)]
    )
    policy = ResiliencePolicy(request_deadline_s=1.0)
    guard = StageGuard(
        policy, attempts=3, fault_decision=lambda stage: next(decisions, None)
    )
    with pytest.raises(DeadlineExceededError) as excinfo:
        guard.run("optimize", lambda: "never reached")
    assert excinfo.value.stage == "optimize"


def test_guard_stage_deadline_applies_to_named_stage_only():
    policy = ResiliencePolicy(
        retry=RetryPolicy(jitter=0.0, backoff_base_s=2.0),
        stage_deadline_s={"simulate": 1.0},
    )
    # A retry backoff of 2s blows the 1s simulate stage deadline...
    guard = StageGuard(policy, attempts=3)
    with pytest.raises(DeadlineExceededError):
        guard.run("simulate", Flaky(99))
    # ...but the same failure pattern on an unbounded stage just retries.
    guard = StageGuard(policy, attempts=3)
    assert guard.run("optimize", Flaky(2)) == "ok"


def test_guard_deadline_hits_counted_in_stats():
    stats = ResilienceStats()
    policy = ResiliencePolicy(request_deadline_s=0.5)
    guard = StageGuard(policy, attempts=1, stats=stats)
    guard.deadline.charge(1.0)
    with pytest.raises(DeadlineExceededError):
        guard.run("bind", lambda: "x")
    assert stats.snapshot()["deadline_hits"] == 1


# --------------------------------------------------------------------- #
# Picklable cause chains (satellite: errors cross process boundaries)
# --------------------------------------------------------------------- #
def test_query_failed_error_pickles_with_cause_summary():
    cause = BindError("unknown column 'x'")
    error = QueryFailedError(
        "bind failed", index=3, sql="SELECT x FROM t", cause=cause, stage="bind"
    )
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is QueryFailedError
    assert str(clone) == str(error)
    assert clone.index == 3
    assert clone.stage == "bind"
    assert clone.cause_type == "BindError"
    assert clone.cause_message == "unknown column 'x'"
    # The live exception object is in-process only.
    assert clone.cause is None
    assert error.cause is cause


def test_admission_denied_error_pickles_round_trip():
    error = AdmissionDeniedError(
        "budget exhausted",
        tenant="analyst",
        spent_dollars=12.5,
        budget_dollars=10.0,
        index=1,
        sql="SELECT 1",
    )
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is AdmissionDeniedError
    assert clone.tenant == "analyst"
    assert clone.spent_dollars == 12.5
    assert clone.budget_dollars == 10.0
    assert clone.index == 1
    assert str(clone) == str(error)


def test_unpicklable_cause_does_not_break_handle_errors():
    import threading

    cause = TransientError("holds a lock")
    cause.lock = threading.Lock()  # unpicklable payload on the cause
    error = QueryFailedError("stage failed", cause=cause, stage="simulate")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.cause_type == "TransientError"
    assert clone.cause is None
