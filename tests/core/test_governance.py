"""Tests for the resource-governance layer (core/governance.py).

Covers both halves: retention policies threaded through the lock-striped
plan caches (LRU parity with the pre-governance eviction, cost-aware
survival of hot templates under pressure, cache warming), and
budget-driven tenant admission (verdict escalation, denial isolation,
deferred re-admission, throttled scheduling parity).
"""

import random
from collections import OrderedDict

import pytest

from repro.core.governance import (
    AdmissionController,
    AdmissionVerdict,
    CostAwarePolicy,
    LruPolicy,
    TemplateFrequencyProvider,
    TenantBudget,
    make_retention_policy,
    rank_by_forecast,
)
from repro.core.plan_cache import PlanCache, SkeletonCache
from repro.core.service import QueryRequest, QueryState
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.errors import AdmissionDeniedError, ReproError
from repro.workloads.tpch_queries import instantiate, template_names
from repro.workloads.tpch_stats import synthetic_tpch_catalog

CONSTRAINT = sla_constraint(15.0)


@pytest.fixture(scope="module")
def catalog():
    return synthetic_tpch_catalog(1.0)


def fresh_warehouse(catalog, **kwargs) -> CostIntelligentWarehouse:
    return CostIntelligentWarehouse(catalog=catalog, **kwargs)


def quick_request(sql: str, template: str = "adhoc", **kwargs) -> QueryRequest:
    return QueryRequest(sql=sql, template=template, simulate=False, **kwargs)


# --------------------------------------------------------------------- #
# Retention: LRU parity
# --------------------------------------------------------------------- #
class ReferenceLru:
    """The pre-governance eviction semantics, verbatim: one OrderedDict,
    move-to-end on hit/store, popitem(last=False) over capacity."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key):
        found = self.entries.get(key)
        if found is None:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return found

    def store(self, key, value):
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
            self.evictions += 1


def test_lru_policy_parity_with_pre_governance_eviction():
    """Random lookup/store traffic over a single-stripe cache: the
    pluggable LruPolicy must reproduce the hardcoded eviction exactly —
    same hits, misses, evictions, same surviving keys in order."""
    rng = random.Random(7)
    cache = PlanCache(capacity=8, policy=LruPolicy())
    reference = ReferenceLru(capacity=8)
    assert cache.stripe_count == 1
    for step in range(2000):
        key = ("q", rng.randrange(24))
        if rng.random() < 0.5:
            assert (cache.lookup(key) is None) == (reference.lookup(key) is None)
        else:
            cache.store(key, "bound", f"choice-{step}")
            reference.store(key, ("bound", f"choice-{step}"))
    assert cache.hits == reference.hits
    assert cache.misses == reference.misses
    assert cache.evictions == reference.evictions
    assert list(cache._stripes[0].entries) == list(reference.entries)


def test_default_policy_is_lru_and_counted():
    cache = SkeletonCache(capacity=1)
    assert cache.policy.name == "lru"
    cache.store("a", ("tree-a",))
    cache.store("b", ("tree-b",))
    assert cache.lookup("a") is None
    assert cache.policy.evictions == 1
    assert cache.evictions == 1
    assert "lru" in cache.describe()
    cache.reset_stats()
    assert cache.policy.evictions == 0
    # The striping counter and the policy counter stay in lockstep.
    assert cache.evictions == 0


def test_sequential_lru_pinned_at_single_stripe_capacity():
    """Exact eviction order at capacity on one stripe: least recently
    *used* (not least recently stored) leaves first."""
    cache = PlanCache(capacity=2)
    cache.store("a", "b", "c")
    cache.store("x", "y", "z")
    assert cache.lookup("a") is not None  # refresh "a": now "x" is LRU
    cache.store("n", "e", "w")  # evicts "x"
    assert cache.lookup("x") is None
    assert cache.lookup("a") is not None
    assert cache.lookup("n") is not None


# --------------------------------------------------------------------- #
# Retention: cost-aware
# --------------------------------------------------------------------- #
def test_cost_aware_keeps_hot_template_under_pressure():
    """At capacity on one stripe, pressure that ages a hot template out
    of plain LRU leaves it untouched under the cost-aware policy."""
    rates = {"hot": 60.0, "cold": 0.5}
    lru = SkeletonCache(capacity=2, policy=LruPolicy())
    aware = SkeletonCache(
        capacity=2, policy=CostAwarePolicy(lambda template: rates[template])
    )
    for cache in (lru, aware):
        cache.store("hot-key", ("hot-tree",), template="hot", cost_s=0.02)
        for index in range(4):  # sustained cold pressure
            cache.store(
                f"cold-{index}", ("cold-tree",), template="cold", cost_s=0.02
            )
    assert lru.lookup("hot-key") is None  # recency aged it out
    assert aware.lookup("hot-key") is not None  # forecast value kept it
    # The newest cold entry was admitted (it displaced an older cold
    # entry, never itself: store-time metadata competes in the entry's
    # own eviction round).
    assert aware.lookup("cold-3") is not None
    assert aware.policy.evictions == lru.policy.evictions == 3


def test_cost_aware_degrades_to_lru_without_signal():
    """No recorded metadata / no forecast: scores tie at zero and the
    victim falls back to exact LRU order."""
    aware = PlanCache(capacity=2, policy=CostAwarePolicy(lambda template: 0.0))
    aware.store("a", "b", "c")
    aware.store("x", "y", "z")
    assert aware.lookup("a") is not None
    aware.store("n", "e", "w")
    assert aware.lookup("x") is None
    assert aware.lookup("a") is not None


def test_cost_aware_meta_follows_evictions_and_invalidation():
    policy = CostAwarePolicy(lambda template: 1.0)
    cache = PlanCache(capacity=2, policy=policy)
    cache.store("a", "b", "c", template="t", cost_s=0.5)
    assert policy.score("a") > 0
    cache.store("b", "b", "c")
    cache.store("c", "b", "c")  # evicts "b": zero score, oldest of the zeros
    assert cache.lookup("b") is None
    assert cache.lookup("a") is not None  # the scored entry survived
    policy.on_evict("a")
    assert policy.score("a") == 0.0  # eviction drops the metadata
    cache.store("d", "b", "c", template="t", cost_s=0.5)
    cache.invalidate()
    assert policy.score("d") == 0.0  # clear() dropped everything


def test_cost_aware_meta_never_leaks_under_churn():
    """Literal-varying traffic stores a unique scored key per arrival;
    the policy's metadata must track cache residency, not history."""
    policy = CostAwarePolicy(lambda template: 1.0)
    cache = PlanCache(capacity=2, policy=policy)
    for index in range(100):
        cache.store(f"key-{index}", "bound", "choice", template="t", cost_s=0.1)
    assert len(cache) == 2
    assert len(policy._meta) == 2  # one record per resident entry


def test_make_retention_policy_names_and_errors():
    assert make_retention_policy("lru").name == "lru"
    assert make_retention_policy("cost-aware").name == "cost-aware"
    custom = make_retention_policy(LruPolicy)
    assert isinstance(custom, LruPolicy)
    with pytest.raises(ReproError):
        make_retention_policy("mru")
    with pytest.raises(ReproError):
        make_retention_policy(lambda: object())


# --------------------------------------------------------------------- #
# Retention: end-to-end over the warehouse
# --------------------------------------------------------------------- #
def test_warehouse_cost_aware_beats_lru_on_hot_template(catalog):
    """Serving-path version of the survival test: a hot template under
    forecast-visible traffic keeps hitting the skeleton cache that plain
    LRU keeps missing, and the served plans stay bit-identical."""
    names = list(template_names())
    hot, cold = names[0], names[1:]
    hit_rates = {}
    hot_choices = {}
    for policy in ("lru", "cost-aware"):
        warehouse = fresh_warehouse(
            catalog, plan_cache_size=4, retention_policy=policy
        )
        session = warehouse.session(tenant="t", constraint=CONSTRAINT)
        seed, clock = 1, 0.0
        choices = []

        def arrive(name, *, seed, clock):
            handle = session.submit(
                quick_request(instantiate(name, seed=seed), template=name,
                              at_time=clock)
            )
            return handle.result().choice

        # Warm-up traffic builds the Statistics Service log the
        # forecasts read; the measured phase starts from clean counters.
        for index in range(40):
            name = hot if index % 5 == 0 else cold[index % len(cold)]
            arrive(name, seed=seed, clock=clock)
            seed += 1
            clock += 60.0
        warehouse.frequency.invalidate()
        warehouse.reset_cache_stats()
        for index in range(40):
            name = hot if index % 5 == 0 else cold[index % len(cold)]
            choice = arrive(name, seed=1000 + index, clock=clock)
            if name == hot:
                choices.append(choice)
            clock += 60.0
        hit_rates[policy] = warehouse.describe_caches()["skeleton_cache"]["hit_rate"]
        hot_choices[policy] = choices
    assert hit_rates["cost-aware"] > hit_rates["lru"]
    # Retention changes *when* we re-optimize, never *what* we serve.
    for lru_choice, aware_choice in zip(hot_choices["lru"], hot_choices["cost-aware"]):
        assert lru_choice.dop_plan.dops == aware_choice.dop_plan.dops
        assert (
            lru_choice.dop_plan.estimate.latency
            == aware_choice.dop_plan.estimate.latency
        )


def test_warm_cache_ranks_by_forecast_and_populates_skeletons(catalog):
    warehouse = fresh_warehouse(catalog, retention_policy="cost-aware")
    session = warehouse.session(tenant="t", constraint=CONSTRAINT)
    # Log traffic: q6 hot (3 of every 4 arrivals), q1 occasional.
    clock = 0.0
    for index in range(16):
        name = "q1_pricing_summary" if index % 4 == 0 else "q6_revenue_forecast"
        session.submit(
            quick_request(instantiate(name, seed=index + 1), template=name,
                          at_time=clock)
        )
        clock += 300.0
    warehouse.invalidate_plan_cache()
    warehouse.frequency.invalidate()
    workload = {
        "q1_pricing_summary": instantiate("q1_pricing_summary", seed=500),
        "q6_revenue_forecast": instantiate("q6_revenue_forecast", seed=500),
        "q12_shipmode": instantiate("q12_shipmode", seed=500),
    }
    warmed = warehouse.warm_cache(workload, CONSTRAINT, top=2)
    assert warmed == ["q6_revenue_forecast", "q1_pricing_summary"]
    assert len(warehouse.skeleton_cache) == 2
    # A fresh instantiation of a warmed template hits the skeleton level.
    warehouse.reset_cache_stats()
    session.submit(
        quick_request(
            instantiate("q6_revenue_forecast", seed=900),
            template="q6_revenue_forecast",
            at_time=clock,
        )
    ).result()
    assert warehouse.describe_caches()["skeleton_cache"]["hits"] == 1


def test_warm_cache_empty_log_preserves_input_order(catalog):
    warehouse = fresh_warehouse(catalog)
    workload = [
        ("scan_orders", instantiate("scan_orders", seed=1)),
        ("q6_revenue_forecast", instantiate("q6_revenue_forecast", seed=1)),
    ]
    assert warehouse.warm_cache(workload, CONSTRAINT) == [
        "scan_orders",
        "q6_revenue_forecast",
    ]


def test_rank_by_forecast_tiebreaks():
    ranked = rank_by_forecast(
        [("a", "sql-a"), ("b", "sql-b"), ("c", "sql-c")],
        rates={"b": 5.0},
        counts={"c": 3},
    )
    assert [family for family, _ in ranked] == ["b", "c", "a"]


# --------------------------------------------------------------------- #
# Frequency provider
# --------------------------------------------------------------------- #
def test_frequency_provider_refresh_and_mapping(catalog):
    warehouse = fresh_warehouse(catalog, retention_policy="cost-aware")
    session = warehouse.session(tenant="t", constraint=CONSTRAINT)
    provider = warehouse.frequency
    for index in range(6):
        session.submit(
            quick_request(
                instantiate("q6_revenue_forecast", seed=index + 1),
                template="revenue",
                at_time=index * 600.0,
            )
        ).result()
    provider.invalidate()
    rates = provider.family_rates()
    assert rates["revenue"] > 0
    # The serving path registered the literal-free template key.
    from repro.sql.parameterize import parameterize_sql

    key = parameterize_sql(instantiate("q6_revenue_forecast", seed=99)).template_key
    assert provider.rate_for(key) == rates["revenue"]
    assert provider.rate_for(("unknown",)) == 0.0


def test_frequency_provider_validates_refresh_interval():
    from repro.statsvc.logs import QueryLogStore

    with pytest.raises(ReproError):
        TemplateFrequencyProvider(QueryLogStore(), refresh_every=0)
    with pytest.raises(ReproError):
        TemplateFrequencyProvider(QueryLogStore(), window_records=0)


def test_adhoc_family_never_feeds_retention_scores(catalog):
    """Untemplated queries all log under the default 'adhoc' family; its
    aggregate arrival rate must not score their cache entries, or a
    stream of one-off queries would outscore (and evict) genuinely
    recurring templates."""
    warehouse = fresh_warehouse(catalog, retention_policy="cost-aware")
    session = warehouse.session(tenant="t", constraint=CONSTRAINT)
    for index in range(8):  # a busy ad-hoc stream (default template)
        session.submit(
            QueryRequest(
                sql=instantiate("q6_revenue_forecast", seed=index + 1),
                at_time=index * 60.0,
                simulate=False,
            )
        ).result()
    warehouse.frequency.invalidate()
    # The adhoc *family* is still forecast (its rate exists)...
    assert warehouse.frequency.family_rates().get("adhoc", 0.0) > 0
    # ...but no template key maps to it, so its entries score zero.
    from repro.sql.parameterize import parameterize_sql

    key = parameterize_sql(instantiate("q6_revenue_forecast", seed=99)).template_key
    assert warehouse.frequency.rate_for(key) == 0.0


def test_frequency_refresh_is_bounded_to_the_log_tail():
    """Rates are computed over the last window_records only, so the
    serving-path refresh never scales with total log history."""
    from repro.statsvc.logs import QueryLogStore, QueryRecord

    def record(query_id, timestamp, template):
        return QueryRecord(
            query_id=query_id,
            timestamp=timestamp,
            sql="SELECT 1",
            template=template,
            tables=(),
            columns=(),
            join_edges=(),
        )

    store = QueryLogStore()
    # Ancient history: a once-hot template that went quiet.
    for index in range(20):
        store.append(record(index + 1, index * 60.0, "legacy"))
    # Recent tail: only "current" arrives.
    for index in range(8):
        store.append(record(100 + index, 10_000.0 + index * 60.0, "current"))
    assert [r.template for r in store.tail(3)] == ["current"] * 3
    assert store.tail(0) == []
    provider = TemplateFrequencyProvider(store, window_records=8)
    provider.note_template("legacy", ("legacy-key",))
    provider.note_template("current", ("current-key",))
    rates = provider.family_rates()
    assert "legacy" not in rates  # outside the window entirely
    assert rates["current"] > 0
    assert provider.rate_for(("legacy-key",)) == 0.0


# --------------------------------------------------------------------- #
# Admission: verdicts
# --------------------------------------------------------------------- #
class _Bill:
    def __init__(self, total: float) -> None:
        self.total_dollars = total


def test_tenant_budget_verdict_escalation():
    budget = TenantBudget(dollars=10.0, throttle_at=0.5, defer_at=0.8)
    assert budget.verdict(0.0) is AdmissionVerdict.ADMIT
    assert budget.verdict(4.99) is AdmissionVerdict.ADMIT
    assert budget.verdict(5.0) is AdmissionVerdict.THROTTLE
    assert budget.verdict(8.0) is AdmissionVerdict.DEFER
    assert budget.verdict(10.0) is AdmissionVerdict.DENY
    assert budget.verdict(99.0) is AdmissionVerdict.DENY


def test_tenant_budget_validation():
    with pytest.raises(ReproError):
        TenantBudget(dollars=0.0)
    with pytest.raises(ReproError):
        TenantBudget(dollars=1.0, throttle_at=0.9, defer_at=0.5)
    with pytest.raises(ReproError):
        TenantBudget(dollars=1.0, throttle_at=0.0)


def test_controller_counts_and_defer_downgrade():
    controller = AdmissionController({"a": TenantBudget(5.0, defer_at=0.9)})
    assert controller.active
    assert controller.check("a", _Bill(0.0)) is AdmissionVerdict.ADMIT
    assert controller.check("a", _Bill(4.6)) is AdmissionVerdict.DEFER
    # No batch to defer behind: the same spend throttles instead.
    assert (
        controller.check("a", _Bill(4.6), defer_ok=False)
        is AdmissionVerdict.THROTTLE
    )
    assert controller.check("b", None) is AdmissionVerdict.ADMIT  # no budget
    assert controller.verdict_counts == {
        "a": {"admit": 1, "defer": 1, "throttle": 1},
        "b": {"admit": 1},
    }
    controller.reset_stats()
    assert controller.verdict_counts == {}
    assert controller.budget_for("a") is not None
    controller.remove_budget("a")
    assert not controller.active


def test_controller_accepts_bare_floats():
    controller = AdmissionController({"a": 2.5})
    assert controller.budget_for("a") == TenantBudget(dollars=2.5)
    error = controller.denied_error("a", _Bill(3.0), index=4, sql="SELECT 1")
    assert isinstance(error, AdmissionDeniedError)
    assert error.tenant == "a"
    assert error.spent_dollars == 3.0
    assert error.budget_dollars == 2.5
    assert error.index == 4


# --------------------------------------------------------------------- #
# Admission: end-to-end over the serving layer
# --------------------------------------------------------------------- #
def exhaust_tenant(warehouse, session) -> float:
    """Serve one query and set the tenant's budget below what it spent."""
    handle = session.submit(
        quick_request(instantiate("q6_revenue_forecast", seed=1))
    )
    spent = handle.result().dollars
    warehouse.admission.set_budget(session.tenant, spent / 2)
    return spent


def test_exhausted_budget_denies_with_typed_error(catalog):
    warehouse = fresh_warehouse(catalog)
    session = warehouse.session(tenant="a", constraint=CONSTRAINT)
    exhaust_tenant(warehouse, session)
    handle = session.submit(quick_request(instantiate("q6_revenue_forecast", seed=2)))
    assert handle.state is QueryState.DENIED
    assert handle.denied and handle.done and not handle.failed
    assert handle.admission is AdmissionVerdict.DENY
    assert isinstance(handle.error, AdmissionDeniedError)
    assert handle.error.tenant == "a"
    with pytest.raises(AdmissionDeniedError):
        handle.result()
    # Denied queries are not timestamped, logged, or billed.
    assert handle.timestamp is None
    assert len(warehouse.logs) == 1
    assert warehouse.billing["a"].queries == 1


def test_denial_is_isolated_per_tenant_in_mixed_batch(catalog):
    """One tenant running dry mid-batch must not fail the other tenant's
    in-flight items — fail_fast=False reports denial per handle."""
    warehouse = fresh_warehouse(catalog)
    poor = warehouse.session(tenant="poor", constraint=CONSTRAINT)
    exhaust_tenant(warehouse, poor)
    rich = warehouse.session(tenant="rich", constraint=CONSTRAINT)
    items = [
        quick_request(instantiate("q6_revenue_forecast", seed=3), tenant="poor"),
        quick_request(instantiate("q6_revenue_forecast", seed=4), tenant="rich"),
        quick_request(instantiate("q6_revenue_forecast", seed=5), tenant="poor"),
        quick_request(instantiate("q6_revenue_forecast", seed=6), tenant="rich"),
    ]
    handles = rich.submit_many(items, fail_fast=False)
    assert [h.state for h in handles] == [
        QueryState.DENIED,
        QueryState.DONE,
        QueryState.DENIED,
        QueryState.DONE,
    ]
    assert all(isinstance(h.error, AdmissionDeniedError) for h in handles if h.denied)
    assert warehouse.billing["rich"].queries == 2


def test_denial_raises_under_fail_fast(catalog):
    warehouse = fresh_warehouse(catalog)
    session = warehouse.session(tenant="a", constraint=CONSTRAINT)
    exhaust_tenant(warehouse, session)
    with pytest.raises(AdmissionDeniedError):
        session.submit_many(
            [quick_request(instantiate("q6_revenue_forecast", seed=7))],
            fail_fast=True,
        )


def test_fail_fast_denial_aborts_at_its_position(catalog):
    """Legacy abort-the-batch semantics: items submitted *before* the
    denied one are served, logged, and billed; items after are not."""
    warehouse = fresh_warehouse(catalog)
    poor = warehouse.session(tenant="poor", constraint=CONSTRAINT)
    exhaust_tenant(warehouse, poor)
    rich = warehouse.session(tenant="rich", constraint=CONSTRAINT)
    items = [
        quick_request(instantiate("q6_revenue_forecast", seed=61), tenant="rich"),
        quick_request(instantiate("q6_revenue_forecast", seed=62), tenant="poor"),
        quick_request(instantiate("q6_revenue_forecast", seed=63), tenant="rich"),
    ]
    with pytest.raises(AdmissionDeniedError):
        rich.submit_many(items, fail_fast=True, max_workers=1)
    assert warehouse.billing["rich"].queries == 1  # item 0 served
    assert len(warehouse.logs) == 2  # probe + item 0; item 2 never ran


def test_deferred_tenant_runs_after_batch_and_can_be_denied(catalog):
    """A tenant at the defer threshold is pushed behind the batch; its
    own deferred spend can then exhaust the budget mid-tail, denying the
    rest — other tenants unaffected."""
    warehouse = fresh_warehouse(catalog)
    meter = warehouse.session(tenant="metered", constraint=CONSTRAINT)
    probe = meter.submit(quick_request(instantiate("q6_revenue_forecast", seed=1)))
    spent = probe.result().dollars
    # Spend sits in [defer_at, 1.0) of budget; one more query exhausts it.
    warehouse.admission.set_budget(
        "metered", TenantBudget(dollars=spent * 1.5, throttle_at=0.5, defer_at=0.6)
    )
    other = warehouse.session(tenant="other", constraint=CONSTRAINT)
    items = [
        quick_request(instantiate("q6_revenue_forecast", seed=11), tenant="metered"),
        quick_request(instantiate("q6_revenue_forecast", seed=12), tenant="other"),
        quick_request(instantiate("q6_revenue_forecast", seed=13), tenant="metered"),
    ]
    handles = other.submit_many(items, fail_fast=False)
    # Both metered items were deferred at batch admission (the counter
    # remembers; handle.admission reflects the latest decision, which
    # for a re-admitted deferred handle is its tail-of-batch verdict).
    assert warehouse.admission.verdict_counts["metered"]["defer"] == 2
    assert handles[1].admission is AdmissionVerdict.ADMIT
    # First deferred item served once the batch drained...
    assert handles[0].state is QueryState.DONE
    assert handles[0].admission is AdmissionVerdict.THROTTLE  # re-admitted
    # ...its spend exhausted the budget, so the second was denied.
    assert handles[2].state is QueryState.DENIED
    assert handles[1].state is QueryState.DONE
    # The deferred item finalized after the admitted one: log order.
    templates = [record.tenant for record in warehouse.logs]
    assert templates == ["metered", "other", "metered"]


def test_throttled_batch_is_bit_identical_to_unthrottled(catalog):
    """Throttling only withdraws batch parallelism; outcomes, logs, and
    bills match an untrottled warehouse serving the same traffic."""
    items = [
        quick_request(instantiate("q6_revenue_forecast", seed=21)),
        quick_request(instantiate("q1_pricing_summary", seed=22)),
        quick_request(instantiate("q6_revenue_forecast", seed=23)),
    ]
    outcomes = {}
    for throttled in (False, True):
        warehouse = fresh_warehouse(catalog)
        session = warehouse.session(tenant="a", constraint=CONSTRAINT)
        spent = exhaust_tenant(warehouse, session)
        if throttled:
            # Spend lands in [throttle_at, defer_at): every batch item
            # gets the THROTTLE verdict and stages serially.
            warehouse.admission.set_budget(
                "a", TenantBudget(dollars=spent * 100, throttle_at=0.005, defer_at=0.99)
            )
        else:
            warehouse.admission.set_budget("a", TenantBudget(dollars=spent * 100))
        handles = session.submit_many(items, max_workers=4)
        expected = AdmissionVerdict.THROTTLE if throttled else AdmissionVerdict.ADMIT
        assert all(h.admission is expected for h in handles)
        outcomes[throttled] = [h.result() for h in handles]
    for plain, throttled in zip(outcomes[False], outcomes[True]):
        assert plain.choice.dop_plan.dops == throttled.choice.dop_plan.dops
        assert plain.dollars == throttled.dollars
        assert plain.record.query_id == throttled.record.query_id


def test_deferred_explicit_timestamps_keep_log_append_ordered(catalog):
    """A deferred item carrying an earlier at_time than later batch items
    must still serve: its timestamp is clamped up to the warehouse clock
    at re-admission so the Statistics Service log stays append-ordered."""
    warehouse = fresh_warehouse(catalog)
    meter = warehouse.session(tenant="metered", constraint=CONSTRAINT)
    probe = meter.submit(quick_request(instantiate("q6_revenue_forecast", seed=1)))
    spent = probe.result().dollars
    warehouse.admission.set_budget(
        "metered", TenantBudget(dollars=spent * 5, throttle_at=0.1, defer_at=0.15)
    )
    other = warehouse.session(tenant="other", constraint=CONSTRAINT)
    items = [
        quick_request(
            instantiate("q6_revenue_forecast", seed=41),
            tenant="metered",
            at_time=100.0,
        ),
        quick_request(
            instantiate("q6_revenue_forecast", seed=42),
            tenant="other",
            at_time=200.0,
        ),
    ]
    handles = other.submit_many(items, fail_fast=False)
    assert [h.state for h in handles] == [QueryState.DONE, QueryState.DONE]
    # The deferred item finalized last, clamped to the clock.
    assert handles[0].timestamp == 200.0
    timestamps = [record.timestamp for record in warehouse.logs]
    assert timestamps == sorted(timestamps)


def test_mixed_throttled_and_pooled_batch_matches_sequential(catalog):
    """A threaded batch mixing pooled (admitted) and serially-staged
    (throttled) tenants is bit-identical to the same batch served
    sequentially on an ungoverned warehouse."""
    items = [
        quick_request(instantiate("q6_revenue_forecast", seed=51), tenant="calm"),
        quick_request(instantiate("q1_pricing_summary", seed=52), tenant="spender"),
        quick_request(instantiate("q6_revenue_forecast", seed=53), tenant="calm"),
        quick_request(instantiate("q12_shipmode", seed=54), tenant="spender"),
    ]

    def serve(governed: bool):
        warehouse = fresh_warehouse(catalog)
        spender = warehouse.session(tenant="spender", constraint=CONSTRAINT)
        seeded = spender.submit(
            quick_request(instantiate("q6_revenue_forecast", seed=50))
        )
        spent = seeded.result().dollars
        if governed:
            warehouse.admission.set_budget(
                "spender",
                TenantBudget(dollars=spent * 100, throttle_at=0.005, defer_at=0.99),
            )
        session = warehouse.session(tenant="calm", constraint=CONSTRAINT)
        handles = session.submit_many(items, max_workers=4)
        return warehouse, handles

    plain_wh, plain = serve(governed=False)
    governed_wh, governed = serve(governed=True)
    verdicts = [h.admission for h in governed]
    assert verdicts == [
        AdmissionVerdict.ADMIT,
        AdmissionVerdict.THROTTLE,
        AdmissionVerdict.ADMIT,
        AdmissionVerdict.THROTTLE,
    ]
    for before, after in zip(plain, governed):
        assert before.result().dollars == after.result().dollars
        assert (
            before.result().choice.dop_plan.dops
            == after.result().choice.dop_plan.dops
        )
        assert before.result().record.query_id == after.result().record.query_id
    assert [r.template for r in plain_wh.logs] == [
        r.template for r in governed_wh.logs
    ]


def test_single_submit_defers_nothing(catalog):
    """With no batch to defer behind, the defer band throttles instead
    (the query still serves)."""
    warehouse = fresh_warehouse(catalog)
    session = warehouse.session(tenant="a", constraint=CONSTRAINT)
    spent = exhaust_tenant(warehouse, session)
    warehouse.admission.set_budget(
        "a", TenantBudget(dollars=spent * 1.5, throttle_at=0.1, defer_at=0.2)
    )
    handle = session.submit(quick_request(instantiate("q6_revenue_forecast", seed=31)))
    assert handle.admission is AdmissionVerdict.THROTTLE
    assert handle.state is QueryState.DONE
