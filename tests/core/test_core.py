"""Bi-objective optimizer and warehouse facade."""

import pytest

from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.errors import ReproError
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def bioptimizer(big_catalog, estimator):
    return BiObjectiveOptimizer(big_catalog, estimator, max_dop=64)


def test_optimize_under_sla(bioptimizer, big_binder):
    bound = big_binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    choice = bioptimizer.optimize(bound, sla_constraint(30.0))
    assert choice.feasible
    assert choice.dop_plan.estimate.latency <= 30.0
    assert choice.variants_considered >= 1


def test_bushy_explored_for_multiway_joins(bioptimizer, big_binder):
    bound = big_binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    choice = bioptimizer.optimize(bound, sla_constraint(30.0))
    assert choice.variants_considered > 1  # 6-table join: variants exist


def test_tight_sla_prefers_bushier_or_scales(bioptimizer, big_binder, estimator):
    bound = big_binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    loose = bioptimizer.optimize(bound, sla_constraint(60.0))
    tight = bioptimizer.optimize(bound, sla_constraint(6.0))
    assert tight.dop_plan.estimate.total_dollars >= loose.dop_plan.estimate.total_dollars


def test_budget_mode(bioptimizer, big_binder):
    bound = big_binder.bind_sql(instantiate("q1_pricing_summary", seed=1))
    choice = bioptimizer.optimize(bound, budget_constraint(0.05))
    assert choice.feasible
    assert choice.dop_plan.estimate.total_dollars <= 0.05


def test_infeasible_reported_not_raised(bioptimizer, big_binder):
    bound = big_binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    choice = bioptimizer.optimize(bound, sla_constraint(1e-3))
    assert not choice.feasible


# --------------------------- warehouse -------------------------------- #
def test_warehouse_requires_catalog_or_db():
    with pytest.raises(ReproError):
        CostIntelligentWarehouse()


def test_warehouse_submit_stats_only(big_catalog):
    wh = CostIntelligentWarehouse(catalog=big_catalog)
    outcome = wh.submit(
        instantiate("scan_orders", seed=1),
        sla_constraint(20.0),
        template="scan_orders",
    )
    assert outcome.sim is not None
    assert outcome.batch is None
    assert outcome.latency > 0
    assert len(wh.logs) == 1


def test_warehouse_local_execution_needs_db(big_catalog):
    wh = CostIntelligentWarehouse(catalog=big_catalog)
    with pytest.raises(ReproError):
        wh.submit(
            "SELECT count(*) AS c FROM orders",
            sla_constraint(5.0),
            execute_locally=True,
        )


def test_warehouse_full_path_with_data(tpch_db):
    wh = CostIntelligentWarehouse(database=tpch_db)
    outcome = wh.submit(
        "SELECT count(*) AS c FROM orders WHERE o_totalprice > 100000",
        sla_constraint(15.0),
        execute_locally=True,
    )
    assert outcome.batch is not None
    assert outcome.batch.num_rows == 1
    assert outcome.sla_met is True
    assert outcome.constraint_met is True
    assert outcome.record.dollars == outcome.dollars


def test_dag_memo_respects_catalog_version():
    """Re-optimizing the same bound query after a catalog mutation must
    re-plan from live statistics, not the DAG memo."""
    from repro.cost.estimator import CostEstimator
    from repro.sql.binder import Binder
    from repro.workloads.tpch_stats import synthetic_tpch_catalog

    catalog = synthetic_tpch_catalog(1.0)
    optimizer = BiObjectiveOptimizer(catalog, CostEstimator())
    bound = Binder(catalog).bind_sql(instantiate("q18_large_orders", seed=1))
    constraint = sla_constraint(12.0)
    optimizer.optimize(bound, constraint)
    optimizer.optimize(bound, constraint)
    assert optimizer.dag_plans == 1
    assert optimizer.dag_memo_hits == 1
    catalog.set_clustering("orders", "o_orderdate", 0.2)
    optimizer.optimize(bound, constraint)
    assert optimizer.dag_plans == 2  # stale entry discarded


def test_constraint_met_covers_budget(tpch_db):
    """sla_met is None for budget-constrained queries; constraint_met
    reports the budget check instead."""
    wh = CostIntelligentWarehouse(database=tpch_db)
    sql = "SELECT count(*) AS c FROM orders WHERE o_totalprice > 100000"
    generous = wh.submit(sql, budget_constraint(1.0))
    assert generous.sla_met is None
    assert generous.constraint_met is (generous.dollars <= 1.0)
    assert generous.constraint_met is True
    assert "constraint met: True" in generous.describe()
    impossible = wh.submit(sql, budget_constraint(1e-9))
    assert impossible.sla_met is None
    assert impossible.constraint_met is False


def test_warehouse_all_policies_run(tpch_db):
    wh = CostIntelligentWarehouse(database=tpch_db)
    for policy in ("static", "dop-monitor", "interval-scaler", "stage-scaler"):
        outcome = wh.submit(
            instantiate("q12_shipmode", seed=2),
            sla_constraint(20.0),
            template="q12",
            policy=policy,
        )
        assert outcome.sim is not None


def test_warehouse_unknown_policy(tpch_db):
    wh = CostIntelligentWarehouse(database=tpch_db)
    with pytest.raises(ReproError):
        wh.submit(
            "SELECT count(*) AS c FROM orders",
            sla_constraint(5.0),
            policy="nope",
        )


def test_warehouse_log_records_structure(tpch_db):
    wh = CostIntelligentWarehouse(database=tpch_db)
    wh.submit(
        instantiate("q12_shipmode", seed=1),
        sla_constraint(20.0),
        template="q12_shipmode",
        at_time=123.0,
    )
    record = next(iter(wh.logs))
    assert record.timestamp == 123.0
    assert "orders" in record.tables and "lineitem" in record.tables
    assert record.join_edges
    assert record.sla_seconds == 20.0
    assert record.bytes_scanned > 0


def test_describe_outputs(tpch_db):
    wh = CostIntelligentWarehouse(database=tpch_db)
    outcome = wh.submit(
        "SELECT count(*) AS c FROM orders", sla_constraint(15.0)
    )
    text = outcome.describe()
    assert "constraint" in text and "outcome" in text
