"""Tests for constraints, the co-finish heuristic, and the DOP planner."""

import pytest

from repro.cost.estimator import CostEstimator
from repro.dop.cofinish import cofinish_dops, equalize_siblings, min_dop_for_duration
from repro.dop.constraints import Constraint, budget_constraint, sla_constraint
from repro.dop.planner import DopPlanner, exhaustive_search
from repro.errors import InfeasibleConstraintError, OptimizerError
from repro.plan.pipelines import decompose_pipelines
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5_dag(big_binder, big_planner):
    plan = big_planner.plan(big_binder.bind_sql(instantiate("q5_local_supplier", seed=1)))
    return decompose_pipelines(plan)


@pytest.fixture(scope="module")
def join_dag(big_binder, big_planner):
    plan = big_planner.plan(
        big_binder.bind_sql(
            "SELECT count(*) AS c FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
    )
    return decompose_pipelines(plan)


# --------------------------- constraints ------------------------------ #
def test_constraint_exactly_one():
    with pytest.raises(OptimizerError):
        Constraint()
    with pytest.raises(OptimizerError):
        Constraint(latency_sla=1.0, budget=1.0)
    with pytest.raises(OptimizerError):
        Constraint(latency_sla=-1.0)


def test_constraint_objective_and_bound():
    from repro.cost.estimate import CostEstimate

    estimate = CostEstimate(latency=5.0, machine_seconds=10.0, dollars=0.5)
    sla = sla_constraint(6.0)
    assert sla.objective(estimate) == estimate.total_dollars
    assert sla.bound_value(estimate) == 5.0
    assert sla.satisfied(estimate)
    budget = budget_constraint(0.4)
    assert budget.objective(estimate) == 5.0
    assert not budget.satisfied(estimate)


def test_constraint_describe():
    assert "latency" in sla_constraint(2.0).describe()
    assert "cost" in budget_constraint(1.0).describe()


# --------------------------- co-finish -------------------------------- #
def test_min_dop_for_duration_monotone(q5_dag, estimator):
    pipeline = q5_dag.topological_order()[0]
    loose = min_dop_for_duration(pipeline, 1e9, estimator.models, max_dop=64)
    assert loose == 1
    d1 = estimator.models.pipeline_timing(pipeline, 1).duration
    tight = min_dop_for_duration(pipeline, d1 / 3, estimator.models, max_dop=64)
    assert tight > 1


def test_min_dop_invalid_target(q5_dag, estimator):
    with pytest.raises(OptimizerError):
        min_dop_for_duration(
            q5_dag.topological_order()[0], 0.0, estimator.models, max_dop=8
        )


def test_cofinish_group_roughly_equalizes(q5_dag, estimator):
    groups = {}
    for pipeline in q5_dag:
        if pipeline.consumer_id is not None:
            groups.setdefault(pipeline.consumer_id, []).append(pipeline)
    siblings = max(groups.values(), key=len)
    if len(siblings) < 2:
        pytest.skip("plan has no multi-sibling group")
    target = max(
        estimator.models.pipeline_timing(p, 1).duration for p in siblings
    )
    dops = cofinish_dops(siblings, target, estimator.models, max_dop=64)
    durations = [
        estimator.models.pipeline_timing(p, dops[p.pipeline_id]).duration
        for p in siblings
    ]
    assert max(durations) <= target * 1.01


def test_equalize_siblings_never_increases_latency(join_dag, estimator):
    dops = {p.pipeline_id: 16 for p in join_dag}
    before = estimator.estimate_dag(join_dag, dops)
    balanced = equalize_siblings(join_dag, dops, estimator.models, max_dop=64)
    after = estimator.estimate_dag(join_dag, balanced)
    assert after.latency <= before.latency * 1.05
    assert after.total_waste_seconds <= before.total_waste_seconds + 1e-6


# --------------------------- planner: SLA mode ------------------------ #
def achievable_sla(dag, estimator):
    """An SLA between the fastest achievable latency and the dop=1 one."""
    from repro.baselines.perfonly import PerformanceOnlyPlanner

    baseline = estimator.estimate_dag(dag, {p.pipeline_id: 1 for p in dag})
    fastest = PerformanceOnlyPlanner(estimator, max_dop=64).plan(dag)
    return (baseline.latency + fastest.estimate.latency) / 2


def test_sla_mode_meets_sla_when_possible(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    sla = achievable_sla(q5_dag, estimator)
    plan = planner.plan(q5_dag, sla_constraint(sla))
    assert plan.feasible
    assert plan.estimate.latency <= sla


def test_sla_mode_cheapest_when_slack(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    plan = planner.plan(q5_dag, sla_constraint(1e6))
    # Loose SLA: minimal parallelism everywhere is cost-optimal.
    assert all(d == 1 for d in plan.dops.values())


def test_sla_infeasible_flagged(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=2)
    plan = planner.plan(q5_dag, sla_constraint(1e-3))
    assert not plan.feasible


def test_sla_strict_mode_raises(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=2, enforce_sla_strictly=True)
    with pytest.raises(InfeasibleConstraintError):
        planner.plan(q5_dag, sla_constraint(1e-3))


def test_tighter_sla_costs_more(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    baseline = estimator.estimate_dag(q5_dag, {p.pipeline_id: 1 for p in q5_dag})
    loose = planner.plan(q5_dag, sla_constraint(baseline.latency))
    tight = planner.plan(q5_dag, sla_constraint(achievable_sla(q5_dag, estimator)))
    assert tight.estimate.total_dollars >= loose.estimate.total_dollars


# --------------------------- planner: budget mode --------------------- #
def test_budget_mode_respects_budget(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    minimal = estimator.estimate_dag(q5_dag, {p.pipeline_id: 1 for p in q5_dag})
    budget = minimal.total_dollars * 3
    plan = planner.plan(q5_dag, budget_constraint(budget))
    assert plan.feasible
    assert plan.estimate.total_dollars <= budget
    assert plan.estimate.latency <= minimal.latency


def test_bigger_budget_no_slower(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    minimal = estimator.estimate_dag(q5_dag, {p.pipeline_id: 1 for p in q5_dag})
    small = planner.plan(q5_dag, budget_constraint(minimal.total_dollars * 1.5))
    large = planner.plan(q5_dag, budget_constraint(minimal.total_dollars * 10))
    assert large.estimate.latency <= small.estimate.latency + 1e-9


def test_budget_below_minimum_infeasible(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    plan = planner.plan(q5_dag, budget_constraint(1e-9))
    assert not plan.feasible


# --------------------------- vs exhaustive ---------------------------- #
def test_greedy_close_to_exhaustive_small_dag(big_binder, big_planner, estimator):
    plan_node = big_planner.plan(
        big_binder.bind_sql("SELECT count(*) AS c FROM orders")
    )
    dag = decompose_pipelines(plan_node)
    assert len(dag) <= 3
    constraint = sla_constraint(achievable_sla(dag, estimator))
    greedy = DopPlanner(estimator, max_dop=64).plan(dag, constraint)
    optimal = exhaustive_search(
        dag, constraint, estimator, dop_choices=(1, 2, 4, 8, 16, 32, 64)
    )
    assert greedy.feasible and optimal.feasible
    assert greedy.estimate.total_dollars <= optimal.estimate.total_dollars * 1.5


def test_planner_evaluation_budget_modest(q5_dag, estimator):
    planner = DopPlanner(estimator, max_dop=64)
    baseline = estimator.estimate_dag(q5_dag, {p.pipeline_id: 1 for p in q5_dag})
    plan = planner.plan(q5_dag, sla_constraint(baseline.latency / 2))
    # Search must stay polynomial: pipelines x log(max_dop) x small factor.
    assert plan.evaluations < 50 * len(q5_dag)
