"""The repo's own gate: src + tests are clean under the shipped
baseline, and the registries the rules key on have not gone stale."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import REGISTERED_JOURNAL_SITES, Baseline, analyze_paths
from repro.analysis.__main__ import DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_clean_under_shipped_baseline():
    baseline = Baseline.load(DEFAULT_BASELINE)
    report = analyze_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], baseline=baseline
    )
    assert report.findings == [], "\n" + "\n".join(
        f.render() for f in report.findings
    )
    # every baseline entry still earns its keep
    assert report.stale_baseline == [], [
        (e.rule, e.path) for e in report.stale_baseline
    ]
    # and the baseline stays an exception list, not a dumping ground
    assert len(baseline.entries) <= 3


def test_registered_journal_sites_still_exist():
    """Registry staleness check: each registered site's file, class,
    and method must still exist — a renamed or deleted site leaves a
    dangling registry entry that would mask a future unregistered one."""
    for key in REGISTERED_JOURNAL_SITES:
        rel, qualname = key.split("::")
        path = REPO_ROOT / "src" / rel
        assert path.exists(), f"registered journal site file gone: {rel}"
        tree = ast.parse(path.read_text(encoding="utf-8"))
        class_name, method_name = qualname.split(".")
        cls = next(
            (
                node
                for node in tree.body
                if isinstance(node, ast.ClassDef) and node.name == class_name
            ),
            None,
        )
        assert cls is not None, f"{rel}: class {class_name} gone"
        assert any(
            isinstance(node, ast.FunctionDef) and node.name == method_name
            for node in cls.body
        ), f"{rel}: method {qualname} gone"
