"""Engine mechanics: fingerprints, suppressions, baseline, CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    analyze_paths,
    check_module,
    module_from_source,
    normalize_path,
)
from repro.analysis.__main__ import main

BAD_CORE = (
    "import time\n"
    "\n"
    "def now():\n"
    "    return time.time()\n"
)


def test_normalize_path_is_checkout_independent():
    assert (
        normalize_path("/home/a/repo/src/repro/core/x.py")
        == normalize_path("/tmp/elsewhere/src/repro/core/x.py")
        == "repro/core/x.py"
    )
    assert normalize_path("tests/core/test_x.py") == "tests/core/test_x.py"
    assert normalize_path("scratch/loose.py") == "scratch/loose.py"


def test_fingerprint_survives_line_moves_but_not_line_edits():
    base = Finding(
        rule="wall-clock",
        path="repro/core/x.py",
        line=4,
        message="m",
        line_text="    return time.time()",
    )
    moved = Finding(
        rule="wall-clock",
        path="repro/core/x.py",
        line=40,
        message="m",
        line_text="\t    return time.time()  ",
    )
    edited = Finding(
        rule="wall-clock",
        path="repro/core/x.py",
        line=4,
        message="m",
        line_text="    return time.time_ns()",
    )
    assert base.fingerprint == moved.fingerprint
    assert base.fingerprint != edited.fingerprint


def test_module_classification():
    core = module_from_source("x = 1\n", "src/repro/core/x.py")
    assert core.subpackage == "core" and core.in_repro
    assert not core.is_testing and not core.is_tests
    testing = module_from_source("x = 1\n", "src/repro/testing/x.py")
    assert testing.is_testing
    tests = module_from_source("x = 1\n", "tests/core/test_x.py")
    assert tests.is_tests and not tests.in_repro
    top = module_from_source("x = 1\n", "src/repro/errors.py")
    assert top.subpackage == "" and top.in_repro


def test_suppression_with_justification_suppresses():
    source = BAD_CORE.replace(
        "return time.time()",
        "return time.time()  # lint-allow: wall-clock fixture clock shim",
    )
    module = module_from_source(source, "src/repro/core/x.py")
    active, suppressed = check_module(module)
    assert active == []
    assert len(suppressed) == 1
    finding, justification = suppressed[0]
    assert finding.rule == "wall-clock"
    assert justification == "fixture clock shim"


def test_suppression_without_justification_does_not_suppress():
    # built by concatenation so this test file's own source line does
    # not itself read as a malformed suppression to the repo-wide run
    source = BAD_CORE.replace(
        "return time.time()",
        "return time.time()  # lint-allow: " + "wall-clock",
    )
    module = module_from_source(source, "src/repro/core/x.py")
    active, suppressed = check_module(module)
    assert suppressed == []
    rules_fired = {f.rule for f in active}
    assert rules_fired == {"wall-clock", "suppression-format"}


def test_wrong_rule_suppression_does_not_suppress():
    source = BAD_CORE.replace(
        "return time.time()",
        "return time.time()  # lint-allow: bare-except some reason",
    )
    module = module_from_source(source, "src/repro/core/x.py")
    active, suppressed = check_module(module)
    assert suppressed == []
    assert [f.rule for f in active] == ["wall-clock"]


def test_baseline_round_trip(tmp_path):
    entry = BaselineEntry(
        rule="float-billing",
        path="repro/statsvc/summaries.py",
        fingerprint="90d0d9ff127032db",
        justification="sampled estimate, not a ledger",
    )
    baseline = Baseline([entry])
    target = tmp_path / "baseline.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    assert loaded.entries == [entry]
    # missing file -> empty baseline, not an error
    assert Baseline.load(tmp_path / "absent.json").entries == []


def test_baseline_requires_justification(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [
                    {
                        "rule": "wall-clock",
                        "path": "repro/core/x.py",
                        "fingerprint": "abc",
                        "justification": "   ",
                    }
                ],
            }
        )
    )
    with pytest.raises(ValueError, match="justification"):
        Baseline.load(target)
    target.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(target)


def make_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_CORE)
    (pkg / "good.py").write_text("import time\nd = time.perf_counter()\n")
    return tmp_path / "src"


def test_analyze_paths_applies_baseline_and_reports_stale(tmp_path):
    src = make_tree(tmp_path)
    report = analyze_paths([src])
    assert [f.rule for f in report.findings] == ["wall-clock"]
    assert report.files_checked == 2

    matched = report.findings[0]
    baseline = Baseline(
        [
            BaselineEntry(
                rule=matched.rule,
                path=matched.path,
                fingerprint=matched.fingerprint,
                justification="grandfathered in the fixture",
            ),
            BaselineEntry(
                rule="wall-clock",
                path="repro/core/gone.py",
                fingerprint="dead0000dead0000",
                justification="already fixed",
            ),
        ]
    )
    baselined = analyze_paths([src], baseline=baseline)
    assert baselined.findings == []
    assert len(baselined.baselined) == 1
    assert [e.path for e in baselined.stale_baseline] == ["repro/core/gone.py"]


def test_unparsable_file_becomes_parse_error_finding(tmp_path):
    src = tmp_path / "src" / "repro" / "core"
    src.mkdir(parents=True)
    (src / "broken.py").write_text("def f(:\n")
    report = analyze_paths([src])
    assert [f.rule for f in report.findings] == ["parse-error"]


def test_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        analyze_paths([tmp_path / "nonexistent"])


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def test_cli_strict_exit_codes(tmp_path, capsys):
    src = make_tree(tmp_path)
    empty = tmp_path / "empty-baseline.json"

    assert main([str(src), "--baseline", str(empty)]) == 0  # advisory
    assert main([str(src), "--strict", "--baseline", str(empty)]) == 1
    out = capsys.readouterr().out
    assert "[wall-clock]" in out

    clean = src / "repro" / "core" / "good.py"
    assert main([str(clean), "--strict", "--baseline", str(empty)]) == 0


def test_cli_json_output(tmp_path, capsys):
    src = make_tree(tmp_path)
    empty = tmp_path / "empty-baseline.json"
    assert main([str(src), "--json", "--baseline", str(empty)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 2
    assert [f["rule"] for f in payload["findings"]] == ["wall-clock"]
    assert payload["findings"][0]["fingerprint"]


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "bare-except",
        "wall-clock",
        "float-billing",
        "journal-site",
        "stage-guard",
        "naked-acquire",
        "picklable-record",
        "warehouse-kwargs",
    ):
        assert rule_id in out


def test_cli_usage_error_exits_2():
    with pytest.raises(SystemExit) as excinfo:
        main(["--no-such-flag"])
    assert excinfo.value.code == 2


def test_cli_corrupt_baseline_exits_2(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 1, "findings": [{"rule": "x"}]}))
    with pytest.raises(SystemExit) as excinfo:
        main([str(make_tree(tmp_path)), "--baseline", str(bad)])
    assert excinfo.value.code == 2
