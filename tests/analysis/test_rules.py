"""Fixture corpus: every architecture rule fires, suppresses, and
stays quiet on the idiomatic version of the same code."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.analysis import (
    RULES,
    WAREHOUSE_INIT_PARAMS,
    check_module,
    module_from_source,
)


@dataclass(frozen=True)
class Fixture:
    path: str  # where the snippet pretends to live (drives scoping)
    bad: str  # yields >= 1 finding of the rule
    good: str  # idiomatic equivalent, clean for the rule
    good_path: str | None = None  # when the clean idiom is path-bound


_WAREHOUSE_PARAMS = ", ".join(sorted(WAREHOUSE_INIT_PARAMS - {"self"}))

CORPUS: dict[str, Fixture] = {
    "bare-except": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        pass\n"
        ),
        good=(
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        ),
    ),
    "wall-clock": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
        ),
        good=(
            "import time\n"
            "from repro.util.rng import derive_rng\n"
            "def f(seed):\n"
            "    started = time.perf_counter()\n"
            "    rng = derive_rng(seed, 'jitter')\n"
            "    return started, rng.random()\n"
        ),
    ),
    "float-billing": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "class Stats:\n"
            "    def note(self, dollars):\n"
            "        self.retry_dollars += dollars\n"
        ),
        good=(
            "from repro.util.units import to_ledger_units\n"
            "class Stats:\n"
            "    def note(self, dollars):\n"
            "        self._retry_units += to_ledger_units(dollars)\n"
        ),
    ),
    "journal-site": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "class SideChannel:\n"
            "    def save(self, record):\n"
            "        self._journal_append(record)\n"
        ),
        # the real registered site keeps its exact path + qualname
        good=(
            "class CostIntelligentWarehouse:\n"
            "    def _charge_retry(self, tenant, dollars):\n"
            "        self._journal_append(record(tenant, dollars))\n"
        ),
        good_path="src/repro/core/warehouse.py",
    ),
    "metric-name": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "def f(self, tenant):\n"
            "    self.metrics.counter('totally_undeclared_metric', "
            "tenant=tenant)\n"
        ),
        good=(
            "def f(self, tenant):\n"
            "    self.metrics.counter('repro_queries_served_total', "
            "tenant=tenant)\n"
        ),
    ),
    "stage-guard": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "def f(guard, fn):\n"
            "    try:\n"
            "        return guard.run('bind', fn)\n"
            "    except Exception:\n"
            "        return None\n"
        ),
        good=(
            "def f(guard, fn):\n"
            "    try:\n"
            "        return guard.run('bind', fn)\n"
            "    except DeadlineExceededError:\n"
            "        return None\n"
        ),
    ),
    "naked-acquire": Fixture(
        path="src/repro/core/snippet.py",
        bad=(
            "def f(self):\n"
            "    self._lock.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        self._lock.release()\n"
        ),
        good=(
            "def f(self):\n"
            "    with self._lock:\n"
            "        work()\n"
        ),
    ),
    "picklable-record": Fixture(
        path="src/repro/core/journal.py",
        bad=(
            "from dataclasses import dataclass\n"
            "from typing import Callable\n"
            "@dataclass(frozen=True)\n"
            "class BadRecord:\n"
            "    undo: Callable[[], None]\n"
        ),
        good=(
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class GoodRecord:\n"
            "    name: str\n"
            "    dollars: float\n"
            "    tables: tuple[str, ...]\n"
        ),
    ),
    "worker-isolation": Fixture(
        path="src/repro/core/sharding_worker.py",
        bad=(
            "from repro.core.journal import QueryServed\n"
            "def finalize(self, record, bill):\n"
            "    self.journal.append(record)\n"
            "    self.warehouse._journal_append(record)\n"
            "    bill.charged = TenantBill()\n"
        ),
        good=(
            "from repro.core.bioptimizer import BiObjectiveOptimizer\n"
            "from repro.sql.binder import Binder\n"
            "def stage(self, task):\n"
            "    bound = self.binder.bind_parameterized(\n"
            "        task.template_key, task.constants, sql=task.sql)\n"
            "    return self.optimizer.optimize(bound, task.constraint)\n"
        ),
    ),
    "warehouse-kwargs": Fixture(
        path="src/repro/core/warehouse.py",
        bad=(
            "class CostIntelligentWarehouse:\n"
            f"    def __init__(self, {_WAREHOUSE_PARAMS}, shiny_new_knob=None):\n"
            "        pass\n"
        ),
        good=(
            "class CostIntelligentWarehouse:\n"
            f"    def __init__(self, {_WAREHOUSE_PARAMS}):\n"
            "        pass\n"
        ),
    ),
}


def findings_for(rule_id: str, source: str, path: str):
    module = module_from_source(source, path)
    active, suppressed = check_module(module, [RULES[rule_id]])
    return (
        [f for f in active if f.rule == rule_id],
        [f for f, _ in suppressed if f.rule == rule_id],
    )


def test_corpus_covers_every_registered_rule():
    assert set(CORPUS) == set(RULES)


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_every_rule_fires_and_suppresses(rule_id):
    fixture = CORPUS[rule_id]
    fired, _ = findings_for(rule_id, fixture.bad, fixture.path)
    assert fired, f"{rule_id}: bad fixture did not fire"
    for finding in fired:
        assert finding.message and finding.path and finding.line > 0

    # an inline justified lint-allow on each offending line suppresses
    lines = fixture.bad.splitlines()
    for line in sorted({f.line for f in fired}):
        lines[line - 1] += f"  # lint-allow: {rule_id} corpus fixture"
    active, suppressed = findings_for(
        rule_id, "\n".join(lines) + "\n", fixture.path
    )
    assert active == [], f"{rule_id}: suppression did not take"
    assert suppressed, f"{rule_id}: suppression not reported"

    # the idiomatic version is clean with no suppression at all
    clean, _ = findings_for(
        rule_id, fixture.good, fixture.good_path or fixture.path
    )
    assert clean == [], f"{rule_id}: good fixture fired {clean}"


# --------------------------------------------------------------------- #
# Rule-specific edges
# --------------------------------------------------------------------- #
def test_bare_except_variants_and_testing_exemption():
    src = "try:\n    f()\nexcept BaseException:\n    pass\n"
    fired, _ = findings_for("bare-except", src, "src/repro/core/x.py")
    assert len(fired) == 1
    # repro/testing is the one package allowed to catch crashes
    fired, _ = findings_for("bare-except", src, "src/repro/testing/x.py")
    assert fired == []
    # tuple form with BaseException inside
    src = "try:\n    f()\nexcept (ValueError, BaseException):\n    pass\n"
    fired, _ = findings_for("bare-except", src, "src/repro/core/x.py")
    assert len(fired) == 1


def test_wall_clock_catches_randomness_and_scopes_to_deterministic_pkgs():
    bad_rng = "import random\nx = random.random()\n"
    fired, _ = findings_for("wall-clock", bad_rng, "src/repro/tuning/x.py")
    assert len(fired) == 1
    bad_np = "import numpy as np\nrng = np.random.default_rng()\n"
    fired, _ = findings_for("wall-clock", bad_np, "src/repro/statsvc/x.py")
    assert len(fired) == 1
    good_np = "import numpy as np\nrng = np.random.default_rng(42)\n"
    fired, _ = findings_for("wall-clock", good_np, "src/repro/statsvc/x.py")
    assert fired == []
    bad_global = "import numpy as np\nx = np.random.rand(3)\n"
    fired, _ = findings_for("wall-clock", bad_global, "src/repro/core/x.py")
    assert len(fired) == 1
    # out of scope: benchmarks and the engine may read the clock
    wall = "import time\nx = time.time()\n"
    fired, _ = findings_for("wall-clock", wall, "src/repro/bench/x.py")
    assert fired == []


def test_float_billing_ignores_non_dollar_accumulators():
    src = "class S:\n    def f(self, n):\n        self.rows += n\n"
    fired, _ = findings_for("float-billing", src, "src/repro/core/x.py")
    assert fired == []


def test_journal_site_catches_direct_append_and_respects_registry():
    direct = (
        "class Foo:\n"
        "    def flush(self):\n"
        "        self.journal.append(entry)\n"
    )
    fired, _ = findings_for("journal-site", direct, "src/repro/core/x.py")
    assert len(fired) == 1
    assert "Foo.flush" in fired[0].message
    # list appends on non-journal receivers are not sites
    benign = "class Foo:\n    def flush(self):\n        self.rows.append(1)\n"
    fired, _ = findings_for("journal-site", benign, "src/repro/core/x.py")
    assert fired == []


def test_metric_name_flags_dynamic_names_and_skips_other_receivers():
    dynamic = (
        "def f(self, name):\n"
        "    self.metrics.counter(name)\n"
    )
    fired, _ = findings_for("metric-name", dynamic, "src/repro/core/x.py")
    assert len(fired) == 1
    assert "non-literal" in fired[0].message
    # reads are audited too: a typo'd read returns zero forever
    read = "def f(self):\n    return self.metrics.value('no_such_metric')\n"
    fired, _ = findings_for("metric-name", read, "src/repro/core/x.py")
    assert len(fired) == 1
    # unrelated receivers with the same method names are not metrics
    benign = "def f(self):\n    self.votes.counter('yes')\n"
    fired, _ = findings_for("metric-name", benign, "src/repro/core/x.py")
    assert fired == []
    # the registry's own implementation is exempt (it validates at runtime)
    impl = (
        "class MetricsRegistry:\n"
        "    def value(self, name):\n"
        "        return self.registry.value(name)\n"
    )
    fired, _ = findings_for("metric-name", impl, "src/repro/obsvc/metrics.py")
    assert fired == []


def test_stage_guard_allows_unrelated_try_and_flags_variable_receiver():
    unrelated = (
        "def f():\n"
        "    try:\n"
        "        parse()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    fired, _ = findings_for("stage-guard", unrelated, "src/repro/core/x.py")
    assert fired == []
    fault_point = (
        "def f(self):\n"
        "    try:\n"
        "        self._fire_fault('crash_pre_write')\n"
        "    except BaseException:\n"
        "        pass\n"
    )
    fired, _ = findings_for("stage-guard", fault_point, "src/repro/core/x.py")
    assert len(fired) == 1


def test_naked_acquire_ignores_compute_pool_leases():
    src = "def f(self, n):\n    self.pool.acquire(n)\n    self.pool.release(n)\n"
    fired, _ = findings_for("naked-acquire", src, "src/repro/compute/x.py")
    assert fired == []


def test_picklable_record_checks_error_init_annotations():
    bad = (
        "import threading\n"
        "class CustomStateError(Exception):\n"
        "    def __init__(self, message: str, lock: threading.Lock) -> None:\n"
        "        pass\n"
    )
    fired, _ = findings_for("picklable-record", bad, "src/repro/errors.py")
    assert len(fired) == 1
    assert "CustomStateError.lock" in fired[0].message


def test_warehouse_kwargs_reports_stale_allowlist_entry():
    params = ", ".join(sorted(WAREHOUSE_INIT_PARAMS - {"self", "journal"}))
    src = (
        "class CostIntelligentWarehouse:\n"
        f"    def __init__(self, {params}):\n"
        "        pass\n"
    )
    fired, _ = findings_for(
        "warehouse-kwargs", src, "src/repro/core/warehouse.py"
    )
    assert len(fired) == 1
    assert "'journal'" in fired[0].message


def test_worker_isolation_scopes_to_worker_modules_only():
    # The same authority-touching code is legal coordinator-side.
    bad = CORPUS["worker-isolation"].bad
    fired, _ = findings_for("worker-isolation", bad, "src/repro/core/service.py")
    assert fired == []
    # Forbidden import prefixes fire individually.
    for stmt in (
        "import repro.core.warehouse\n",
        "from repro.statsvc.logs import QueryLogStore\n",
        "from repro.obsvc.metrics import MetricsRegistry\n",
    ):
        fired, _ = findings_for(
            "worker-isolation", stmt, "src/repro/core/sharding_worker.py"
        )
        assert fired, f"did not fire on {stmt!r}"


def test_worker_isolation_passes_on_the_real_worker_module():
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / (
        "src/repro/core/sharding_worker.py"
    )
    fired, _ = findings_for(
        "worker-isolation", path.read_text(), "src/repro/core/sharding_worker.py"
    )
    assert fired == []
