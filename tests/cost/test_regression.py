import pytest

from repro.cost.hardware import HardwareCalibration
from repro.cost.operator_models import OperatorModels
from repro.cost.regression import (
    ExchangeCalibration,
    ExchangeCoefficients,
    ExchangeSample,
    analytic_transfer_seconds,
    calibrate_exchange,
    fit_exchange_coefficients,
)
from repro.errors import EstimationError
from repro.plan.physical import ExchangeKind
from repro.sim.distsim import SimConfig, measure_exchange
from repro.util.units import GB, MB


@pytest.fixture(scope="module")
def hw():
    return HardwareCalibration()


def test_analytic_transfer_shapes(hw):
    net = hw.network_bytes_per_node
    # Shuffle at dop=1 moves nothing.
    assert analytic_transfer_seconds(ExchangeKind.SHUFFLE, GB, 1, net, 0.35) == 0.0
    # Gather is dop-invariant (single receiver NIC).
    g4 = analytic_transfer_seconds(ExchangeKind.GATHER, GB, 4, net, 0.35)
    g32 = analytic_transfer_seconds(ExchangeKind.GATHER, GB, 32, net, 0.35)
    assert g4 == g32
    # Broadcast grows with dop.
    b2 = analytic_transfer_seconds(ExchangeKind.BROADCAST, GB, 2, net, 0.35)
    b32 = analytic_transfer_seconds(ExchangeKind.BROADCAST, GB, 32, net, 0.35)
    assert b32 > b2


def test_fit_recovers_synthetic_coefficients(hw):
    true = ExchangeCoefficients(
        transfer_scale=1.4, base_setup_s=0.08, per_peer_setup_s=0.01
    )
    samples = []
    for payload in (16 * MB, 128 * MB, GB):
        for dop in (1, 2, 4, 8, 16, 32):
            transfer = analytic_transfer_seconds(
                ExchangeKind.GATHER, payload, dop,
                hw.network_bytes_per_node, hw.broadcast_tree_factor,
            )
            seconds = (
                true.transfer_scale * transfer
                + true.base_setup_s
                + true.per_peer_setup_s * (dop - 1)
            )
            samples.append(ExchangeSample(ExchangeKind.GATHER, payload, dop, seconds))
    fitted = fit_exchange_coefficients(
        samples, hw.network_bytes_per_node, hw.broadcast_tree_factor
    )
    assert fitted.transfer_scale == pytest.approx(1.4, rel=0.01)
    assert fitted.base_setup_s == pytest.approx(0.08, rel=0.05)
    assert fitted.per_peer_setup_s == pytest.approx(0.01, rel=0.05)


def test_fit_requires_samples_and_single_kind(hw):
    with pytest.raises(EstimationError):
        fit_exchange_coefficients([], 1.0, 0.3)
    mixed = [
        ExchangeSample(ExchangeKind.GATHER, 1e6, 2, 0.1),
        ExchangeSample(ExchangeKind.SHUFFLE, 1e6, 2, 0.1),
        ExchangeSample(ExchangeKind.GATHER, 1e6, 4, 0.1),
    ]
    with pytest.raises(EstimationError):
        fit_exchange_coefficients(mixed, 1.0, 0.3)


def test_calibration_recovers_simulator_inefficiency(hw):
    """The E3 loop: calibrate on simulator measurements, predictions improve."""
    config = SimConfig(noise_sigma=0.0, skew_zipf_s=0.0)
    models = OperatorModels(hw)
    calibration = calibrate_exchange(
        lambda kind, payload, dop: measure_exchange(
            kind, payload, dop, models=models, config=config
        ),
        hardware=hw,
    )
    gather = calibration.coefficients(ExchangeKind.GATHER)
    # Hidden truth in SimConfig: transfer x1.18, setup x1.6.
    assert gather.transfer_scale == pytest.approx(1.18, rel=0.05)
    assert gather.base_setup_s == pytest.approx(hw.exchange_setup_s * 1.6, rel=0.25)


def test_calibrated_model_beats_default(hw):
    config = SimConfig(noise_sigma=0.0, skew_zipf_s=0.0)
    models = OperatorModels(hw)
    calibration = calibrate_exchange(
        lambda kind, payload, dop: measure_exchange(
            kind, payload, dop, models=models, config=config
        ),
        hardware=hw,
    )
    default = ExchangeCalibration.analytic(hw)

    def prediction_error(cal):
        total = 0.0
        count = 0
        for payload in (32 * MB, 512 * MB):
            for dop in (2, 8, 32):
                truth = measure_exchange(
                    ExchangeKind.GATHER, payload, dop, models=models, config=config
                )
                coeffs = cal.coefficients(ExchangeKind.GATHER)
                transfer = analytic_transfer_seconds(
                    ExchangeKind.GATHER, payload, dop,
                    hw.network_bytes_per_node, hw.broadcast_tree_factor,
                )
                predicted = (
                    coeffs.transfer_scale * transfer
                    + coeffs.base_setup_s
                    + coeffs.per_peer_setup_s * (dop - 1)
                )
                total += abs(predicted - truth) / truth
                count += 1
        return total / count

    assert prediction_error(calibration) < prediction_error(default) / 2


def test_invalid_coefficients():
    with pytest.raises(EstimationError):
        ExchangeCoefficients(transfer_scale=0.0)
