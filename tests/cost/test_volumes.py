import pytest

from repro.cost.volumes import pipeline_output, pipeline_volumes
from repro.errors import EstimationError
from repro.plan.physical import AggMode, PhysAggregate, walk_physical
from repro.plan.pipelines import ROLE_SOURCE_SCAN, decompose_pipelines


@pytest.fixture(scope="module")
def agg_dag(big_binder, big_planner):
    plan = big_planner.plan(
        big_binder.bind_sql(
            "SELECT l_returnflag, sum(l_quantity) AS q FROM lineitem GROUP BY l_returnflag"
        )
    )
    return plan, decompose_pipelines(plan)


def scan_pipeline(dag):
    return next(p for p in dag if p.source.role == ROLE_SOURCE_SCAN)


def test_volumes_chain_consistency(agg_dag):
    _, dag = agg_dag
    pipeline = scan_pipeline(dag)
    volumes = pipeline_volumes(pipeline, dop=4)
    for upstream, downstream in zip(volumes, volumes[1:]):
        assert downstream.rows_in == upstream.rows_out
        assert downstream.bytes_in == upstream.bytes_out


def test_partial_agg_output_scales_with_dop(agg_dag):
    _, dag = agg_dag
    pipeline = scan_pipeline(dag)

    def partial_out(dop):
        for volume in pipeline_volumes(pipeline, dop):
            node = volume.op.node
            if isinstance(node, PhysAggregate) and node.mode is AggMode.PARTIAL:
                return volume.rows_out
        raise AssertionError("no partial aggregate found")

    assert partial_out(1) < partial_out(8) < partial_out(64)
    # Never exceeds the input cardinality.
    source_rows = pipeline_volumes(pipeline, 1)[0].rows_out
    assert partial_out(10**6) <= source_rows


def test_truth_overrides_propagate(agg_dag):
    plan, dag = agg_dag
    pipeline = scan_pipeline(dag)
    scan_node = pipeline.ops[0].node
    baseline = pipeline_volumes(pipeline, 4)
    truth = {scan_node.node_id: scan_node.est_rows * 4.0}
    adjusted = pipeline_volumes(pipeline, 4, truth)
    assert adjusted[0].rows_out == pytest.approx(baseline[0].rows_out * 4.0)
    # Downstream streaming op input scales too.
    assert adjusted[1].rows_in == pytest.approx(baseline[1].rows_in * 4.0)


def test_sink_emits_nothing(agg_dag):
    _, dag = agg_dag
    pipeline = scan_pipeline(dag)
    sink = pipeline_volumes(pipeline, 2)[-1]
    assert sink.rows_out == 0.0


def test_invalid_dop(agg_dag):
    _, dag = agg_dag
    with pytest.raises(EstimationError):
        pipeline_volumes(scan_pipeline(dag), 0)


def test_pipeline_output_is_last(agg_dag):
    _, dag = agg_dag
    pipeline = scan_pipeline(dag)
    assert pipeline_output(pipeline, 2) == pipeline_volumes(pipeline, 2)[-1]


def test_scan_input_independent_of_dop(agg_dag):
    _, dag = agg_dag
    pipeline = scan_pipeline(dag)
    v1 = pipeline_volumes(pipeline, 1)[0]
    v64 = pipeline_volumes(pipeline, 64)[0]
    assert v1.bytes_in == v64.bytes_in
