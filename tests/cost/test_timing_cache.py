"""Tests for the estimator hot-path memoization (cost/timing_cache.py)."""

import pytest

from repro.cost.estimator import CostEstimator
from repro.cost.timing_cache import (
    TimingCache,
    overrides_key,
    volumes_depend_on_dop,
)
from repro.plan.pipelines import decompose_pipelines
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5_dag(big_binder, big_planner):
    plan = big_planner.plan(big_binder.bind_sql(instantiate("q5_local_supplier", seed=1)))
    return decompose_pipelines(plan)


def fresh_estimator() -> CostEstimator:
    return CostEstimator(enable_cache=True)


# ------------------------------ keys ---------------------------------- #
def test_overrides_key_distinguishes_none_from_empty():
    # {} switches the volume model into observed-selectivity mode, so it
    # must not share a cache slot with None.
    assert overrides_key(None) is None
    assert overrides_key({}) == ()
    assert overrides_key({3: 7.0, 1: 2.0}) == ((1, 2.0), (3, 7.0))
    assert overrides_key({1: 2.0, 3: 7.0}) == overrides_key({3: 7.0, 1: 2.0})


def test_volumes_dop_sensitivity_detection(q5_dag):
    sensitive = [volumes_depend_on_dop(p) for p in q5_dag]
    # q5 aggregates, so at least one pipeline carries a partial aggregate
    # and at least one (a pure scan/probe chain) does not.
    assert any(sensitive)
    assert not all(sensitive)


# --------------------------- memoization ------------------------------ #
def test_timing_memoized_per_dop(q5_dag):
    estimator = fresh_estimator()
    dops = {p.pipeline_id: 4 for p in q5_dag}
    estimator.estimate_dag(q5_dag, dops)
    stats = estimator.models.cache.stats
    computed_first = stats.timing_computations
    assert computed_first == len(q5_dag)

    estimator.estimate_dag(q5_dag, dops)
    assert stats.timing_computations == computed_first
    assert stats.timing_hits == len(q5_dag)


def test_overrides_projected_onto_pipeline_nodes(q5_dag):
    """Node-local DOP-monitor truths only re-time the pipeline that owns
    the overridden node; every other pipeline keeps hitting the cache.

    Regression for the full-mapping keying bug: the timing key embedded
    the *entire* overrides mapping, so learning one node's true
    cardinality fragmented every pipeline's cache slots.
    """
    estimator = fresh_estimator()
    dops = {p.pipeline_id: 4 for p in q5_dag}
    stats = estimator.models.cache.stats

    # Baseline: everything computed once under observed-selectivity mode.
    estimator.estimate_dag(q5_dag, dops, overrides={})
    assert stats.timing_computations == len(q5_dag)

    # Learn a truth local to one pipeline: only that pipeline re-times.
    pipelines = list(q5_dag)
    owner = pipelines[0]
    local_node = owner.ops[0].node.node_id
    other_ids = {
        op.node.node_id for p in pipelines[1:] for op in p.ops
    }
    assert local_node not in other_ids  # the truth really is node-local
    stats.reset()
    estimator.estimate_dag(q5_dag, dops, overrides={local_node: 12345.0})
    assert stats.timing_computations == 1
    assert stats.timing_hits == len(q5_dag) - 1

    # Equal projections share slots: a second mapping agreeing on this
    # plan's nodes (same single override) is a full hit.
    stats.reset()
    estimator.estimate_dag(q5_dag, dops, overrides={local_node: 12345.0})
    assert stats.timing_computations == 0
    assert stats.timing_hits == len(q5_dag)


def test_projection_preserves_none_vs_empty(q5_dag):
    """Projection must not collapse the None / {} mode switch: a mapping
    with only foreign nodes projects to {} (observed-selectivity mode),
    not to the estimate-only None mode."""
    estimator = fresh_estimator()
    dops = {p.pipeline_id: 4 for p in q5_dag}
    stats = estimator.models.cache.stats
    none_estimate = estimator.estimate_dag(q5_dag, dops, overrides=None)
    empty_estimate = estimator.estimate_dag(q5_dag, dops, overrides={})
    assert stats.timing_computations == 2 * len(q5_dag)  # distinct slots
    # A foreign-only mapping is the {} computation, served from cache.
    foreign = max(op.node.node_id for p in q5_dag for op in p.ops) + 1000
    stats.reset()
    foreign_estimate = estimator.estimate_dag(q5_dag, dops, overrides={foreign: 5.0})
    assert stats.timing_computations == 0
    assert stats.timing_hits == len(q5_dag)
    assert foreign_estimate.latency == empty_estimate.latency
    assert none_estimate.latency > 0


def test_dop_independent_volumes_shared_across_dops(q5_dag):
    estimator = fresh_estimator()
    for dop in (1, 2, 4, 8):
        estimator.estimate_dag(q5_dag, {p.pipeline_id: dop for p in q5_dag})
    stats = estimator.models.cache.stats
    insensitive = sum(1 for p in q5_dag if not volumes_depend_on_dop(p))
    sensitive = len(q5_dag) - insensitive
    # Insensitive pipelines computed volumes once; sensitive ones per DOP.
    assert stats.volume_computations == insensitive + 4 * sensitive
    # Timings are DOP-keyed for everyone.
    assert stats.timing_computations == 4 * len(q5_dag)


def test_overrides_keyed_separately(q5_dag):
    estimator = fresh_estimator()
    dops = {p.pipeline_id: 2 for p in q5_dag}
    # Inflate the biggest scan so the override must change the estimate.
    scans = [
        op.node
        for p in q5_dag
        for op in p.ops
        if op.role == "source_scan"
    ]
    scan_node = max(scans, key=lambda node: node.est_rows)
    overrides = {scan_node.node_id: float(scan_node.est_rows) * 10.0}
    with_override = estimator.estimate_dag(q5_dag, dops, overrides)
    without = estimator.estimate_dag(q5_dag, dops)
    again = estimator.estimate_dag(q5_dag, dops, overrides)
    assert with_override.machine_seconds != without.machine_seconds
    assert with_override.machine_seconds == again.machine_seconds
    assert with_override.latency == again.latency


def test_cached_matches_uncached_exactly(q5_dag):
    cached = fresh_estimator()
    uncached = CostEstimator(enable_cache=False)
    scan_node = q5_dag.topological_order()[0].ops[0].node
    for dop in (1, 3, 16):
        for overrides in (None, {}, {scan_node.node_id: 5e6}):
            dops = {p.pipeline_id: dop for p in q5_dag}
            a = cached.estimate_dag(q5_dag, dops, overrides)
            b = uncached.estimate_dag(q5_dag, dops, overrides)
            assert a.latency == b.latency
            assert a.machine_seconds == b.machine_seconds
            assert a.dollars == b.dollars
            assert a.scan_request_dollars == b.scan_request_dollars
            for pid in a.pipelines:
                assert a.pipelines[pid] == b.pipelines[pid]


# --------------------------- invalidation ----------------------------- #
def test_invalidate_clears_everything(q5_dag):
    estimator = fresh_estimator()
    dops = {p.pipeline_id: 2 for p in q5_dag}
    estimator.estimate_dag(q5_dag, dops)
    cache = estimator.models.cache
    assert len(cache) > 0
    estimator.invalidate_caches()
    assert len(cache) == 0
    before = cache.stats.timing_computations
    estimator.estimate_dag(q5_dag, dops)
    assert cache.stats.timing_computations == before + len(q5_dag)


def test_cache_entries_die_with_their_pipelines(big_binder, big_planner):
    estimator = fresh_estimator()
    plan = big_planner.plan(
        big_binder.bind_sql(instantiate("q1_pricing_summary", seed=1))
    )
    dag = decompose_pipelines(plan)
    estimator.estimate_dag(dag, {p.pipeline_id: 2 for p in dag})
    cache = estimator.models.cache
    assert len(cache) == len(dag)
    del dag, plan  # weak keys: dropping the plan drops its cache entries
    import gc

    gc.collect()
    assert len(cache) == 0


def test_direct_cache_api_counts_hits(q5_dag):
    cache = TimingCache()
    pipeline = q5_dag.topological_order()[0]
    first = cache.volumes(pipeline, 2, None)
    second = cache.volumes(pipeline, 2, None)
    assert first is second
    assert cache.stats.volume_computations == 1
    assert cache.stats.volume_hits == 1
    cache.stats.reset()
    assert cache.stats.volume_hits == 0
    assert "volumes" in cache.stats.describe()
