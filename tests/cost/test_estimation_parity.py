"""Parity suite: the cached/incremental hot path must be bit-identical.

The optimizer overhaul (timing cache + incremental DAG re-costing) is a
pure performance change: across every TPC-H template, both constraint
kinds, and with/without cardinality overrides, the fast path must return
*exactly* the same `CostEstimate`s and choose *exactly* the same plans
as the naive path it replaced.  Float comparisons here are deliberately
`==`, not approx.
"""

import pytest

from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.dop.planner import DopPlanner
from repro.plan.pipelines import decompose_pipelines
from repro.workloads.tpch_queries import instantiate, template_names

CONSTRAINTS = [sla_constraint(12.0), budget_constraint(0.05)]


def assert_estimates_identical(a, b):
    assert a.latency == b.latency
    assert a.machine_seconds == b.machine_seconds
    assert a.dollars == b.dollars
    assert a.scan_request_dollars == b.scan_request_dollars
    assert set(a.pipelines) == set(b.pipelines)
    for pid, pa in a.pipelines.items():
        pb = b.pipelines[pid]
        assert (pa.dop, pa.start, pa.duration, pa.waste) == (
            pb.dop,
            pb.start,
            pb.duration,
            pb.waste,
        )
        assert pa.bottleneck == pb.bottleneck
        assert pa.source_rows == pb.source_rows


@pytest.mark.parametrize("template", template_names())
@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=["sla", "budget"])
def test_optimizer_parity_all_templates(big_catalog, big_binder, template, constraint):
    bound = big_binder.bind_sql(instantiate(template, seed=1))
    naive = BiObjectiveOptimizer(
        big_catalog, CostEstimator(enable_cache=False), incremental_dop=False
    ).optimize(bound, constraint)
    fast = BiObjectiveOptimizer(
        big_catalog, CostEstimator(enable_cache=True), incremental_dop=True
    ).optimize(bound, constraint)

    assert fast.dop_plan.dops == naive.dop_plan.dops
    assert fast.variant_index == naive.variant_index
    assert fast.bushiness == naive.bushiness
    assert fast.join_tree.describe() == naive.join_tree.describe()
    assert fast.feasible == naive.feasible
    assert_estimates_identical(fast.dop_plan.estimate, naive.dop_plan.estimate)


@pytest.mark.parametrize("template", ["q5_local_supplier", "q18_large_orders"])
@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=["sla", "budget"])
def test_dop_planner_parity_with_overrides(
    big_binder, big_planner, template, constraint
):
    plan = big_planner.plan(big_binder.bind_sql(instantiate(template, seed=1)))
    dag = decompose_pipelines(plan)
    scan = dag.topological_order()[0].ops[0].node
    for overrides in (None, {scan.node_id: float(scan.est_rows) * 3.0}):
        naive = DopPlanner(CostEstimator(enable_cache=False), incremental=False).plan(
            dag, constraint, overrides
        )
        fast = DopPlanner(CostEstimator(enable_cache=True), incremental=True).plan(
            dag, constraint, overrides
        )
        assert fast.dops == naive.dops
        assert fast.feasible == naive.feasible
        assert_estimates_identical(fast.estimate, naive.estimate)


@pytest.mark.parametrize("template", template_names())
@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=["sla", "budget"])
def test_skeleton_reuse_parity_literal_varying(
    big_catalog, big_binder, template, constraint
):
    """Plan-skeleton reuse across literal-varying instantiations must be
    bit-identical to fresh optimization of the same SQL: the skeleton
    skips join-order DP and bushy generation, but re-runs physical
    planning with fresh cardinalities plus the DOP search."""
    donor = BiObjectiveOptimizer(big_catalog, CostEstimator())
    seed_bound = big_binder.bind_sql(instantiate(template, seed=1))
    donor.optimize(seed_bound, constraint)
    skeleton = donor.variant_trees(seed_bound)

    for seed in (2, 3):
        sql = instantiate(template, seed=seed)
        fresh = BiObjectiveOptimizer(big_catalog, CostEstimator()).optimize(
            big_binder.bind_sql(sql), constraint
        )
        reused = BiObjectiveOptimizer(big_catalog, CostEstimator()).optimize(
            big_binder.bind_sql(sql), constraint, skeleton_trees=skeleton
        )
        assert reused.dop_plan.dops == fresh.dop_plan.dops
        assert reused.variant_index == fresh.variant_index
        assert reused.join_tree.describe() == fresh.join_tree.describe()
        assert reused.feasible == fresh.feasible
        assert_estimates_identical(reused.dop_plan.estimate, fresh.dop_plan.estimate)


@pytest.mark.parametrize("template", template_names())
@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=["sla", "budget"])
def test_batched_greedy_rounds_parity(big_binder, big_planner, template, constraint):
    """Batched round costing (one lean sweep per greedy round) must pick
    exactly the DOP plans per-candidate costing picks."""
    plan = big_planner.plan(big_binder.bind_sql(instantiate(template, seed=1)))
    dag = decompose_pipelines(plan)
    per_candidate = DopPlanner(CostEstimator(), batched=False).plan(dag, constraint)
    batched = DopPlanner(CostEstimator(), batched=True).plan(dag, constraint)
    assert batched.dops == per_candidate.dops
    assert batched.feasible == per_candidate.feasible
    assert_estimates_identical(batched.estimate, per_candidate.estimate)


def test_warehouse_parameterized_serving_parity(big_catalog):
    """The full serving path (two-level cache, skeleton reuse, DAG memo,
    batched rounds) returns plans bit-identical to PR 1's exact-match
    serving path for every literal-varying arrival."""
    from repro.core.warehouse import CostIntelligentWarehouse

    reference = CostIntelligentWarehouse(
        catalog=big_catalog, parameterized_serving=False
    )
    reference.optimizer._dag_memo = None
    reference.optimizer.dop_planner.batched = False
    parameterized = CostIntelligentWarehouse(catalog=big_catalog)

    for template in template_names():
        for seed in (1, 2, 3):
            sql = instantiate(template, seed=seed)
            for constraint in CONSTRAINTS:
                _, expected = reference.plan(sql, constraint)
                _, actual = parameterized.plan(sql, constraint)
                assert actual.dop_plan.dops == expected.dop_plan.dops
                assert actual.variant_index == expected.variant_index
                assert_estimates_identical(
                    actual.dop_plan.estimate, expected.dop_plan.estimate
                )
    caches = parameterized.describe_caches()
    # Seeds 2 and 3 of each (template, constraint) pair ride the skeleton.
    assert caches["skeleton_cache"]["hits"] >= len(template_names()) * 2 * 2


def test_lean_sweep_matches_full_estimates(big_binder, big_planner):
    """The incremental coster's lean sweep must price candidate moves
    bit-identically to a full estimate of each mutated assignment."""
    from repro.dop.planner import _IncrementalCoster

    plan = big_planner.plan(
        big_binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    )
    dag = decompose_pipelines(plan)
    coster = _IncrementalCoster(CostEstimator(), dag, None)
    dops = {p.pipeline_id: 2 for p in dag}
    base = coster.estimate(dops)
    base_metrics = (base.latency, base.total_dollars)
    candidates = [(p.pipeline_id, 4) for p in dag] + [(dag.root_id, 1)]
    for (pid, new_dop), (latency, total_dollars) in zip(
        candidates, coster.sweep(dops, candidates)
    ):
        mutated = dict(dops)
        mutated[pid] = new_dop
        full = coster.estimate(mutated)
        assert latency == full.latency
        assert total_dollars == full.total_dollars
    # With pruning, every candidate is either priced bit-identically or
    # reported at the base metrics — and then it must truly be gainless.
    for (pid, new_dop), (latency, total_dollars) in zip(
        candidates, coster.sweep(dops, candidates, prune_gainless=True)
    ):
        mutated = dict(dops)
        mutated[pid] = new_dop
        full = coster.estimate(mutated)
        exact = latency == full.latency and total_dollars == full.total_dollars
        pruned = (latency, total_dollars) == base_metrics and (
            full.latency >= base.latency
        )
        assert exact or pruned


def test_incremental_search_times_fewer_pipelines(big_catalog, big_binder):
    """The hot-path contract over the template pool: >=5x fewer
    timing-model evaluations than the naive search (the acceptance
    criterion the throughput benchmark also enforces)."""
    bounds = [
        big_binder.bind_sql(instantiate(name, seed=1)) for name in template_names()
    ]

    naive_estimator = CostEstimator(enable_cache=False)
    naive_optimizer = BiObjectiveOptimizer(
        big_catalog, naive_estimator, incremental_dop=False
    )
    fast_estimator = CostEstimator(enable_cache=True)
    fast_optimizer = BiObjectiveOptimizer(
        big_catalog, fast_estimator, incremental_dop=True
    )
    for bound in bounds:
        for constraint in CONSTRAINTS:
            naive_optimizer.optimize(bound, constraint)
            fast_optimizer.optimize(bound, constraint)

    naive_timings = naive_estimator.models.timing_computations
    fast_timings = fast_estimator.models.timing_computations
    assert fast_timings * 5 <= naive_timings
