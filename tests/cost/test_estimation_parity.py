"""Parity suite: the cached/incremental hot path must be bit-identical.

The optimizer overhaul (timing cache + incremental DAG re-costing) is a
pure performance change: across every TPC-H template, both constraint
kinds, and with/without cardinality overrides, the fast path must return
*exactly* the same `CostEstimate`s and choose *exactly* the same plans
as the naive path it replaced.  Float comparisons here are deliberately
`==`, not approx.
"""

import pytest

from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.dop.planner import DopPlanner
from repro.plan.pipelines import decompose_pipelines
from repro.workloads.tpch_queries import instantiate, template_names

CONSTRAINTS = [sla_constraint(12.0), budget_constraint(0.05)]


def assert_estimates_identical(a, b):
    assert a.latency == b.latency
    assert a.machine_seconds == b.machine_seconds
    assert a.dollars == b.dollars
    assert a.scan_request_dollars == b.scan_request_dollars
    assert set(a.pipelines) == set(b.pipelines)
    for pid, pa in a.pipelines.items():
        pb = b.pipelines[pid]
        assert (pa.dop, pa.start, pa.duration, pa.waste) == (
            pb.dop,
            pb.start,
            pb.duration,
            pb.waste,
        )
        assert pa.bottleneck == pb.bottleneck
        assert pa.source_rows == pb.source_rows


@pytest.mark.parametrize("template", template_names())
@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=["sla", "budget"])
def test_optimizer_parity_all_templates(big_catalog, big_binder, template, constraint):
    bound = big_binder.bind_sql(instantiate(template, seed=1))
    naive = BiObjectiveOptimizer(
        big_catalog, CostEstimator(enable_cache=False), incremental_dop=False
    ).optimize(bound, constraint)
    fast = BiObjectiveOptimizer(
        big_catalog, CostEstimator(enable_cache=True), incremental_dop=True
    ).optimize(bound, constraint)

    assert fast.dop_plan.dops == naive.dop_plan.dops
    assert fast.variant_index == naive.variant_index
    assert fast.bushiness == naive.bushiness
    assert fast.join_tree.describe() == naive.join_tree.describe()
    assert fast.feasible == naive.feasible
    assert_estimates_identical(fast.dop_plan.estimate, naive.dop_plan.estimate)


@pytest.mark.parametrize("template", ["q5_local_supplier", "q18_large_orders"])
@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=["sla", "budget"])
def test_dop_planner_parity_with_overrides(
    big_binder, big_planner, template, constraint
):
    plan = big_planner.plan(big_binder.bind_sql(instantiate(template, seed=1)))
    dag = decompose_pipelines(plan)
    scan = dag.topological_order()[0].ops[0].node
    for overrides in (None, {scan.node_id: float(scan.est_rows) * 3.0}):
        naive = DopPlanner(CostEstimator(enable_cache=False), incremental=False).plan(
            dag, constraint, overrides
        )
        fast = DopPlanner(CostEstimator(enable_cache=True), incremental=True).plan(
            dag, constraint, overrides
        )
        assert fast.dops == naive.dops
        assert fast.feasible == naive.feasible
        assert_estimates_identical(fast.estimate, naive.estimate)


def test_incremental_search_times_fewer_pipelines(big_catalog, big_binder):
    """The hot-path contract over the template pool: >=5x fewer
    timing-model evaluations than the naive search (the acceptance
    criterion the throughput benchmark also enforces)."""
    bounds = [
        big_binder.bind_sql(instantiate(name, seed=1)) for name in template_names()
    ]

    naive_estimator = CostEstimator(enable_cache=False)
    naive_optimizer = BiObjectiveOptimizer(
        big_catalog, naive_estimator, incremental_dop=False
    )
    fast_estimator = CostEstimator(enable_cache=True)
    fast_optimizer = BiObjectiveOptimizer(
        big_catalog, fast_estimator, incremental_dop=True
    )
    for bound in bounds:
        for constraint in CONSTRAINTS:
            naive_optimizer.optimize(bound, constraint)
            fast_optimizer.optimize(bound, constraint)

    naive_timings = naive_estimator.models.timing_computations
    fast_timings = fast_estimator.models.timing_computations
    assert fast_timings * 5 <= naive_timings
