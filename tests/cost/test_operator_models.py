import pytest

from repro.cost.hardware import HardwareCalibration
from repro.cost.operator_models import OperatorModels
from repro.plan.pipelines import ROLE_SOURCE_SCAN, decompose_pipelines
from repro.util.units import GB


@pytest.fixture(scope="module")
def models():
    return OperatorModels()


@pytest.fixture(scope="module")
def scan_pipeline(big_binder, big_planner):
    plan = big_planner.plan(
        big_binder.bind_sql("SELECT count(*) AS c FROM lineitem")
    )
    dag = decompose_pipelines(plan)
    return next(p for p in dag if p.source.role == ROLE_SOURCE_SCAN)


@pytest.fixture(scope="module")
def join_pipelines(big_binder, big_planner):
    plan = big_planner.plan(
        big_binder.bind_sql(
            "SELECT count(*) AS c FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
    )
    return decompose_pipelines(plan)


def test_scan_duration_decreases_then_saturates(models, scan_pipeline):
    durations = [
        models.pipeline_timing(scan_pipeline, dop).duration for dop in (1, 2, 4, 8)
    ]
    assert durations[0] > durations[1] > durations[2]


def test_scan_near_linear_speedup_at_moderate_dop(models, scan_pipeline):
    d1 = models.pipeline_timing(scan_pipeline, 1).duration
    d8 = models.pipeline_timing(scan_pipeline, 8).duration
    speedup = d1 / d8
    assert 4.0 < speedup <= 8.5  # near-linear minus fixed overheads


def test_shuffle_pipeline_latency_u_curve(models, join_pipelines):
    """Over-scaling a shuffle-heavy pipeline eventually hurts latency (§2)."""
    probe = join_pipelines.root
    # root pipeline here is gather; use the probe pipeline with exchange
    candidates = [
        p
        for p in join_pipelines
        if any("shuffle" in op.node.describe().lower() for op in p.ops)
    ]
    pipeline = candidates[0]
    durations = {
        dop: models.pipeline_timing(pipeline, dop).duration
        for dop in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
    }
    best = min(durations, key=durations.get)
    assert best > 1  # scaling helps initially
    assert durations[512] > durations[best]  # and hurts eventually


def test_machine_time_grows_with_dop(models, scan_pipeline):
    t4 = models.pipeline_timing(scan_pipeline, 4).duration * 4
    t32 = models.pipeline_timing(scan_pipeline, 32).duration * 32
    assert t32 > t4


def test_throughput_increases_with_dop(models, scan_pipeline):
    assert models.throughput(scan_pipeline, 8) > models.throughput(scan_pipeline, 1)


def test_bottleneck_reported(models, scan_pipeline):
    timing = models.pipeline_timing(scan_pipeline, 2)
    assert timing.bottleneck
    assert len(timing.op_times) == len(scan_pipeline.ops)


def test_spill_penalty_kicks_in():
    tiny_memory = HardwareCalibration.calibrated(
        "standard", hash_memory_fraction=1e-7
    )
    normal = OperatorModels(HardwareCalibration())
    constrained = OperatorModels(tiny_memory)

    # Build a join pipeline against the big catalog.
    from repro.optimizer.dag_planner import DagPlanner
    from repro.sql.binder import Binder
    from repro.workloads.tpch_stats import synthetic_tpch_catalog

    catalog = synthetic_tpch_catalog(10.0)
    binder = Binder(catalog)
    plan = DagPlanner(catalog).plan(
        binder.bind_sql(
            "SELECT count(*) AS c FROM orders, lineitem WHERE o_orderkey = l_orderkey"
        )
    )
    dag = decompose_pipelines(plan)
    build = next(p for p in dag if p.sink.role == "build")
    slow = constrained.pipeline_timing(build, 2).duration
    fast = normal.pipeline_timing(build, 2).duration
    assert slow > fast


def test_exchange_calibration_changes_predictions(models, join_pipelines):
    from repro.cost.regression import ExchangeCalibration, ExchangeCoefficients
    from repro.plan.physical import ExchangeKind

    slow_exchange = ExchangeCalibration(
        by_kind={
            kind: ExchangeCoefficients(transfer_scale=3.0, base_setup_s=1.0)
            for kind in ExchangeKind
        }
    )
    slow_models = OperatorModels(HardwareCalibration(), slow_exchange)
    pipeline = next(
        p
        for p in join_pipelines
        if any("shuffle" in op.node.describe().lower() for op in p.ops)
    )
    assert (
        slow_models.pipeline_timing(pipeline, 8).duration
        > models.pipeline_timing(pipeline, 8).duration
    )
