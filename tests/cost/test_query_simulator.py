import pytest

from repro.cost.estimator import CostEstimator
from repro.cost.operator_models import OperatorModels
from repro.cost.query_simulator import simulate_dag
from repro.errors import EstimationError
from repro.plan.pipelines import decompose_pipelines
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5_dag(big_binder, big_planner):
    plan = big_planner.plan(big_binder.bind_sql(instantiate("q5_local_supplier", seed=1)))
    return decompose_pipelines(plan)


@pytest.fixture(scope="module")
def models():
    return OperatorModels()


def uniform(dag, dop):
    return {p.pipeline_id: dop for p in dag}


def test_latency_is_critical_path(q5_dag, models):
    estimate = simulate_dag(q5_dag, uniform(q5_dag, 4), models)
    finish_times = [p.start + p.duration for p in estimate.pipelines.values()]
    assert estimate.latency == pytest.approx(max(finish_times))


def test_start_respects_blocking_deps(q5_dag, models):
    estimate = simulate_dag(q5_dag, uniform(q5_dag, 4), models)
    for pipeline in q5_dag:
        cost = estimate.pipelines[pipeline.pipeline_id]
        for dep in pipeline.blocking_deps:
            dep_cost = estimate.pipelines[dep]
            assert cost.start >= dep_cost.start + dep_cost.duration - 1e-9


def test_waste_is_gap_to_consumer_start(q5_dag, models):
    estimate = simulate_dag(q5_dag, uniform(q5_dag, 4), models)
    for pipeline in q5_dag:
        cost = estimate.pipelines[pipeline.pipeline_id]
        if pipeline.consumer_id is None:
            assert cost.waste == 0.0
        else:
            consumer = estimate.pipelines[pipeline.consumer_id]
            expected = max(0.0, consumer.start - (cost.start + cost.duration))
            assert cost.waste == pytest.approx(expected)


def test_machine_seconds_sum(q5_dag, models):
    estimate = simulate_dag(q5_dag, uniform(q5_dag, 2), models)
    total = sum(p.machine_seconds for p in estimate.pipelines.values())
    assert estimate.machine_seconds == pytest.approx(total)
    assert estimate.dollars > 0


def test_dollars_proportional_to_machine_time(q5_dag, models):
    cheap = simulate_dag(q5_dag, uniform(q5_dag, 1), models)
    assert cheap.dollars == pytest.approx(
        cheap.machine_seconds * models.hw.node.price_per_second
    )


def test_missing_dop_rejected(q5_dag, models):
    with pytest.raises(EstimationError):
        simulate_dag(q5_dag, {}, models)


def test_provisioning_adds_latency(q5_dag, models):
    with_prov = simulate_dag(q5_dag, uniform(q5_dag, 4), models)
    without = simulate_dag(
        q5_dag, uniform(q5_dag, 4), models, include_provisioning=False
    )
    assert with_prov.latency > without.latency


def test_estimator_facade_uniform_int(big_binder, big_planner):
    estimator = CostEstimator()
    plan = big_planner.plan(
        big_binder.bind_sql("SELECT count(*) AS c FROM orders")
    )
    estimate = estimator.estimate_plan(plan, 4)
    assert estimate.latency > 0
    assert estimate.scan_request_dollars > 0


def test_estimate_describe_renders(q5_dag, models):
    estimate = simulate_dag(q5_dag, uniform(q5_dag, 2), models)
    text = estimate.describe()
    assert "latency" in text and "P0" in text
