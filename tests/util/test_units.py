from repro.util.units import GB, KB, MB, TB, fmt_bytes, fmt_dollars, fmt_duration, fmt_rate


def test_unit_constants_are_powers_of_1024():
    assert KB == 1024
    assert MB == KB * 1024
    assert GB == MB * 1024
    assert TB == GB * 1024


def test_fmt_bytes_picks_largest_unit():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(1536) == "1.50 KB"
    assert fmt_bytes(3 * GB) == "3.00 GB"
    assert fmt_bytes(2.5 * TB) == "2.50 TB"


def test_fmt_duration_scales():
    assert fmt_duration(0.0015).endswith("ms")
    assert fmt_duration(12.0) == "12.00 s"
    assert fmt_duration(600.0) == "10.0 min"
    assert fmt_duration(7200.0).endswith("h")


def test_fmt_duration_negative():
    assert fmt_duration(-5.0) == "-5.00 s"


def test_fmt_dollars_subcent_precision():
    assert fmt_dollars(0.0004) == "$0.0004"
    assert fmt_dollars(12.5) == "$12.50"
    assert fmt_dollars(0.0) == "$0.00"
    assert fmt_dollars(1234.5) == "$1,234.50"


def test_fmt_rate():
    assert fmt_rate(250 * MB) == "250.00 MB/s"
