import pytest

from repro.util.pareto import (
    ParetoPoint,
    distance_to_frontier,
    dominates,
    hypervolume,
    pareto_frontier,
)


def P(latency, dollars, payload=None):
    return ParetoPoint(latency=latency, dollars=dollars, payload=payload)


def test_dominates_strict():
    assert dominates(P(1, 1), P(2, 2))
    assert dominates(P(1, 2), P(2, 2))
    assert not dominates(P(2, 2), P(1, 1))


def test_dominates_requires_strict_improvement():
    assert not dominates(P(1, 1), P(1, 1))


def test_dominates_incomparable():
    assert not dominates(P(1, 3), P(3, 1))
    assert not dominates(P(3, 1), P(1, 3))


def test_frontier_removes_dominated():
    points = [P(1, 5), P(2, 2), P(3, 3), P(1.5, 4), P(4, 2.5)]
    frontier = pareto_frontier(points)
    assert [(p.latency, p.dollars) for p in frontier] == [(1, 5), (1.5, 4), (2, 2)]


def test_frontier_no_point_dominates_another():
    points = [P(float(i), float(10 - i)) for i in range(10)] + [P(5, 5), P(2, 9.5)]
    frontier = pareto_frontier(points)
    for a in frontier:
        for b in frontier:
            assert not dominates(a, b)


def test_frontier_keeps_payload():
    frontier = pareto_frontier([P(1, 2, "a"), P(2, 3, "b")])
    assert frontier[0].payload == "a"
    assert len(frontier) == 1


def test_frontier_same_latency_keeps_cheaper():
    frontier = pareto_frontier([P(1, 5), P(1, 3)])
    assert len(frontier) == 1
    assert frontier[0].dollars == 3


def test_hypervolume_positive_and_monotone():
    small = hypervolume([P(2, 2)], ref_latency=10, ref_dollars=10)
    bigger = hypervolume([P(1, 1)], ref_latency=10, ref_dollars=10)
    assert 0 < small < bigger


def test_hypervolume_ignores_points_beyond_reference():
    assert hypervolume([P(20, 20)], ref_latency=10, ref_dollars=10) == 0.0


def test_distance_to_frontier_zero_on_frontier():
    frontier = pareto_frontier([P(1, 5), P(2, 2)])
    assert distance_to_frontier(P(2, 2), frontier) == pytest.approx(0.0)


def test_distance_to_frontier_positive_off_frontier():
    frontier = pareto_frontier([P(1, 5), P(2, 2)])
    assert distance_to_frontier(P(3, 5), frontier) > 0


def test_distance_requires_frontier():
    with pytest.raises(ValueError):
        distance_to_frontier(P(1, 1), [])
