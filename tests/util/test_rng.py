import numpy as np

from repro.util.rng import derive_rng


def test_same_labels_same_stream():
    a = derive_rng(42, "x", "y").random(8)
    b = derive_rng(42, "x", "y").random(8)
    assert np.array_equal(a, b)


def test_different_labels_differ():
    a = derive_rng(42, "x").random(8)
    b = derive_rng(42, "y").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = derive_rng(1, "x").random(8)
    b = derive_rng(2, "x").random(8)
    assert not np.array_equal(a, b)


def test_label_path_not_concatenation_ambiguous():
    # ("ab", "c") must differ from ("a", "bc")
    a = derive_rng(0, "ab", "c").random(4)
    b = derive_rng(0, "a", "bc").random(4)
    assert not np.array_equal(a, b)
