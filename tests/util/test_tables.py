import pytest

from repro.util.tables import TextTable


def test_render_alignment():
    table = TextTable(["a", "bbbb"], title="t")
    table.add_row([1, 2])
    table.add_row(["long-cell", 3])
    out = table.render()
    lines = out.splitlines()
    assert lines[0] == "t"
    assert "a" in lines[1] and "bbbb" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # all rows padded to the same width


def test_float_formatting():
    table = TextTable(["x"])
    table.add_row([1.23456789])
    assert "1.235" in table.render()


def test_wrong_arity_rejected():
    table = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_str_dunder():
    table = TextTable(["a"])
    table.add_row(["v"])
    assert str(table) == table.render()
