"""Tests for nodes, pricing, billing, warm pool, and virtual warehouses."""

import pytest

from repro.compute.billing import BillingMeter, CostBreakdown
from repro.compute.cluster import VirtualWarehouse
from repro.compute.node import NODE_SPECS, node_spec
from repro.compute.pricing import PriceModel, TSHIRT_SIZES, tshirt_for_nodes
from repro.compute.warmpool import WarmPool, WarmPoolConfig
from repro.errors import ComputeError


# --------------------------- nodes ----------------------------------- #
def test_node_specs_known():
    spec = node_spec("standard")
    assert spec.cores == 8
    assert spec.price_per_second == pytest.approx(spec.price_per_hour / 3600)


def test_unknown_node_spec():
    with pytest.raises(KeyError):
        node_spec("quantum")


def test_all_specs_valid():
    for spec in NODE_SPECS.values():
        assert spec.cores > 0 and spec.price_per_hour > 0


# --------------------------- pricing --------------------------------- #
def test_minimum_billing():
    model = PriceModel(minimum_billed_seconds=60.0)
    assert model.billed_seconds(10.0) == 60.0
    assert model.billed_seconds(90.0) == 90.0
    with pytest.raises(ValueError):
        model.billed_seconds(-1.0)


def test_lease_dollars_uses_minimum():
    model = PriceModel(minimum_billed_seconds=60.0)
    spec = node_spec("standard")
    assert model.lease_dollars(spec, 10.0) == pytest.approx(
        60.0 * spec.price_per_second
    )


def test_machine_time_dollars_no_minimum():
    model = PriceModel(minimum_billed_seconds=60.0)
    spec = node_spec("standard")
    assert model.machine_time_dollars(spec, 10.0) == pytest.approx(
        10.0 * spec.price_per_second
    )


def test_tshirt_ladder_doubles():
    sizes = list(TSHIRT_SIZES.values())
    for small, large in zip(sizes, sizes[1:]):
        assert large == 2 * small


def test_tshirt_for_nodes():
    assert tshirt_for_nodes(1) == "XS"
    assert tshirt_for_nodes(3) == "M"
    assert tshirt_for_nodes(1000) == "4XL"


# --------------------------- billing --------------------------------- #
def test_billing_lease_lifecycle():
    meter = BillingMeter(PriceModel(minimum_billed_seconds=1.0))
    spec = node_spec("standard")
    lease = meter.open_lease(spec, 0.0)
    meter.close_lease(lease, 100.0)
    report = meter.breakdown()
    assert report.machine_seconds == 100.0
    assert report.num_leases == 1
    assert report.compute_dollars == pytest.approx(100.0 * spec.price_per_second)


def test_billing_open_lease_requires_now():
    meter = BillingMeter()
    meter.open_lease(node_spec("standard"), 0.0)
    with pytest.raises(ComputeError):
        meter.breakdown()
    report = meter.breakdown(now=50.0)
    assert report.machine_seconds == 50.0


def test_billing_close_before_start_rejected():
    meter = BillingMeter()
    lease = meter.open_lease(node_spec("standard"), 10.0)
    with pytest.raises(ComputeError):
        meter.close_lease(lease, 5.0)


def test_billing_unknown_lease():
    with pytest.raises(ComputeError):
        BillingMeter().close_lease(99, 1.0)


def test_cost_breakdown_add():
    a = CostBreakdown(compute_dollars=1.0, machine_seconds=10.0, num_leases=1)
    b = CostBreakdown(compute_dollars=2.0, machine_seconds=20.0, num_leases=2)
    a.add(b)
    assert a.compute_dollars == 3.0
    assert a.machine_seconds == 30.0
    assert a.num_leases == 3
    assert a.total_dollars == 3.0


# --------------------------- warm pool ------------------------------- #
def test_warm_pool_acquire_release():
    pool = WarmPool(node_spec("standard"), WarmPoolConfig(capacity=4))
    latency = pool.acquire(3)
    assert latency == pool.config.warm_attach_latency_s
    assert pool.available == 1
    pool.release(3)
    assert pool.available == 4


def test_warm_pool_cold_start_when_exhausted():
    pool = WarmPool(node_spec("standard"), WarmPoolConfig(capacity=2))
    latency = pool.acquire(5)
    assert latency == pool.config.cold_start_latency_s
    assert pool.cold_starts == 3
    assert pool.warm_acquires == 2


def test_warm_pool_invalid_counts():
    pool = WarmPool(node_spec("standard"))
    with pytest.raises(ComputeError):
        pool.acquire(0)
    with pytest.raises(ComputeError):
        pool.release(0)


# --------------------------- warehouse ------------------------------- #
def test_warehouse_scaling_and_billing():
    wh = VirtualWarehouse(node_spec("standard"), price_model=PriceModel(minimum_billed_seconds=1.0))
    wh.scale_to(4, now=0.0)
    assert wh.size == 4
    wh.scale_to(2, now=100.0)  # two nodes released at t=100
    wh.release_all(now=200.0)
    report = wh.cost()
    # 2 nodes x 100s + 2 nodes x 200s = 600 machine-seconds
    assert report.machine_seconds == pytest.approx(600.0)
    assert wh.resize_count == 3


def test_warehouse_negative_size_rejected():
    wh = VirtualWarehouse(node_spec("standard"))
    with pytest.raises(ComputeError):
        wh.scale_to(-1, now=0.0)


def test_warehouse_noop_resize_is_free():
    wh = VirtualWarehouse(node_spec("standard"))
    wh.scale_to(2, now=0.0)
    assert wh.scale_to(2, now=1.0) == 0.0
    assert wh.resize_count == 1
    wh.release_all(2.0)
