"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.catalog.statistics import EquiDepthHistogram
from repro.engine.batch import Batch
from repro.engine.operators import execute_aggregate, execute_hash_join, execute_sort
from repro.plan.expressions import AggCall, BinaryOp, ColumnRef, Literal
from repro.util.pareto import ParetoPoint, dominates, pareto_frontier

# ---------------------------------------------------------------------- #
# Expression evaluation vs numpy oracle
# ---------------------------------------------------------------------- #
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(
    st.lists(finite_floats, min_size=1, max_size=50),
    st.sampled_from(["+", "-", "*"]),
    finite_floats,
)
def test_arithmetic_matches_numpy(values, op, constant):
    arr = np.array(values)
    expr = BinaryOp(op, ColumnRef("x"), Literal(constant))
    expected = {"+": arr + constant, "-": arr - constant, "*": arr * constant}[op]
    assert np.allclose(expr.evaluate({"x": arr}), expected, equal_nan=True)


@given(
    st.lists(finite_floats, min_size=1, max_size=50),
    st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]),
    finite_floats,
)
def test_comparison_matches_numpy(values, op, constant):
    arr = np.array(values)
    expr = BinaryOp(op, ColumnRef("x"), Literal(constant))
    ops = {
        "<": arr < constant,
        "<=": arr <= constant,
        ">": arr > constant,
        ">=": arr >= constant,
        "=": arr == constant,
        "<>": arr != constant,
    }
    assert np.array_equal(expr.evaluate({"x": arr}), ops[op])


# ---------------------------------------------------------------------- #
# Histogram invariants
# ---------------------------------------------------------------------- #
@given(
    st.lists(finite_floats, min_size=1, max_size=500),
    st.integers(min_value=1, max_value=64),
)
def test_histogram_mass_and_monotonicity(values, buckets):
    arr = np.array(values)
    histogram = EquiDepthHistogram.from_values(arr, buckets)
    assert histogram.total_count == arr.size
    # selectivity_le is monotone non-decreasing and bounded.
    probes = np.linspace(arr.min() - 1, arr.max() + 1, 9)
    sels = [histogram.selectivity_le(float(p)) for p in probes]
    assert all(0.0 <= s <= 1.0 for s in sels)
    assert all(b >= a - 1e-12 for a, b in zip(sels, sels[1:]))


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_histogram_range_full_domain(values):
    arr = np.array(values)
    histogram = EquiDepthHistogram.from_values(arr, 16)
    assert histogram.selectivity_range(None, None) == 1.0


# ---------------------------------------------------------------------- #
# Pareto frontier invariants
# ---------------------------------------------------------------------- #
points_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


@given(points_strategy)
def test_frontier_is_minimal_and_complete(raw):
    points = [ParetoPoint(l, d) for l, d in raw]
    frontier = pareto_frontier(points)
    # Minimality: no frontier point dominates another.
    for a in frontier:
        for b in frontier:
            assert not dominates(a, b)
    # Completeness: every input point is dominated-or-equal by some
    # frontier point.
    for p in points:
        assert any(
            (f.latency, f.dollars) == (p.latency, p.dollars) or dominates(f, p)
            for f in frontier
        )


# ---------------------------------------------------------------------- #
# Engine invariants vs brute force
# ---------------------------------------------------------------------- #
small_ints = st.integers(min_value=0, max_value=8)


@given(
    st.lists(small_ints, min_size=0, max_size=40),
    st.lists(small_ints, min_size=0, max_size=40),
)
@settings(max_examples=60)
def test_join_matches_brute_force(build_keys, probe_keys):
    build = Batch({"k": np.array(build_keys, dtype=np.int64)})
    probe = Batch({"p": np.array(probe_keys, dtype=np.int64)})
    out = execute_hash_join(build, probe, (ColumnRef("k"),), (ColumnRef("p"),))
    expected = sum(build_keys.count(p) for p in probe_keys)
    assert out.num_rows == expected
    if out.num_rows:
        assert np.array_equal(out.column("k"), out.column("p"))


@given(st.lists(st.tuples(small_ints, finite_floats), min_size=1, max_size=60))
@settings(max_examples=60)
def test_group_sum_matches_brute_force(rows):
    keys = np.array([k for k, _ in rows], dtype=np.int64)
    vals = np.array([v for _, v in rows])
    batch = Batch({"g": keys, "x": vals})
    out = execute_aggregate(
        batch, (ColumnRef("g"),), (AggCall("sum", ColumnRef("x")),), ("s",)
    )
    expected = {}
    for k, v in rows:
        expected[k] = expected.get(k, 0.0) + v
    got = dict(zip(out.column("g").tolist(), out.column("s").tolist()))
    assert set(got) == set(expected)
    for k in expected:
        assert got[k] == np.float64(expected[k]) or abs(got[k] - expected[k]) < 1e-6 * max(1, abs(expected[k]))


@given(st.lists(finite_floats, min_size=0, max_size=60))
def test_sort_is_sorted_permutation(values):
    batch = Batch({"x": np.array(values)})
    out = execute_sort(batch, ("x",), (True,))
    result = out.column("x")
    assert np.array_equal(np.sort(np.array(values)), result)


# ---------------------------------------------------------------------- #
# Billing invariants
# ---------------------------------------------------------------------- #
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_billing_additive_and_nonnegative(intervals):
    from repro.compute.billing import BillingMeter
    from repro.compute.node import node_spec
    from repro.compute.pricing import PriceModel

    meter = BillingMeter(PriceModel(minimum_billed_seconds=0.0))
    spec = node_spec("standard")
    total = 0.0
    for start, duration in intervals:
        lease = meter.open_lease(spec, start)
        meter.close_lease(lease, start + duration)
        total += duration
    report = meter.breakdown()
    assert report.machine_seconds >= 0
    assert abs(report.machine_seconds - total) < 1e-6
    assert report.compute_dollars >= 0
