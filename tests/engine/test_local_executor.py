"""Local execution correctness against independent numpy computation."""

import numpy as np
import pytest

from repro.engine.local_executor import LocalExecutor
from repro.workloads.tpch_data import generate_tpch
from tests.conftest import SMALL_SF


@pytest.fixture(scope="module")
def raw():
    return generate_tpch(scale_factor=SMALL_SF, seed=42)


@pytest.fixture(scope="module")
def executor(tpch_db):
    return LocalExecutor(tpch_db)


def run(executor, binder, planner, sql):
    return executor.execute(planner.plan(binder.bind_sql(sql)))


def test_filtered_count(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT count(*) AS c FROM orders WHERE o_totalprice > 200000",
    )
    expected = int((raw["orders"]["o_totalprice"] > 200000).sum())
    assert int(result.batch.column("c")[0]) == expected


def test_global_sum_with_expression(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem",
    )
    li = raw["lineitem"]
    expected = float((li["l_extendedprice"] * (1 - li["l_discount"])).sum())
    assert result.batch.column("revenue")[0] == pytest.approx(expected, rel=1e-9)


def test_group_by_matches_numpy(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT l_returnflag, count(*) AS c, sum(l_quantity) AS q "
        "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
    )
    li = raw["lineitem"]
    flags = np.unique(li["l_returnflag"])
    assert result.batch.column("l_returnflag").tolist() == flags.tolist()
    for i, flag in enumerate(flags):
        mask = li["l_returnflag"] == flag
        assert int(result.batch.column("c")[i]) == int(mask.sum())
        assert result.batch.column("q")[i] == pytest.approx(
            float(li["l_quantity"][mask].sum())
        )


def test_join_aggregate_matches_numpy(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT count(*) AS c FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_totalprice > 300000",
    )
    orders = raw["orders"]
    li = raw["lineitem"]
    big = set(orders["o_orderkey"][orders["o_totalprice"] > 300000].tolist())
    expected = int(np.isin(li["l_orderkey"], list(big)).sum())
    assert int(result.batch.column("c")[0]) == expected


def test_three_way_join(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT n_name, count(*) AS c FROM customer, nation, region "
        "WHERE c_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND r_name = 'ASIA' GROUP BY n_name ORDER BY n_name",
    )
    nation = raw["nation"]
    customer = raw["customer"]
    asia_code = 2  # 'ASIA' in sorted region dictionary
    asia_nations = nation["n_nationkey"][
        np.isin(nation["n_regionkey"], raw["region"]["r_regionkey"][raw["region"]["r_name"] == asia_code])
    ]
    mask = np.isin(customer["c_nationkey"], asia_nations)
    assert int(result.batch.column("c").sum()) == int(mask.sum())


def test_order_by_limit(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC LIMIT 5",
    )
    expected = np.sort(raw["orders"]["o_totalprice"])[::-1][:5]
    assert np.allclose(result.batch.column("o_totalprice"), expected)


def test_having_filters_groups(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT o_custkey, count(*) AS c FROM orders GROUP BY o_custkey "
        "HAVING count(*) > 3",
    )
    keys, counts = np.unique(raw["orders"]["o_custkey"], return_counts=True)
    expected = int((counts > 3).sum())
    assert result.batch.num_rows == expected
    assert (result.batch.column("c") > 3).all()


def test_distinct(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT DISTINCT o_orderstatus FROM orders",
    )
    expected = len(np.unique(raw["orders"]["o_orderstatus"]))
    assert result.batch.num_rows == expected


def test_true_cardinalities_recorded(executor, tpch_binder, tpch_planner):
    plan = tpch_planner.plan(
        tpch_binder.bind_sql("SELECT count(*) AS c FROM orders WHERE o_totalprice > 0")
    )
    result = executor.execute(plan)
    assert result.true_rows  # every node observed
    from repro.plan.physical import walk_physical

    for node in walk_physical(plan):
        assert node.node_id in result.true_rows


def test_impossible_string_predicate_returns_empty(executor, tpch_binder, tpch_planner):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT count(*) AS c FROM customer WHERE c_mktsegment = 'NOSUCHSEG'",
    )
    assert int(result.batch.column("c")[0]) == 0


def test_year_function(executor, tpch_binder, tpch_planner, raw):
    result = run(
        executor, tpch_binder, tpch_planner,
        "SELECT count(*) AS c FROM orders WHERE year(o_orderdate) = 1995",
    )
    days = raw["orders"]["o_orderdate"].astype("datetime64[D]")
    years = days.astype("datetime64[Y]").astype(int) + 1970
    assert int(result.batch.column("c")[0]) == int((years == 1995).sum())
