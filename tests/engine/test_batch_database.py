"""Batch container and Database bundle behaviors."""

import numpy as np
import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.engine.batch import Batch
from repro.engine.database import Database
from repro.errors import CatalogError, ExecutionError


# ----------------------------- Batch ---------------------------------- #
def test_batch_basic_accessors():
    batch = Batch({"a": np.arange(5), "b": np.ones(5)})
    assert batch.num_rows == 5
    assert batch.column_names == ("a", "b")
    assert batch.select(("b",)).column_names == ("b",)
    with pytest.raises(ExecutionError):
        batch.column("zz")


def test_batch_ragged_rejected():
    with pytest.raises(ExecutionError):
        Batch({"a": np.arange(5), "b": np.arange(4)})


def test_batch_filter_requires_bool_mask():
    batch = Batch({"a": np.arange(5)})
    with pytest.raises(ExecutionError):
        batch.filter(np.arange(5))
    out = batch.filter(np.array([True, False, True, False, True]))
    assert out.column("a").tolist() == [0, 2, 4]


def test_batch_take_head_with_columns():
    batch = Batch({"a": np.arange(10)})
    assert batch.take(np.array([3, 1])).column("a").tolist() == [3, 1]
    assert batch.head(3).num_rows == 3
    extended = batch.with_columns({"b": np.arange(10) * 2})
    assert extended.column_names == ("a", "b")


def test_batch_concat():
    a = Batch({"x": np.arange(3)})
    b = Batch({"x": np.arange(2)})
    assert Batch.concat([a, b]).num_rows == 5
    with pytest.raises(ExecutionError):
        Batch.concat([])
    with pytest.raises(ExecutionError):
        Batch.concat([a, Batch({"y": np.arange(1)})])


def test_batch_empty():
    empty = Batch.empty(("a", "b"))
    assert empty.num_rows == 0
    assert empty.column_names == ("a", "b")


# --------------------------- Database --------------------------------- #
SCHEMA = TableSchema(
    "widgets",
    (Column("id", DataType.INT64), Column("tag", DataType.STRING)),
)


def test_create_table_requires_dictionaries_for_strings():
    db = Database()
    with pytest.raises(CatalogError):
        db.create_table(
            SCHEMA,
            {"id": np.arange(10), "tag": np.zeros(10, dtype=np.int64)},
        )


def test_create_table_and_decode():
    db = Database()
    db.create_table(
        SCHEMA,
        {"id": np.arange(4), "tag": np.array([0, 1, 1, 0])},
        dictionaries={"tag": ("blue", "red")},
    )
    assert db.catalog.has_table("widgets")
    assert db.stored_table("widgets").row_count == 4
    assert db.decode_strings("widgets", "tag", np.array([1, 0])) == ["red", "blue"]
    with pytest.raises(CatalogError):
        db.decode_strings("widgets", "id", np.array([0]))


def test_replace_table_storage_updates_clustering():
    db = Database()
    schema = TableSchema("t", (Column("k", DataType.INT64),))
    rng = np.random.default_rng(0)
    db.create_table(schema, {"k": rng.permutation(1000)}, partition_rows=100)
    assert db.catalog.table("t").clustering_depth == 1.0
    reclustered = db.stored_table("t").recluster("k")
    db.replace_table_storage("t", reclustered)
    entry = db.catalog.table("t")
    assert entry.schema.clustering_key == "k"
    assert entry.clustering_depth < 0.2
    with pytest.raises(CatalogError):
        db.replace_table_storage("missing", reclustered)


def test_object_store_tracks_table_bytes():
    db = Database()
    schema = TableSchema("t", (Column("k", DataType.INT64),))
    db.create_table(schema, {"k": np.arange(1000)})
    assert db.store.exists("tables/t")
    assert db.store.size_of("tables/t") > 0
