import numpy as np
import pytest

from repro.engine.batch import Batch
from repro.engine.operators import (
    execute_aggregate,
    execute_filter,
    execute_hash_join,
    execute_project,
    execute_scan,
    execute_sort,
)
from repro.errors import ExecutionError
from repro.plan.expressions import AggCall, BinaryOp, ColumnRef, Literal


def test_filter_matches_numpy():
    batch = Batch({"a": np.arange(100), "b": np.arange(100) * 2.0})
    out = execute_filter(batch, BinaryOp("<", ColumnRef("a"), Literal(10)))
    assert out.num_rows == 10
    assert np.array_equal(out.column("b"), np.arange(10) * 2.0)


def test_project_computes_expressions():
    batch = Batch({"a": np.arange(5.0)})
    out = execute_project(
        batch,
        (BinaryOp("*", ColumnRef("a"), Literal(3)), Literal(7)),
        ("triple", "seven"),
    )
    assert np.array_equal(out.column("triple"), np.arange(5.0) * 3)
    assert np.array_equal(out.column("seven"), np.full(5, 7))


def test_hash_join_inner_semantics():
    build = Batch({"k": np.array([1, 2, 2, 5]), "bv": np.array([10.0, 20.0, 21.0, 50.0])})
    probe = Batch({"k2": np.array([2, 1, 7, 2]), "pv": np.array([1.0, 2.0, 3.0, 4.0])})
    out = execute_hash_join(
        build, probe, (ColumnRef("k"),), (ColumnRef("k2"),)
    )
    # probe row k2=2 matches two build rows; k2=7 matches none.
    assert out.num_rows == 5
    pairs = sorted(zip(out.column("k2").tolist(), out.column("bv").tolist()))
    assert pairs == [(1, 10.0), (2, 20.0), (2, 20.0), (2, 21.0), (2, 21.0)]


def test_hash_join_empty_probe():
    build = Batch({"k": np.array([1, 2])})
    probe = Batch({"k2": np.array([], dtype=np.int64)})
    out = execute_hash_join(build, probe, (ColumnRef("k"),), (ColumnRef("k2"),))
    assert out.num_rows == 0


def test_hash_join_multi_key():
    build = Batch({"a": np.array([1, 1, 2]), "b": np.array([0, 1, 0]), "v": np.array([9, 8, 7])})
    probe = Batch({"x": np.array([1, 1, 2]), "y": np.array([1, 0, 1])})
    out = execute_hash_join(
        build, probe, (ColumnRef("a"), ColumnRef("b")), (ColumnRef("x"), ColumnRef("y"))
    )
    assert sorted(out.column("v").tolist()) == [8, 9]


def test_hash_join_rejects_float_keys():
    build = Batch({"k": np.array([1.5])})
    probe = Batch({"k2": np.array([1.5])})
    with pytest.raises(ExecutionError):
        execute_hash_join(build, probe, (ColumnRef("k"),), (ColumnRef("k2"),))


def test_hash_join_duplicate_output_columns_rejected():
    build = Batch({"k": np.array([1])})
    probe = Batch({"k": np.array([1])})
    with pytest.raises(ExecutionError):
        execute_hash_join(build, probe, (ColumnRef("k"),), (ColumnRef("k"),))


def test_join_residual_applied():
    build = Batch({"k": np.array([1, 2]), "bv": np.array([5.0, 50.0])})
    probe = Batch({"k2": np.array([1, 2]), "pv": np.array([10.0, 10.0])})
    out = execute_hash_join(
        build,
        probe,
        (ColumnRef("k"),),
        (ColumnRef("k2"),),
        residual=BinaryOp("<", ColumnRef("bv"), ColumnRef("pv")),
    )
    assert out.num_rows == 1
    assert out.column("k").tolist() == [1]


def _group_batch():
    return Batch(
        {
            "g": np.array([0, 1, 0, 1, 2], dtype=np.int64),
            "h": np.array([5, 5, 6, 5, 5], dtype=np.int64),
            "x": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        }
    )


def test_aggregate_single_key():
    out = execute_aggregate(
        _group_batch(),
        (ColumnRef("g"),),
        (
            AggCall("sum", ColumnRef("x")),
            AggCall("count", None),
            AggCall("min", ColumnRef("x")),
            AggCall("max", ColumnRef("x")),
            AggCall("avg", ColumnRef("x")),
        ),
        ("s", "c", "mn", "mx", "av"),
    )
    by_group = {
        int(g): (s, c, mn, mx, av)
        for g, s, c, mn, mx, av in zip(
            out.column("g"), out.column("s"), out.column("c"),
            out.column("mn"), out.column("mx"), out.column("av"),
        )
    }
    assert by_group[0] == (4.0, 2, 1.0, 3.0, 2.0)
    assert by_group[1] == (6.0, 2, 2.0, 4.0, 3.0)
    assert by_group[2] == (5.0, 1, 5.0, 5.0, 5.0)


def test_aggregate_multi_key():
    out = execute_aggregate(
        _group_batch(),
        (ColumnRef("g"), ColumnRef("h")),
        (AggCall("count", None),),
        ("c",),
    )
    assert out.num_rows == 4  # (0,5),(0,6),(1,5),(2,5)
    assert out.column("c").sum() == 5


def test_aggregate_global_empty_input():
    empty = Batch({"x": np.array([], dtype=np.float64)})
    out = execute_aggregate(
        empty, (), (AggCall("count", None), AggCall("sum", ColumnRef("x"))), ("c", "s")
    )
    assert out.num_rows == 1
    assert out.column("c")[0] == 0
    assert np.isnan(out.column("s")[0])


def test_aggregate_count_distinct():
    batch = Batch(
        {
            "g": np.array([0, 0, 0, 1], dtype=np.int64),
            "x": np.array([1.0, 1.0, 2.0, 9.0]),
        }
    )
    out = execute_aggregate(
        batch,
        (ColumnRef("g"),),
        (AggCall("count", ColumnRef("x"), distinct=True),),
        ("d",),
    )
    by_group = dict(zip(out.column("g").tolist(), out.column("d").tolist()))
    assert by_group == {0: 2, 1: 1}


def test_aggregate_distinct_only_count():
    batch = Batch({"x": np.array([1.0])})
    with pytest.raises(ExecutionError):
        execute_aggregate(
            batch, (), (AggCall("sum", ColumnRef("x"), distinct=True),), ("s",)
        )


def test_sort_multi_key_directions():
    batch = Batch(
        {
            "a": np.array([1, 2, 1, 2]),
            "b": np.array([9.0, 8.0, 7.0, 6.0]),
        }
    )
    out = execute_sort(batch, ("a", "b"), (True, False))
    assert out.column("a").tolist() == [1, 1, 2, 2]
    assert out.column("b").tolist() == [9.0, 7.0, 8.0, 6.0]


def test_sort_with_limit():
    batch = Batch({"a": np.arange(100)})
    out = execute_sort(batch, ("a",), (False,), limit=3)
    assert out.column("a").tolist() == [99, 98, 97]


def test_scan_prunes_partitions(tpch_db):
    table = tpch_db.stored_table("lineitem")
    predicate = BinaryOp(
        "and",
        BinaryOp(">=", ColumnRef("l_shipdate"), Literal(9131)),
        BinaryOp("<", ColumnRef("l_shipdate"), Literal(9200)),
    )
    batch, partitions_read, rows_read = execute_scan(
        table, ("l_orderkey",), predicate
    )
    assert partitions_read < table.num_partitions  # clustered on l_shipdate
    assert rows_read >= batch.num_rows
    full, _, _ = execute_scan(table, ("l_orderkey", "l_shipdate"), None)
    mask = (full.column("l_shipdate") >= 9131) & (full.column("l_shipdate") < 9200)
    assert batch.num_rows == int(mask.sum())


def test_sort_descending_int64_beyond_float53():
    # A float64 negation collapses adjacent int64 values above 2**53;
    # the integer order-reversing transform must keep them distinct.
    values = np.array(
        [2**53, 2**53 + 1, 2**53 - 1, -(2**63), 2**63 - 1], dtype=np.int64
    )
    out = execute_sort(Batch({"k": values}), ("k",), (False,))
    assert out.column("k").tolist() == sorted(values.tolist(), reverse=True)
    # dtype survives the round trip
    assert out.column("k").dtype == np.int64


def test_sort_descending_unsigned_and_negative():
    unsigned = np.array([0, 2**64 - 1, 7], dtype=np.uint64)
    out = execute_sort(Batch({"k": unsigned}), ("k",), (False,))
    assert out.column("k").tolist() == [2**64 - 1, 7, 0]
    signed = np.array([-5, 3, -1, 0], dtype=np.int64)
    out = execute_sort(Batch({"k": signed}), ("k",), (False,))
    assert out.column("k").tolist() == [3, 0, -1, -5]


def test_hash_join_composite_key_span_overflow():
    # Two key columns whose domain-span product exceeds int64: the direct
    # composite encoding would wrap around; the factorized fallback must
    # still join exactly.
    build = Batch(
        {
            "a": np.array([0, 2**40, 2**40, -(2**40)], dtype=np.int64),
            "b": np.array([0, 2**40, 5, -(2**40)], dtype=np.int64),
            "v": np.array([1, 2, 3, 4]),
        }
    )
    probe = Batch(
        {
            "x": np.array([2**40, 0, 2**40, -(2**40)], dtype=np.int64),
            "y": np.array([2**40, 1, 5, -(2**40)], dtype=np.int64),
        }
    )
    out = execute_hash_join(
        build, probe, (ColumnRef("a"), ColumnRef("b")), (ColumnRef("x"), ColumnRef("y"))
    )
    # (2**40, 2**40) -> v=2, (2**40, 5) -> v=3, (-2**40, -2**40) -> v=4;
    # (0, 1) matches nothing.
    assert sorted(out.column("v").tolist()) == [2, 3, 4]


def test_hash_join_composite_overflow_no_false_positives():
    # Pairs engineered so a wrapped int64 encoding could alias: same
    # difference pattern at huge magnitudes.
    build = Batch(
        {
            "a": np.array([2**62, -(2**62)], dtype=np.int64),
            "b": np.array([2**62, -(2**62)], dtype=np.int64),
            "v": np.array([10, 20]),
        }
    )
    probe = Batch(
        {
            "x": np.array([-(2**62), 2**62], dtype=np.int64),
            "y": np.array([2**62, -(2**62)], dtype=np.int64),
        }
    )
    out = execute_hash_join(
        build, probe, (ColumnRef("a"), ColumnRef("b")), (ColumnRef("x"), ColumnRef("y"))
    )
    assert out.num_rows == 0


def test_hash_join_composite_small_domain_unchanged():
    # Small domains keep the direct arithmetic encoding (no factorize cost).
    build = Batch({"a": np.array([1, 2]), "b": np.array([3, 4]), "v": np.array([1, 2])})
    probe = Batch({"x": np.array([2, 1]), "y": np.array([4, 9])})
    out = execute_hash_join(
        build, probe, (ColumnRef("a"), ColumnRef("b")), (ColumnRef("x"), ColumnRef("y"))
    )
    assert out.column("v").tolist() == [2]
