"""Kill-point recovery matrix: crash anywhere, recover everywhere (PR 7).

The crash counterpart of ``test_fault_matrix.py``: a seeded multi-tenant
workload (serving traffic + one mid-workload tuning apply) runs against
a journaled warehouse while a :func:`~repro.testing.faults.kill` spec
severs the process at **every reachable kill point** — before a journal
write, after the write but before the in-memory apply, and after a
tuning apply's catalog mutation but before its commit record.  After
each crash the warehouse is recovered from the journal over the *same*
surviving catalog, the workload resumes to completion, and the crash
invariants are asserted against an uncrashed journaled reference run:

- **exactly-once billing** — recovered + resumed ``TenantBill`` ledger
  snapshots are *bitwise* equal to the reference (no lost charge, no
  double charge, for serving, background, and retry dollars alike);
- **append-ordered, gap-free log** — query ids are sequential from 1
  and timestamps never decrease, across the crash;
- **no stranded recommendations** — no durable tuning record is ever
  left ``applying`` / ``rolling_back``, and an in-doubt apply's catalog
  mutation is physically rolled back;
- **bit-identical plans** — the recovered warehouse (caches cold)
  plans every workload template identically to the reference.

Every cycle also re-checks reachability coverage: the reference run
carries zero-rate :func:`~repro.testing.faults.crash_probes`, and the
matrix asserts each declared crash point was actually invoked — a new
journal write site cannot silently dodge the matrix.
"""

from __future__ import annotations

import pytest

from repro.core.journal import WriteAheadJournal
from repro.core.service import QueryRequest
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.errors import AdmissionDeniedError
from repro.testing import CRASH_POINTS, FaultPlan, SimulatedCrashError, crash_probes, kill
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
RECOVERY_SEEDS = range(20)
CHECKPOINT_EVERY = 4

T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)
T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
TENANTS = ("acme", "bolt")
QUERIES_BEFORE_TUNE = 3
TOTAL_QUERIES = 5


def plan_snapshot(choice):
    estimate = choice.dop_plan.estimate
    return (
        choice.join_tree.describe(),
        dict(choice.dop_plan.dops),
        estimate.latency,
        estimate.total_dollars,
        estimate.machine_seconds,
    )


def script(seed: int) -> list[tuple[str, str, str, float]]:
    """The deterministic per-seed workload: (tenant, template, sql, at)."""
    steps = []
    for i in range(TOTAL_QUERIES):
        tenant = TENANTS[(i + seed) % 2]
        if i % 3 == 2:
            sql = T_ORDERS.format(v=100_000 + seed + i)
            template = "orders_scan"
        else:
            sql = T_JOIN.format(v=(seed + i) % 4)
            template = "q5ish"
        steps.append((tenant, template, sql, 10.0 * i))
    return steps


def make_warehouse(catalog, journal, plan=None):
    warehouse = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    if plan is not None:
        warehouse.inject_faults(plan)
    return warehouse


def tune(warehouse) -> None:
    """Propose and apply the workload's MV recommendation."""
    candidates = [
        rec
        for rec in warehouse.tuning.propose()
        if rec.action.kind == "materialized-view"
    ]
    assert candidates, "workload must yield an MV recommendation"
    rec = candidates[0]
    if not rec.accepted:
        warehouse.tuning.accept(rec)
    warehouse.tuning.apply(rec)


def tuning_applied(warehouse) -> bool:
    return any(
        durable.state == "applied"
        for durable in warehouse._durable_tuning.values()
    )


def run_script(warehouse, seed: int) -> None:
    """Run (or, after recovery, *resume*) the seed's workload.

    Progress is derived from recovered state: the log length says which
    queries already finalized, the durable tuning records whether the
    apply committed — so a resumed run completes exactly the steps the
    crashed process never finished.
    """
    steps = script(seed)
    sessions = {
        tenant: warehouse.session(tenant=tenant, constraint=SLA)
        for tenant in TENANTS
    }

    def serve(from_index: int, to_index: int) -> None:
        for tenant, template, sql, at in steps[from_index:to_index]:
            handle = sessions[tenant].submit(
                QueryRequest(sql=sql, template=template, at_time=at)
            )
            handle.result()

    done = len(warehouse.logs)
    if done < QUERIES_BEFORE_TUNE:
        serve(done, QUERIES_BEFORE_TUNE)
        done = QUERIES_BEFORE_TUNE
    if not tuning_applied(warehouse):
        tune(warehouse)
    serve(done, TOTAL_QUERIES)


def reference_run(seed: int):
    """The uncrashed journaled run: bills, plans, and — via the
    zero-rate crash probes — the reachable kill-point schedule."""
    catalog = synthetic_tpch_catalog(1.0)
    probes = FaultPlan(crash_probes(), seed=seed)
    warehouse = make_warehouse(
        catalog, WriteAheadJournal(checkpoint_every=CHECKPOINT_EVERY), probes
    )
    run_script(warehouse, seed)
    bills = {t: b.ledger_snapshot() for t, b in warehouse.billing.items()}
    plans = {
        sql: plan_snapshot(warehouse.plan(sql, SLA)[1])
        for _, _, sql, _ in script(seed)
    }
    return bills, plans, dict(probes.invocations)


def assert_log_invariants(warehouse) -> None:
    records = list(warehouse.logs)
    assert [r.query_id for r in records] == list(range(1, len(records) + 1))
    timestamps = [r.timestamp for r in records]
    assert timestamps == sorted(timestamps)


def assert_no_stranded_recommendations(warehouse) -> None:
    for durable in warehouse._durable_tuning.values():
        assert not durable.in_doubt, (
            f"recommendation #{durable.rec_id} stranded in {durable.state!r}"
        )


@pytest.mark.parametrize("seed", RECOVERY_SEEDS)
def test_kill_point_matrix(seed):
    """Crash at every reachable (point, invocation), recover, resume,
    and hold every crash invariant against the uncrashed reference."""
    ref_bills, ref_plans, reachable = reference_run(seed)

    # Coverage gate: every declared kill point must actually be
    # reachable in this workload — a crash family the workload never
    # exercises would make the whole matrix vacuous.
    for point in CRASH_POINTS:
        assert reachable.get(point, 0) >= 1, f"{point} never invoked"

    for point in CRASH_POINTS:
        for at in range(reachable[point]):
            catalog = synthetic_tpch_catalog(1.0)
            journal = WriteAheadJournal(checkpoint_every=CHECKPOINT_EVERY)
            crashed = make_warehouse(
                catalog, journal, FaultPlan([kill(point, at=at)], seed=seed)
            )
            fired = False
            try:
                run_script(crashed, seed)
            except SimulatedCrashError:
                fired = True
            assert fired, f"kill({point!r}, at={at}) did not crash the run"

            recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
            assert_no_stranded_recommendations(recovered)
            assert_log_invariants(recovered)

            run_script(recovered, seed)  # resume to completion
            assert_log_invariants(recovered)
            assert_no_stranded_recommendations(recovered)
            bills = {
                t: b.ledger_snapshot() for t, b in recovered.billing.items()
            }
            assert bills == ref_bills, (
                f"billing diverged after kill({point!r}, at={at})"
            )
            plans = {
                sql: plan_snapshot(recovered.plan(sql, SLA)[1])
                for _, _, sql, _ in script(seed)
            }
            assert plans == ref_plans, (
                f"plans diverged after kill({point!r}, at={at})"
            )


def test_matrix_reaches_the_in_doubt_window():
    """At least one matrix cell must exercise in-doubt resolution: a
    crash at ``crash_pre_commit`` leaves the tuning apply intended but
    uncommitted, and recovery rolls the catalog mutation back."""
    seed = 0
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal(checkpoint_every=CHECKPOINT_EVERY)
    crashed = make_warehouse(
        catalog, journal, FaultPlan([kill("crash_pre_commit")], seed=seed)
    )
    with pytest.raises(SimulatedCrashError):
        run_script(crashed, seed)
    stranded = [
        d for d in crashed._durable_tuning.values() if d.state == "applying"
    ]
    assert stranded, "crash_pre_commit must strand an intent"
    name = stranded[0].name
    assert catalog.has_view(name) or catalog.has_table(name)  # half-applied

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert recovered.last_recovery.in_doubt_back == 1
    durable = recovered._durable_tuning[stranded[0].rec_id]
    assert durable.state == "failed" and durable.resolution == "back"
    assert not catalog.has_view(name) and not catalog.has_table(name)
    assert not recovered._applied_mvs
    # Unbilled: the tenant never got the action.
    assert all(
        bill.background_dollars == 0.0
        for bill in recovered.billing.values()
    )


def test_crash_mid_rollback_completes_forward():
    """A rollback whose commit record never landed is completed
    *forward* by recovery: the reversal was requested, so recovery
    finishes it (idempotently) and meters it exactly as the live path
    would have."""
    seed = 1
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    warehouse = make_warehouse(catalog, journal)
    run_script(warehouse, seed)
    applied = [
        rec for rec in warehouse.tuning.recommendations if rec.applied
    ]
    assert applied
    rec = applied[0]
    name = rec.action.name
    # Reference: the same workload with the rollback completed live.
    ref_catalog = synthetic_tpch_catalog(1.0)
    reference = make_warehouse(ref_catalog, WriteAheadJournal())
    run_script(reference, seed)
    reference.tuning.rollback(
        [r for r in reference.tuning.recommendations if r.applied][0]
    )

    warehouse.inject_faults(FaultPlan([kill("crash_pre_commit")], seed=seed))
    with pytest.raises(SimulatedCrashError):
        warehouse.tuning.rollback(rec)
    assert warehouse._durable_tuning[rec.rec_id].state == "rolling_back"

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert recovered.last_recovery.in_doubt_forward == 1
    durable = recovered._durable_tuning[rec.rec_id]
    assert durable.state == "rolled_back" and durable.resolution == "forward"
    assert not catalog.has_view(name) and not catalog.has_table(name)
    assert not recovered._applied_mvs
    assert {
        t: b.ledger_snapshot() for t, b in recovered.billing.items()
    } == {t: b.ledger_snapshot() for t, b in reference.billing.items()}
    assert [
        (e.action_name, e.kind, e.dollars)
        for e in recovered.tuning.background.ledger
    ] == [
        (e.action_name, e.kind, e.dollars)
        for e in reference.tuning.background.ledger
    ]


# --------------------------------------------------------------------- #
# Denied admission leaves no trace (satellite: DENY journal hygiene)
# --------------------------------------------------------------------- #
def denial_script(warehouse):
    """alpha's first query is admitted; its second, over budget, is
    denied; beta serves throughout."""
    alpha = warehouse.session(tenant="alpha", constraint=SLA)
    beta = warehouse.session(tenant="beta", constraint=SLA)
    served = len(warehouse.logs)
    if served < 1:
        alpha.submit(QueryRequest(sql=T_JOIN.format(v=0), at_time=0.0)).result()
    denied = alpha.submit(QueryRequest(sql=T_JOIN.format(v=1), at_time=10.0))
    with pytest.raises(AdmissionDeniedError):
        denied.result()
    if len(warehouse.logs) < 2:
        beta.submit(QueryRequest(sql=T_JOIN.format(v=2), at_time=20.0)).result()


def make_denial_warehouse(catalog, journal, plan=None):
    warehouse = CostIntelligentWarehouse(
        catalog=catalog, journal=journal, tenant_budgets={"alpha": 0.0001}
    )
    if plan is not None:
        warehouse.inject_faults(plan)
    return warehouse


def test_denied_admission_journals_only_the_verdict():
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    warehouse = make_denial_warehouse(catalog, journal)
    denial_script(warehouse)
    from repro.core.journal import AdmissionDecision, QueryServed

    records = [entry.record for entry in journal.entries()]
    denies = [
        r
        for r in records
        if isinstance(r, AdmissionDecision) and r.verdict == "deny"
    ]
    assert len(denies) == 1 and denies[0].tenant == "alpha"
    # The denied query contributed exactly one record: its verdict.
    # Served queries contribute a verdict *and* a QueryServed.
    assert len([r for r in records if isinstance(r, QueryServed)]) == 2
    assert len([r for r in records if isinstance(r, AdmissionDecision)]) == 3
    assert warehouse.billing["alpha"].queries == 1  # never billed


def test_crash_at_denial_recovers_clean():
    """Kill the process at every record boundary around the denial;
    recovery must restore the verdict counters and nothing else — no
    phantom bill, no phantom log record for the denied query."""
    reference = make_denial_warehouse(
        synthetic_tpch_catalog(1.0), WriteAheadJournal()
    )
    denial_script(reference)
    ref_bills = {t: b.ledger_snapshot() for t, b in reference.billing.items()}
    denied_sql = T_JOIN.format(v=1)

    probes = FaultPlan(crash_probes())
    probe_wh = make_denial_warehouse(
        synthetic_tpch_catalog(1.0), WriteAheadJournal(), probes
    )
    denial_script(probe_wh)
    reachable = dict(probes.invocations)

    for point in ("crash_pre_write", "crash_post_write"):
        for at in range(reachable[point]):
            catalog = synthetic_tpch_catalog(1.0)
            journal = WriteAheadJournal()
            crashed = make_denial_warehouse(
                catalog, journal, FaultPlan([kill(point, at=at)])
            )
            with pytest.raises(SimulatedCrashError):
                denial_script(crashed)
            # Budgets are constructor config, not journaled state: the
            # restarted process supplies them again, recovery restores
            # the verdict history they act on.
            recovered = CostIntelligentWarehouse.recover(
                journal, catalog=catalog, tenant_budgets={"alpha": 0.0001}
            )
            assert "alpha" not in recovered.billing or (
                recovered.billing["alpha"].queries <= 1
            )
            assert_log_invariants(recovered)
            denial_script(recovered)  # resume: the denial still stands
            # Exactly-once billing and logging survive the crash; the
            # denied query appears in neither.  (Verdict *counts* are
            # not exactly-once: a re-submitted query after a crash is
            # honestly admission-checked again.)
            assert {
                t: b.ledger_snapshot() for t, b in recovered.billing.items()
            } == ref_bills
            assert len(recovered.logs) == 2
            assert all(r.sql != denied_sql for r in recovered.logs)
            assert recovered.admission.verdict_counts["alpha"]["deny"] >= 1


# --------------------------------------------------------------------- #
# Derived caches re-warm from recovered state
# --------------------------------------------------------------------- #
def test_warm_cache_rewarns_from_the_recovered_forecast():
    """Serving caches restart cold (pure derived state), but the
    recovered Statistics Service log still drives cache warming, and
    warmed plans are bit-identical to the reference's served plans."""
    seed = 2
    ref_bills, ref_plans, _ = reference_run(seed)

    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal(checkpoint_every=CHECKPOINT_EVERY)
    crashed = make_warehouse(
        catalog, journal, FaultPlan([kill("crash_post_write", at=4)], seed=seed)
    )
    with pytest.raises(SimulatedCrashError):
        run_script(crashed, seed)
    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert recovered.plan_cache is not None and len(recovered.plan_cache) == 0

    workload = {}
    for _, template, sql, _ in script(seed):
        workload.setdefault(template, sql)
    warmed = recovered.warm_cache(workload, SLA)
    assert set(warmed) == set(workload)
    run_script(recovered, seed)
    plans = {
        sql: plan_snapshot(recovered.plan(sql, SLA)[1])
        for _, _, sql, _ in script(seed)
    }
    assert plans == ref_plans
    assert {
        t: b.ledger_snapshot() for t, b in recovered.billing.items()
    } == ref_bills
