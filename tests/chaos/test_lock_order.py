"""Lock-order sanitizer sweep over the 20-seed chaos matrix.

Runs the same seeded fault schedules as ``test_fault_matrix`` against a
fully instrumented warehouse (every core lock wrapped — serving,
journal, cache stripes, retention policies, admission, frequency,
breakers, resilience stats, fault plan) and asserts the acquisition-
order graph stays acyclic under every schedule and interleaving.  A
cycle here is a latent deadlock two threads could reach even if this
run's timing never did.

CI runs this file as its own chaos step (the sanitizer gate).
"""

from __future__ import annotations

import pytest

from repro.core.journal import WriteAheadJournal
from repro.core.resilience import ResiliencePolicy, RetryPolicy
from repro.core.service import QueryRequest, QueryState
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.testing import FaultPlan, FaultSpec, instrument_warehouse
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
LOCK_SWEEP_SEEDS = range(20)  # mirrors CHAOS_SEEDS in test_fault_matrix

T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
T_LINEITEM = "SELECT count(*) AS c FROM lineitem WHERE l_quantity > {v}"
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)


@pytest.fixture(scope="module")
def catalog():
    return synthetic_tpch_catalog(
        1.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )


@pytest.mark.parametrize("seed", LOCK_SWEEP_SEEDS)
def test_chaos_schedule_has_acyclic_lock_order(catalog, seed):
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        retention_policy="cost-aware",
        journal=WriteAheadJournal(),
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, seed=seed),
            stage_deadline_s={"optimize": 1.0},
        ),
    )
    plan = FaultPlan(
        [
            FaultSpec(point="bind", error_rate=0.15),
            FaultSpec(
                point="optimize",
                error_rate=0.15,
                latency_rate=0.3,
                latency_s=2.0,
            ),
            FaultSpec(point="simulate", error_rate=0.15),
            FaultSpec(point="statsvc", error_rate=0.6),
        ],
        seed=seed,
    )
    wh.inject_faults(plan)
    sanitizer = instrument_warehouse(wh)

    session = wh.session(tenant="chaos", constraint=SLA)
    sqls = [
        template.format(v=value)
        for value in (seed, seed + 1)
        for template in (T_ORDERS, T_LINEITEM, T_JOIN)
    ]
    requests = [
        QueryRequest(sql=sql, at_time=30.0 * i) for i, sql in enumerate(sqls)
    ]
    handles = session.submit_many(requests[:3], max_workers=4)
    # statsvc traffic mid-workload: exercises frequency/breaker locks
    # while serving threads hold cache-stripe and serving locks.
    wh.frequency.invalidate()
    wh.frequency.family_rates()
    handles += session.submit_many(requests[3:], max_workers=4)

    assert len(handles) == len(sqls)
    assert all(
        h.state in (QueryState.DONE, QueryState.FAILED) for h in handles
    )
    # Real coverage, not a vacuous pass: the sweep must actually have
    # exercised instrumented locks, including nested holds.
    report = sanitizer.describe()
    assert report["acquisitions"] > 0
    assert any(report["edges"])
    sanitizer.assert_clean()


def test_sanitized_warehouse_serving_is_bit_identical(catalog):
    """Instrumentation must be observation-only: same plans, same bills."""
    def run(instrument: bool):
        wh = CostIntelligentWarehouse(catalog=catalog)
        if instrument:
            instrument_warehouse(wh)
        session = wh.session(tenant="t", constraint=SLA)
        requests = [
            QueryRequest(sql=T_JOIN.format(v=i % 4), at_time=30.0 * i)
            for i in range(4)
        ]
        handles = session.submit_many(requests, max_workers=2)
        bill = wh.billing["t"]
        return (
            [h.state for h in handles],
            bill.dollars,
            bill.background_dollars,
        )

    assert run(False) == run(True)
