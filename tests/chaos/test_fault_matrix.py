"""Chaos suite: seeded fault schedules vs the serving invariants (PR 6).

Every test drives real serving traffic while a deterministic
:class:`~repro.testing.faults.FaultPlan` injects failures and latency
spikes at the named fault points, then asserts the failure-domain
invariants that must hold under *every* schedule and interleaving:

- every handle reaches a terminal state (no lost or stuck handles);
- finalize is ordered and exactly-once (sequential query ids, one log
  record and one billing charge per DONE handle);
- every fault surfaces as a typed, picklable error on its own handle or
  as a degraded outcome — never as a lost query or a failed batch;
- degraded plans are never cached (post-fault serving is bit-identical
  to a never-faulted warehouse);
- degraded-mode plans are bit-identical to the cold heuristic
  (``explore_bushy=False``) optimizer.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.core.resilience import BreakerState, ResiliencePolicy, RetryPolicy
from repro.core.service import QueryRequest, QueryState
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.errors import BindError, QueryFailedError
from repro.testing import FaultPlan, FaultSpec, outage
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
CHAOS_SEEDS = range(20)

T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
T_LINEITEM = "SELECT count(*) AS c FROM lineitem WHERE l_quantity > {v}"
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)
# Four tables: bushy exploration actually considers variants here, so
# heuristic-vs-full parity is a real statement, not a tautology.
Q_FOUR_TABLES = (
    "SELECT n_name, count(*) AS cnt "
    "FROM customer, orders, lineitem, nation "
    "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
    "AND c_nationkey = n_nationkey AND o_totalprice > {v} "
    "GROUP BY n_name"
)


@pytest.fixture(scope="module")
def catalog():
    return synthetic_tpch_catalog(
        1.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )


def workload_sqls() -> list[str]:
    sqls = []
    for i in range(4):
        sqls.append(T_ORDERS.format(v=100_000 + i))
        sqls.append(T_LINEITEM.format(v=10 + i))
        sqls.append(T_JOIN.format(v=i % 4))
    return sqls


def plan_snapshot(choice):
    estimate = choice.dop_plan.estimate
    return (
        choice.join_tree.describe(),
        dict(choice.dop_plan.dops),
        estimate.latency,
        estimate.total_dollars,
        estimate.machine_seconds,
    )


@pytest.fixture(scope="module")
def reference_plans(catalog):
    """Never-faulted plans for the workload, from a pristine warehouse."""
    clean = CostIntelligentWarehouse(catalog=catalog)
    return {
        sql: plan_snapshot(clean.plan(sql, SLA)[1]) for sql in workload_sqls()
    }


# --------------------------------------------------------------------- #
# The matrix: seeded schedules over bind/optimize/simulate/statsvc
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_schedule_preserves_serving_invariants(
    catalog, reference_plans, seed
):
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        retention_policy="cost-aware",
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, seed=seed),
            stage_deadline_s={"optimize": 1.0},
        ),
    )
    plan = FaultPlan(
        [
            FaultSpec(point="bind", error_rate=0.15),
            # 2s spikes against a 1s optimize deadline: some submissions
            # must take the degraded fallback.
            FaultSpec(
                point="optimize",
                error_rate=0.15,
                latency_rate=0.3,
                latency_s=2.0,
            ),
            FaultSpec(point="simulate", error_rate=0.15),
            FaultSpec(point="statsvc", error_rate=0.6),
        ],
        seed=seed,
    )
    wh.inject_faults(plan)
    session = wh.session(tenant="chaos", constraint=SLA)
    sqls = workload_sqls()
    requests = [
        QueryRequest(sql=sql, at_time=30.0 * i) for i, sql in enumerate(sqls)
    ]
    handles = session.submit_many(requests[:6], max_workers=4)
    # Mid-workload statsvc traffic: the forecaster consults the fault
    # plan; failures must degrade retention, never serving.
    wh.frequency.invalidate()
    wh.frequency.family_rates()
    handles += session.submit_many(requests[6:], max_workers=4)

    # -- no lost or stuck handles ------------------------------------- #
    assert len(handles) == len(sqls)
    done = [h for h in handles if h.state is QueryState.DONE]
    failed = [h for h in handles if h.state is QueryState.FAILED]
    assert len(done) + len(failed) == len(handles)

    # -- typed-error-or-degraded for every fault ----------------------- #
    for handle in failed:
        error = handle.error
        assert isinstance(error, QueryFailedError)
        assert error.stage in {"bind", "optimize", "simulate"}
        assert error.cause_type in {
            "InjectedFault",
            "RetryExhaustedError",
            "DeadlineExceededError",
        }
        clone = pickle.loads(pickle.dumps(error))  # crosses processes
        assert clone.cause_type == error.cause_type
    for handle in done:
        outcome = handle.result()
        if handle.degraded:
            assert outcome.degraded_mode in {"heuristic", "skeleton"}

    # -- ordered, exactly-once finalize -------------------------------- #
    records = list(wh.logs)
    assert len(records) == len(done)
    assert [r.query_id for r in records] == list(range(1, len(records) + 1))

    # -- exactly-once billing ------------------------------------------ #
    bill = wh.billing.get("chaos")
    if done:
        assert bill is not None
        assert bill.dollars == pytest.approx(sum(r.dollars for r in records))
    health = wh.describe_health()
    if bill is not None:
        assert bill.retry_dollars == pytest.approx(
            health["resilience"]["retry_dollars"]
        )
    assert health["resilience"]["degraded_queries"] == sum(
        1 for h in done if h.degraded
    )
    assert health["faults"]["active"]

    # -- degraded plans were never cached ------------------------------ #
    # With faults cleared, every workload query must plan exactly as a
    # never-faulted warehouse does — whatever the caches absorbed during
    # the chaos run, none of it is a degraded plan.
    wh.inject_faults(None)
    for sql in sqls:
        assert plan_snapshot(wh.plan(sql, SLA)[1]) == reference_plans[sql]


def test_chaos_matrix_covers_degradation_and_failure(catalog):
    """Meta-check: across the seed matrix the schedules actually exercise
    both terminal failures and degraded fallbacks (not a trivially green
    matrix)."""
    saw_failed = saw_degraded = saw_retry = False
    for seed in CHAOS_SEEDS:
        wh = CostIntelligentWarehouse(
            catalog=catalog,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2, seed=seed),
                stage_deadline_s={"optimize": 1.0},
            ),
        )
        wh.inject_faults(
            FaultPlan(
                [
                    FaultSpec(
                        point="optimize",
                        error_rate=0.3,
                        latency_rate=0.3,
                        latency_s=2.0,
                    ),
                    FaultSpec(point="simulate", error_rate=0.3),
                ],
                seed=seed,
            )
        )
        session = wh.session(tenant="probe", constraint=SLA)
        handles = session.submit_many(
            [
                QueryRequest(sql=T_ORDERS.format(v=500 + i), at_time=30.0 * i)
                for i in range(6)
            ]
        )
        saw_failed = saw_failed or any(h.failed for h in handles)
        saw_degraded = saw_degraded or any(
            h.done and h.degraded for h in handles
        )
        saw_retry = saw_retry or wh.resilience_stats.snapshot()["retries"] > 0
    assert saw_failed and saw_degraded and saw_retry


# --------------------------------------------------------------------- #
# Degraded-mode parity: bit-identical to the cold heuristic path
# --------------------------------------------------------------------- #
def test_degraded_heuristic_plan_matches_cold_explore_bushy_false(catalog):
    sql = Q_FOUR_TABLES.format(v=150_000)
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        resilience=ResiliencePolicy(stage_deadline_s={"optimize": 0.5}),
    )
    wh.inject_faults(
        FaultPlan(
            [FaultSpec(point="optimize", latency_rate=1.0, latency_s=1.0, limit=1)]
        )
    )
    handle = wh.session(tenant="t", constraint=SLA).submit(
        QueryRequest(sql=sql, simulate=False)
    )
    assert handle.done and handle.degraded
    outcome = handle.result()
    assert outcome.degraded_mode == "heuristic"
    assert outcome.choice.variants_considered == 1
    assert outcome.choice.variant_index == 0

    reference = CostIntelligentWarehouse(catalog=catalog, explore_bushy=False)
    ref_outcome = (
        reference.session(tenant="t", constraint=SLA)
        .submit(QueryRequest(sql=sql, simulate=False))
        .result()
    )
    assert not ref_outcome.degraded
    assert plan_snapshot(outcome.choice) == plan_snapshot(ref_outcome.choice)


def test_degraded_skeleton_mode_reuses_template_shapes(catalog):
    """With the template's skeleton cached, the optimize-deadline
    fallback re-plans the cached shapes — bit-identical to full
    optimization by the skeleton parity contract."""
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        resilience=ResiliencePolicy(stage_deadline_s={"optimize": 0.5}),
    )
    session = wh.session(tenant="t", constraint=SLA)
    warm = session.submit(
        QueryRequest(sql=Q_FOUR_TABLES.format(v=100_000), simulate=False)
    )
    assert warm.state is QueryState.DONE
    assert not warm.degraded  # healthy submit populates the skeleton cache
    wh.inject_faults(
        FaultPlan(
            [FaultSpec(point="optimize", latency_rate=1.0, latency_s=1.0, limit=1)]
        )
    )
    degraded_sql = Q_FOUR_TABLES.format(v=200_000)
    handle = session.submit(QueryRequest(sql=degraded_sql, simulate=False))
    assert handle.done and handle.degraded
    assert handle.result().degraded_mode == "skeleton"

    clean = CostIntelligentWarehouse(catalog=catalog)
    assert plan_snapshot(handle.result().choice) == plan_snapshot(
        clean.plan(degraded_sql, SLA)[1]
    )


def test_degraded_plan_not_cached_healthy_resubmit_reoptimizes(catalog):
    sql = Q_FOUR_TABLES.format(v=120_000)
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        resilience=ResiliencePolicy(stage_deadline_s={"optimize": 0.5}),
    )
    wh.inject_faults(
        FaultPlan(
            [FaultSpec(point="optimize", latency_rate=1.0, latency_s=1.0, limit=1)]
        )
    )
    session = wh.session(tenant="t", constraint=SLA)
    first = session.submit(QueryRequest(sql=sql, simulate=False))
    assert first.done and first.degraded
    wh.inject_faults(None)
    wh.reset_cache_stats()
    second = session.submit(QueryRequest(sql=sql, simulate=False))
    assert second.state is QueryState.DONE and not second.degraded
    # The degraded plan was not stored: the healthy resubmission missed
    # the exact cache and re-optimized from scratch.
    assert wh.describe_caches()["plan_cache"]["hits"] == 0
    clean = CostIntelligentWarehouse(catalog=catalog)
    assert plan_snapshot(second.result().choice) == plan_snapshot(
        clean.plan(sql, SLA)[1]
    )


# --------------------------------------------------------------------- #
# Mid-batch faults under concurrency (satellite: exactly-once finalize)
# --------------------------------------------------------------------- #
def test_concurrent_batch_mid_fault_finalizes_each_handle_exactly_once(catalog):
    wh = CostIntelligentWarehouse(catalog=catalog)
    # A deterministic (non-transient) error on bind invocations 3 and 4:
    # exactly two handles fail, whichever threads drew them.
    wh.inject_faults(
        FaultPlan(
            [
                FaultSpec(
                    point="bind", error_rate=1.0, error=BindError, after=3, limit=2
                )
            ]
        )
    )
    session = wh.session(tenant="alpha", constraint=SLA)
    handles = session.submit_many(
        [
            QueryRequest(sql=T_ORDERS.format(v=1_000 + i), at_time=30.0 * i)
            for i in range(10)
        ],
        fail_fast=False,
        max_workers=4,
    )
    done = [h for h in handles if h.state is QueryState.DONE]
    failed = [h for h in handles if h.state is QueryState.FAILED]
    assert len(failed) == 2 and len(done) == 8
    for handle in failed:
        assert isinstance(handle.error, QueryFailedError)
        assert handle.error.stage == "bind"
        assert handle.error.cause_type == "BindError"
        assert handle.error.index is not None
    records = list(wh.logs)
    assert len(records) == 8  # one record per DONE handle, none for failed
    assert [r.query_id for r in records] == list(range(1, 9))
    assert wh.billing["alpha"].dollars == pytest.approx(
        sum(r.dollars for r in records)
    )

    # Another tenant's batch is untouched by alpha's exhausted fault
    # window: per-handle failure isolation extends across tenants.
    beta = wh.session(tenant="beta", constraint=SLA)
    beta_handles = beta.submit_many(
        [
            QueryRequest(sql=T_LINEITEM.format(v=20 + i), at_time=600.0 + 30.0 * i)
            for i in range(4)
        ],
        fail_fast=False,
    )
    assert all(h.state is QueryState.DONE for h in beta_handles)


def test_two_tenant_batches_interleaved_with_faults_stay_isolated(catalog):
    """Concurrent batches from two tenants under a transient-fault storm:
    every handle terminal, failures carry their own tenant's context,
    and each tenant's bill matches exactly its own logged spend."""
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        resilience=ResiliencePolicy(retry=RetryPolicy(max_attempts=2, seed=5)),
    )
    wh.inject_faults(
        FaultPlan([FaultSpec(point="simulate", error_rate=0.4)], seed=5)
    )
    results: dict[str, list] = {}

    def run_batch(tenant: str, base: int) -> None:
        session = wh.session(tenant=tenant, constraint=SLA)
        results[tenant] = session.submit_many(
            [
                QueryRequest(
                    sql=T_ORDERS.format(v=base + i), at_time=30.0 * i
                )
                for i in range(8)
            ],
            fail_fast=False,
            max_workers=2,
        )

    threads = [
        threading.Thread(target=run_batch, args=("alpha", 10_000)),
        threading.Thread(target=run_batch, args=("beta", 20_000)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    records = list(wh.logs)
    assert [r.query_id for r in records] == list(range(1, len(records) + 1))
    for tenant in ("alpha", "beta"):
        handles = results[tenant]
        assert all(
            h.state in (QueryState.DONE, QueryState.FAILED) for h in handles
        )
        tenant_records = [r for r in records if r.tenant == tenant]
        assert len(tenant_records) == sum(
            1 for h in handles if h.state is QueryState.DONE
        )
        bill = wh.billing.get(tenant)
        if tenant_records:
            assert bill.dollars == pytest.approx(
                sum(r.dollars for r in tenant_records)
            )


# --------------------------------------------------------------------- #
# Budget-aware retries
# --------------------------------------------------------------------- #
def test_retry_dollars_metered_and_visible_to_admission(catalog):
    wh = CostIntelligentWarehouse(
        catalog=catalog,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, jitter=0.0, backoff_base_s=0.5)
        ),
    )
    wh.inject_faults(FaultPlan([outage("simulate", limit=2)]))
    session = wh.session(tenant="payer", constraint=SLA)
    handle = session.submit(QueryRequest(sql=T_ORDERS.format(v=1)))
    assert handle.done
    assert handle.retries == 2
    bill = wh.billing["payer"]
    # jitter=0: backoffs 0.5s + 1.0s at $0.01/s.
    assert bill.retry_dollars == pytest.approx(0.015)
    assert bill.retries == 2
    assert bill.total_dollars == pytest.approx(
        bill.dollars + bill.background_dollars + bill.retry_dollars
    )
    assert wh.describe_health()["resilience"]["retry_dollars"] == pytest.approx(
        0.015
    )


def test_tenant_near_deny_gets_fewer_attempts_than_healthy_tenant(catalog):
    """The same two-failure fault window: a healthy tenant retries
    through it, a throttled tenant (pressure 1 → one fewer attempt)
    exhausts and fails."""

    def run(tenant: str, budgeted: bool):
        wh = CostIntelligentWarehouse(
            catalog=catalog,
            resilience=ResiliencePolicy(retry=RetryPolicy(max_attempts=3)),
        )
        session = wh.session(tenant=tenant, constraint=SLA)
        if budgeted:
            # Prime the bill, then set the budget so spend sits in the
            # THROTTLE band [0.75, 0.9).
            session.submit(QueryRequest(sql=T_ORDERS.format(v=7))).result()
            spent = wh.billing[tenant].total_dollars
            wh.admission.set_budget(tenant, spent / 0.8)
        wh.inject_faults(FaultPlan([outage("simulate", after=0, limit=2)]))
        return session.submit(QueryRequest(sql=T_LINEITEM.format(v=30)))

    healthy = run("healthy", budgeted=False)
    assert healthy.done and healthy.retries == 2

    throttled = run("throttled", budgeted=True)
    assert throttled.failed
    assert throttled.error.cause_type == "RetryExhaustedError"
    assert "2 times" in throttled.error.cause_message


# --------------------------------------------------------------------- #
# Statsvc breaker: forecaster outage degrades retention to LRU
# --------------------------------------------------------------------- #
def test_statsvc_outage_opens_breaker_and_degrades_to_lru(catalog):
    wh = CostIntelligentWarehouse(catalog=catalog, retention_policy="cost-aware")
    session = wh.session(tenant="t", constraint=SLA)
    for i in range(6):
        session.submit(
            QueryRequest(
                sql=T_ORDERS.format(v=50_000 + i),
                template="counts",
                at_time=i * 600.0,
                simulate=False,
            )
        ).result()
    wh.frequency.invalidate()
    assert wh.frequency.family_rates()  # healthy forecaster has rates

    wh.inject_faults(FaultPlan([outage("statsvc")]))
    for _ in range(3):  # three failed refreshes trip the breaker
        wh.frequency.invalidate()
        wh.frequency.family_rates()
    snap = wh.statsvc_breaker.snapshot()
    assert snap["state"] == "open"
    assert wh.describe_health()["breakers"]["statsvc"]["opens"] == 1
    # Degraded: rates cleared, retention scores fall back to LRU (0.0).
    assert wh.frequency.family_rates() == {}
    assert wh.frequency.rate_for(("anything",)) == 0.0

    # Recovery: the outage ends; after the call-counted cooldown the
    # half-open probe succeeds and forecasts come back.
    wh.inject_faults(None)
    for _ in range(wh.statsvc_breaker.cooldown_calls):
        wh.frequency.invalidate()
        wh.frequency.family_rates()
    assert wh.statsvc_breaker.state is BreakerState.CLOSED
    assert wh.frequency.family_rates()


def test_tuning_apply_outage_opens_breaker_and_stops_spending(catalog):
    """Background compute dies on every apply: the error is recorded
    (never swallowed silently), the tuning breaker opens after three
    failed cycles and stops burning background dollars, and foreground
    serving never notices."""
    from repro.tuning.service import TuningPolicy

    wh = CostIntelligentWarehouse(
        catalog=catalog,
        tuning_policy=TuningPolicy(cadence_queries=6, auto_apply=True),
    )
    wh.inject_faults(FaultPlan([outage("tuning_apply")]))
    session = wh.session(tenant="alpha", constraint=SLA)
    clock = 0.0

    def run_batch():
        nonlocal clock
        requests = []
        for i in range(6):
            requests.append(
                QueryRequest(
                    sql=T_JOIN.format(v=i % 3),
                    template="q5ish",
                    at_time=clock,
                    simulate=False,
                )
            )
            clock += 30.0
        return session.submit_many(requests)

    for cycle in range(3):  # three failed cycles trip the breaker
        handles = run_batch()
        assert all(h.state is QueryState.DONE for h in handles)
        assert wh.tuning.cycles_run == cycle + 1
        assert wh.tuning.consecutive_failures == cycle + 1
        assert isinstance(wh.tuning.last_error, Exception)

    health = wh.describe_health()
    assert health["breakers"]["tuning"]["state"] == "open"
    assert health["tuning"]["consecutive_failures"] == 3
    assert health["tuning"]["last_error"].startswith("InjectedFault")
    # Nothing was half-applied and nothing was billed: the fault fires
    # before any mutation or ledger entry.
    assert wh.background_dollars == 0.0
    assert not wh.tuning.background.ledger
    failed = [
        r for r in wh.tuning.recommendations if r.state.name == "FAILED"
    ]
    assert failed

    # With the breaker open, due cycles are skipped entirely — the
    # failing tuner stops burning proposals and dollars.
    run_batch()
    assert wh.tuning.cycles_run == 3


def test_statsvc_outage_never_fails_serving(catalog):
    wh = CostIntelligentWarehouse(catalog=catalog, retention_policy="cost-aware")
    wh.inject_faults(FaultPlan([outage("statsvc")]))
    session = wh.session(tenant="t", constraint=SLA)
    handles = session.submit_many(
        [
            QueryRequest(
                sql=T_JOIN.format(v=i % 4), template="joins", at_time=30.0 * i
            )
            for i in range(8)
        ]
    )
    assert all(h.state is QueryState.DONE for h in handles)
