"""Chaos matrix for process-sharded serving (PR 10).

The sharded path's contract is *bit-identical observability*: for any
seeded workload — including schedules where planner worker processes
are killed at dispatch boundaries — plans, statistics-log records,
ledger-unit bills, and admission verdicts must match the threaded and
sequential paths exactly.  Worker crashes are free for tenants (no
retry charges) and exactly-once (a re-staged task never double-bills
or double-logs).  The sweep below drives every seed through four
serving modes and compares the full observable state.
"""

from __future__ import annotations

import pytest

from repro.core.service import QueryRequest, QueryState
from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import sla_constraint
from repro.testing import FaultPlan, FaultSpec
from repro.util.rng import derive_rng
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
CHAOS_SEEDS = range(20)

T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
T_LINEITEM = "SELECT count(*) AS c FROM lineitem WHERE l_quantity > {v}"
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)
TEMPLATES = (T_ORDERS, T_LINEITEM, T_JOIN)

#: Tight enough that the budgeted tenant crosses every admission
#: threshold mid-workload: the matrix then proves verdict parity, not
#: just bill parity.
TENANT_BUDGET = 0.002


@pytest.fixture(scope="module")
def catalog():
    return synthetic_tpch_catalog(
        1.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )


def seeded_requests(seed: int) -> list[QueryRequest]:
    """A literal-varying multi-template workload derived from the seed."""
    rng = derive_rng(seed, "sharded-matrix", "workload")
    requests = []
    for i in range(12):
        template = TEMPLATES[int(rng.integers(len(TEMPLATES)))]
        literal = int(rng.integers(8)) if template is T_JOIN else int(
            rng.integers(100_000)
        )
        requests.append(
            QueryRequest(sql=template.format(v=literal), at_time=30.0 * i)
        )
    return requests


def observable_state(warehouse, handles):
    """Everything a tenant or operator can see: per-handle terminal
    state + verdict + plan, the statistics log, and ledger bills."""
    per_handle = []
    for handle in handles:
        row = [handle.state.name, handle.admission.name if handle.admission else None]
        if handle.state is QueryState.DONE:
            outcome = handle.result()
            estimate = outcome.choice.dop_plan.estimate
            row.append(
                (
                    outcome.sql,
                    outcome.choice.join_tree.describe(),
                    dict(outcome.choice.dop_plan.dops),
                    estimate.latency,
                    estimate.total_dollars,
                    estimate.machine_seconds,
                    outcome.record.dollars,
                )
            )
        else:
            row.append(type(handle.error).__name__)
        per_handle.append(tuple(row))
    return (
        tuple(per_handle),
        tuple(
            (r.timestamp, r.tenant, r.template, r.dollars, r.machine_seconds)
            for r in warehouse.logs.tail(200)
        ),
        {t: b.ledger_snapshot() for t, b in warehouse.billing.items()},
    )


def run_mode(catalog, seed, *, mode, fault_plan=None):
    """One serving run; ``mode`` is sequential | threaded | sharded."""
    warehouse = CostIntelligentWarehouse(
        catalog=catalog, tenant_budgets={"capped": TENANT_BUDGET}
    )
    if fault_plan is not None:
        warehouse.inject_faults(fault_plan)
    if mode == "sharded":
        warehouse.enable_sharding(workers=2)
    try:
        requests = seeded_requests(seed)
        session = warehouse.session(tenant="capped", constraint=SLA)
        max_workers = 1 if mode == "sequential" else 4
        handles = session.submit_many(
            requests[:6], max_workers=max_workers
        ) + session.submit_many(requests[6:], max_workers=max_workers)
        state = observable_state(warehouse, handles)
        pool = warehouse.worker_pool
        stats = (
            (pool.injected_kills, pool.restarts, pool.restaged_tasks)
            if pool is not None
            else None
        )
        return state, stats
    finally:
        if mode == "sharded":
            warehouse.disable_sharding()


# --------------------------------------------------------------------- #
# The matrix: every seed, four modes, one observable state
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_sharded_serving_is_bit_identical_across_modes(catalog, seed):
    sequential, _ = run_mode(catalog, seed, mode="sequential")
    threaded, _ = run_mode(catalog, seed, mode="threaded")
    sharded, _ = run_mode(catalog, seed, mode="sharded")
    assert sharded == threaded == sequential


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_worker_crashes_never_lose_or_double_bill(catalog, seed):
    baseline, _ = run_mode(catalog, seed, mode="threaded")
    crash_plan = FaultPlan(
        [FaultSpec(point="worker_crash", error_rate=0.3)], seed=seed
    )
    crashed, stats = run_mode(
        catalog, seed, mode="sharded", fault_plan=crash_plan
    )
    assert crashed == baseline
    kills, restarts, restaged = stats
    if kills:
        assert restarts >= 1


def test_crash_sweep_covers_every_dispatch_boundary(catalog):
    """Kill a worker after each dispatch position in turn: no boundary
    may lose a query, double-bill, or otherwise perturb the observable
    state."""
    seed = 3
    baseline, _ = run_mode(catalog, seed, mode="threaded")
    boundaries_hit = 0
    for boundary in range(8):
        plan = FaultPlan(
            [
                FaultSpec(
                    point="worker_crash",
                    error_rate=1.0,
                    after=boundary,
                    limit=1,
                )
            ],
            seed=seed,
        )
        state, stats = run_mode(
            catalog, seed, mode="sharded", fault_plan=plan
        )
        assert state == baseline, f"boundary {boundary} broke parity"
        kills, _, _ = stats
        boundaries_hit += kills
    assert boundaries_hit >= 6  # the sweep really killed workers
