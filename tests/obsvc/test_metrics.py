"""Unit tests for the typed metrics registry (PR 9 tentpole)."""

from __future__ import annotations

import pytest

from repro.obsvc.metrics import (
    LATENCY_BUCKETS,
    REGISTERED_METRICS,
    MetricNameError,
    MetricSpec,
    MetricsRegistry,
)


# --------------------------------------------------------------------- #
# Declaration enforcement
# --------------------------------------------------------------------- #
def test_undeclared_name_is_rejected_everywhere():
    registry = MetricsRegistry()
    with pytest.raises(MetricNameError):
        registry.counter("no_such_metric")
    with pytest.raises(MetricNameError):
        registry.gauge("no_such_metric", 1.0)
    with pytest.raises(MetricNameError):
        registry.histogram("no_such_metric", 1.0)
    with pytest.raises(MetricNameError):
        registry.source("no_such_metric", lambda: 0)
    with pytest.raises(MetricNameError):
        registry.value("no_such_metric")


def test_kind_mismatch_is_rejected():
    registry = MetricsRegistry()
    # declared counter, emitted as gauge (and vice versa)
    with pytest.raises(MetricNameError):
        registry.gauge("repro_queries_served_total", 1.0, tenant="a")
    with pytest.raises(MetricNameError):
        registry.counter("repro_virtual_clock_seconds")


def test_label_mismatch_is_rejected():
    registry = MetricsRegistry()
    with pytest.raises(MetricNameError):
        registry.counter("repro_queries_served_total")  # missing tenant
    with pytest.raises(MetricNameError):
        registry.counter(
            "repro_queries_served_total", tenant="a", extra="nope"
        )
    with pytest.raises(MetricNameError):
        registry.counter("repro_cost_snapshots_total", tenant="a")


def test_counters_are_integral_and_non_negative():
    registry = MetricsRegistry()
    with pytest.raises(MetricNameError):
        registry.counter("repro_cost_snapshots_total", -1)
    with pytest.raises(MetricNameError):
        registry.counter("repro_cost_snapshots_total", 0.5)


def test_spec_validation():
    with pytest.raises(MetricNameError):
        MetricSpec("exotic", "bad kind")
    with pytest.raises(MetricNameError):
        MetricSpec("histogram", "no buckets")


def test_catalogue_is_well_formed():
    for name, spec in REGISTERED_METRICS.items():
        assert name.startswith("repro_"), name
        assert spec.help
        if spec.kind == "histogram":
            assert spec.buckets == tuple(sorted(spec.buckets))


# --------------------------------------------------------------------- #
# Owned instruments
# --------------------------------------------------------------------- #
def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    registry.counter("repro_queries_served_total", tenant="acme")
    registry.counter("repro_queries_served_total", 2, tenant="acme")
    registry.counter("repro_queries_served_total", tenant="bolt")
    assert registry.value("repro_queries_served_total", tenant="acme") == 3
    assert registry.value("repro_queries_served_total", tenant="bolt") == 1
    assert registry.value("repro_queries_served_total", tenant="nobody") == 0


def test_histogram_snapshot_is_cumulative_with_inf():
    registry = MetricsRegistry()
    registry.histogram("repro_query_latency_seconds", 0.07, tenant="a")
    registry.histogram("repro_query_latency_seconds", 0.07, tenant="a")
    registry.histogram("repro_query_latency_seconds", 9999.0, tenant="a")
    snap = registry.value("repro_query_latency_seconds", tenant="a")
    buckets = dict(snap["buckets"])
    assert buckets[0.05] == 0
    assert buckets[0.1] == 2
    assert buckets[LATENCY_BUCKETS[-1]] == 2  # 9999 beyond every bound
    assert buckets[float("inf")] == 3
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(0.07 * 2 + 9999.0)
    # never-observed label set reads as None
    assert registry.value("repro_query_latency_seconds", tenant="b") is None


# --------------------------------------------------------------------- #
# Sourced views
# --------------------------------------------------------------------- #
def test_scalar_source_and_defaults():
    registry = MetricsRegistry()
    assert registry.value("repro_virtual_clock_seconds") == 0
    assert registry.sourced("repro_virtual_clock_seconds") == {}
    registry.source("repro_virtual_clock_seconds", lambda: 42.5)
    assert registry.value("repro_virtual_clock_seconds") == 42.5
    assert registry.sourced("repro_virtual_clock_seconds") == {(): 42.5}


def test_labeled_source_lookup():
    registry = MetricsRegistry()
    registry.source(
        "repro_cache_hits_total", lambda: {("plan",): 7, ("skeleton",): 3}
    )
    assert registry.value("repro_cache_hits_total", cache="plan") == 7
    assert registry.value("repro_cache_hits_total", cache="binding") == 0
    assert registry.sourced("repro_cache_hits_total") == {
        ("plan",): 7,
        ("skeleton",): 3,
    }


def test_sourced_rejects_owned_kinds():
    registry = MetricsRegistry()
    with pytest.raises(MetricNameError):
        registry.sourced("repro_queries_served_total")


# --------------------------------------------------------------------- #
# Collection and lifecycle
# --------------------------------------------------------------------- #
def test_collect_is_deterministically_ordered():
    def build():
        registry = MetricsRegistry()
        registry.counter("repro_queries_served_total", tenant="zeta")
        registry.counter("repro_queries_served_total", tenant="alpha")
        registry.counter("repro_cost_snapshots_total", 4)
        registry.source(
            "repro_cache_hits_total", lambda: {("skeleton",): 3, ("plan",): 7}
        )
        return registry.collect()

    samples = build()
    assert samples == build()
    assert [(s.name, s.labels) for s in samples] == sorted(
        (s.name, s.labels) for s in samples
    )


def test_reset_clears_owned_but_keeps_sources():
    registry = MetricsRegistry()
    registry.counter("repro_cost_snapshots_total", 5)
    registry.histogram("repro_query_latency_seconds", 1.0, tenant="a")
    registry.source("repro_virtual_clock_seconds", lambda: 9.0)
    registry.reset()
    assert registry.value("repro_cost_snapshots_total") == 0
    assert registry.value("repro_query_latency_seconds", tenant="a") is None
    assert registry.value("repro_virtual_clock_seconds") == 9.0
