"""Scheduled collection: cadence, determinism, and checkpoint
participation (PR 9 tentpole + determinism satellite)."""

from __future__ import annotations

import pytest

from tests.obsvc.conftest import run_workload
from repro.core.journal import WriteAheadJournal
from repro.core.warehouse import CostIntelligentWarehouse
from repro.obsvc.collector import CollectionError, CollectionPolicy
from repro.obsvc.drilldown import DrillDownNavigator
from repro.workloads.tpch_stats import synthetic_tpch_catalog


def test_policy_validation():
    with pytest.raises(CollectionError):
        CollectionPolicy(cadence_queries=0)
    with pytest.raises(CollectionError):
        CollectionPolicy(cadence_seconds=0.0)
    assert not CollectionPolicy().recurring
    assert CollectionPolicy(cadence_queries=2).recurring


def test_collection_is_off_by_default(catalog):
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    run_workload(warehouse, count=4)
    assert not warehouse.collector.enabled
    assert len(warehouse.cost_history) == 0
    assert warehouse.metrics.value("repro_cost_snapshots_total") == 0


def test_query_cadence_schedules_snapshots(catalog):
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    warehouse.enable_collection(cadence_queries=2)
    assert warehouse.collector.enabled
    run_workload(warehouse, count=6)
    snapshots = warehouse.cost_history.snapshots()
    assert [s.seq for s in snapshots] == [1, 2, 3]
    assert [s.log_len for s in snapshots] == [2, 4, 6]
    assert warehouse.metrics.value("repro_cost_snapshots_total") == 3


def test_virtual_time_cadence_schedules_snapshots(catalog):
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    warehouse.enable_collection(cadence_seconds=25.0)
    run_workload(warehouse, count=6)  # at_time = 0, 10, ..., 50
    snapshots = warehouse.cost_history.snapshots()
    assert snapshots, "virtual-time cadence never fired"
    # never wall time: snapshot instants are workload clock readings
    clocks = [s.clock for s in snapshots]
    assert clocks == sorted(clocks)
    for earlier, later in zip(clocks, clocks[1:]):
        assert later - earlier >= 25.0


def test_collect_now_forces_a_snapshot(catalog):
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    run_workload(warehouse, count=2)
    snapshot = warehouse.collector.collect_now()  # no policy configured
    assert snapshot.seq == 1
    assert snapshot.log_len == 2
    assert len(warehouse.cost_history) == 1
    DrillDownNavigator(snapshot).reconcile()


def test_snapshots_reconcile_against_the_bills(catalog):
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    warehouse.enable_collection(cadence_queries=2)
    run_workload(warehouse, count=6)
    final = warehouse.collector.collect_now()
    totals = DrillDownNavigator(final).reconcile()
    for tenant, units in totals.items():
        assert units == warehouse.billing[tenant].total_units
    # every scheduled snapshot reconciles too, not just the final one
    for snapshot in warehouse.cost_history.snapshots():
        DrillDownNavigator(snapshot).reconcile()


def test_identical_seeded_runs_yield_bitwise_identical_histories():
    def run():
        catalog = synthetic_tpch_catalog(1.0)
        warehouse = CostIntelligentWarehouse(catalog=catalog)
        warehouse.enable_collection(cadence_queries=2)
        run_workload(warehouse, count=6, seed=3)
        return warehouse

    first, second = run(), run()
    assert first.cost_history.as_state() == second.cost_history.as_state()
    assert len(first.cost_history) > 0


def test_checkpoint_round_trips_the_history(catalog):
    journal = WriteAheadJournal()
    warehouse = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    warehouse.enable_collection(cadence_queries=2)
    run_workload(warehouse, count=4)
    assert len(warehouse.cost_history) == 2
    warehouse.checkpoint()

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert (
        recovered.cost_history.as_state() == warehouse.cost_history.as_state()
    )
    # the recovered schedule resumes where the history left off
    recovered.enable_collection(cadence_queries=2)
    run_workload(recovered, count=4)
    # 4 recovered-run queries were already folded pre-crash; the resumed
    # collector only sees re-served traffic through the log watermarks
    assert recovered.cost_history.latest().seq >= warehouse.cost_history.latest().seq
