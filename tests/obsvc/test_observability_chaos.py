"""Observability under chaos (PR 9 acceptance gate).

Across the same 20-seed fault matrix the resilience suite runs, with
the snapshot collector enabled:

- drill-down reconciliation is **exact** in every collected snapshot —
  operator leaves sum bitwise to each tenant's ledger-unit bill, retries
  included via the synthetic ``(retries)`` leaf; and
- serving is **bit-identical** to a collector-off run of the same
  seeded schedule: observation must never perturb what it observes.
"""

from __future__ import annotations

import pytest

from tests.obsvc.conftest import run_workload
from repro.core.resilience import ResiliencePolicy, RetryPolicy
from repro.core.warehouse import CostIntelligentWarehouse
from repro.obsvc.drilldown import DrillDownNavigator
from repro.obsvc.history import RETRY_LEAF
from repro.testing import FaultPlan, FaultSpec
from repro.workloads.tpch_stats import synthetic_tpch_catalog

CHAOS_SEEDS = range(20)
WORKLOAD_QUERIES = 8


def chaos_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec(point="bind", error_rate=0.1),
            FaultSpec(point="optimize", error_rate=0.15),
            FaultSpec(point="simulate", error_rate=0.15),
            FaultSpec(point="statsvc", error_rate=0.5),
        ],
        seed=seed,
    )


def chaos_warehouse(catalog, seed: int, collect: bool):
    warehouse = CostIntelligentWarehouse(
        catalog=catalog,
        retention_policy="cost-aware",
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, seed=seed)
        ),
    )
    warehouse.inject_faults(chaos_plan(seed))
    if collect:
        warehouse.enable_collection(cadence_queries=2)
    return warehouse


def run_chaos(catalog, seed: int, collect: bool):
    warehouse = chaos_warehouse(catalog, seed, collect)
    # failed handles are part of the schedule; serving continues past them
    run_workload(
        warehouse, count=WORKLOAD_QUERIES, seed=seed, tolerate_failures=True
    )
    return warehouse


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_matrix_reconciles_exactly_and_observation_is_free(seed):
    catalog = synthetic_tpch_catalog(1.0)
    observed = run_chaos(catalog, seed, collect=True)
    bare = run_chaos(catalog, seed, collect=False)

    # -- exact reconciliation in every snapshot, faults notwithstanding --
    snapshots = observed.cost_history.snapshots()
    for snapshot in snapshots:
        DrillDownNavigator(snapshot).reconcile()
    final = observed.collector.collect_now()
    totals = DrillDownNavigator(final).reconcile()
    for tenant, units in totals.items():
        assert units == observed.billing[tenant].total_units

    # -- the collector never perturbs serving ---------------------------- #
    assert list(observed.logs) == list(bare.logs)
    assert {
        tenant: bill.ledger_snapshot()
        for tenant, bill in observed.billing.items()
    } == {
        tenant: bill.ledger_snapshot()
        for tenant, bill in bare.billing.items()
    }
    health = observed.describe_health()
    bare_health = bare.describe_health()
    assert health["resilience"] == bare_health["resilience"]


def test_matrix_exercises_the_retry_leaf():
    """Meta-check: at least one seed bills retries, so the synthetic
    ``(retries)`` drill-down leaf is actually reconciled under fault."""
    for seed in CHAOS_SEEDS:
        catalog = synthetic_tpch_catalog(1.0)
        observed = run_chaos(catalog, seed, collect=True)
        final = observed.collector.collect_now()
        for entry in final.tenants:
            if entry.retry_units:
                assert any(
                    leaf.template == RETRY_LEAF and leaf.units == entry.retry_units
                    for leaf in entry.leaves
                )
                return
    pytest.fail("no seed in the matrix ever billed a retry")


def test_degraded_serving_stays_observable():
    """Snapshots keep reconciling when outages force degraded plans."""
    catalog = synthetic_tpch_catalog(1.0)
    warehouse = CostIntelligentWarehouse(
        catalog=catalog,
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2, seed=7),
            stage_deadline_s={"optimize": 1.0},
        ),
    )
    warehouse.inject_faults(
        FaultPlan(
            [FaultSpec(point="optimize", latency_rate=1.0, latency_s=2.0)],
            seed=7,
        )
    )
    warehouse.enable_collection(cadence_queries=1)
    run_workload(warehouse, count=4, seed=7)
    assert warehouse.metrics.value("repro_degraded_queries_total") > 0
    for snapshot in warehouse.cost_history.snapshots():
        DrillDownNavigator(snapshot).reconcile()
