"""Drill-down navigator: exact partitions, ranking, and failure modes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obsvc.drilldown import DrillDownNavigator, ReconciliationError
from repro.obsvc.history import CostLeaf, CostSnapshot, TenantCostSlice


def slice_with(tenant: str, leaves, **units) -> TenantCostSlice:
    serving = units.get("serving", sum(l.units for l in leaves))
    return TenantCostSlice(
        tenant=tenant,
        queries=2,
        machine_seconds=1.0,
        serving_units=serving,
        background_units=units.get("background", 0),
        background_actions=0,
        retry_units=units.get("retry", 0),
        retries=0,
        leaves=tuple(leaves),
    )


@pytest.fixture()
def snapshot() -> CostSnapshot:
    acme = slice_with(
        "acme",
        [
            CostLeaf("q5ish", "P0", "Scan", 700),
            CostLeaf("q5ish", "P0", "Join", 200),
            CostLeaf("q5ish", "P1", "Aggregate", 50),
            CostLeaf("orders_scan", "P0", "Scan", 49),
        ],
    )
    bolt = slice_with("bolt", [CostLeaf("q5ish", "P0", "Scan", 400)])
    return CostSnapshot(seq=1, clock=30.0, log_len=4, tenants=(acme, bolt))


def test_levels_rank_by_spend_then_name(snapshot):
    nav = DrillDownNavigator(snapshot)
    assert nav.tenants() == (("acme", 999), ("bolt", 400))
    assert nav.templates("acme") == (("q5ish", 950), ("orders_scan", 49))
    assert nav.pipelines("acme", "q5ish") == (("P0", 900), ("P1", 50))
    assert nav.operators("acme", "q5ish", "P0") == (
        ("Scan", 700),
        ("Join", 200),
    )


def test_costliest_path_follows_the_biggest_number(snapshot):
    nav = DrillDownNavigator(snapshot)
    assert nav.costliest_path() == ("acme", "q5ish", "P0", "Scan", 700)
    assert nav.costliest_path("bolt") == ("bolt", "q5ish", "P0", "Scan", 400)


def test_reconcile_exact(snapshot):
    nav = DrillDownNavigator(snapshot)
    assert nav.reconcile() == {"acme": 999, "bolt": 400}
    assert nav.reconcile("bolt") == {"bolt": 400}


def test_reconcile_raises_on_any_stray_unit(snapshot):
    acme = snapshot.tenants[0]
    corrupt = dataclasses.replace(acme, serving_units=acme.serving_units + 1)
    bad = CostSnapshot(
        seq=1, clock=30.0, log_len=4, tenants=(corrupt, snapshot.tenants[1])
    )
    with pytest.raises(ReconciliationError, match="acme"):
        DrillDownNavigator(bad).reconcile()
    # the untouched tenant still reconciles on its own
    assert DrillDownNavigator(bad).reconcile("bolt") == {"bolt": 400}


def test_unknown_tenant_raises(snapshot):
    nav = DrillDownNavigator(snapshot)
    with pytest.raises(ReconciliationError, match="nobody"):
        nav.templates("nobody")
    with pytest.raises(ReconciliationError, match="nobody"):
        nav.reconcile("nobody")


def test_empty_snapshot_has_no_costliest_path():
    nav = DrillDownNavigator(
        CostSnapshot(seq=1, clock=0.0, log_len=0, tenants=())
    )
    with pytest.raises(ReconciliationError):
        nav.costliest_path()


def test_describe_renders_every_level(snapshot):
    text = DrillDownNavigator(snapshot).describe()
    assert "snapshot #1" in text
    for token in ("acme", "q5ish", "P0", "Scan"):
        assert token in text
    # scoped rendering shows only the requested tenant
    assert "bolt" not in DrillDownNavigator(snapshot).describe("acme")
