"""Crash consistency of the cost history (PR 9 recovery satellite).

The collector journals ``CostSnapshotTaken`` write-ahead of the
in-memory append, so the history participates in the same kill-point
discipline as serving: crash at every reachable crash probe, recover,
resume, and the final history is bitwise identical to the uncrashed
reference — while serving state holds all its own invariants.
"""

from __future__ import annotations

import pytest

from tests.obsvc.conftest import SLA, TENANTS, run_workload, workload_steps
from repro.core.service import QueryRequest
from repro.core.journal import WriteAheadJournal
from repro.core.warehouse import CostIntelligentWarehouse
from repro.obsvc.drilldown import DrillDownNavigator
from repro.testing import FaultPlan, SimulatedCrashError, crash_probes, kill
from repro.workloads.tpch_stats import synthetic_tpch_catalog

RECOVERY_SEEDS = range(4)
QUERIES = 6
CADENCE = 2
CHECKPOINT_EVERY = 5
#: The journal-write probes; ``crash_pre_commit`` brackets tuning
#: commits, which this untuned workload never reaches.
WRITE_CRASH_POINTS = ("crash_pre_write", "crash_post_write")


def make_observed(catalog, journal, plan=None):
    warehouse = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    if plan is not None:
        warehouse.inject_faults(plan)
    warehouse.enable_collection(cadence_queries=CADENCE)
    return warehouse


def resume(warehouse, seed: int) -> None:
    """Serve only the steps the crashed process never finalized (the
    recovered log length is the resume cursor, as in the chaos suite)."""
    done = len(warehouse.logs)
    sessions = {
        tenant: warehouse.session(tenant=tenant, constraint=SLA)
        for tenant in TENANTS
    }
    for tenant, template, sql, at in workload_steps(QUERIES, seed)[done:]:
        handle = sessions[tenant].submit(
            QueryRequest(sql=sql, template=template, at_time=at)
        )
        handle.result()


def reference_run(seed: int):
    catalog = synthetic_tpch_catalog(1.0)
    probes = FaultPlan(crash_probes(), seed=seed)
    warehouse = make_observed(
        catalog, WriteAheadJournal(checkpoint_every=CHECKPOINT_EVERY), probes
    )
    run_workload(warehouse, count=QUERIES, seed=seed)
    return (
        warehouse.cost_history.as_state(),
        {t: b.ledger_snapshot() for t, b in warehouse.billing.items()},
        dict(probes.invocations),
    )


def crash_recover_resume(seed: int, point: str, at: int, ref_history):
    """One matrix cell: crash at (point, at), recover, resume; returns
    the resumed warehouse after asserting crash consistency."""
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal(checkpoint_every=CHECKPOINT_EVERY)
    crashed = make_observed(
        catalog, journal, FaultPlan([kill(point, at=at)], seed=seed)
    )
    with pytest.raises(SimulatedCrashError):
        run_workload(crashed, count=QUERIES, seed=seed)

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    # the history survived as a prefix of the reference, every snapshot
    # intact and reconciled (never a torn half-written snapshot)
    state = recovered.cost_history.as_state()
    assert state == ref_history[: len(state)], (
        f"kill({point!r}, at={at}) tore the history"
    )
    for snapshot in recovered.cost_history.snapshots():
        DrillDownNavigator(snapshot).reconcile()

    recovered.enable_collection(cadence_queries=CADENCE)
    resume(recovered, seed)
    return recovered


@pytest.mark.parametrize("seed", RECOVERY_SEEDS)
def test_kill_points_leave_the_history_crash_consistent(seed):
    ref_history, ref_bills, reachable = reference_run(seed)
    assert ref_history, "reference run collected nothing"

    for point in WRITE_CRASH_POINTS:
        assert reachable.get(point, 0) >= 1, f"{point} never invoked"

    for point in WRITE_CRASH_POINTS:
        for at in range(reachable[point]):
            resumed = crash_recover_resume(seed, point, at, ref_history)

            # serving converges on the uncrashed reference, bitwise (a
            # kill can land on a snapshot's own journal write, so the
            # *history* may legitimately have different boundaries —
            # but never different money)
            assert {
                t: b.ledger_snapshot() for t, b in resumed.billing.items()
            } == ref_bills, f"billing diverged after kill({point!r}, at={at})"

            # crash + recovery + resume is itself deterministic: an
            # identical second crashed run converges bitwise
            twin = crash_recover_resume(seed, point, at, ref_history)
            assert (
                twin.cost_history.as_state()
                == resumed.cost_history.as_state()
            ), f"kill({point!r}, at={at}) resume is non-deterministic"

            final = resumed.collector.collect_now()
            totals = DrillDownNavigator(final).reconcile()
            for tenant, units in totals.items():
                assert units == resumed.billing[tenant].total_units


def test_snapshot_taken_mid_crash_is_replayed_not_lost():
    """A crash exactly between the CostSnapshotTaken journal write and
    the in-memory append (crash_post_write on the snapshot's own
    record) must still surface the snapshot after recovery."""
    seed = 0
    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    warehouse = make_observed(catalog, journal)
    # first snapshot lands after CADENCE queries; its journal append is
    # one specific crash_post_write invocation — find it by counting
    probes = FaultPlan(crash_probes(), seed=seed)
    warehouse.inject_faults(probes)
    run_workload(warehouse, count=CADENCE, seed=seed)
    assert len(warehouse.cost_history) == 1
    post_writes = probes.invocations["crash_post_write"]

    catalog = synthetic_tpch_catalog(1.0)
    journal = WriteAheadJournal()
    crashed = make_observed(
        catalog,
        journal,
        FaultPlan([kill("crash_post_write", at=post_writes - 1)], seed=seed),
    )
    with pytest.raises(SimulatedCrashError):
        run_workload(crashed, count=CADENCE, seed=seed)
    # the record hit the journal but memory died before the append
    assert len(crashed.cost_history) == 0

    recovered = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    assert len(recovered.cost_history) == 1
    DrillDownNavigator(recovered.cost_history.latest()).reconcile()
