"""Unit tests for the cost-history store and its snapshot rows."""

from __future__ import annotations

import pickle

from repro.obsvc.history import (
    BACKGROUND_LEAF,
    RETRY_LEAF,
    CostHistoryStore,
    CostLeaf,
    CostSnapshot,
    TenantCostSlice,
)
from repro.util.units import from_ledger_units, to_ledger_units


def make_slice(tenant: str = "acme", units: int = 1000) -> TenantCostSlice:
    leaves = (
        CostLeaf("q5ish", "P0", "Scan[source_scan]", units - 300),
        CostLeaf("q5ish", "P1", "Aggregate[source_state]", 200),
        CostLeaf(RETRY_LEAF, RETRY_LEAF, RETRY_LEAF, 60),
        CostLeaf(BACKGROUND_LEAF, BACKGROUND_LEAF, BACKGROUND_LEAF, 40),
    )
    return TenantCostSlice(
        tenant=tenant,
        queries=3,
        machine_seconds=4.5,
        serving_units=units - 100,
        background_units=40,
        background_actions=1,
        retry_units=60,
        retries=2,
        leaves=leaves,
    )


def make_snapshot(seq: int = 1, clock: float = 30.0) -> CostSnapshot:
    return CostSnapshot(
        seq=seq,
        clock=clock,
        log_len=3,
        tenants=(make_slice("acme"), make_slice("bolt", units=500)),
    )


def test_slice_units_invariants():
    entry = make_slice()
    assert entry.total_units == (
        entry.serving_units + entry.background_units + entry.retry_units
    )
    assert entry.leaf_units == sum(leaf.units for leaf in entry.leaves)
    assert entry.leaf_units == entry.total_units
    assert entry.total_dollars == from_ledger_units(entry.total_units)


def test_leaf_dollars_round_trip():
    units = to_ledger_units(0.000123456789)
    leaf = CostLeaf("t", "P0", "Scan", units)
    assert leaf.dollars == 0.000123456789


def test_rows_round_trip_bitwise():
    snapshot = make_snapshot()
    assert CostSnapshot.from_row(snapshot.as_row()) == snapshot


def test_append_is_idempotent_by_seq():
    store = CostHistoryStore()
    first = make_snapshot(seq=1)
    assert store.append(first)
    assert not store.append(first)  # replayed duplicate
    assert not store.append(make_snapshot(seq=1, clock=99.0))
    assert store.append(make_snapshot(seq=2, clock=60.0))
    assert len(store) == 2
    assert store.latest().seq == 2
    assert store.next_seq() == 3


def test_queries_over_the_store():
    store = CostHistoryStore()
    store.append(make_snapshot(seq=1, clock=30.0))
    store.append(make_snapshot(seq=2, clock=60.0))
    assert store.tenants() == ("acme", "bolt")
    series = store.series("bolt")
    assert [clock for clock, _ in series] == [30.0, 60.0]
    assert all(units == 500 for _, units in series)
    assert store.series("nobody") == ()
    assert len(store.snapshots(tenant="acme")) == 2


def test_state_round_trip_bitwise():
    store = CostHistoryStore()
    store.append(make_snapshot(seq=1))
    store.append(make_snapshot(seq=2, clock=60.0))
    clone = CostHistoryStore()
    clone.restore_state(store.as_state())
    assert clone.as_state() == store.as_state()
    assert clone.snapshots() == store.snapshots()


def test_pickle_round_trip_bitwise():
    store = CostHistoryStore()
    store.append(make_snapshot(seq=1))
    clone = pickle.loads(pickle.dumps(store))
    assert clone.snapshots() == store.snapshots()
    # the restored store keeps working (fresh internal lock)
    assert clone.append(make_snapshot(seq=2, clock=60.0))
