"""Exporters and the unified ``warehouse.observe()`` entry point."""

from __future__ import annotations

import json

import pytest

from tests.obsvc.conftest import run_workload
from repro.core.warehouse import CostIntelligentWarehouse
from repro.errors import ReproError
from repro.obsvc.export import history_json, prometheus_text, registry_json
from repro.obsvc.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def observed(catalog):
    warehouse = CostIntelligentWarehouse(catalog=catalog)
    warehouse.enable_collection(cadence_queries=2)
    run_workload(warehouse, count=6)
    return warehouse


# --------------------------------------------------------------------- #
# Prometheus text format
# --------------------------------------------------------------------- #
def test_prometheus_text_structure(observed):
    text = prometheus_text(observed.metrics)
    lines = text.splitlines()
    assert text.endswith("\n")
    # one HELP/TYPE preamble per exposed metric, before its samples
    assert lines.count("# TYPE repro_queries_served_total counter") == 1
    assert 'repro_queries_served_total{tenant="acme"} 3' in lines
    assert 'repro_queries_served_total{tenant="bolt"} 3' in lines
    # sourced views expose as gauges
    assert "# TYPE repro_virtual_clock_seconds gauge" in lines
    assert "repro_cost_snapshots_total 3" in lines
    # histograms expand to cumulative buckets + sum + count
    bucket_lines = [
        line
        for line in lines
        if line.startswith("repro_query_latency_seconds_bucket")
    ]
    assert any('le="+Inf"' in line for line in bucket_lines)
    assert any(
        line.startswith('repro_query_latency_seconds_count{tenant="acme"} 3')
        for line in lines
    )


def test_prometheus_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter(
        "repro_queries_served_total", tenant='we"ird\\ten\nant'
    )
    text = prometheus_text(registry)
    assert '\\"' in text and "\\\\" in text and "\\n" in text


def test_empty_registry_renders_empty():
    assert prometheus_text(MetricsRegistry()) == ""


# --------------------------------------------------------------------- #
# JSON forms
# --------------------------------------------------------------------- #
def test_registry_json_round_trips_through_json(observed):
    image = registry_json(observed.metrics)
    clone = json.loads(json.dumps(image))
    entry = clone["repro_queries_served_total"]
    assert entry["kind"] == "counter"
    served = {
        sample["labels"]["tenant"]: sample["value"]
        for sample in entry["samples"]
    }
    assert served == {"acme": 3, "bolt": 3}
    hist = clone["repro_query_latency_seconds"]["samples"][0]["value"]
    assert hist["buckets"][-1][0] == "+Inf"
    assert hist["count"] == 3


def test_history_json_nests_drilldown_leaves(observed):
    image = history_json(observed.cost_history)
    assert image["tenants"] == ["acme", "bolt"]
    assert [s["seq"] for s in image["snapshots"]] == [1, 2, 3]
    final = image["snapshots"][-1]
    for entry in final["tenants"]:
        assert entry["total_units"] == sum(
            leaf["units"] for leaf in entry["leaves"]
        )
    json.dumps(image)  # plain data throughout


# --------------------------------------------------------------------- #
# warehouse.observe()
# --------------------------------------------------------------------- #
def test_observe_dict_is_the_unified_view(observed):
    view = observed.observe()
    assert set(view) == {"health", "caches", "metrics", "cost_history"}
    assert view["health"] == observed.describe_health()
    assert view["caches"] == observed.describe_caches()
    assert (
        view["cost_history"]["snapshots"][-1]["tenants"][0]["tenant"]
        == "acme"
    )


def test_observe_json_and_prometheus_formats(observed):
    parsed = json.loads(observed.observe("json"))
    assert "metrics" in parsed and "cost_history" in parsed
    text = observed.observe("prometheus")
    assert text.startswith("# HELP")
    with pytest.raises(ReproError):
        observed.observe("xml")
