"""Shared workload driver for the observability suite (PR 9)."""

from __future__ import annotations

import pytest

from repro.core.service import QueryRequest
from repro.dop.constraints import sla_constraint
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
TENANTS = ("acme", "bolt")

T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)


@pytest.fixture(scope="module")
def catalog():
    return synthetic_tpch_catalog(
        1.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )


def workload_steps(count: int = 6, seed: int = 0):
    """Deterministic multi-tenant steps: (tenant, template, sql, at)."""
    steps = []
    for i in range(count):
        tenant = TENANTS[(i + seed) % len(TENANTS)]
        if i % 3 == 2:
            sql = T_ORDERS.format(v=100_000 + seed + i)
            template = "orders_scan"
        else:
            sql = T_JOIN.format(v=(seed + i) % 4)
            template = "q5ish"
        steps.append((tenant, template, sql, 10.0 * i))
    return steps


def run_workload(
    warehouse, count: int = 6, seed: int = 0, tolerate_failures: bool = False
) -> None:
    """Serve the seed's steps sequentially (deterministic ordering).

    With ``tolerate_failures`` the workload keeps going past failed
    handles — chaos schedules fail queries by design.
    """
    sessions = {
        tenant: warehouse.session(tenant=tenant, constraint=SLA)
        for tenant in TENANTS
    }
    for tenant, template, sql, at in workload_steps(count, seed):
        handle = sessions[tenant].submit(
            QueryRequest(sql=sql, template=template, at_time=at)
        )
        if tolerate_failures:
            try:
                handle.result()
            except Exception:
                pass
        else:
            handle.result()
