import pytest

from repro.compute.pricing import PriceModel
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import sla_constraint
from repro.dop.planner import DopPlanner
from repro.plan.pipelines import decompose_pipelines
from repro.sim.distsim import (
    CheckpointObservation,
    DistributedSimulator,
    ResizeDecision,
    ScalingPolicy,
    SimConfig,
)
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5(big_binder, big_planner, estimator):
    plan = big_planner.plan(big_binder.bind_sql(instantiate("q5_local_supplier", seed=1)))
    dag = decompose_pipelines(plan)
    dop_plan = DopPlanner(estimator, max_dop=32).plan(dag, sla_constraint(30.0))
    return dag, dop_plan


def run_sim(dag, dop_plan, estimator, **kwargs):
    sim = DistributedSimulator(
        dag,
        dop_plan.dops,
        estimator.models,
        planned=dop_plan.estimate,
        **kwargs,
    )
    return sim.run()


def test_simulation_completes_all_pipelines(q5, estimator):
    dag, dop_plan = q5
    result = run_sim(dag, dop_plan, estimator)
    assert set(result.runs) == {p.pipeline_id for p in dag}
    assert result.latency > 0
    for run in result.runs.values():
        assert run.finish >= run.start


def test_deterministic_given_seed(q5, estimator):
    dag, dop_plan = q5
    a = run_sim(dag, dop_plan, estimator, config=SimConfig(seed=7))
    b = run_sim(dag, dop_plan, estimator, config=SimConfig(seed=7))
    assert a.latency == b.latency
    assert a.total_dollars == b.total_dollars


def test_different_seed_differs(q5, estimator):
    dag, dop_plan = q5
    a = run_sim(dag, dop_plan, estimator, config=SimConfig(seed=1))
    b = run_sim(dag, dop_plan, estimator, config=SimConfig(seed=2))
    assert a.latency != b.latency


def test_simulated_latency_tracks_estimate(q5, estimator):
    """Sim truth is near the analytic estimate (hidden factors bounded)."""
    dag, dop_plan = q5
    result = run_sim(dag, dop_plan, estimator)
    assert result.latency == pytest.approx(dop_plan.estimate.latency, rel=1.0)
    assert result.latency >= dop_plan.estimate.latency * 0.5


def test_billing_covers_all_pipelines(q5, estimator):
    dag, dop_plan = q5
    result = run_sim(dag, dop_plan, estimator)
    # Machine time at least sum over pipelines of dop x duration.
    lower = sum(
        run.final_dop * (run.finish - run.run_start)
        for run in result.runs.values()
    )
    assert result.machine_seconds >= lower * 0.95


def test_true_cardinality_slows_execution(q5, estimator):
    dag, dop_plan = q5
    baseline = run_sim(dag, dop_plan, estimator)
    truth = {}
    for pipeline in dag:
        source = pipeline.ops[0].node
        truth[source.node_id] = float(source.est_rows) * 8.0
    inflated = run_sim(dag, dop_plan, estimator, truth=truth)
    assert inflated.latency > baseline.latency


def test_materialize_exchanges_costs_more_time(q5, estimator):
    dag, dop_plan = q5
    streaming = run_sim(dag, dop_plan, estimator, config=SimConfig(seed=3))
    clean_cut = run_sim(
        dag, dop_plan, estimator,
        config=SimConfig(seed=3, materialize_exchanges=True),
    )
    assert clean_cut.latency > streaming.latency


def test_lease_minimum_billing(q5, estimator):
    dag, dop_plan = q5
    result = run_sim(
        dag, dop_plan, estimator,
        price_model=PriceModel(minimum_billed_seconds=300.0),
    )
    assert result.cost.billed_machine_seconds >= result.cost.machine_seconds


class _ForcedResize(ScalingPolicy):
    """Doubles the first observed pipeline once."""

    name = "forced-resize"

    def __init__(self):
        self.fired = False

    def on_checkpoint(self, obs: CheckpointObservation):
        if not self.fired:
            self.fired = True
            return ResizeDecision(new_dop=obs.dop * 2)
        return None


def test_policy_resize_mechanics(q5, estimator):
    dag, dop_plan = q5
    policy = _ForcedResize()
    result = run_sim(dag, dop_plan, estimator, policy=policy)
    assert result.resize_count == (1 if policy.fired else 0)
    if policy.fired:
        resized = [r for r in result.runs.values() if r.resizes > 0]
        assert len(resized) == 1
        assert len(resized[0].dop_history) == 2


class _Replanner(ScalingPolicy):
    """Forces pending pipelines to dop=2 when the first pipeline finishes."""

    name = "replanner"

    def __init__(self, dag):
        self.dag = dag

    def on_pipeline_finish(self, pipeline_id, time, true_rows):
        return {p.pipeline_id: 2 for p in self.dag}


def test_replan_applies_to_pending_only(q5, estimator):
    dag, dop_plan = q5
    result = run_sim(dag, dop_plan, estimator, policy=_Replanner(dag))
    # Pipelines started after the first finish got dop=2.
    later = [
        r for r in result.runs.values()
        if r.start > min(x.finish for x in result.runs.values())
    ]
    assert any(r.final_dop == 2 for r in later)


def test_provisioning_toggle(q5, estimator):
    dag, dop_plan = q5
    with_prov = run_sim(dag, dop_plan, estimator, config=SimConfig(seed=5))
    without = run_sim(
        dag, dop_plan, estimator,
        config=SimConfig(seed=5, include_provisioning=False),
    )
    assert without.latency < with_prov.latency
