import numpy as np
import pytest

from repro.errors import ReproError
from repro.sim.skew import skew_multiplier, zipf_shares


def test_shares_sum_to_one():
    for dop in (1, 2, 7, 64):
        assert zipf_shares(dop, 0.8).sum() == pytest.approx(1.0)


def test_zero_exponent_uniform():
    shares = zipf_shares(16, 0.0)
    assert np.allclose(shares, 1.0 / 16)


def test_higher_exponent_more_skew():
    mild = zipf_shares(16, 0.3).max()
    heavy = zipf_shares(16, 1.5).max()
    assert heavy > mild


def test_multiplier_one_at_dop_one():
    assert skew_multiplier(1, 2.0) == pytest.approx(1.0)


def test_multiplier_grows_with_dop():
    assert skew_multiplier(32, 0.6) > skew_multiplier(4, 0.6) > 1.0


def test_multiplier_uniform_is_one():
    assert skew_multiplier(16, 0.0) == pytest.approx(1.0)


def test_rng_jitter_deterministic():
    a = zipf_shares(8, 0.5, np.random.default_rng(3))
    b = zipf_shares(8, 0.5, np.random.default_rng(3))
    assert np.array_equal(a, b)


def test_invalid_dop():
    with pytest.raises(ReproError):
        zipf_shares(0, 0.5)
