"""T-shirt sizing, performance-only planning, serverless baselines."""

import pytest

from repro.baselines.perfonly import PerformanceOnlyPlanner
from repro.baselines.serverless import ServerlessConfig, serverless_estimate
from repro.baselines.tshirt import TShirtProvisioner, uniform_dops
from repro.compute.pricing import TSHIRT_SIZES
from repro.dop.constraints import sla_constraint
from repro.dop.planner import DopPlanner
from repro.errors import OptimizerError
from repro.plan.pipelines import decompose_pipelines
from repro.workloads.tpch_queries import instantiate


@pytest.fixture(scope="module")
def q5_dag(big_binder, big_planner):
    plan = big_planner.plan(big_binder.bind_sql(instantiate("q5_local_supplier", seed=1)))
    return decompose_pipelines(plan)


def test_uniform_dops(q5_dag):
    dops = uniform_dops(q5_dag, 8)
    assert set(dops.values()) == {8}
    with pytest.raises(OptimizerError):
        uniform_dops(q5_dag, 0)


def test_tshirt_pick_meets_sla_on_estimates(q5_dag, estimator):
    provisioner = TShirtProvisioner(estimator, overprovision_steps=0)
    baseline = provisioner.estimate_at_size(q5_dag, 1)
    choice = provisioner.pick_for_sla([q5_dag], baseline.latency * 0.9)
    assert choice.nodes >= 1
    assert choice.estimate.latency <= baseline.latency * 0.9 or choice.size_name == "4XL"


def test_tshirt_overprovision_bumps_size(q5_dag, estimator):
    lean = TShirtProvisioner(estimator, overprovision_steps=0)
    cautious = TShirtProvisioner(estimator, overprovision_steps=2)
    baseline = lean.estimate_at_size(q5_dag, 1)
    sla = baseline.latency * 0.9
    lean_choice = lean.pick_for_sla([q5_dag], sla)
    cautious_choice = cautious.pick_for_sla([q5_dag], sla)
    names = list(TSHIRT_SIZES)
    assert names.index(cautious_choice.size_name) >= names.index(lean_choice.size_name)


def test_tshirt_costs_more_than_dop_planner(q5_dag, estimator):
    """The headline claim: per-pipeline DOP beats one-size-fits-all."""
    provisioner = TShirtProvisioner(estimator, overprovision_steps=1)
    baseline = provisioner.estimate_at_size(q5_dag, 1)
    sla = baseline.latency * 0.9
    tshirt = provisioner.pick_for_sla([q5_dag], sla)
    smart = DopPlanner(estimator, max_dop=128).plan(q5_dag, sla_constraint(sla))
    assert smart.feasible
    assert smart.estimate.total_dollars < tshirt.estimate.total_dollars


def test_perfonly_minimizes_latency_at_cost(q5_dag, estimator):
    planner = PerformanceOnlyPlanner(estimator, max_dop=64)
    plan = planner.plan(q5_dag)
    baseline = estimator.estimate_dag(q5_dag, uniform_dops(q5_dag, 1))
    assert plan.estimate.latency <= baseline.latency
    assert plan.estimate.total_dollars >= baseline.total_dollars


def test_serverless_estimate_shape(q5_dag, estimator):
    estimate = serverless_estimate(q5_dag, estimator.models)
    assert estimate.latency > 0
    assert estimate.dollars > 0
    assert len(estimate.pipelines) == len(q5_dag)
    for cost in estimate.pipelines.values():
        assert cost.waste == 0.0  # functions never idle


def test_serverless_cheap_for_tiny_queries(big_binder, big_planner, estimator):
    plan = big_planner.plan(
        big_binder.bind_sql("SELECT count(*) AS c FROM nation")
    )
    dag = decompose_pipelines(plan)
    serverless = serverless_estimate(dag, estimator.models)
    cluster = estimator.estimate_dag(dag, uniform_dops(dag, 1))
    assert serverless.dollars < cluster.dollars


def test_serverless_storage_tax_on_shuffles(q5_dag, estimator):
    cheap_storage = ServerlessConfig(storage_bandwidth_per_function=1e12)
    realistic = ServerlessConfig()
    fast = serverless_estimate(q5_dag, estimator.models, cheap_storage)
    slow = serverless_estimate(q5_dag, estimator.models, realistic)
    assert slow.latency > fast.latency
