"""Shared fixtures: small real database, large stats-only catalog."""

from __future__ import annotations

import pytest

from repro.cost.estimator import CostEstimator
from repro.engine.database import Database
from repro.optimizer.dag_planner import DagPlanner
from repro.sql.binder import Binder
from repro.workloads.tpch_data import load_tpch
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SMALL_SF = 0.004
SMALL_PARTITION_ROWS = 4_000


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """Small TPC-H database with real rows (lineitem ≈ 24k rows)."""
    return load_tpch(
        scale_factor=SMALL_SF,
        partition_rows=SMALL_PARTITION_ROWS,
        cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"},
    )


@pytest.fixture(scope="session")
def tpch_binder(tpch_db: Database) -> Binder:
    return Binder(tpch_db.catalog)


@pytest.fixture(scope="session")
def tpch_planner(tpch_db: Database) -> DagPlanner:
    return DagPlanner(tpch_db.catalog)


@pytest.fixture(scope="session")
def big_catalog():
    """Stats-only catalog at SF 50 (lineitem = 300M rows)."""
    return synthetic_tpch_catalog(
        50.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )


@pytest.fixture(scope="session")
def big_binder(big_catalog) -> Binder:
    return Binder(big_catalog)


@pytest.fixture(scope="session")
def big_planner(big_catalog) -> DagPlanner:
    return DagPlanner(big_catalog)


@pytest.fixture(scope="session")
def estimator() -> CostEstimator:
    return CostEstimator()
