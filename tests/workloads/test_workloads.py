"""Workload substrate: data generation, templates, ad-hoc, arrivals."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.adhoc import AdhocQueryGenerator
from repro.workloads.arrivals import (
    PeriodicArrivals,
    PoissonArrivals,
    merge_arrivals,
)
from repro.workloads.tpch_data import generate_tpch
from repro.workloads.tpch_queries import QUERY_TEMPLATES, instantiate
from repro.workloads.tpch_schema import BASE_ROW_COUNTS, TPCH_SCHEMAS
from repro.workloads.tpch_stats import synthetic_tpch_catalog


def test_generation_deterministic():
    a = generate_tpch(scale_factor=0.002, seed=9)
    b = generate_tpch(scale_factor=0.002, seed=9)
    assert np.array_equal(a["lineitem"]["l_quantity"], b["lineitem"]["l_quantity"])


def test_generation_row_counts_scale():
    data = generate_tpch(scale_factor=0.002)
    assert len(data["orders"]["o_orderkey"]) == round(
        BASE_ROW_COUNTS["orders"] * 0.002
    )
    assert len(data["region"]["r_regionkey"]) == 5  # fixed tables don't scale


def test_generation_referential_domains():
    data = generate_tpch(scale_factor=0.002)
    n_orders = len(data["orders"]["o_orderkey"])
    assert data["lineitem"]["l_orderkey"].max() < n_orders
    n_nation = len(data["nation"]["n_nationkey"])
    assert data["customer"]["c_nationkey"].max() < n_nation


def test_generation_value_domains():
    data = generate_tpch(scale_factor=0.002)
    li = data["lineitem"]
    assert li["l_discount"].min() >= 0.0 and li["l_discount"].max() <= 0.1
    assert li["l_quantity"].min() >= 1 and li["l_quantity"].max() <= 50
    assert (li["l_receiptdate"] > li["l_shipdate"]).all()


def test_invalid_scale_factor():
    with pytest.raises(WorkloadError):
        generate_tpch(scale_factor=0.0)


def test_all_templates_instantiate_distinctly():
    for name in QUERY_TEMPLATES:
        a = instantiate(name, seed=1)
        b = instantiate(name, seed=2)
        assert "SELECT" in a.upper()
        # Parameterized templates vary across seeds (same shape).
        assert a.split("WHERE")[0] == b.split("WHERE")[0]


def test_unknown_template():
    with pytest.raises(WorkloadError):
        instantiate("q99")


def test_adhoc_generator_deterministic_and_varied():
    a = AdhocQueryGenerator(seed=5).batch(10)
    b = AdhocQueryGenerator(seed=5).batch(10)
    assert a == b
    assert len(set(a)) > 5  # queries vary


def test_synthetic_catalog_matches_generated_stats():
    catalog = synthetic_tpch_catalog(0.004)
    data = generate_tpch(scale_factor=0.004)
    for table in ("orders", "lineitem", "customer"):
        entry = catalog.table(table)
        assert entry.row_count == len(next(iter(data[table].values())))


def test_synthetic_catalog_clustering():
    catalog = synthetic_tpch_catalog(1.0, cluster_keys={"lineitem": "l_shipdate"})
    entry = catalog.table("lineitem")
    assert entry.schema.clustering_key == "l_shipdate"
    assert entry.clustering_depth < 0.05


def test_synthetic_catalog_all_schemas_present():
    catalog = synthetic_tpch_catalog(0.1)
    assert set(catalog.table_names) == set(TPCH_SCHEMAS)


def test_poisson_arrivals_rate():
    process = PoissonArrivals("t", rate_per_hour=60.0, seed=4)
    arrivals = list(process.arrivals(36_000.0))  # 10 hours
    assert len(arrivals) == pytest.approx(600, rel=0.2)
    times = [a.time for a in arrivals]
    assert times == sorted(times)


def test_periodic_arrivals_spacing():
    process = PeriodicArrivals("t", period_s=600.0, offset_s=60.0)
    arrivals = list(process.arrivals(3600.0))
    assert len(arrivals) == 6
    gaps = np.diff([a.time for a in arrivals])
    assert np.allclose(gaps, 600.0)


def test_merge_arrivals_sorted():
    merged = merge_arrivals(
        [
            PoissonArrivals("a", 30.0, seed=1),
            PeriodicArrivals("b", 900.0),
        ],
        horizon=7200.0,
    )
    times = [a.time for a in merged]
    assert times == sorted(times)
    assert {a.template for a in merged} == {"a", "b"}


def test_invalid_arrival_parameters():
    with pytest.raises(WorkloadError):
        PoissonArrivals("t", rate_per_hour=0.0)
    with pytest.raises(WorkloadError):
        PeriodicArrivals("t", period_s=-1.0)
