"""DOP monitor and baseline scaling policies under cardinality errors."""

import pytest

from repro.dop.constraints import sla_constraint
from repro.dop.planner import DopPlanner
from repro.monitor.deviation import DeviationThresholds, deviation_ratio
from repro.monitor.policies import (
    IntervalScalerPolicy,
    PerStageScalerPolicy,
    PipelineDopMonitor,
    StaticPolicy,
)
from repro.plan.pipelines import decompose_pipelines
from repro.sim.distsim import DistributedSimulator, SimConfig
from repro.errors import ReproError


# --------------------------- deviation -------------------------------- #
def test_deviation_ratio_symmetric():
    assert deviation_ratio(10, 5) == pytest.approx(2.0)
    assert deviation_ratio(5, 10) == pytest.approx(2.0)
    assert deviation_ratio(7, 7) == 1.0
    assert deviation_ratio(0, 5) == 1.0  # no evidence


def test_thresholds_classify():
    thresholds = DeviationThresholds(minor=1.3, major=3.0)
    assert thresholds.classify(1.0) == "none"
    assert thresholds.classify(2.0) == "adjust"
    assert thresholds.classify(5.0) == "replan"


def test_thresholds_validation():
    with pytest.raises(ReproError):
        DeviationThresholds(minor=2.0, major=1.5)


# --------------------------- end-to-end ------------------------------- #
@pytest.fixture(scope="module")
def setup(big_binder, big_planner, estimator):
    plan = big_planner.plan(
        big_binder.bind_sql(
            "SELECT count(*) AS c FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey AND o_totalprice > 200000"
        )
    )
    dag = decompose_pipelines(plan)
    sla = 25.0
    dop_plan = DopPlanner(estimator, max_dop=64).plan(dag, sla_constraint(sla))
    # Inject a 6x cardinality under-estimate on every scan source.
    truth = {}
    for pipeline in dag:
        source = pipeline.ops[0].node
        truth[source.node_id] = float(source.est_rows) * 6.0
    return dag, dop_plan, truth, sla


def run_policy(setup_data, estimator, policy_name):
    dag, dop_plan, truth, sla = setup_data
    if policy_name == "static":
        policy = StaticPolicy()
        config = SimConfig(seed=11)
    elif policy_name == "monitor":
        policy = PipelineDopMonitor(
            dag, estimator, sla_constraint(sla), dop_plan.dops,
            planned_latency=dop_plan.estimate.latency,
            planned_durations={
                pid: p.duration for pid, p in dop_plan.estimate.pipelines.items()
            },
            max_dop=64,
        )
        config = SimConfig(seed=11)
    elif policy_name == "interval":
        durations = {
            pid: p.duration for pid, p in dop_plan.estimate.pipelines.items()
        }
        policy = IntervalScalerPolicy(dag, sla, dop_plan.dops, durations, max_dop=64)
        config = SimConfig(seed=11)
    elif policy_name == "stage":
        policy = PerStageScalerPolicy(dag, dop_plan.dops, max_dop=64)
        config = SimConfig(seed=11, materialize_exchanges=True)
    sim = DistributedSimulator(
        dag, dop_plan.dops, estimator.models,
        truth=truth, planned=dop_plan.estimate, policy=policy, config=config,
    )
    return sim.run(), policy


def test_monitor_reacts_to_card_errors(setup, estimator):
    result, policy = run_policy(setup, estimator, "monitor")
    assert policy.adjustments + policy.replans > 0
    assert result.resize_count > 0


def test_monitor_faster_than_static_under_errors(setup, estimator):
    static_result, _ = run_policy(setup, estimator, "static")
    monitor_result, _ = run_policy(setup, estimator, "monitor")
    assert monitor_result.latency < static_result.latency


def test_monitor_learns_truth(setup, estimator):
    dag, dop_plan, truth, sla = setup
    _, policy = run_policy(setup, estimator, "monitor")
    assert policy.learned  # observed cardinalities recorded
    for node_id, rows in policy.learned.items():
        if node_id in truth:
            assert rows == pytest.approx(truth[node_id])


def test_interval_scaler_scales_up(setup, estimator):
    result, policy = run_policy(setup, estimator, "interval")
    assert policy.scale_ups > 0


def test_stage_scaler_resizes_pending_only(setup, estimator):
    result, policy = run_policy(setup, estimator, "stage")
    # Clean-cut engines never resize running pipelines.
    assert all(r.resizes == 0 for r in result.runs.values())


def test_monitor_cheaper_than_interval_scaler(setup, estimator):
    """Whole-cluster scaling overshoots; pipeline-granular does not."""
    monitor_result, _ = run_policy(setup, estimator, "monitor")
    interval_result, _ = run_policy(setup, estimator, "interval")
    assert monitor_result.total_dollars <= interval_result.total_dollars * 1.2
