import numpy as np
import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import StorageError
from repro.storage.table_storage import StoredTable, cluster_by, split_into_partitions

SCHEMA = TableSchema(
    "t",
    (Column("k", DataType.INT64), Column("v", DataType.FLOAT64)),
)


def make_columns(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return {"k": rng.permutation(n).astype(np.int64), "v": rng.normal(size=n)}


def test_split_sizes():
    parts = split_into_partitions(SCHEMA, make_columns(1000), partition_rows=300)
    assert [p.row_count for p in parts] == [300, 300, 300, 100]
    assert [p.partition_id for p in parts] == [0, 1, 2, 3]


def test_split_invalid_partition_rows():
    with pytest.raises(StorageError):
        split_into_partitions(SCHEMA, make_columns(10), partition_rows=0)


def test_cluster_by_sorts_globally():
    parts = cluster_by(SCHEMA, make_columns(1000), "k", partition_rows=100)
    previous_max = -1
    for part in parts:
        assert part.zone_maps["k"].min_value > previous_max
        previous_max = part.zone_maps["k"].max_value


def test_clustering_depth_ordering():
    columns = make_columns(10_000)
    shuffled = StoredTable.from_columns(SCHEMA, columns, partition_rows=500)
    clustered = StoredTable.from_columns(
        SCHEMA, columns, partition_rows=500, cluster_key="k"
    )
    depth_random = shuffled.clustering_depth("k")
    depth_sorted = clustered.clustering_depth("k")
    assert depth_sorted < 0.1
    assert depth_random > 0.9


def test_prune_range_on_clustered_table():
    table = StoredTable.from_columns(
        SCHEMA, make_columns(10_000), partition_rows=500, cluster_key="k"
    )
    surviving = table.prune_range("k", 0, 499)
    assert len(surviving) <= 2
    assert sum(p.row_count for p in surviving) >= 500


def test_prune_range_unclustered_reads_everything():
    table = StoredTable.from_columns(SCHEMA, make_columns(10_000), partition_rows=500)
    assert len(table.prune_range("k", 0, 499)) == table.num_partitions


def test_recluster_preserves_multiset():
    table = StoredTable.from_columns(SCHEMA, make_columns(2000), partition_rows=256)
    reclustered = table.recluster("k")
    assert reclustered.row_count == table.row_count
    assert np.array_equal(
        np.sort(reclustered.column_concat("k")), np.sort(table.column_concat("k"))
    )
    # Row alignment preserved: (k, v) pairs survive the re-sort.
    original = dict(zip(table.column_concat("k"), table.column_concat("v")))
    for k, v in zip(reclustered.column_concat("k"), reclustered.column_concat("v")):
        assert original[int(k)] == v


def test_missing_column_rejected():
    with pytest.raises(StorageError):
        StoredTable.from_columns(SCHEMA, {"k": np.arange(5)})


def test_stored_bytes_column_subset():
    table = StoredTable.from_columns(SCHEMA, make_columns(1000), partition_rows=300)
    assert table.stored_bytes(("k",)) < table.stored_bytes()
