import numpy as np
import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import StorageError
from repro.storage.micropartition import COMPRESSION_RATIO, MicroPartition, ZoneMap

SCHEMA = TableSchema(
    "t",
    (Column("a", DataType.INT64), Column("b", DataType.FLOAT64)),
)


def make_partition(lo=0, hi=100):
    return MicroPartition(
        SCHEMA,
        {"a": np.arange(lo, hi), "b": np.linspace(0.0, 1.0, hi - lo)},
    )


def test_zone_maps_built_for_numeric_columns():
    part = make_partition(10, 20)
    assert part.zone_maps["a"] == ZoneMap(min_value=10, max_value=19)
    assert part.row_count == 10


def test_ragged_columns_rejected():
    with pytest.raises(StorageError):
        MicroPartition(SCHEMA, {"a": np.arange(5), "b": np.arange(6.0)})


def test_zone_map_range_checks():
    zone = ZoneMap(min_value=10, max_value=20)
    assert zone.may_contain_range(15, 25)
    assert zone.may_contain_range(None, 10)
    assert not zone.may_contain_range(21, None)
    assert not zone.may_contain_range(None, 9)
    assert zone.may_contain_eq(10)
    assert not zone.may_contain_eq(9.99)


def test_prunable_by_range():
    part = make_partition(0, 100)
    assert part.prunable_by_range("a", 200, 300)
    assert not part.prunable_by_range("a", 50, 60)
    # Unknown column: never prunable (no zone map evidence).
    assert not part.prunable_by_range("zz", 0, 1)


def test_byte_sizes():
    part = make_partition(0, 100)
    assert part.uncompressed_bytes() == 100 * 16
    assert part.uncompressed_bytes(("a",)) == 100 * 8
    assert part.stored_bytes() == int(100 * 16 / COMPRESSION_RATIO)


def test_column_access_and_projection():
    part = make_partition(0, 10)
    assert part.column("a")[0] == 0
    proj = part.project(("b",))
    assert set(proj) == {"b"}
    with pytest.raises(StorageError):
        part.column("missing")
