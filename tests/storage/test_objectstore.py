import pytest

from repro.errors import StorageError
from repro.storage.objectstore import ObjectStore, ObjectStoreConfig
from repro.util.units import GB, MB


def test_put_get_roundtrip():
    store = ObjectStore()
    store.put("k", 1000, payload={"x": 1})
    assert store.exists("k")
    assert store.get("k") == {"x": 1}
    assert store.size_of("k") == 1000
    assert store.stats.gets == 1
    assert store.stats.puts == 1
    assert store.stats.bytes_read == 1000


def test_delete_and_missing():
    store = ObjectStore()
    store.put("k", 10)
    store.delete("k")
    assert not store.exists("k")
    with pytest.raises(StorageError):
        store.delete("k")
    with pytest.raises(StorageError):
        store.get("k")


def test_negative_size_rejected():
    with pytest.raises(StorageError):
        ObjectStore().put("k", -1)


def test_read_time_single_stream_bounded_by_request_bandwidth():
    config = ObjectStoreConfig()
    store = ObjectStore(config)
    t = store.read_time(80 * MB, parallel_streams=1)
    assert t == pytest.approx(config.request_latency_s + 1.0, rel=0.01)


def test_read_time_parallel_streams_capped_by_node_bandwidth():
    config = ObjectStoreConfig()
    store = ObjectStore(config)
    many = store.read_time(int(1.2 * GB), parallel_streams=1000)
    # 1.2 GB at the per-node cap of 1.2 GB/s ~= 1 second + latency
    assert many == pytest.approx(config.request_latency_s + 1.0, rel=0.05)


def test_read_time_zero_bytes_free():
    assert ObjectStore().read_time(0) == 0.0


def test_storage_pricing_proportional():
    store = ObjectStore()
    store.put("k", GB)
    one_hour = store.storage_dollars(3600.0)
    two_hours = store.storage_dollars(7200.0)
    assert two_hours == pytest.approx(2 * one_hour)
    assert one_hour > 0


def test_storage_pricing_negative_duration():
    with pytest.raises(StorageError):
        ObjectStore().storage_dollars(-1.0)


def test_request_pricing():
    config = ObjectStoreConfig()
    store = ObjectStore(config)
    store.put("a", 10)
    store.get("a")
    expected = config.price_per_put + config.price_per_get
    assert store.request_dollars() == pytest.approx(expected)
