"""End-to-end integration: SQL -> optimize -> execute/simulate -> tune."""

import numpy as np
import pytest

from repro.core.warehouse import CostIntelligentWarehouse
from repro.dop.constraints import budget_constraint, sla_constraint
from repro.engine.local_executor import LocalExecutor
from repro.workloads.tpch_queries import QUERY_TEMPLATES, instantiate


def test_all_templates_execute_locally(tpch_db, tpch_binder, tpch_planner):
    executor = LocalExecutor(tpch_db)
    for name in QUERY_TEMPLATES:
        plan = tpch_planner.plan(tpch_binder.bind_sql(instantiate(name, seed=7)))
        result = executor.execute(plan)
        assert result.batch.num_rows >= 0
        assert result.wall_seconds < 30


def test_bushy_variants_preserve_results(tpch_db, tpch_binder):
    """Every bushy join variant must compute the same answer."""
    from repro.optimizer.bushy import bushy_variants
    from repro.optimizer.cardinality import CardinalityEstimator
    from repro.optimizer.dag_planner import DagPlanner

    bound = tpch_binder.bind_sql(instantiate("q5_local_supplier", seed=5))
    planner = DagPlanner(tpch_db.catalog)
    card = CardinalityEstimator(tpch_db.catalog)
    base = {
        ref.name: planner.base_relation(bound, ref.name) for ref in bound.tables
    }
    tree = planner.choose_join_tree(bound)
    executor = LocalExecutor(tpch_db)

    reference = None
    for variant in bushy_variants(tree, base, bound.join_edges, card):
        plan = planner.plan_with_tree(bound, variant)
        batch = executor.execute(plan).batch
        key = np.argsort(batch.column("n_name"))
        revenue = batch.column("revenue")[key]
        if reference is None:
            reference = revenue
        else:
            assert np.allclose(revenue, reference)


def test_simulated_sla_compliance_rate(big_catalog):
    """With accurate estimates, the planner's SLA holds in simulation for
    the vast majority of queries (noise/skew eat the rest)."""
    wh = CostIntelligentWarehouse(catalog=big_catalog)
    met = 0
    total = 0
    for seed in range(3):
        for name in ("q1_pricing_summary", "q6_revenue_forecast", "scan_orders"):
            outcome = wh.submit(
                instantiate(name, seed=seed),
                sla_constraint(30.0),
                template=name,
                policy="dop-monitor",
            )
            met += bool(outcome.sla_met)
            total += 1
    assert met / total >= 0.8


def test_budget_respected_in_simulation(big_catalog):
    wh = CostIntelligentWarehouse(catalog=big_catalog)
    outcome = wh.submit(
        instantiate("q1_pricing_summary", seed=3),
        budget_constraint(0.05),
        policy="static",
    )
    # Simulated cost close to planned; allow hidden-factor slack.
    assert outcome.dollars <= 0.05 * 2.0


def test_tuning_cycle_applies_and_improves():
    """After applying an accepted MV, the what-if savings are real: the
    rewritten query executes faster-or-equal in estimated dollars.

    Uses a private database: apply=True physically mutates table layouts,
    which must not leak into the session-scoped fixture.
    """
    from repro.workloads.tpch_data import load_tpch

    db = load_tpch(scale_factor=0.002, partition_rows=4000)
    wh = CostIntelligentWarehouse(database=db)
    t = 0.0
    for i in range(5):
        wh.submit(
            instantiate("q12_shipmode", seed=i),
            sla_constraint(20.0),
            template="q12_shipmode",
            at_time=t,
            simulate=False,
        )
        t += 600.0
    proposals = wh.run_tuning_cycle(apply=True)
    applied_mvs = [
        r for r in proposals.accepted if r.kind == "materialized-view"
    ]
    if not applied_mvs:
        pytest.skip("workload did not justify an MV at this scale")
    for report in applied_mvs:
        assert wh.catalog.has_view(report.action_name)
        for impact in report.impacts:
            assert impact.dollars_after <= impact.dollars_before

    # Cleanup so the session-scoped fixture stays pristine for others.
    for report in applied_mvs:
        if wh.catalog.has_table(report.action_name):
            wh.catalog.drop_table(report.action_name)
        if wh.catalog.has_view(report.action_name):
            wh.catalog.drop_view(report.action_name)


def test_profiler_attribution_sums_to_machine_time(big_catalog, estimator):
    from repro.dop.planner import DopPlanner
    from repro.plan.pipelines import decompose_pipelines
    from repro.optimizer.dag_planner import DagPlanner
    from repro.sim.distsim import DistributedSimulator
    from repro.sql.binder import Binder
    from repro.statsvc.profiler import attribute_machine_time

    binder = Binder(big_catalog)
    plan = DagPlanner(big_catalog).plan(
        binder.bind_sql(instantiate("q5_local_supplier", seed=2))
    )
    dag = decompose_pipelines(plan)
    dop_plan = DopPlanner(estimator, max_dop=16).plan(dag, sla_constraint(60.0))
    sim = DistributedSimulator(
        dag, dop_plan.dops, estimator.models, planned=dop_plan.estimate
    )
    result = sim.run()
    profiles = attribute_machine_time(dag, result, estimator.models)
    by_pipeline = {}
    for profile in profiles:
        by_pipeline.setdefault(profile.pipeline_id, 0.0)
        by_pipeline[profile.pipeline_id] += profile.machine_seconds
    for pid, run in result.runs.items():
        expected = run.final_dop * run.duration
        assert by_pipeline[pid] == pytest.approx(expected, rel=1e-6)
