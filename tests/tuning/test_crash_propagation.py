"""SimulatedCrashError must tear through the tuning service uncaught.

The background-cycle handlers in ``tuning/service.py`` (``apply``'s
``except Exception`` dispatch guard, ``apply_all``'s and
``maybe_run_cycle``'s ``except ReproError``) exist to keep *library*
failures off the foreground path.  ``SimulatedCrashError`` subclasses
``BaseException`` precisely so none of them can swallow it — a
simulated ``kill -9`` at a journal boundary has to reach the chaos
driver through every tuning frame, otherwise the kill-point recovery
matrix would silently test nothing.  These tests pin that contract for
every tuning entry point: explicit ``apply``/``apply_all``, the
crash probes inside the two-record journal protocol, and the
serving-triggered auto-tune cycle.
"""

from __future__ import annotations

import pytest

from repro import (
    CostIntelligentWarehouse,
    QueryRequest,
    TuningPolicy,
    sla_constraint,
)
from repro.core.journal import WriteAheadJournal
from repro.testing import FaultPlan, FaultSpec, SimulatedCrashError, kill
from repro.workloads.tpch_stats import synthetic_tpch_catalog

Q5ISH = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {r} GROUP BY n_name"
)
SLA = sla_constraint(20.0)


def crash_spec(point: str) -> FaultSpec:
    """A spec whose injected error is a crash, not a TransientError."""
    return FaultSpec(
        point=point,
        error_rate=1.0,
        error=lambda message: SimulatedCrashError(
            message, point=point, invocation=0
        ),
    )


def stats_warehouse(*, tuning_policy=None, journal=None):
    wh = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0),
        tuning_policy=tuning_policy,
        journal=journal,
    )
    session = wh.session(tenant="alpha", constraint=SLA)
    t = 0.0
    for i in range(6):
        session.submit(
            QueryRequest(
                sql=Q5ISH.format(r=i % 3),
                template="q5ish",
                at_time=t,
                simulate=False,
            )
        )
        t += 30.0
    return wh


def accepted_recommendations(wh):
    recs = [r for r in wh.tuning.propose() if r.accepted]
    assert recs, "workload must yield at least one accepted recommendation"
    return recs


def test_crash_in_apply_dispatch_propagates_through_apply_all():
    """apply()'s `except Exception` dispatch guard and apply_all's
    `except ReproError` batch guard both let the crash through."""
    wh = stats_warehouse()
    recs = accepted_recommendations(wh)
    wh.inject_faults(FaultPlan([crash_spec("tuning_apply")]))
    with pytest.raises(SimulatedCrashError):
        wh.tuning.apply_all(recs)
    # ...and not as a recorded cycle failure: no handler saw it.
    assert wh.tuning.last_error is None


def test_crash_at_pre_commit_probe_propagates_through_apply_all():
    """The crash point between TuningIntent and TuningCommit (the
    in-doubt window the recovery matrix sweeps) is equally uncatchable."""
    wh = stats_warehouse(journal=WriteAheadJournal())
    recs = accepted_recommendations(wh)
    wh.inject_faults(FaultPlan([kill("crash_pre_commit")]))
    with pytest.raises(SimulatedCrashError):
        wh.tuning.apply_all(recs)


def test_crash_during_auto_tune_cycle_propagates_through_submit():
    """The serving-layer maybe_run_cycle hook (except ReproError around
    propose and apply) must not contain the crash either: it surfaces
    through the foreground submit that triggered the cycle."""
    # Cadence 16: the 6 warmup submissions stay below the first cycle,
    # which then triggers mid-loop below, after the crash is installed.
    wh = stats_warehouse(
        tuning_policy=TuningPolicy(cadence_queries=16, auto_apply=True)
    )
    wh.inject_faults(FaultPlan([crash_spec("tuning_apply")]))
    session = wh.session(tenant="alpha", constraint=SLA)
    with pytest.raises(SimulatedCrashError):
        # Submissions advance the cadence until a cycle runs, proposes,
        # and auto-applies into the injected crash.  Bounded loop: if
        # nothing crashes, the assertion below fails the test.
        for i in range(12):
            session.submit(
                QueryRequest(
                    sql=Q5ISH.format(r=i % 3),
                    template="q5ish",
                    at_time=300.0 + 30.0 * i,
                    simulate=False,
                )
            )
    # The breaker never saw the crash (no _note_cycle_failure ran).
    assert wh.tuning.consecutive_failures == 0


def test_injected_library_error_is_contained_by_the_same_handlers():
    """Control case: a TransientError-family fault at the same point IS
    caught by the cycle handlers — proving the crash propagation above
    is BaseException-specific, not a hole in the guards."""
    wh = stats_warehouse()
    recs = accepted_recommendations(wh)
    wh.inject_faults(FaultPlan([FaultSpec(point="tuning_apply", error_rate=1.0)]))
    applied = wh.tuning.apply_all(recs)
    assert applied == []
    assert wh.tuning.last_error is not None
    assert all(r.error is not None for r in recs)
