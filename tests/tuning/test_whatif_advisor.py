"""What-If service, recluster pricing, advisor, and background compute."""

import pytest

from repro.statsvc.forecast import TemplateForecast
from repro.tuning.clustering import (
    ReclusterCandidate,
    improved_depth,
    recluster_one_time_cost,
)
from repro.tuning.mv import mv_candidate_from_query
from repro.tuning.whatif import TuningReport, WhatIfService
from repro.errors import TuningError


def forecast(template, rate=4.0):
    return TemplateForecast(
        template=template,
        rate_per_hour=rate,
        periodic=True,
        period_s=3600.0 / rate,
        observed_count=10,
        avg_dollars=0.01,
        avg_machine_seconds=10.0,
    )


Q5ISH = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = 2 GROUP BY n_name"
)

DATEQ = (
    "SELECT count(*) AS c FROM lineitem "
    "WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1995-03-01'"
)


def test_mv_whatif_positive_for_hot_workload(big_catalog, big_binder, estimator):
    bound = big_binder.bind_sql(Q5ISH)
    candidate = mv_candidate_from_query(bound, big_catalog, name="mv_hot")
    whatif = WhatIfService(big_catalog, estimator)
    report = whatif.evaluate_mv(candidate, {"fam": (bound, forecast("fam", rate=120.0))})
    assert report.kind == "materialized-view"
    assert report.impacts[0].dollars_after < report.impacts[0].dollars_before
    assert report.profitable  # 120 queries/hour easily pays for a tiny MV
    assert report.break_even_hours < float("inf")


def test_mv_whatif_negative_for_cold_workload(big_catalog, big_binder, estimator):
    bound = big_binder.bind_sql(Q5ISH)
    candidate = mv_candidate_from_query(bound, big_catalog, name="mv_cold")
    whatif = WhatIfService(
        big_catalog, estimator, churn_fraction_per_hour=0.5
    )
    report = whatif.evaluate_mv(
        candidate, {"fam": (bound, forecast("fam", rate=0.001))}
    )
    assert not report.profitable  # heavy maintenance, one query per 1000h


def test_mv_whatif_requires_matching_template(big_catalog, big_binder, estimator):
    bound = big_binder.bind_sql(Q5ISH)
    other = big_binder.bind_sql("SELECT count(*) AS c FROM orders, lineitem WHERE o_orderkey = l_orderkey")
    candidate = mv_candidate_from_query(bound, big_catalog, name="mv_x")
    whatif = WhatIfService(big_catalog, estimator)
    with pytest.raises(TuningError):
        whatif.evaluate_mv(candidate, {"fam": (other, forecast("fam"))})


def test_recluster_one_time_cost_scales_with_table(big_catalog, estimator):
    small = recluster_one_time_cost(
        ReclusterCandidate("orders", "o_totalprice"), big_catalog, estimator.hw
    )
    large = recluster_one_time_cost(
        ReclusterCandidate("lineitem", "l_receiptdate"), big_catalog, estimator.hw
    )
    assert large[1] > small[1] > 0


def test_recluster_unknown_key_rejected(big_catalog, estimator):
    with pytest.raises(TuningError):
        recluster_one_time_cost(
            ReclusterCandidate("orders", "nope"), big_catalog, estimator.hw
        )


def test_recluster_whatif_saves_on_date_queries(big_catalog, big_binder, estimator):
    bound = big_binder.bind_sql(DATEQ)
    candidate = ReclusterCandidate("lineitem", "l_receiptdate")
    whatif = WhatIfService(big_catalog, estimator, churn_fraction_per_hour=1e-6)
    report = whatif.evaluate_recluster(
        candidate, {"dateq": (bound, forecast("dateq", rate=60.0))}
    )
    impact = report.impacts[0]
    assert impact.dollars_after < impact.dollars_before  # pruning helps
    assert report.savings_per_hour > 0


def test_improved_depth_bounded(big_catalog):
    depth = improved_depth(big_catalog, "lineitem")
    entry = big_catalog.table("lineitem")
    assert 0 < depth <= 1.0
    assert depth <= 10.0 / entry.num_partitions


def test_report_describe_verdicts():
    accept = TuningReport(
        action_name="a", kind="materialized-view",
        savings_per_hour=2.0, cost_per_hour=1.0, one_time_dollars=10.0,
    )
    reject = TuningReport(
        action_name="b", kind="recluster",
        savings_per_hour=0.5, cost_per_hour=1.0, one_time_dollars=10.0,
    )
    assert accept.net_per_hour == pytest.approx(1.0)
    assert accept.break_even_hours == pytest.approx(10.0)
    assert "ACCEPT" in accept.describe()
    assert reject.break_even_hours == float("inf")
    assert "REJECT" in reject.describe()


def test_advisor_cycle_on_warehouse(tpch_db):
    from repro import CostIntelligentWarehouse, sla_constraint
    from repro.workloads import instantiate

    wh = CostIntelligentWarehouse(database=tpch_db)
    t = 0.0
    for i in range(4):
        for name in ("q5_local_supplier", "q12_shipmode"):
            wh.submit(
                instantiate(name, seed=i),
                sla_constraint(20.0),
                template=name,
                at_time=t,
                simulate=False,
            )
            t += 900.0
    proposals = wh.run_tuning_cycle(apply=False)
    assert proposals.reports
    kinds = {r.kind for r in proposals.reports}
    assert "materialized-view" in kinds
    # Reports are sorted by net value, best first.
    nets = [r.net_per_hour for r in proposals.reports]
    assert nets == sorted(nets, reverse=True)
