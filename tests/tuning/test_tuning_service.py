"""TuningService: typed recommendations, apply/rollback lifecycle, parity.

Covers the PR 4 acceptance criteria: apply() -> rollback() round-trips
restore bit-identical plans and catalog state for every action kind, the
``run_tuning_cycle`` shim produces identical proposals and physical
effects to the explicit TuningService path, and the old string-round-trip
failure modes (missing template binding, ``_on_`` identifiers) are dead.
"""

import pytest

from repro import (
    CostIntelligentWarehouse,
    MaterializeView,
    QueryRequest,
    Recluster,
    Recommendation,
    RecommendationState,
    ResizeWarehouse,
    TuningPolicy,
    sla_constraint,
)
from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import Column, DataType, TableSchema
from repro.catalog.statistics import TableStats
from repro.errors import TuningError, TuningStateError
from repro.statsvc.forecast import TemplateForecast
from repro.tuning.clustering import ReclusterCandidate
from repro.tuning.mv import mv_candidate_from_query
from repro.tuning.whatif import TuningReport
from repro.workloads.tpch_stats import synthetic_tpch_catalog

Q5ISH = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {r} GROUP BY n_name"
)
DATEQ = (
    "SELECT count(*) AS c FROM lineitem "
    "WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1995-03-01'"
)
SLA = sla_constraint(20.0)


def forecast(template, rate=120.0):
    return TemplateForecast(
        template=template,
        rate_per_hour=rate,
        periodic=True,
        period_s=3600.0 / rate,
        observed_count=10,
        avg_dollars=0.01,
        avg_machine_seconds=10.0,
    )


def stats_warehouse(*, tenants=(("alpha", 6),), tuning_policy=None):
    """Stats-only warehouse with a recurring, MV-friendly workload."""
    wh = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0), tuning_policy=tuning_policy
    )
    t = 0.0
    for tenant, count in tenants:
        session = wh.session(tenant=tenant, constraint=SLA)
        for i in range(count):
            session.submit(
                QueryRequest(
                    sql=Q5ISH.format(r=i % 3),
                    template="q5ish",
                    at_time=t,
                    simulate=False,
                )
            )
            t += 30.0
    return wh


def plan_snapshot(choice):
    estimate = choice.dop_plan.estimate
    return (
        choice.join_tree.describe(),
        dict(choice.dop_plan.dops),
        estimate.latency,
        estimate.total_dollars,
        estimate.machine_seconds,
    )


# --------------------------------------------------------------------- #
# Proposal shape
# --------------------------------------------------------------------- #
def test_propose_returns_typed_recommendations():
    wh = stats_warehouse()
    recs = wh.tuning.propose()
    assert recs and recs == wh.tuning.recommendations
    for rec in recs:
        assert rec.state in (
            RecommendationState.ACCEPTED,
            RecommendationState.REJECTED,
        )
        assert rec.report.candidate is not None
        assert "propose" in rec.stage_timings
        assert rec.tenant_shares == {"alpha": 1.0}
        if isinstance(rec.action, MaterializeView):
            # The action carries the candidate object end-to-end.
            assert rec.action.candidate is rec.report.candidate
            assert rec.action.name == rec.report.action_name
    assert any(rec.accepted for rec in recs)
    assert wh.tuning.cycles_run == 1


# --------------------------------------------------------------------- #
# Acceptance: apply -> rollback round-trips, every action kind
# --------------------------------------------------------------------- #
def test_mv_apply_rollback_restores_bit_identical_plans():
    wh = stats_warehouse()
    sql = Q5ISH.format(r=1)
    pre_bound, pre_choice = wh.plan(sql, SLA)
    pre = plan_snapshot(pre_choice)
    assert pre_bound.table_names == ["customer", "nation"]

    recs = wh.tuning.propose()
    mv = next(r for r in recs if isinstance(r.action, MaterializeView))
    assert mv.accepted
    wh.tuning.apply(mv)
    assert mv.applied
    mv_name = mv.action.name
    assert wh.catalog.has_view(mv_name) and wh.catalog.has_table(mv_name)

    # The applied MV changes served plans: the family now scans the view
    # and costs less than the base-table join.
    post_bound, post_choice = wh.plan(sql, SLA)
    assert post_bound.table_names == [mv_name]
    assert (
        post_choice.dop_plan.estimate.total_dollars
        < pre_choice.dop_plan.estimate.total_dollars
    )

    wh.tuning.rollback(mv)
    assert mv.state is RecommendationState.ROLLED_BACK
    assert not wh.catalog.has_view(mv_name)
    assert not wh.catalog.has_table(mv_name)
    back_bound, back_choice = wh.plan(sql, SLA)
    assert back_bound.table_names == ["customer", "nation"]
    assert plan_snapshot(back_choice) == pre
    assert {"propose", "apply", "rollback"} <= set(mv.stage_timings)


def test_recluster_apply_rollback_restores_catalog_entry_identically():
    wh = stats_warehouse()
    session = wh.session(tenant="alpha", constraint=SLA)
    session.submit(QueryRequest(sql=DATEQ, template="dateq", simulate=False))

    prior_entry = wh.catalog.table("lineitem")
    pre = plan_snapshot(wh.plan(DATEQ, SLA)[1])

    candidate = ReclusterCandidate(table="lineitem", key="l_receiptdate")
    bound = wh.binder.bind_sql(DATEQ)
    report = wh.tuning.whatif.evaluate_recluster(
        candidate, {"dateq": (bound, forecast("dateq"))}
    )
    rec = Recommendation(rec_id=900, action=Recluster(candidate), report=report)
    wh.tuning.accept(rec)
    wh.tuning.apply(rec)
    assert wh.catalog.table("lineitem").schema.clustering_key == "l_receiptdate"
    assert plan_snapshot(wh.plan(DATEQ, SLA)[1]) != pre  # pruning changed costs

    wh.tuning.rollback(rec)
    # The undo token restores the exact prior catalog entry, verbatim.
    assert wh.catalog.table("lineitem") is prior_entry
    assert plan_snapshot(wh.plan(DATEQ, SLA)[1]) == pre


def test_physical_roundtrips_on_real_data():
    """MV build and recluster against a database with rows: apply mutates
    physical storage, rollback restores the exact prior objects."""
    from repro.workloads.tpch_data import load_tpch

    db = load_tpch(scale_factor=0.002, partition_rows=4000)
    wh = CostIntelligentWarehouse(database=db)
    sql = Q5ISH.format(r=1)
    bound = wh.binder.bind_sql(sql)
    pre = plan_snapshot(wh.plan(sql, SLA)[1])

    # Materialized view, physically built from the data.
    candidate = mv_candidate_from_query(bound, wh.catalog, name="mv_q5phys")
    report = wh.tuning.whatif.evaluate_mv(
        candidate, {"fam": (bound, forecast("fam"))}
    )
    rec = Recommendation(
        rec_id=901, action=MaterializeView(candidate), report=report
    )
    wh.tuning.accept(rec)
    wh.tuning.apply(rec)
    assert "mv_q5phys" in db.table_names
    outcome = wh.session(tenant="t", constraint=SLA).submit(
        QueryRequest(sql=sql, execute_locally=True)
    ).result()
    assert outcome.record.tables == ("mv_q5phys",)
    assert outcome.batch is not None and outcome.batch.num_rows > 0

    wh.tuning.rollback(rec)
    assert "mv_q5phys" not in db.table_names
    assert not wh.catalog.has_view("mv_q5phys")
    assert plan_snapshot(wh.plan(sql, SLA)[1]) == pre

    # Recluster, physically re-sorting the stored table.
    prior_stored = db.stored_table("lineitem")
    prior_entry = wh.catalog.table("lineitem")
    dpre = plan_snapshot(wh.plan(DATEQ, SLA)[1])
    cand = ReclusterCandidate(table="lineitem", key="l_receiptdate")
    dreport = wh.tuning.whatif.evaluate_recluster(
        cand, {"dateq": (wh.binder.bind_sql(DATEQ), forecast("dateq"))}
    )
    drec = Recommendation(rec_id=902, action=Recluster(cand), report=dreport)
    wh.tuning.accept(drec)
    wh.tuning.apply(drec)
    assert db.stored_table("lineitem").schema.clustering_key == "l_receiptdate"
    wh.tuning.rollback(drec)
    assert db.stored_table("lineitem") is prior_stored
    assert wh.catalog.table("lineitem") is prior_entry
    assert plan_snapshot(wh.plan(DATEQ, SLA)[1]) == dpre
    ledger_kinds = [e.kind for e in wh.tuning.background.ledger]
    assert ledger_kinds == [
        "materialized-view",
        "rollback-materialized-view",
        "recluster",
        "rollback-recluster",
    ]


# --------------------------------------------------------------------- #
# Acceptance: shim parity
# --------------------------------------------------------------------- #
def test_run_tuning_cycle_shim_parity_with_service_path():
    shim_wh = stats_warehouse()
    service_wh = stats_warehouse()

    shim_proposals = shim_wh.run_tuning_cycle(apply=True)
    recs = service_wh.tuning.propose()
    service_wh.tuning.apply_all(recs)
    service_proposals = service_wh.tuning.last_proposals

    def report_key(r):
        return (r.action_name, r.kind, r.net_per_hour, r.one_time_dollars)

    assert [report_key(r) for r in shim_proposals.reports] == [
        report_key(r) for r in service_proposals.reports
    ]
    assert [report_key(r) for r in shim_proposals.accepted] == [
        report_key(r) for r in service_proposals.accepted
    ]
    # Identical physical effects: same views, tables, clustering layout.
    assert sorted(v.name for v in shim_wh.catalog.views()) == sorted(
        v.name for v in service_wh.catalog.views()
    )
    assert sorted(shim_wh.catalog.table_names) == sorted(
        service_wh.catalog.table_names
    )
    for name in shim_wh.catalog.table_names:
        assert (
            shim_wh.catalog.table(name).schema.clustering_key
            == service_wh.catalog.table(name).schema.clustering_key
        )
    assert [
        (e.action_name, e.kind, e.dollars, e.applied_physically)
        for e in shim_wh.tuning.background.ledger
    ] == [
        (e.action_name, e.kind, e.dollars, e.applied_physically)
        for e in service_wh.tuning.background.ledger
    ]


# --------------------------------------------------------------------- #
# Regression: plan-cache coherence on apply (satellite 1)
# --------------------------------------------------------------------- #
def test_apply_invalidates_plan_and_skeleton_caches():
    wh = stats_warehouse()
    sql = Q5ISH.format(r=2)
    wh.plan(sql, SLA)
    _, cached_choice = wh.plan(sql, SLA)  # exact-cache hit
    assert wh.describe_caches()["plan_cache"]["hits"] >= 1

    recs = wh.tuning.propose()
    mv = next(r for r in recs if isinstance(r.action, MaterializeView))
    wh.tuning.apply(mv)
    # Every serving cache level and the template bindings are flushed.
    caches = wh.describe_caches()
    for level in ("plan_cache", "skeleton_cache", "binding_cache"):
        assert caches[level]["entries"] == 0
    assert wh.template_queries == {}
    # Same SQL no longer serves the pre-tuning cached plan.
    post_bound, post_choice = wh.plan(sql, SLA)
    assert post_bound.table_names == [mv.action.name]
    assert plan_snapshot(post_choice) != plan_snapshot(cached_choice)


# --------------------------------------------------------------------- #
# Regression: the old string-round-trip failure modes (satellite 2)
# --------------------------------------------------------------------- #
def test_apply_survives_missing_template_binding():
    """The old apply path silently ``continue``d when the accepted MV's
    template binding had gone stale; the typed action carries the
    candidate, so apply no longer consults template bindings at all."""
    wh = stats_warehouse()
    recs = wh.tuning.propose()
    mv = next(r for r in recs if isinstance(r.action, MaterializeView))
    wh._template_queries.clear()  # simulate the stale-binding condition
    wh.tuning.apply(mv)
    assert mv.applied
    assert wh.catalog.has_view(mv.action.name)


def test_recluster_identifiers_containing_on_are_not_mangled():
    # Pin the old failure mode: name parsing mis-splits the table.
    candidate = ReclusterCandidate(table="events_on_disk", key="ts")
    old_parse = candidate.name.removeprefix("recluster_").split("_on_")
    assert old_parse[0] != candidate.table  # the bug the redesign kills

    catalog = Catalog()
    schema = TableSchema(
        "events_on_disk",
        (Column("ts", DataType.FLOAT64), Column("v", DataType.FLOAT64)),
    )
    catalog.register_table(
        TableEntry(
            schema=schema,
            stats=TableStats(table="events_on_disk", row_count=1000, column_stats={}),
            storage_bytes=16_000,
            num_partitions=4,
        )
    )
    wh = CostIntelligentWarehouse(catalog=catalog)
    report = TuningReport(
        action_name=candidate.name,
        kind="recluster",
        savings_per_hour=1.0,
        cost_per_hour=0.0,
        one_time_dollars=0.5,
        candidate=candidate,
    )
    rec = Recommendation(rec_id=903, action=Recluster(candidate), report=report)
    wh.tuning.accept(rec)
    wh.tuning.apply(rec)
    assert wh.catalog.table("events_on_disk").schema.clustering_key == "ts"


# --------------------------------------------------------------------- #
# Lifecycle enforcement
# --------------------------------------------------------------------- #
def test_lifecycle_transitions_enforced():
    wh = stats_warehouse()
    recs = wh.tuning.propose()
    mv = next(r for r in recs if isinstance(r.action, MaterializeView))

    rejected = Recommendation(rec_id=904, action=mv.action, report=mv.report)
    wh.tuning.reject(rejected)
    with pytest.raises(TuningStateError):
        wh.tuning.apply(rejected)  # rejected recommendations don't apply
    with pytest.raises(TuningStateError):
        wh.tuning.rollback(mv)  # not applied yet

    wh.tuning.apply(mv)
    with pytest.raises(TuningStateError):
        wh.tuning.apply(mv)  # double-apply
    wh.tuning.rollback(mv)
    with pytest.raises(TuningStateError):
        wh.tuning.rollback(mv)  # double-rollback


def test_resize_warehouse_action_is_typed_but_not_executable():
    wh = stats_warehouse()
    action = ResizeWarehouse(target_nodes=8)
    report = TuningReport(
        action_name=action.name,
        kind=action.kind,
        savings_per_hour=1.0,
        cost_per_hour=0.0,
        one_time_dollars=0.0,
    )
    rec = Recommendation(rec_id=905, action=action, report=report)
    wh.tuning.accept(rec)
    with pytest.raises(TuningError):
        wh.tuning.apply(rec)
    assert rec.state is RecommendationState.FAILED
    assert rec.error is not None


def test_apply_all_continues_past_duplicate_recommendations():
    """Two cycles without an apply in between both accept the same MV;
    apply_all must not strand later recommendations when the duplicate
    fails (regression: the loop used to abort mid-batch)."""
    wh = stats_warehouse()
    first = wh.tuning.propose()
    second = wh.tuning.propose()
    applied = wh.tuning.apply_all(first + second)
    names = [rec.action.name for rec in applied]
    assert len(names) == len(set(names))  # each action applied once
    duplicates = [
        rec
        for rec in second
        if rec.state is RecommendationState.FAILED
        and isinstance(rec.error, TuningError)
    ]
    assert duplicates  # the clash is carried on the rec, not raised
    assert wh.catalog.has_view(applied[0].action.name)


def test_background_failures_do_not_fail_foreground_serving(monkeypatch):
    """Engine-level errors during an auto-applied action stay on the
    recommendation; the triggering submit must still succeed."""
    from repro.errors import CatalogError

    policy = TuningPolicy(cadence_queries=6, auto_apply=True)
    wh = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0), tuning_policy=policy
    )

    def broken_apply(candidate, report):
        raise CatalogError("simulated engine failure during materialization")

    monkeypatch.setattr(wh.tuning.background, "apply_mv", broken_apply)
    session = wh.session(tenant="alpha", constraint=SLA)
    handles = session.submit_many(
        [
            QueryRequest(
                sql=Q5ISH.format(r=i % 3),
                template="q5ish",
                at_time=30.0 * i,
                simulate=False,
            )
            for i in range(6)
        ]
    )
    assert all(not h.failed for h in handles)  # serving unaffected
    assert wh.tuning.cycles_run == 1
    failed = [
        r
        for r in wh.tuning.recommendations
        if r.state is RecommendationState.FAILED
    ]
    assert failed and isinstance(failed[0].error, CatalogError)


def test_double_apply_of_same_mv_name_is_rejected_before_mutation():
    wh = stats_warehouse()
    recs = wh.tuning.propose()
    mv = next(r for r in recs if isinstance(r.action, MaterializeView))
    wh.tuning.apply(mv)
    clone = Recommendation(rec_id=906, action=mv.action, report=mv.report)
    wh.tuning.accept(clone)
    with pytest.raises(TuningError):
        wh.tuning.apply(clone)  # name already in the catalog
    assert clone.state is RecommendationState.FAILED
    assert wh.catalog.has_view(mv.action.name)  # original untouched


# --------------------------------------------------------------------- #
# Background dollars metered per originating tenant
# --------------------------------------------------------------------- #
def test_background_dollars_attributed_to_originating_tenants():
    wh = stats_warehouse(tenants=(("alpha", 4), ("beta", 2)))
    recs = wh.tuning.propose()
    mv = next(r for r in recs if isinstance(r.action, MaterializeView))
    assert mv.tenant_shares == pytest.approx({"alpha": 4 / 6, "beta": 2 / 6})
    serving_dollars = wh.billed_dollars
    wh.tuning.apply(mv)

    one_time = mv.report.one_time_dollars
    assert wh.billing["alpha"].background_dollars == pytest.approx(
        one_time * 4 / 6
    )
    assert wh.billing["beta"].background_dollars == pytest.approx(
        one_time * 2 / 6
    )
    assert wh.background_dollars == pytest.approx(one_time)
    # Serving dollars stay separate (and untouched by tuning spend).
    assert wh.billed_dollars == serving_dollars
    assert wh.billing["alpha"].total_dollars == pytest.approx(
        wh.billing["alpha"].dollars + one_time * 4 / 6
    )
    assert "background" in wh.describe_billing()


# --------------------------------------------------------------------- #
# TuningPolicy: serving-driven recurring cycles, forecast-fed auto-apply
# --------------------------------------------------------------------- #
def test_policy_cadence_drives_cycles_from_serving_layer():
    policy = TuningPolicy(cadence_queries=6, auto_apply=True)
    wh = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0), tuning_policy=policy
    )
    session = wh.session(tenant="alpha", constraint=SLA)
    requests = [
        QueryRequest(
            sql=Q5ISH.format(r=i % 3),
            template="q5ish",
            at_time=30.0 * i,
            simulate=False,
        )
        for i in range(6)
    ]
    session.submit_many(requests)
    # The batch crossed the cadence: a cycle ran and auto-applied.
    assert wh.tuning.cycles_run == 1
    applied = wh.tuning.applied_recommendations
    assert applied and all(r.applied for r in applied)
    assert wh.catalog.has_view(applied[0].action.name)


def test_auto_apply_gated_by_break_even_forecast():
    policy = TuningPolicy(
        cadence_queries=6, auto_apply=True, auto_apply_break_even_hours=1e-12
    )
    wh = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0), tuning_policy=policy
    )
    session = wh.session(tenant="alpha", constraint=SLA)
    session.submit_many(
        [
            QueryRequest(
                sql=Q5ISH.format(r=i % 3),
                template="q5ish",
                at_time=30.0 * i,
                simulate=False,
            )
            for i in range(6)
        ]
    )
    assert wh.tuning.cycles_run == 1
    # No recommendation clears a ~zero break-even horizon: accepted ones
    # wait for a human instead of auto-applying.
    assert not wh.tuning.applied_recommendations
    assert any(r.accepted for r in wh.tuning.recommendations)


def test_policy_tenant_scope_restricts_advisor_input():
    wh = stats_warehouse(tenants=(("alpha", 6), ("beta", 6)))
    from repro.tuning.service import TuningService

    scoped = TuningService(wh, TuningPolicy(tenant="beta"))
    recs = scoped.propose()
    for rec in recs:
        assert rec.tenant_shares == {"beta": 1.0}


def test_policy_validation():
    with pytest.raises(TuningError):
        TuningPolicy(cadence_queries=0)
    with pytest.raises(TuningError):
        TuningPolicy(cadence_seconds=-1.0)
    assert not TuningPolicy().recurring
    assert TuningPolicy(cadence_seconds=60.0).recurring
