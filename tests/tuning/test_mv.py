import numpy as np
import pytest

from repro.engine.local_executor import LocalExecutor
from repro.errors import TuningError
from repro.optimizer.dag_planner import DagPlanner
from repro.tuning.background import BackgroundComputeService
from repro.tuning.mv import (
    mv_build_sql,
    mv_candidate_from_query,
    matches,
    register_hypothetical_mv,
    try_rewrite,
)
from repro.tuning.whatif import TuningReport


Q5ISH = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = 2 GROUP BY n_name"
)


@pytest.fixture(scope="module")
def candidate(tpch_db, tpch_binder):
    bound = tpch_binder.bind_sql(Q5ISH)
    return mv_candidate_from_query(bound, tpch_db.catalog, name="mv_test")


def test_candidate_structure(candidate):
    assert candidate.base_tables == ("customer", "nation")
    assert "n_name" in candidate.group_by
    assert "n_regionkey" in candidate.group_by  # filter column included
    assert candidate.est_rows > 0


def test_candidate_requires_join_and_agg(tpch_db, tpch_binder):
    no_join = tpch_binder.bind_sql("SELECT count(*) AS c FROM orders")
    with pytest.raises(TuningError):
        mv_candidate_from_query(no_join, tpch_db.catalog, name="x")
    no_agg = tpch_binder.bind_sql(
        "SELECT n_name FROM customer, nation WHERE c_nationkey = n_nationkey"
    )
    with pytest.raises(TuningError):
        mv_candidate_from_query(no_agg, tpch_db.catalog, name="y")


def test_matches_same_family_other_params(candidate, tpch_binder):
    other = tpch_binder.bind_sql(Q5ISH.replace("n_regionkey = 2", "n_regionkey = 4"))
    assert matches(candidate, other)


def test_no_match_different_tables(candidate, tpch_binder):
    other = tpch_binder.bind_sql(
        "SELECT count(*) AS c FROM orders, lineitem WHERE o_orderkey = l_orderkey"
    )
    assert not matches(candidate, other)


def test_no_match_filter_outside_group_cols(candidate, tpch_binder):
    other = tpch_binder.bind_sql(
        "SELECT n_name, count(*) AS c FROM customer, nation "
        "WHERE c_nationkey = n_nationkey AND c_acctbal > 0 GROUP BY n_name"
    )
    assert not matches(candidate, other)


def test_rewrite_produces_single_table_query(candidate, tpch_binder):
    bound = tpch_binder.bind_sql(Q5ISH)
    rewritten = try_rewrite(bound, candidate)
    assert rewritten is not None
    assert rewritten.table_names == ["mv_test"]
    assert not rewritten.join_edges
    assert rewritten.select_names == bound.select_names


def test_register_hypothetical(candidate, tpch_db):
    overlay = tpch_db.catalog.overlay()
    entry = register_hypothetical_mv(overlay, candidate, tpch_db.catalog)
    assert overlay.has_table("mv_test")
    assert not tpch_db.catalog.has_table("mv_test")
    assert entry.row_count == max(1, int(candidate.est_rows))


def test_mv_end_to_end_result_equality(tpch_db, tpch_binder, candidate):
    """Materialize the MV for real; the rewritten query must return the
    same result as the original query — the core MV correctness check."""
    report = TuningReport(
        action_name="mv_test", kind="materialized-view",
        savings_per_hour=1.0, cost_per_hour=0.0, one_time_dollars=0.0,
    )
    background = BackgroundComputeService(database=tpch_db)
    background.apply_mv(candidate, report)
    try:
        executor = LocalExecutor(tpch_db)
        planner = DagPlanner(tpch_db.catalog)

        bound = tpch_binder.bind_sql(Q5ISH)
        original = executor.execute(planner.plan(bound)).batch

        rewritten = try_rewrite(bound, candidate)
        assert rewritten is not None
        rewritten_result = executor.execute(planner.plan(rewritten)).batch

        assert original.num_rows == rewritten_result.num_rows
        order_a = np.argsort(original.column("n_name"))
        order_b = np.argsort(rewritten_result.column("n_name"))
        assert np.allclose(
            original.column("bal")[order_a],
            rewritten_result.column("bal")[order_b],
        )
        assert np.array_equal(
            original.column("cnt")[order_a],
            rewritten_result.column("cnt")[order_b],
        )
    finally:
        tpch_db.catalog.drop_table("mv_test")
        tpch_db.catalog.drop_view("mv_test")


def test_mv_build_sql_parses(candidate, tpch_binder):
    sql = mv_build_sql(candidate)
    bound = tpch_binder.bind_sql(sql)
    assert set(bound.table_names) == set(candidate.base_tables)
