import pytest

from repro.errors import BindError
from repro.plan.expressions import BinaryOp, ColumnRef, InList, Literal
from repro.sql.binder import Binder


def test_resolves_unqualified_columns(tpch_binder):
    bound = tpch_binder.bind_sql("SELECT o_totalprice FROM orders")
    expr = bound.select_exprs[0]
    assert isinstance(expr, ColumnRef)
    assert expr.table == "orders"


def test_unknown_table(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT a FROM nope")


def test_unknown_column(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT zz FROM orders")


def test_self_join_rejected(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT o_orderkey FROM orders a, orders b")


def test_join_edges_extracted(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey "
        "AND o_totalprice > 100"
    )
    assert len(bound.join_edges) == 1
    edge = bound.join_edges[0]
    assert {edge.left.table, edge.right.table} == {"orders", "lineitem"}
    assert len(bound.filters["orders"]) == 1
    assert bound.filters["lineitem"] == []


def test_filters_assigned_per_table(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT o_orderkey FROM orders WHERE o_totalprice > 10 AND o_orderdate < DATE '1995-06-01'"
    )
    assert len(bound.filters["orders"]) == 2


def test_string_equality_encoded_to_code(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT c_custkey FROM customer WHERE c_mktsegment = 'BUILDING'"
    )
    predicate = bound.filters["customer"][0]
    assert isinstance(predicate, BinaryOp) and predicate.op == "="
    assert isinstance(predicate.right, Literal)
    assert predicate.right.value == 1  # BUILDING is index 1 in sorted dict


def test_string_equality_unknown_value_impossible(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT c_custkey FROM customer WHERE c_mktsegment = 'NOSUCH'"
    )
    predicate = bound.filters["customer"][0]
    assert predicate.op == "<" and predicate.right.value == -1


def test_string_range_comparison(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT c_custkey FROM customer WHERE c_mktsegment < 'FURNITURE'"
    )
    predicate = bound.filters["customer"][0]
    assert predicate.op == "<" and predicate.right.value == 2


def test_string_in_list_encoded(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT l_orderkey FROM lineitem WHERE l_shipmode IN ('AIR', 'SHIP', 'XXX')"
    )
    predicate = bound.filters["lineitem"][0]
    assert isinstance(predicate, InList)
    assert set(predicate.values) == {0, 5}  # AIR=0, SHIP=5; XXX dropped


def test_string_comparison_against_numeric_column_rejected(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT o_orderkey FROM orders WHERE o_totalprice = 'x'")


def test_aggregate_extraction_and_names(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT sum(o_totalprice) AS total, count(*) FROM orders"
    )
    assert [a.func for a in bound.aggregates] == ["sum", "count"]
    assert bound.agg_names == ["agg0", "agg1"]
    assert bound.select_names == ["total", "col1"]
    # Select exprs reference the generated agg outputs.
    assert isinstance(bound.select_exprs[0], ColumnRef)
    assert bound.select_exprs[0].name == "agg0"


def test_duplicate_aggregates_shared(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT sum(o_totalprice), sum(o_totalprice) * 2 FROM orders"
    )
    assert len(bound.aggregates) == 1


def test_group_by_validation(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql(
            "SELECT o_custkey, o_totalprice FROM orders GROUP BY o_custkey"
        )


def test_having_without_group_rejected(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT o_custkey FROM orders HAVING count(*) > 1")


def test_having_binds_aggregates(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT o_custkey, count(*) c FROM orders GROUP BY o_custkey "
        "HAVING sum(o_totalprice) > 1000"
    )
    # having introduced a second aggregate
    assert len(bound.aggregates) == 2
    assert bound.having is not None


def test_order_by_output_name(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT o_custkey, count(*) AS c FROM orders GROUP BY o_custkey ORDER BY c DESC"
    )
    assert bound.order_by == [("c", False)]


def test_order_by_plain_column_in_select(tpch_binder):
    bound = tpch_binder.bind_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey")
    assert bound.order_by == [("o_orderkey", True)]


def test_order_by_unknown_rejected(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT o_orderkey FROM orders ORDER BY o_totalprice")


def test_columns_needed_includes_filters_and_keys(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT sum(l_extendedprice) FROM lineitem, orders "
        "WHERE l_orderkey = o_orderkey AND o_totalprice > 5"
    )
    assert "o_totalprice" in bound.columns_needed("orders")
    assert "o_orderkey" in bound.columns_needed("orders")
    assert "l_extendedprice" in bound.columns_needed("lineitem")


def test_between_desugars_to_range(tpch_binder):
    bound = tpch_binder.bind_sql(
        "SELECT l_orderkey FROM lineitem WHERE l_quantity BETWEEN 5 AND 10"
    )
    assert len(bound.filters["lineitem"]) == 2


def test_distinct_with_aggregate_rejected(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT DISTINCT count(*) FROM orders")


def test_duplicate_output_names_rejected(tpch_binder):
    with pytest.raises(BindError):
        tpch_binder.bind_sql("SELECT o_orderkey AS x, o_custkey AS x FROM orders")


def test_ambiguous_column_rejected(tpch_db):
    # o_orderkey is unique, but add a query joining lineitem and partsupp
    # where 'ps_partkey' vs 'l_partkey' are distinct; construct ambiguity
    # via region/nation shared prefix instead: no shared names exist in the
    # TPC-H schema, so craft one with an alias-qualified check.
    binder = Binder(tpch_db.catalog)
    bound = binder.bind_sql(
        "SELECT n.n_name FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey"
    )
    assert bound.join_edges[0].left.table in ("nation", "region")
