import pytest

from repro.errors import ParseError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("SELECT select SeLeCt")
    assert all(t.is_keyword("select") for t in tokens[:-1])


def test_identifiers_lowercased():
    assert kinds("Lineitem")[0] == (TokenType.IDENT, "lineitem")


def test_numbers():
    assert kinds("1 2.5 0.75") == [
        (TokenType.NUMBER, "1"),
        (TokenType.NUMBER, "2.5"),
        (TokenType.NUMBER, "0.75"),
    ]


def test_qualified_name_not_decimal():
    assert kinds("t1.c2") == [
        (TokenType.IDENT, "t1"),
        (TokenType.SYMBOL, "."),
        (TokenType.IDENT, "c2"),
    ]


def test_string_literal_with_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].type is TokenType.STRING
    assert tokens[0].text == "it's"


def test_unterminated_string():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_multichar_symbols_greedy():
    assert [t for _, t in kinds("a <= b <> c >= d")] == ["a", "<=", "b", "<>", "c", ">=", "d"]


def test_line_comments_skipped():
    tokens = tokenize("select -- comment here\n 1")
    assert [t.text for t in tokens[:-1]] == ["select", "1"]


def test_unexpected_character():
    with pytest.raises(ParseError):
        tokenize("select @")


def test_eof_token_present():
    assert tokenize("")[-1].type is TokenType.EOF
