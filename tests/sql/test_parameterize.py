"""Tests for template parameterization (literal extraction).

The serving layer's two-level plan cache rests on two properties:

- normalization is whitespace/case/comment-insensitive but keeps
  literals distinct (the exact-match level);
- ``(template_key, constants)`` is a lossless factorization of the
  normalized stream, and re-binding the constants reproduces the
  original query's semantics (the skeleton level).
"""

import pytest

from repro.errors import ReproError
from repro.sql.parameterize import (
    PARAM,
    HashedKey,
    bind_constants,
    normalize_sql,
    parameterize_sql,
    render_sql,
)
from repro.sql.parser import parse, parse_parameterized
from repro.workloads.tpch_queries import instantiate, template_names


# --------------------------- normalization ---------------------------- #
def test_normalize_collapses_case_whitespace_comments():
    variants = [
        "SELECT a FROM t WHERE a < 5",
        "select A\n  from T\twhere a<5",
        "select a from t -- trailing comment\nwhere a < 5",
        "SELECT a -- c1\n-- c2\nFROM t WHERE a < 5",
    ]
    keys = {normalize_sql(sql) for sql in variants}
    assert len(keys) == 1


def test_normalize_keeps_literals_distinct():
    assert normalize_sql("SELECT a FROM t WHERE a < 5") != normalize_sql(
        "SELECT a FROM t WHERE a < 6"
    )
    assert normalize_sql("SELECT a FROM t WHERE s = 'X'") != normalize_sql(
        "SELECT a FROM t WHERE s = 'Y'"
    )


# ------------------------- literal extraction ------------------------- #
def test_extracts_numeric_and_string_literals_in_order():
    parameterized = parameterize_sql(
        "SELECT a FROM t WHERE s = 'hello' AND a BETWEEN 1 AND 2.5"
    )
    assert parameterized.constants == (
        ("STRING", "hello"),
        ("NUMBER", "1"),
        ("NUMBER", "2.5"),
    )
    assert parameterized.template_key.count(PARAM) == 3
    # Structural tokens keep their identity.
    assert ("KEYWORD", "select") in parameterized.template_key


def test_literal_varying_queries_share_a_template():
    a = parameterize_sql("SELECT a FROM t WHERE a < 5")
    b = parameterize_sql("select a from t where a < 99")
    assert a.template_key == b.template_key
    assert a.constants != b.constants
    assert a.normalized != b.normalized


def test_string_and_number_templates_differ_from_structure():
    # A literal's kind lives in the constants, not the template, so the
    # same shape with a string vs a number shares a template key.
    a = parameterize_sql("SELECT a FROM t WHERE a = 5")
    b = parameterize_sql("SELECT a FROM t WHERE a = 'x'")
    assert a.template_key == b.template_key
    assert a.constants[0][0] == "NUMBER"
    assert b.constants[0][0] == "STRING"


def test_bind_constants_is_inverse_of_extraction():
    for name in template_names():
        sql = instantiate(name, seed=7)
        parameterized = parameterize_sql(sql)
        rebound = bind_constants(
            parameterized.template_key, parameterized.constants
        )
        assert rebound == normalize_sql(sql)
        assert rebound == parameterized.normalized


def test_bind_constants_arity_mismatch_raises():
    parameterized = parameterize_sql("SELECT a FROM t WHERE a < 5")
    with pytest.raises(ReproError):
        bind_constants(parameterized.template_key, ())
    with pytest.raises(ReproError):
        bind_constants(
            parameterized.template_key,
            parameterized.constants + (("NUMBER", "1"),),
        )


# ------------------------------ round trip ---------------------------- #
@pytest.mark.parametrize("template", template_names())
def test_render_roundtrip_reproduces_semantics(template, big_binder):
    """Re-rendering extracted constants yields a query that binds to the
    same bound-query graph as the original text (property test over the
    whole template pool)."""
    for seed in (1, 5, 11):
        sql = instantiate(template, seed=seed)
        parameterized = parameterize_sql(sql)
        rendered = render_sql(
            parameterized.template_key, parameterized.constants
        )
        assert normalize_sql(rendered) == parameterized.normalized
        original = big_binder.bind_sql(sql)
        roundtrip = big_binder.bind_sql(rendered)
        assert [f.sql() for fs in original.filters.values() for f in fs] == [
            f.sql() for fs in roundtrip.filters.values() for f in fs
        ]
        assert original.table_names == roundtrip.table_names
        assert [e.sql() for e in original.select_exprs] == [
            e.sql() for e in roundtrip.select_exprs
        ]
        assert original.limit == roundtrip.limit


def test_string_literal_quotes_roundtrip():
    sql = "SELECT a FROM t WHERE s = 'it''s'"
    parameterized = parameterize_sql(sql)
    assert parameterized.constants == (("STRING", "it's"),)
    rendered = render_sql(parameterized.template_key, parameterized.constants)
    assert normalize_sql(rendered) == parameterized.normalized


# ------------------------- template-AST cache ------------------------- #
@pytest.mark.parametrize("template", template_names())
def test_parse_parameterized_matches_full_parse(template):
    """Substituting fresh constants into the cached template AST yields
    exactly the AST a full parse of the text produces."""
    for seed in (2, 3, 9):
        sql = instantiate(template, seed=seed)
        parameterized = parameterize_sql(sql)
        cached = parse_parameterized(
            parameterized.template_key, parameterized.constants
        )
        direct = parse(sql)
        assert str(cached.__dict__) == str(direct.__dict__)


def test_parse_parameterized_negated_date_matches_full_parse():
    """Regression: the negation fold drops the date flag; substitution
    must mirror that, or cache hit/miss changes the AST."""
    first = "SELECT a FROM t WHERE x IN ((-DATE '1996-02-02'))"
    second = "SELECT a FROM t WHERE x IN ((-DATE '1997-05-09'))"
    p1 = parameterize_sql(first)
    p2 = parameterize_sql(second)
    assert p1.template_key == p2.template_key
    parse_parameterized(p1.template_key, p1.constants)  # populate cache
    substituted = parse_parameterized(p2.template_key, p2.constants)
    assert str(substituted.__dict__) == str(parse(second).__dict__)


def test_parse_parameterized_substitutes_limit_and_dates():
    first = "SELECT a FROM t WHERE d >= DATE '1995-03-04' LIMIT 2"
    second = "SELECT a FROM t WHERE d >= DATE '1996-07-01' LIMIT 9"
    p1 = parameterize_sql(first)
    p2 = parameterize_sql(second)
    assert p1.template_key == p2.template_key
    parse_parameterized(p1.template_key, p1.constants)  # populate cache
    substituted = parse_parameterized(p2.template_key, p2.constants)
    assert str(substituted.__dict__) == str(parse(second).__dict__)
    assert substituted.limit == 9


def test_bind_parameterized_matches_bind_sql(big_binder):
    sql = instantiate("q5_local_supplier", seed=4)
    parameterized = parameterize_sql(sql)
    via_template = big_binder.bind_parameterized(
        parameterized.template_key, parameterized.constants, sql=sql
    )
    direct = big_binder.bind_sql(sql)
    assert via_template.table_names == direct.table_names
    assert [e.sql() for e in via_template.select_exprs] == [
        e.sql() for e in direct.select_exprs
    ]


# ------------------------------- keys --------------------------------- #
def test_hashed_key_equals_plain_tuple():
    key = HashedKey((("IDENT", "a"), ("NUMBER", "1")))
    assert key == (("IDENT", "a"), ("NUMBER", "1"))
    assert hash(key) == hash((("IDENT", "a"), ("NUMBER", "1")))
    assert hash(key) == hash(key)  # cached path
