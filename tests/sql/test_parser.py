import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AstBetween,
    AstBinary,
    AstColumn,
    AstFuncCall,
    AstInList,
    AstLiteral,
)
from repro.sql.parser import parse, parse_date


def test_minimal_select():
    stmt = parse("SELECT a FROM t")
    assert len(stmt.items) == 1
    assert stmt.tables[0].name == "t"
    assert stmt.where is None


def test_select_with_alias():
    stmt = parse("SELECT a AS x, b y FROM t")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"


def test_table_alias():
    stmt = parse("SELECT a FROM t1 x, t2 AS y")
    assert stmt.tables[0].alias == "x"
    assert stmt.tables[1].alias == "y"


def test_explicit_join():
    stmt = parse("SELECT a FROM t1 JOIN t2 ON t1.k = t2.k")
    assert len(stmt.joins) == 1
    assert isinstance(stmt.joins[0].condition, AstBinary)


def test_arithmetic_precedence():
    stmt = parse("SELECT 1 + 2 * 3 FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, AstBinary) and expr.op == "+"
    assert isinstance(expr.right, AstBinary) and expr.right.op == "*"


def test_and_or_precedence():
    stmt = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
    where = stmt.where
    assert isinstance(where, AstBinary) and where.op == "or"
    assert isinstance(where.right, AstBinary) and where.right.op == "and"


def test_between_and_not_between():
    stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b NOT BETWEEN 2 AND 3")
    left = stmt.where.left
    right = stmt.where.right
    assert isinstance(left, AstBetween) and not left.negated
    assert isinstance(right, AstBetween) and right.negated


def test_in_list():
    stmt = parse("SELECT a FROM t WHERE m IN ('x', 'y') AND n NOT IN (1, 2)")
    assert isinstance(stmt.where.left, AstInList)
    assert stmt.where.right.negated


def test_in_list_rejects_non_literals():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t WHERE m IN (a, b)")


def test_date_literal():
    stmt = parse("SELECT a FROM t WHERE d >= DATE '1995-01-01'")
    literal = stmt.where.right
    assert isinstance(literal, AstLiteral)
    assert literal.is_date
    assert literal.value == parse_date("1995-01-01")


def test_parse_date_epoch():
    assert parse_date("1970-01-01") == 0
    assert parse_date("1970-01-02") == 1
    with pytest.raises(ParseError):
        parse_date("not-a-date")


def test_count_star_and_distinct():
    stmt = parse("SELECT count(*), count(DISTINCT a), sum(b) FROM t")
    star, distinct, plain = (item.expr for item in stmt.items)
    assert isinstance(star, AstFuncCall) and star.star
    assert distinct.distinct
    assert not plain.distinct


def test_star_only_for_count():
    with pytest.raises(ParseError):
        parse("SELECT sum(*) FROM t")


def test_group_having_order_limit():
    stmt = parse(
        "SELECT a, count(*) c FROM t WHERE b > 0 GROUP BY a "
        "HAVING count(*) > 5 ORDER BY c DESC, a LIMIT 7"
    )
    assert [c.name for c in stmt.group_by] == ["a"]
    assert stmt.having is not None
    assert stmt.order_by[0].ascending is False
    assert stmt.order_by[1].ascending is True
    assert stmt.limit == 7


def test_group_by_expression_rejected():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t GROUP BY a + 1")


def test_unary_minus():
    stmt = parse("SELECT -a FROM t WHERE b < -5")
    assert stmt.items[0].expr.op == "-"


def test_nested_parens():
    stmt = parse("SELECT ((a + 1) * 2) FROM t")
    assert isinstance(stmt.items[0].expr, AstBinary)


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse("SELECT a FROM t extra nonsense ,")


def test_missing_from_rejected():
    with pytest.raises(ParseError):
        parse("SELECT a")


def test_semicolon_allowed():
    assert parse("SELECT a FROM t;").tables[0].name == "t"


def test_distinct_select():
    assert parse("SELECT DISTINCT a FROM t").distinct
