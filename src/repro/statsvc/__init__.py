"""Statistics Service (paper §4).

"A comprehensive and efficient Statistics Service is the foundation of
accurate workload predictions."  Collects query execution logs, computes
queryable workload summaries (file/attribute access counts, weighted
join graphs, resource usage), forecasts workloads per template, and
manages its own collection cost via sampling and hot/cold tiering.
"""

from repro.statsvc.logs import QueryLogStore, QueryRecord
from repro.statsvc.summaries import WorkloadSummary, build_summary
from repro.statsvc.join_graph import JoinGraph
from repro.statsvc.forecast import WorkloadForecaster, TemplateForecast
from repro.statsvc.profiler import OperatorProfile, attribute_machine_time
from repro.statsvc.sampling import StatsServiceCostModel, summary_error

__all__ = [
    "QueryRecord",
    "QueryLogStore",
    "WorkloadSummary",
    "build_summary",
    "JoinGraph",
    "WorkloadForecaster",
    "TemplateForecast",
    "OperatorProfile",
    "attribute_machine_time",
    "StatsServiceCostModel",
    "summary_error",
]
