"""Lightweight operator-level profiler (paper §4).

"The database must implement its own lightweight profiling tool that can
attribute the run-time resource measures to logical database tasks
easily."  Given a simulated execution and the plan's operator models, the
profiler attributes each pipeline's machine-seconds to its operators
proportionally to their modeled stream work — no Linux-perf-style
sampling, just accounting the engine can do for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.operator_models import OperatorModels
from repro.plan.pipelines import PipelineDag
from repro.sim.distsim import SimResult


@dataclass(frozen=True)
class OperatorProfile:
    """Machine-time attribution for one operator occurrence."""

    pipeline_id: int
    operator: str
    role: str
    machine_seconds: float
    share_of_pipeline: float


def attribute_machine_time(
    dag: PipelineDag,
    result: SimResult,
    models: OperatorModels,
    truth: dict[int, float] | None = None,
) -> list[OperatorProfile]:
    """Attribute observed machine time to operators.

    The observed wall time of each pipeline is split across its operators
    in proportion to their modeled stream times at the final DOP — the
    kind of attribution a push-based engine derives from per-operator
    counters without external profilers.
    """
    profiles: list[OperatorProfile] = []
    for pid, run in result.runs.items():
        pipeline = dag.pipeline(pid)
        dop = max(1, run.final_dop)
        timing = models.pipeline_timing(pipeline, dop, truth)
        weights = [max(t.stream_s, 1e-12) for t in timing.op_times]
        total_weight = sum(weights)
        machine_seconds = dop * run.duration
        for op, op_time, weight in zip(pipeline.ops, timing.op_times, weights):
            share = weight / total_weight
            profiles.append(
                OperatorProfile(
                    pipeline_id=pid,
                    operator=op.node.describe(),
                    role=op.role,
                    machine_seconds=machine_seconds * share,
                    share_of_pipeline=share,
                )
            )
    return profiles


def top_operators(
    profiles: list[OperatorProfile], top_k: int = 5
) -> list[OperatorProfile]:
    """The most expensive operator occurrences across the query."""
    return sorted(profiles, key=lambda p: p.machine_seconds, reverse=True)[:top_k]
