"""Queryable workload summaries (paper §4).

"The service computes in the background with these collected traces to
generate and maintain queryable workload summaries, including
file/attribute-access counts and weighted join graphs for training
workload-prediction models and run-time resource usage for modeling the
performance and monetary cost."
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.statsvc.join_graph import JoinGraph
from repro.statsvc.logs import QueryRecord
from repro.util.rng import derive_rng


@dataclass
class WorkloadSummary:
    """Aggregated view of a log window."""

    num_queries: int = 0
    window: tuple[float, float] = (0.0, 0.0)
    sample_rate: float = 1.0
    table_access: Counter = field(default_factory=Counter)
    attribute_access: Counter = field(default_factory=Counter)
    filter_access: Counter = field(default_factory=Counter)
    group_key_access: Counter = field(default_factory=Counter)
    template_counts: Counter = field(default_factory=Counter)
    join_graph: JoinGraph = field(default_factory=JoinGraph)
    total_machine_seconds: float = 0.0
    total_dollars: float = 0.0
    total_bytes_scanned: float = 0.0
    dollars_by_template: Counter = field(default_factory=Counter)

    @property
    def queries_per_hour(self) -> float:
        start, end = self.window
        span = max(end - start, 1e-9)
        return self.num_queries * 3600.0 / span

    def template_rate_per_hour(self, template: str) -> float:
        start, end = self.window
        span = max(end - start, 1e-9)
        return self.template_counts.get(template, 0) * 3600.0 / span

    def hottest_attributes(self, top_k: int = 10) -> list[tuple[str, int]]:
        return self.attribute_access.most_common(top_k)

    def hottest_filters(self, top_k: int = 10) -> list[tuple[str, int]]:
        return self.filter_access.most_common(top_k)


def build_summary(
    records: list[QueryRecord],
    *,
    sample_rate: float = 1.0,
    seed: int = 0,
) -> WorkloadSummary:
    """Summarize a record window, optionally from a uniform sample.

    Sampling is the §4 knob "to balance the generation cost and the
    comprehensiveness of the statistics": counts from a p-sample are
    scaled by 1/p, trading accuracy for a proportional cost reduction
    (see :mod:`repro.statsvc.sampling`).
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ReproError(f"sample rate must be in (0, 1], got {sample_rate}")
    summary = WorkloadSummary(sample_rate=sample_rate)
    if not records:
        return summary
    summary.window = (records[0].timestamp, records[-1].timestamp)
    summary.num_queries = len(records)

    if sample_rate < 1.0:
        rng = derive_rng(seed, "summary-sample")
        keep = rng.random(len(records)) < sample_rate
        sampled = [r for r, k in zip(records, keep) if k]
    else:
        sampled = list(records)

    scale = 1.0 / sample_rate
    weight = max(1, int(round(scale)))
    for record in sampled:
        summary.table_access.update({t: weight for t in record.tables})
        summary.attribute_access.update({c: weight for c in record.columns})
        summary.filter_access.update({c: weight for c in record.filter_columns})
        summary.group_key_access.update({c: weight for c in record.group_keys})
        summary.template_counts.update({record.template: weight})
        summary.join_graph.add_record(record, weight)
        summary.total_machine_seconds += record.machine_seconds * scale
        summary.total_dollars += record.dollars * scale
        summary.total_bytes_scanned += record.bytes_scanned * scale
        summary.dollars_by_template.update({record.template: record.dollars * scale})
    return summary
