"""Query execution logs: the Statistics Service's ground truth.

"For each database instance, the Statistics Service collects the query
execution logs from all the tenants to form the 'ground truth' for
understanding workload behaviors."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import ReproError


@dataclass(frozen=True)
class QueryRecord:
    """One executed query's log entry."""

    query_id: int
    timestamp: float
    sql: str
    template: str  # template family name, or "adhoc"
    tables: tuple[str, ...]
    columns: tuple[str, ...]  # qualified "table.column" names accessed
    join_edges: tuple[tuple[str, str], ...]  # ("t.col", "t.col") pairs
    group_keys: tuple[str, ...] = ()
    filter_columns: tuple[str, ...] = ()
    aggregate_sqls: tuple[str, ...] = ()
    latency_s: float = 0.0
    machine_seconds: float = 0.0
    dollars: float = 0.0
    bytes_scanned: float = 0.0
    sla_seconds: float | None = None
    tenant: str = "default"
    #: Exact drill-down apportionment of this query's spend:
    #: ``(pipeline, operator, ledger_units)`` triples whose integral
    #: units sum bitwise to ``to_ledger_units(dollars)`` (largest
    #: remainder, computed once at serving time).  Trailing default
    #: keeps pre-observability checkpoints loadable.
    cost_breakdown: tuple = ()

    @property
    def sla_met(self) -> bool | None:
        if self.sla_seconds is None:
            return None
        return self.latency_s <= self.sla_seconds


class QueryLogStore:
    """Append-only in-memory log with time-window queries."""

    def __init__(self) -> None:
        self._records: list[QueryRecord] = []
        self._ids = itertools.count(1)

    def next_query_id(self) -> int:
        return next(self._ids)

    def append(self, record: QueryRecord) -> None:
        if self._records and record.timestamp < self._records[-1].timestamp:
            raise ReproError(
                "log records must be appended in timestamp order "
                f"({record.timestamp} < {self._records[-1].timestamp})"
            )
        self._records.append(record)

    @property
    def last_query_id(self) -> int:
        """The id of the newest record (0 when empty)."""
        return self._records[-1].query_id if self._records else 0

    def restore(self, records: Iterable[QueryRecord]) -> None:
        """Replace the log wholesale from a recovery checkpoint.

        Crash-recovery only (:mod:`repro.core.recovery`): the records
        come from a checkpoint of this same store, so append order and
        id assignment are already consistent.  Re-seeds the id counter
        so post-recovery serving continues gap-free.
        """
        self._records = list(records)
        self.restore_ids()

    def restore_ids(self) -> None:
        """Re-seed the query-id counter to follow the newest record —
        ids stay sequential and gap-free across a crash (an id handed
        out by the dead process for a never-journaled record is simply
        re-issued)."""
        self._ids = itertools.count(self.last_query_id + 1)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def window(self, start: float, end: float) -> list[QueryRecord]:
        """Records with ``start <= timestamp < end``."""
        return [r for r in self._records if start <= r.timestamp < end]

    def tail(self, count: int) -> list[QueryRecord]:
        """The most recent ``count`` records (all of them when fewer).

        O(count), not O(log): consumers that recompute over recent
        behavior on a serving path (e.g. the governance layer's forecast
        refresh) must not scale with total history.
        """
        if count < 1:
            return []
        return self._records[-count:]

    def since(self, start: int) -> list[QueryRecord]:
        """Records from append index ``start`` onward (O(result), not
        O(log)) — lets the cost collector fold incrementally."""
        return self._records[start:]

    def by_template(self) -> dict[str, list[QueryRecord]]:
        grouped: dict[str, list[QueryRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.template, []).append(record)
        return grouped

    def tenant_counts(
        self, templates: Iterable[str] | None = None
    ) -> dict[str, int]:
        """Logged-query counts per tenant, optionally restricted to the
        given template families.

        The tuning layer uses this to attribute background-compute spend
        to the tenants whose traffic motivated an action.
        """
        return _tenant_counts(self, templates)

    def template_counts(self) -> dict[str, int]:
        """Logged-query counts per template family.

        The raw-arrival complement of the forecaster's rates: cache
        warming uses it to break ranking ties when the forecast has not
        seen a family yet.
        """
        return _template_counts(self)

    @property
    def total_dollars(self) -> float:
        return sum(r.dollars for r in self._records)

    @property
    def horizon(self) -> tuple[float, float]:
        """(first, last) record timestamps; (0, 0) when empty."""
        if not self._records:
            return (0.0, 0.0)
        return (self._records[0].timestamp, self._records[-1].timestamp)

    def for_tenant(self, tenant: str) -> "TenantLogView":
        """An isolated, read-only view of this store for one tenant."""
        return TenantLogView(self, tenant)


class TenantLogView:
    """Read-only per-tenant projection of a shared :class:`QueryLogStore`.

    The Statistics Service keeps one ground-truth log per warehouse
    ("collects the query execution logs from all the tenants"); each
    :class:`~repro.core.service.Session` sees only its tenant's records
    through this view.  It mirrors the store's read API so per-tenant
    analysis (forecasting, accounting) runs unchanged over a slice.
    """

    def __init__(self, store: QueryLogStore, tenant: str) -> None:
        self._store = store
        self.tenant = tenant

    def __iter__(self) -> Iterator[QueryRecord]:
        return (r for r in self._store if r.tenant == self.tenant)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def window(self, start: float, end: float) -> list[QueryRecord]:
        """This tenant's records with ``start <= timestamp < end``."""
        return [r for r in self._store.window(start, end) if r.tenant == self.tenant]

    def by_template(self) -> dict[str, list[QueryRecord]]:
        grouped: dict[str, list[QueryRecord]] = {}
        for record in self:
            grouped.setdefault(record.template, []).append(record)
        return grouped

    def tenant_counts(
        self, templates: Iterable[str] | None = None
    ) -> dict[str, int]:
        """Per-tenant counts over this view (at most one key: the tenant)."""
        return _tenant_counts(self, templates)

    def template_counts(self) -> dict[str, int]:
        """This tenant's logged-query counts per template family."""
        return _template_counts(self)

    @property
    def total_dollars(self) -> float:
        return sum(r.dollars for r in self)

    @property
    def horizon(self) -> tuple[float, float]:
        """(first, last) record timestamps of this tenant; (0, 0) when empty."""
        timestamps = [r.timestamp for r in self]
        if not timestamps:
            return (0.0, 0.0)
        return (timestamps[0], timestamps[-1])


def _template_counts(records: Iterable[QueryRecord]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for record in records:
        counts[record.template] = counts.get(record.template, 0) + 1
    return counts


def _tenant_counts(
    records: Iterable[QueryRecord], templates: Iterable[str] | None
) -> dict[str, int]:
    wanted = set(templates) if templates is not None else None
    counts: dict[str, int] = {}
    for record in records:
        if wanted is not None and record.template not in wanted:
            continue
        counts[record.tenant] = counts.get(record.tenant, 0) + 1
    return counts
