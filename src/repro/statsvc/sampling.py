"""Statistics Service cost/accuracy trade-off (paper §4).

"The Statistics Service itself must be cost-efficient as well.  This
requires new algorithms to balance the generation cost and the
comprehensiveness of the statistics (e.g., by varying sampling rates).
The service could identify the hot and cold statistics and design
different data structures on tiered storage."

This module prices the service (per-record processing cost + tiered
summary storage) and measures summary error against the full-rate
baseline, so experiment E10 can sweep sampling rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.statsvc.summaries import WorkloadSummary
from repro.util.units import GB, HOURS_PER_MONTH


@dataclass(frozen=True)
class StatsServiceCostModel:
    """Dollar model for running the Statistics Service itself."""

    dollars_per_processed_record: float = 2e-6
    hot_storage_gb_month: float = 0.25  # SSD-backed, queryable
    cold_storage_gb_month: float = 0.023  # object storage
    summary_bytes_per_attribute: float = 64.0
    summary_bytes_per_edge: float = 96.0
    hot_fraction_default: float = 0.2

    def processing_dollars(self, records_seen: int, sample_rate: float) -> float:
        """Cost of ingesting a log window at the given sampling rate."""
        return records_seen * sample_rate * self.dollars_per_processed_record

    def summary_bytes(self, summary: WorkloadSummary) -> float:
        attrs = len(summary.attribute_access) + len(summary.filter_access)
        edges = summary.join_graph.graph.number_of_edges()
        return (
            attrs * self.summary_bytes_per_attribute
            + edges * self.summary_bytes_per_edge
        )

    def storage_dollars_per_hour(
        self, summary: WorkloadSummary, hot_fraction: float | None = None
    ) -> float:
        """Tiered storage cost: hot share on SSD, the rest on cold store."""
        hot = self.hot_fraction_default if hot_fraction is None else hot_fraction
        size_gb = self.summary_bytes(summary) / GB
        per_month = (
            size_gb * hot * self.hot_storage_gb_month
            + size_gb * (1.0 - hot) * self.cold_storage_gb_month
        )
        return per_month / HOURS_PER_MONTH

    def total_dollars_per_hour(
        self,
        summary: WorkloadSummary,
        records_per_hour: float,
        *,
        hot_fraction: float | None = None,
    ) -> float:
        processing = self.processing_dollars(
            int(records_per_hour), summary.sample_rate
        )
        return processing + self.storage_dollars_per_hour(summary, hot_fraction)


def _counter_relative_error(reference, estimate) -> float:
    """Mean relative error over the reference counter's keys."""
    if not reference:
        return 0.0
    total = 0.0
    for key, ref_value in reference.items():
        est_value = estimate.get(key, 0)
        total += abs(est_value - ref_value) / max(ref_value, 1)
    return total / len(reference)


def summary_error(reference: WorkloadSummary, estimate: WorkloadSummary) -> dict[str, float]:
    """Error of a sampled summary vs. the full-rate reference.

    Returns mean relative errors for the access-count surfaces and the
    join-graph edge weights — the accuracy side of the E10 trade-off.
    """
    ref_edges = {
        (e.left, e.right): e.count for e in reference.join_graph.edges()
    }
    est_edges = {
        (e.left, e.right): e.count for e in estimate.join_graph.edges()
    }
    return {
        "attribute_access": _counter_relative_error(
            reference.attribute_access, estimate.attribute_access
        ),
        "filter_access": _counter_relative_error(
            reference.filter_access, estimate.filter_access
        ),
        "template_counts": _counter_relative_error(
            reference.template_counts, estimate.template_counts
        ),
        "join_edges": _counter_relative_error(ref_edges, est_edges),
    }
