"""Weighted join graphs (paper §4, footnote 3).

"A graph where the vertices are table attributes and the weights on the
edges indicate how often the attributes are joined."  The auto-tuning
advisor mines this graph for materialized-view candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.statsvc.logs import QueryRecord


@dataclass(frozen=True)
class JoinEdgeStat:
    """One attribute-pair edge with its observed frequency."""

    left: str  # "table.column"
    right: str
    count: int
    total_dollars: float


class JoinGraph:
    """Attribute-level weighted join graph over a log window."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    def add_record(self, record: QueryRecord, weight: int = 1) -> None:
        for left, right in record.join_edges:
            a, b = sorted((left, right))
            if self.graph.has_edge(a, b):
                self.graph[a][b]["count"] += weight
                self.graph[a][b]["dollars"] += record.dollars * weight
            else:
                self.graph.add_edge(a, b, count=weight, dollars=record.dollars * weight)

    @classmethod
    def from_records(
        cls, records: list[QueryRecord], weight: int = 1
    ) -> "JoinGraph":
        graph = cls()
        for record in records:
            graph.add_record(record, weight)
        return graph

    # ------------------------------------------------------------------ #
    # Queries over the graph
    # ------------------------------------------------------------------ #
    def edges(self) -> list[JoinEdgeStat]:
        return [
            JoinEdgeStat(left=a, right=b, count=data["count"], total_dollars=data["dollars"])
            for a, b, data in self.graph.edges(data=True)
        ]

    def hottest_edges(self, top_k: int = 10) -> list[JoinEdgeStat]:
        return sorted(self.edges(), key=lambda e: e.count, reverse=True)[:top_k]

    def edge_count(self, left: str, right: str) -> int:
        a, b = sorted((left, right))
        if self.graph.has_edge(a, b):
            return int(self.graph[a][b]["count"])
        return 0

    def tables(self) -> set[str]:
        return {attr.split(".")[0] for attr in self.graph.nodes}

    def connected_table_groups(self) -> list[set[str]]:
        """Table sets connected by joins (candidate MV scopes)."""
        groups: list[set[str]] = []
        for component in nx.connected_components(self.graph):
            groups.append({attr.split(".")[0] for attr in component})
        return groups
