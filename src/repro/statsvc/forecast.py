"""Workload forecasting from the Statistics Service's logs (paper §4).

Predicting future workloads is what turns a one-time query cost into a
$/hour rate the What-If Service can weigh against maintenance costs.
The forecaster bins each template's arrivals, smooths rates with an
exponentially weighted moving average, and detects periodic (scheduled
report) templates via autocorrelation — deliberately simple, explainable
models in the spirit of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.statsvc.logs import QueryLogStore, QueryRecord


@dataclass(frozen=True)
class TemplateForecast:
    """Forecast for one template family."""

    template: str
    rate_per_hour: float
    periodic: bool
    period_s: float | None
    observed_count: int
    avg_dollars: float
    avg_machine_seconds: float

    @property
    def dollars_per_hour(self) -> float:
        """Projected spend rate for this family."""
        return self.rate_per_hour * self.avg_dollars


class WorkloadForecaster:
    """Per-template arrival-rate and periodicity estimation."""

    def __init__(
        self,
        *,
        bin_seconds: float = 600.0,
        ewma_alpha: float = 0.3,
        min_observations: int = 3,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ReproError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.bin_seconds = bin_seconds
        self.ewma_alpha = ewma_alpha
        self.min_observations = min_observations

    # ------------------------------------------------------------------ #
    def forecast(self, store: QueryLogStore) -> dict[str, TemplateForecast]:
        """Per-template forecasts over a log store (or any object with
        the store's read API, e.g. a per-tenant
        :class:`~repro.statsvc.logs.TenantLogView`)."""
        return {
            template: self.forecast_template(template, records, store.horizon)
            for template, records in store.by_template().items()
        }

    def rates(self, store: QueryLogStore) -> dict[str, float]:
        """Forecast arrivals/hour per template family.

        The thin per-family view of :meth:`forecast` that feeds resource
        governance — cost-aware cache retention and cache warming rank
        templates by these rates, the same numbers that gate
        :class:`~repro.tuning.service.TuningPolicy` auto-apply.
        """
        return {
            template: forecast.rate_per_hour
            for template, forecast in self.forecast(store).items()
        }

    def forecast_template(
        self,
        template: str,
        records: list[QueryRecord],
        horizon: tuple[float, float],
    ) -> TemplateForecast:
        if not records:
            raise ReproError(f"no records for template {template!r}")
        start, end = horizon
        span = max(end - start, self.bin_seconds)
        times = np.array([r.timestamp for r in records])

        rate = self._ewma_rate(times, start, span)
        periodic, period = self._detect_period(times, start, span)
        if periodic and period is not None:
            rate = 3600.0 / period  # scheduled reports: one per period

        avg_dollars = float(np.mean([r.dollars for r in records]))
        avg_machine = float(np.mean([r.machine_seconds for r in records]))
        return TemplateForecast(
            template=template,
            rate_per_hour=rate,
            periodic=periodic,
            period_s=period,
            observed_count=len(records),
            avg_dollars=avg_dollars,
            avg_machine_seconds=avg_machine,
        )

    # ------------------------------------------------------------------ #
    def _ewma_rate(self, times: np.ndarray, start: float, span: float) -> float:
        """EWMA of per-bin arrival counts, scaled to per-hour."""
        bins = max(1, int(np.ceil(span / self.bin_seconds)))
        counts = np.zeros(bins)
        indices = np.clip(
            ((times - start) / self.bin_seconds).astype(int), 0, bins - 1
        )
        np.add.at(counts, indices, 1)
        smoothed = counts[0]
        for count in counts[1:]:
            smoothed = self.ewma_alpha * count + (1 - self.ewma_alpha) * smoothed
        return float(smoothed) * 3600.0 / self.bin_seconds

    def _detect_period(
        self, times: np.ndarray, start: float, span: float
    ) -> tuple[bool, float | None]:
        """Autocorrelation-based periodicity detection on arrival gaps.

        Scheduled templates produce near-constant inter-arrival gaps; we
        call a template periodic when the gap coefficient-of-variation is
        small and we have enough observations.
        """
        if times.size < max(self.min_observations, 3):
            return (False, None)
        gaps = np.diff(np.sort(times))
        gaps = gaps[gaps > 0]
        if gaps.size < 2:
            return (False, None)
        mean_gap = float(gaps.mean())
        cv = float(gaps.std() / mean_gap) if mean_gap > 0 else float("inf")
        if cv < 0.25:
            return (True, mean_gap)
        return (False, None)
