"""repro: a cost-intelligent cloud data warehouse.

Reproduction of Zhang, Liu, Yan — *Cost-Intelligent Data Analytics in
the Cloud* (CIDR 2024).  The package implements the paper's architecture
end to end: a SQL frontend and classical DAG-planning optimizer, the
per-operator cost estimator with a query-level simulator (§3.1), the
bi-objective optimizer with per-pipeline DOP planning and bushy-variant
exploration (§3.2), a DOP monitor with pipeline-granular dynamic
resizing over a discrete-event cluster simulator (§3.3), and the
Statistics/What-If services for cost-oriented auto-tuning (§4).

Serving goes through per-tenant sessions: build a frozen
:class:`QueryRequest`, submit it, and get a :class:`QueryHandle` whose
lifecycle runs ``QUEUED -> BOUND -> PLANNED -> SIMULATED -> DONE`` with
per-stage timings; ``result()`` yields the :class:`QueryOutcome` (plan,
latency, auditable dollars).  Batches plan concurrently via the
:class:`ServingScheduler`, bit-identical to sequential submission.

Resource governance makes both of the serving stack's resource
decisions cost-driven: plan-cache retention is a pluggable
:class:`RetentionPolicy` (default :class:`LruPolicy`; the
:class:`CostAwarePolicy` keeps templates alive by forecast frequency x
re-optimization cost saved, and ``warehouse.warm_cache`` pre-plans the
hottest forecast templates), and per-tenant :class:`TenantBudget` dollar
ceilings are enforced by an :class:`AdmissionController` whose verdicts
escalate admit -> throttle -> defer -> deny (a denial is a typed
:class:`AdmissionDeniedError` and a ``DENIED`` handle state, never a
failure of other tenants' work).

Auto-tuning mirrors that model: ``warehouse.tuning`` is a persistent
:class:`TuningService` whose ``propose()`` returns typed
:class:`Recommendation`\\ s (``PROPOSED -> ACCEPTED -> APPLYING ->
APPLIED / REJECTED / ROLLED_BACK / FAILED``) carrying their What-If
dollar reports; ``apply()`` runs on background compute with spend
metered per tenant, and ``rollback()`` restores bit-identical plans and
catalog state.  A :class:`TuningPolicy` drives recurring cycles from the
serving layer.

Failure-domain hardening: a :class:`ResiliencePolicy` on the warehouse
gives every request bounded, budget-aware retries with deterministic
seeded backoff (:class:`RetryPolicy`; retry dollars land on the tenant's
bill), per-request/per-stage deadlines (an ``optimize`` timeout degrades
to the heuristic default plan — ``outcome.degraded`` — instead of
failing the batch), and :class:`CircuitBreaker`\\ s around the
Statistics Service and background tuning.  Faults are injectable
deterministically via ``warehouse.inject_faults`` (see
:mod:`repro.testing.faults`) and observable via
``warehouse.describe_health()``.

Quickstart::

    from repro import (
        CostIntelligentWarehouse, QueryRequest, load_tpch, sla_constraint,
    )

    db = load_tpch(scale_factor=0.01)
    warehouse = CostIntelligentWarehouse(database=db)
    session = warehouse.session(tenant="analyst", constraint=sla_constraint(10.0))
    handle = session.submit(QueryRequest(
        sql="SELECT count(*) AS big FROM orders WHERE o_totalprice > 300000",
        execute_locally=True,
    ))
    print(handle.result().describe())
    print(f"{session.tenant} spent ${session.dollars_spent:.4f}")
"""

from repro.catalog import Catalog
from repro.core import (
    AdmissionController,
    AdmissionVerdict,
    BiObjectiveOptimizer,
    BreakerState,
    CircuitBreaker,
    CostAwarePolicy,
    CostIntelligentWarehouse,
    Deadline,
    LruPolicy,
    QueryHandle,
    QueryOutcome,
    QueryRequest,
    QueryState,
    ResiliencePolicy,
    RetentionPolicy,
    RetryPolicy,
    ServingScheduler,
    Session,
    TenantBudget,
)
from repro.errors import (
    AdmissionDeniedError,
    DeadlineExceededError,
    RetryExhaustedError,
    TransientError,
)
from repro.cost import CostEstimator, HardwareCalibration
from repro.dop import DopPlanner, budget_constraint, sla_constraint
from repro.engine import Database, LocalExecutor
from repro.sim import DistributedSimulator, SimConfig
from repro.sql import Binder
from repro.tuning import (
    MaterializeView,
    Recluster,
    Recommendation,
    RecommendationState,
    ResizeWarehouse,
    TuningAction,
    TuningPolicy,
    TuningReport,
    TuningService,
)
from repro.workloads import load_tpch
from repro.workloads.tpch_stats import synthetic_tpch_catalog

__version__ = "1.3.0"

__all__ = [
    "Catalog",
    "BiObjectiveOptimizer",
    "CostIntelligentWarehouse",
    "QueryHandle",
    "QueryOutcome",
    "QueryRequest",
    "QueryState",
    "ServingScheduler",
    "Session",
    "AdmissionController",
    "AdmissionVerdict",
    "AdmissionDeniedError",
    "TenantBudget",
    "RetentionPolicy",
    "LruPolicy",
    "CostAwarePolicy",
    "ResiliencePolicy",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "Deadline",
    "TransientError",
    "DeadlineExceededError",
    "RetryExhaustedError",
    "CostEstimator",
    "HardwareCalibration",
    "DopPlanner",
    "sla_constraint",
    "budget_constraint",
    "Database",
    "LocalExecutor",
    "DistributedSimulator",
    "SimConfig",
    "Binder",
    "TuningAction",
    "MaterializeView",
    "Recluster",
    "ResizeWarehouse",
    "Recommendation",
    "RecommendationState",
    "TuningPolicy",
    "TuningReport",
    "TuningService",
    "load_tpch",
    "synthetic_tpch_catalog",
    "__version__",
]
