"""Crash recovery: checkpoint restore + ordered journal replay.

``CostIntelligentWarehouse.recover(journal, ...)`` builds a fresh
warehouse over the surviving catalog/database (durable storage shared
with the crashed process) and calls :func:`recover_warehouse`, which

1. restores the latest :class:`~repro.core.journal.Checkpoint` (query
   log, clock, per-tenant bills in integral ledger units, admission
   verdict counters, the applied-MV registry, durable tuning
   bookkeeping, the background ledger, the next recommendation id);
2. replays every journal record after the checkpoint in LSN order
   (redo: each record was journaled *before* the state it describes
   mutated, so replay is always sufficient), skipping any entry at or
   below the restored LSN — replay is idempotent, so a crash *during*
   recovery just recovers again;
3. resolves in-doubt tuning records: an apply whose
   :class:`~repro.core.journal.TuningCommit` never landed is rolled
   back via the journaled :class:`~repro.core.journal.UndoSnapshot`
   (idempotent — safe whether the catalog mutation finished or not) and
   closed as ``failed``; a rollback whose commit never landed is
   completed *forward* (the reversal was requested — finish it, meter
   it).  No record is ever left ``applying`` or ``rolling_back``.
4. re-derives the advisor's representative template bindings from the
   recovered log (serving caches themselves restart cold — they are
   pure derived state; ``warm_cache`` re-warms them from the recovered
   forecast).

In-doubt *roll-back* resolution is deliberately unbilled: the apply
never committed, so the tenant sees no charge and the background ledger
no entry — exactly-once billing against an uncrashed run.  In-doubt
*roll-forward* completion meters the rollback dollars exactly as the
live path would have.

One documented loss: clock advances made at admission time for queries
that never finalized die with the process (their timestamps were never
journaled).  The log's append-order clamp makes this monotone-safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.journal import (
    AdmissionDecision,
    Checkpoint,
    CostSnapshotTaken,
    JournalEntry,
    QueryServed,
    RetryCharge,
    RollbackCommit,
    RollbackIntent,
    TuningCommit,
    TuningFailed,
    TuningIntent,
    WriteAheadJournal,
    shares_dict,
)
from repro.errors import RecoveryError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.warehouse import CostIntelligentWarehouse


@dataclass
class RecoveryReport:
    """What one recovery pass restored and resolved."""

    checkpoint_id: int | None = None
    records_replayed: int = 0
    in_doubt_forward: int = 0
    in_doubt_back: int = 0

    def describe(self) -> str:
        return (
            f"recovery: checkpoint {self.checkpoint_id}, "
            f"{self.records_replayed} records replayed, in-doubt "
            f"{self.in_doubt_forward} forward / {self.in_doubt_back} back"
        )


def recover_warehouse(
    warehouse: "CostIntelligentWarehouse", journal: WriteAheadJournal
) -> RecoveryReport:
    """Restore ``warehouse`` (which must be fresh) from ``journal``.

    The warehouse must have been constructed over the *same* catalog /
    database objects the crashed process was mutating; the journal is
    not attached here (the caller attaches it after recovery so replay
    itself journals nothing).
    """
    if warehouse.journal is not None:
        raise RecoveryError(
            "recover onto a warehouse without an attached journal "
            "(attach it after recovery)"
        )
    if len(warehouse.logs) or warehouse.billing or warehouse._durable_tuning:
        raise RecoveryError(
            "recovery needs a fresh warehouse: logs, billing, or tuning "
            "state already present"
        )
    report = RecoveryReport()
    checkpoint_entry = journal.last_checkpoint()
    after_lsn = 0
    if checkpoint_entry is not None:
        assert isinstance(checkpoint_entry.record, Checkpoint)
        _restore_checkpoint(warehouse, checkpoint_entry.record)
        report.checkpoint_id = checkpoint_entry.record.checkpoint_id
        after_lsn = checkpoint_entry.lsn
    warehouse._applied_lsn = after_lsn

    for entry in journal.entries(after_lsn=after_lsn):
        if apply_entry(warehouse, entry):
            report.records_replayed += 1

    _resolve_in_doubt(warehouse, report)
    _advance_ids(warehouse)
    _rebuild_template_bindings(warehouse)
    return report


# --------------------------------------------------------------------- #
# Checkpoint restore
# --------------------------------------------------------------------- #
def _restore_checkpoint(
    warehouse: "CostIntelligentWarehouse", checkpoint: Checkpoint
) -> None:
    from repro.core.service import TenantBill

    state = checkpoint.state
    warehouse.logs.restore(state.records)
    warehouse.clock = state.clock
    warehouse.billing = {
        snapshot[0]: TenantBill.from_ledger_snapshot(snapshot)
        for snapshot in state.bills
    }
    warehouse.admission.restore_counts(
        {tenant: dict(counts) for tenant, counts in state.verdicts}
    )
    warehouse._applied_mvs = {
        candidate.name: candidate for candidate in state.applied_mvs
    }
    warehouse._durable_tuning = {
        durable.rec_id: durable.copy() for durable in state.durable_tuning
    }
    if state.ledger or state.next_rec_id > 1:
        service = warehouse.tuning
        service.background.ledger.extend(state.ledger)
        service._next_id = max(service._next_id, state.next_rec_id)
    # Trailing-default field: checkpoints written before the
    # observability subsystem carry no cost history.
    warehouse.cost_history.restore_state(getattr(state, "cost_history", ()))


# --------------------------------------------------------------------- #
# Replay
# --------------------------------------------------------------------- #
def apply_entry(
    warehouse: "CostIntelligentWarehouse", entry: JournalEntry
) -> bool:
    """Apply one journal entry's state transition; False if skipped.

    Idempotent at the LSN level: entries at or below the warehouse's
    ``_applied_lsn`` watermark are already reflected in memory (from the
    checkpoint or an earlier replay pass) and are skipped, so
    re-applying a record after a crash-during-replay never double-logs
    or double-bills.
    """
    if entry.lsn <= warehouse._applied_lsn:
        return False
    record = entry.record
    warehouse._applied_lsn = entry.lsn
    if isinstance(record, Checkpoint):
        # Only the *latest* checkpoint is restored; an older one in the
        # tail carries state the replayed records already rebuild.
        return False
    warehouse._note_durable(record)
    if isinstance(record, QueryServed):
        served = record.record
        if len(warehouse.logs) and served.query_id <= warehouse.logs.last_query_id:
            return False  # already present (defensive idempotence)
        warehouse.clock = max(warehouse.clock, served.timestamp)
        warehouse._apply_served(served)
        warehouse._account(served)
        return True
    if isinstance(record, AdmissionDecision):
        warehouse.admission.restore_verdict(record.tenant, record.verdict)
        return True
    if isinstance(record, RetryCharge):
        warehouse._bill_for(record.tenant).charge_retry(record.dollars)
        return True
    if isinstance(record, CostSnapshotTaken):
        # Write-ahead: the snapshot was journaled before the in-memory
        # history append, so replay (idempotent by seq) redoes the
        # append a crash between the two lost.
        warehouse.cost_history.apply_record(record)
        return True
    if isinstance(record, (TuningIntent, TuningFailed, RollbackIntent)):
        return True  # durable bookkeeping only (done above)
    if isinstance(record, TuningCommit):
        _replay_tuning_commit(warehouse, record)
        return True
    if isinstance(record, RollbackCommit):
        _replay_rollback_commit(warehouse, record)
        return True
    raise RecoveryError(
        f"no replay handler for journal record {type(record).__name__!r}"
    )


def _replay_tuning_commit(
    warehouse: "CostIntelligentWarehouse", record: TuningCommit
) -> None:
    if record.kind == "materialized-view" and record.candidate is not None:
        warehouse._register_applied_mv(record.candidate)
    _meter_shares(warehouse, record.dollars, record.tenant_shares)
    _ledger_append(
        warehouse, record.name, record.kind, record.dollars, record.physical
    )


def _replay_rollback_commit(
    warehouse: "CostIntelligentWarehouse", record: RollbackCommit
) -> None:
    if record.kind == "materialized-view" and record.candidate is not None:
        warehouse._unregister_applied_mv(record.candidate)
    _meter_shares(warehouse, record.dollars, record.tenant_shares)
    _ledger_append(
        warehouse,
        record.name,
        f"rollback-{record.kind}",
        record.dollars,
        record.physical,
    )


def _meter_shares(
    warehouse: "CostIntelligentWarehouse",
    dollars: float,
    tenant_shares: tuple[tuple[str, float], ...],
) -> None:
    """Mirror of ``TuningService._meter`` for replay (same share split,
    same per-tenant rounding, so recovered bills are bit-identical)."""
    if dollars <= 0.0:
        return
    shares = shares_dict(tenant_shares) or {"default": 1.0}
    for tenant, share in shares.items():
        warehouse._bill_for(tenant).charge_background(dollars * share)


def _ledger_append(
    warehouse: "CostIntelligentWarehouse",
    name: str,
    kind: str,
    dollars: float,
    physical: bool,
) -> None:
    from repro.tuning.background import LedgerEntry

    warehouse.tuning.background.ledger.append(
        LedgerEntry(
            action_name=name,
            kind=kind,
            dollars=dollars,
            applied_physically=physical,
        )
    )


# --------------------------------------------------------------------- #
# In-doubt resolution
# --------------------------------------------------------------------- #
def _resolve_in_doubt(
    warehouse: "CostIntelligentWarehouse", report: RecoveryReport
) -> None:
    for durable in warehouse._durable_tuning.values():
        if durable.state == "applying":
            # The commit never landed: the apply is void.  Undo the
            # (possibly partial) catalog mutation via the journaled
            # snapshot — idempotent, so "crashed before mutating" and
            # "crashed after mutating" both land on the prior state.
            # Nothing is billed: the tenant never got the action.
            if durable.undo is None:
                raise RecoveryError(
                    f"in-doubt apply #{durable.rec_id} ({durable.name}) "
                    "journaled no undo snapshot"
                )
            durable.undo.apply(warehouse.database, warehouse.catalog)
            durable.state = "failed"
            durable.resolution = "back"
            report.in_doubt_back += 1
        elif durable.state == "rolling_back":
            # The rollback was requested and its undo snapshot is
            # durable: complete it forward, with the same metering and
            # ledger entry the live path would have produced.
            if durable.undo is not None:
                durable.undo.apply(warehouse.database, warehouse.catalog)
            if durable.kind == "materialized-view":
                warehouse._applied_mvs.pop(durable.name, None)
            _meter_shares(warehouse, durable.dollars, durable.tenant_shares)
            _ledger_append(
                warehouse,
                durable.name,
                f"rollback-{durable.kind}",
                durable.dollars,
                durable.physical,
            )
            durable.state = "rolled_back"
            durable.resolution = "forward"
            report.in_doubt_forward += 1


# --------------------------------------------------------------------- #
# Derived state
# --------------------------------------------------------------------- #
def _advance_ids(warehouse: "CostIntelligentWarehouse") -> None:
    warehouse.logs.restore_ids()
    if warehouse._durable_tuning:
        next_id = max(warehouse._durable_tuning) + 1
        service = warehouse.tuning
        service._next_id = max(service._next_id, next_id)


def _rebuild_template_bindings(warehouse: "CostIntelligentWarehouse") -> None:
    """Re-derive the advisor's representative bound query per template
    family from the recovered log (the last served instance of each),
    bound under the *current* catalog version — the same bindings
    continued serving would remember.  Best-effort: a family whose SQL
    no longer binds (out-of-band schema change) is skipped."""
    for template, records in warehouse.logs.by_template().items():
        sql = records[-1].sql
        try:
            bound = warehouse._maybe_rewrite_mv(warehouse.binder.bind_sql(sql))
        except ReproError:
            continue
        warehouse._remember_template(template, bound)
