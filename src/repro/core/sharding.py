"""Process-sharded planner serving: warm worker pools that scale with cores.

The threaded :class:`~repro.core.service.ServingScheduler` fans staging
out over threads, but CPU-heavy planning (bind -> join-order DP -> bushy
generation -> DOP search) is GIL-bound: past one core, threads only
interleave.  This module moves that work into warm, long-lived worker
*processes* — the keyed worker-pool pattern of SNIPPETS' ModelOps
exemplar — while keeping every authoritative effect in the coordinator:

- **Workers plan, the coordinator serves.**  A worker receives a
  picklable :class:`StageTask` (SQL, constraint, stats version, a
  skeleton hint) and returns a picklable :class:`StagedPlan` (the bound
  query + :class:`~repro.core.bioptimizer.PlanChoice`, newly computed
  skeleton shapes, per-stage timings, warm-hit flags).  All journal
  appends, billing, admission, statistics-log writes, and simulation
  stay in the coordinator process — the ``worker-isolation`` lint rule
  machine-checks that the worker entrypoint module
  (:mod:`repro.core.sharding_worker`) can never reach them.
- **Template affinity keeps workers warm.**  Tasks are keyed to workers
  by a stable hash of the literal-free template key, so one worker's
  private binding/skeleton caches serve every instantiation of a
  recurring template — warm-task hits skip join-order DP and bushy
  generation exactly like the coordinator's own skeleton cache.
- **Coherency is broadcast, versions are checked.**  The coordinator
  fingerprints its planning state (catalog stats version, applied MVs,
  explicit cache-flush epoch) and broadcasts a :class:`RefreshState`
  to every worker when it changes (:meth:`PlannerWorkerPool.sync`, run
  before each sharded batch); each task also carries the stats version
  it was planned against, which the worker re-checks as a protocol
  guard.
- **Crashes restart warm; tasks re-stage exactly-once.**  A dead pipe
  (real crash, injected ``worker_crash`` fault, or
  :meth:`PlannerWorkerPool.kill_worker` in tests) restarts the worker
  from a fresh :class:`WorkerSpec` — re-seeded deterministically and
  re-warmed from the coordinator's exported skeleton cache — and
  re-sends its in-flight tasks in order.  Billing happens only at the
  coordinator's ordered finalize behind the handle's exactly-once
  latch, so a re-staged task can never double-bill.  An *unresponsive*
  worker surfaces as a
  :class:`~repro.errors.DeadlineExceededError` on the ``optimize``
  stage, which the serving layer's existing degraded-mode fallback
  absorbs (PR 6 semantics), while the hung worker is restarted and its
  remaining tasks re-staged.

Determinism: the ``worker_crash`` fault point is drawn by the
*coordinator*, once per task send, in submission order — never by the
workers — so a seeded :class:`~repro.testing.faults.FaultPlan` kills the
same worker at the same dispatch boundary in every run, regardless of
worker timing.  Planning itself is a pure function of (catalog,
hardware, query, constraint), so sharded output is bit-identical to the
threaded and sequential paths — enforced by the sharded parity matrix.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import DeadlineExceededError, ReproError
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.warehouse import CostIntelligentWarehouse
    from repro.dop.constraints import Constraint


# --------------------------------------------------------------------- #
# Wire records (all picklable; round-tripped in tests/core/test_pickling)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StageTask:
    """One unit of remote planning work (coordinator -> worker)."""

    task_id: int
    sql: str
    constraint: "Constraint"
    #: Literal-free template key (worker affinity + warm-cache key).
    template_key: tuple
    #: Catalog stats version the coordinator planned this dispatch
    #: against; the worker re-checks it against its own catalog copy.
    stats_version: int
    #: Coordinator-side skeleton shapes for this template, when cached —
    #: lets a cold (or freshly restarted) worker skip join-order DP.
    skeleton_trees: tuple | None = None


@dataclass(frozen=True)
class StagedPlan:
    """One finished remote planning result (worker -> coordinator)."""

    task_id: int
    bound: Any  # BoundQuery, post-MV-rewrite
    choice: Any  # PlanChoice
    #: Skeleton shapes the worker computed fresh for this task (``None``
    #: on a warm hit) — the coordinator absorbs them into its own
    #: skeleton cache so later batches and degraded fallbacks share them.
    new_skeleton_trees: tuple | None
    bind_s: float
    optimize_s: float
    warm_bind: bool
    warm_skeleton: bool


@dataclass(frozen=True)
class WorkerFailure:
    """A typed staging failure (worker -> coordinator).

    ``error`` is the original exception when it pickles (ReproErrors
    do, by contract), else a :class:`~repro.errors.ReproError` carrying
    its type and message.  The coordinator re-raises it at the failed
    handle's collect position, so failure handling is shared with the
    threaded path (:func:`repro.core.service._wrap_failure`).
    """

    task_id: int
    error: Exception
    stage: str  # "bind" | "optimize" | "protocol"


@dataclass(frozen=True)
class RefreshState:
    """A cache-coherency broadcast (coordinator -> every worker)."""

    catalog: Any
    applied_mvs: tuple
    fingerprint: tuple


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to (re)start one warm planner worker.

    Specs are rebuilt from live coordinator state at every (re)spawn,
    so a worker restarted after a crash comes back *warm*: current
    catalog, currently applied MVs, and the coordinator's exported
    skeleton-cache entries.  ``seed`` is derived deterministically from
    the pool's base seed and the worker index; planning is currently
    seed-free, but the seed pins any future stochastic component to the
    reproducibility contract.
    """

    worker_index: int
    seed: int
    catalog: Any
    hardware: Any
    max_dop: int
    explore_bushy: bool
    applied_mvs: tuple
    skeleton_seed: tuple
    fingerprint: tuple


# --------------------------------------------------------------------- #
# The pool
# --------------------------------------------------------------------- #
#: How long collect waits on a worker pipe before declaring the worker
#: unresponsive, when no optimize stage deadline is configured.
_DEFAULT_LIVENESS_TIMEOUT_S = 30.0

#: How long to wait for a freshly spawned worker's ready handshake.
_STARTUP_TIMEOUT_S = 60.0

#: Per-worker in-flight cap.  OS pipe buffers are finite (~64 KiB): a
#: batch deep enough to fill a worker's *reply* pipe would block the
#: worker mid-send, stop it draining its task pipe, and eventually
#: block the coordinator's own dispatch send — a deadlock.  Capping
#: in-flight tasks (and draining replies at the cap) keeps both pipe
#: directions bounded while still giving every worker a deep enough
#: queue to stay busy.
_MAX_INFLIGHT = 8


def _worker_index_for(template_key: tuple, workers: int) -> int:
    """Stable template -> worker assignment (crc32, not ``hash()``:
    string hashing is randomized per process, and a run-stable
    assignment keeps chaos schedules meaningful across reruns)."""
    return zlib.crc32(repr(template_key).encode("utf-8")) % workers


class PlannerWorkerPool:
    """A pool of warm planner worker processes with template affinity.

    The pool is coordinator-side machinery: it owns the worker
    processes, their duplex pipes, the per-worker FIFO of in-flight
    tasks, and the crash/hang recovery story.  The serving layer drives
    it in two phases per batch — dispatch every task in submission
    order (:meth:`dispatch`), then collect results in submission order
    (:meth:`result_for`) — so per-worker pipe FIFO ordering is all the
    multiplexing needed.
    """

    def __init__(
        self,
        warehouse: "CostIntelligentWarehouse",
        *,
        workers: int | None = None,
        base_seed: int = 0,
        liveness_timeout_s: float | None = None,
    ) -> None:
        if workers is None:
            workers = max(1, min(4, os.cpu_count() or 1))
        if workers < 1:
            raise ReproError(f"worker pool needs >= 1 workers, got {workers}")
        self.warehouse = warehouse
        self.size = workers
        self.base_seed = base_seed
        self.liveness_timeout_s = liveness_timeout_s
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: list[Any] = [None] * workers
        self._conns: list[Any] = [None] * workers
        #: Per-worker FIFO of in-flight tasks (sent, not yet replied).
        self._outstanding: list[deque[StageTask]] = [
            deque() for _ in range(workers)
        ]
        self._owner: dict[int, int] = {}
        self._results: dict[int, StagedPlan | WorkerFailure] = {}
        self._abandoned: set[int] = set()
        #: Tasks dropped by hang recovery; their collect raises the
        #: deadline error that triggers the degraded fallback.
        self._hung: set[int] = set()
        #: Per-worker skeleton keys the worker is known to hold (seeded
        #: at spawn, grown per reply) — redundant hints are stripped
        #: from dispatches instead of re-pickled every send.
        self._warmed: list[set] = [set() for _ in range(workers)]
        self._send_marks: dict[int, float] = {}
        self._next_task_id = 0
        self._synced_fingerprint: tuple | None = None
        self._started = False
        # Observability counters (read-through metric sources).
        self.restarts = 0
        self.restaged_tasks = 0
        self.warm_bind_hits = 0
        self.warm_skeleton_hits = 0
        self.tasks_dispatched = 0
        self.injected_kills = 0

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every worker and wait for its ready handshake."""
        if self._started:
            return
        self._synced_fingerprint = self._current_fingerprint()
        for index in range(self.size):
            self._spawn(index)
        self._started = True

    def close(self) -> None:
        """Shut the pool down (best-effort graceful, then terminate)."""
        for index in range(self.size):
            conn = self._conns[index]
            if conn is not None:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
            self._conns[index] = None
            proc = self._procs[index]
            if proc is not None:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            self._procs[index] = None
        self._outstanding = [deque() for _ in range(self.size)]
        self._owner.clear()
        self._results.clear()
        self._hung.clear()
        self._warmed = [set() for _ in range(self.size)]
        self._send_marks.clear()
        self._started = False

    @property
    def alive(self) -> bool:
        return self._started

    def _spec(self, index: int) -> WorkerSpec:
        warehouse = self.warehouse
        skeleton_seed: tuple = ()
        if warehouse.skeleton_cache is not None:
            skeleton_seed = warehouse.skeleton_cache.export_state()
        seed_stream = derive_rng(self.base_seed, "sharding", str(index))
        return WorkerSpec(
            worker_index=index,
            seed=int(seed_stream.integers(2**31)),
            catalog=warehouse.catalog,
            hardware=warehouse.hw,
            max_dop=warehouse.max_dop,
            explore_bushy=warehouse.optimizer.explore_bushy,
            applied_mvs=tuple(warehouse._applied_mvs.values()),
            skeleton_seed=skeleton_seed,
            fingerprint=self._current_fingerprint(),
        )

    def _spawn(self, index: int) -> None:
        from repro.core.sharding_worker import worker_main

        spec = self._spec(index)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, spec),
            name=f"planner-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(_STARTUP_TIMEOUT_S):
            proc.terminate()
            raise ReproError(f"planner worker {index} never came up")
        ready = parent_conn.recv()
        if ready != ("ready", index):
            proc.terminate()
            raise ReproError(
                f"planner worker {index} sent a bad handshake: {ready!r}"
            )
        self._procs[index] = proc
        self._conns[index] = parent_conn
        # The spec seeded the worker with these skeleton entries; hints
        # for them need not cross the pipe again.
        self._warmed[index] = {key for key, _ in spec.skeleton_seed}

    def _restart(self, index: int) -> None:
        """Restart one worker warm and re-send its in-flight tasks."""
        proc = self._procs[index]
        conn = self._conns[index]
        if conn is not None:
            conn.close()
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        self._spawn(index)
        self.restarts += 1
        pending = list(self._outstanding[index])
        self.restaged_tasks += len(pending)
        for task in pending:
            # Direct sends (not _send): a send failure here means the
            # *fresh* worker died instantly — that is not recoverable by
            # another restart, so let the error surface to the batch.
            self._send_marks[task.task_id] = time.perf_counter()
            self._conns[index].send(("task", task))

    # -- coherency ------------------------------------------------------ #
    def _current_fingerprint(self) -> tuple:
        warehouse = self.warehouse
        return (
            warehouse.catalog.version,
            tuple(sorted(warehouse._applied_mvs)),
            warehouse._plan_cache_epoch,
        )

    def sync(self) -> bool:
        """Broadcast planning state to every worker if it changed.

        Called at the top of every sharded batch (and after tuning
        applies between batches have mutated the catalog).  Returns
        whether a refresh was broadcast.
        """
        fingerprint = self._current_fingerprint()
        if fingerprint == self._synced_fingerprint:
            return False
        warehouse = self.warehouse
        refresh = RefreshState(
            catalog=warehouse.catalog,
            applied_mvs=tuple(warehouse._applied_mvs.values()),
            fingerprint=fingerprint,
        )
        for index in range(self.size):
            try:
                self._conns[index].send(("refresh", refresh))
            except (BrokenPipeError, OSError):
                self._restart(index)
                # _spawn builds the spec from live state, so the
                # restarted worker is already at this fingerprint.
        self._synced_fingerprint = fingerprint
        return True

    # -- dispatch ------------------------------------------------------- #
    def dispatch(
        self,
        *,
        sql: str,
        constraint: "Constraint",
        template_key: tuple,
        stats_version: int,
        skeleton_trees: tuple | None,
        skeleton_key: tuple | None = None,
    ) -> int:
        """Send one task to its template's worker; returns the task id.

        The ``worker_crash`` fault point is drawn here — once per send,
        in submission order — so seeded chaos schedules are independent
        of worker timing.  A firing draw terminates the target worker
        *after* the send: the hardest window, the task is in flight and
        lost with the process.
        """
        task_id = self._next_task_id
        self._next_task_id += 1
        index = _worker_index_for(template_key, self.size)
        # Backpressure: drain replies once this worker's queue is at the
        # in-flight cap, so neither pipe direction can fill and deadlock.
        while len(self._outstanding[index]) >= _MAX_INFLIGHT:
            self._drain(index)
        if skeleton_trees is not None and skeleton_key is not None:
            if skeleton_key in self._warmed[index]:
                # The worker already holds these shapes; re-pickling the
                # hint on every literal variation would dominate IPC.
                skeleton_trees = None
            else:
                self._warmed[index].add(skeleton_key)
        task = StageTask(
            task_id=task_id,
            sql=sql,
            constraint=constraint,
            template_key=template_key,
            stats_version=stats_version,
            skeleton_trees=skeleton_trees,
        )
        self._owner[task_id] = index
        self._outstanding[index].append(task)
        self._send(index, task)
        self.tasks_dispatched += 1
        decision = self.warehouse._fault_decision("worker_crash")
        if decision is not None and decision.error is not None:
            self.injected_kills += 1
            self.kill_worker(index)
        return task_id

    def _drain(self, index: int) -> None:
        """Consume one pending event from a worker pipe (blocking), with
        the same crash/hang recovery as :meth:`result_for`."""
        conn = self._conns[index]
        if not conn.poll(self._liveness_timeout()):
            self._handle_hang(index)
            return
        try:
            message = conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
            self._restart(index)
            return
        self._consume(index, message)

    def _send(self, index: int, task: StageTask) -> None:
        self._send_marks[task.task_id] = time.perf_counter()
        try:
            self._conns[index].send(("task", task))
        except (BrokenPipeError, OSError):
            # The worker died between batches (or an injected kill
            # landed before this send): restart warm — _restart re-sends
            # the whole outstanding FIFO, this task included.
            self._restart(index)

    def kill_worker(self, index: int) -> None:
        """Terminate one worker process (chaos/kill-point hook).

        Detection and warm restart happen lazily at the next pipe
        interaction, exactly as for a real crash.
        """
        proc = self._procs[index]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)

    def hang_worker(self, index: int) -> None:
        """Make one worker silently swallow every task from now on
        (test hook for the unresponsive-worker path: the coordinator's
        liveness timeout fires for the head task, recovery restarts the
        process — clearing the hang — and re-stages the rest)."""
        try:
            self._conns[index].send(("drop",))
        except (BrokenPipeError, OSError):
            self._restart(index)

    def worker_for(self, template_key: tuple) -> int:
        """The worker index a template's tasks are keyed to."""
        return _worker_index_for(template_key, self.size)

    def abandon(self, task_ids: Iterable[int]) -> None:
        """Mark in-flight tasks as never-to-be-collected (fail-fast
        abort): their replies are discarded when they drain."""
        for task_id in task_ids:
            self._hung.discard(task_id)
            if task_id in self._results:
                del self._results[task_id]
            elif task_id in self._owner:
                self._abandoned.add(task_id)

    # -- collect -------------------------------------------------------- #
    def _liveness_timeout(self) -> float:
        if self.liveness_timeout_s is not None:
            return self.liveness_timeout_s
        policy = self.warehouse.resilience
        if policy.enabled:
            stage_deadline = policy.stage_deadline_s.get("optimize")
            if stage_deadline is not None:
                return stage_deadline
        return _DEFAULT_LIVENESS_TIMEOUT_S

    def result_for(self, task_id: int) -> StagedPlan:
        """Block until ``task_id``'s result is in; recover as needed.

        - A worker whose pipe reports EOF crashed: restart it warm,
          re-send its in-flight tasks (this one included), keep waiting.
        - A worker that stays silent past the liveness timeout (the
          configured ``optimize`` stage deadline, else a generous
          default) is unresponsive: restart it, re-stage its *other*
          in-flight tasks, and raise
          :class:`~repro.errors.DeadlineExceededError` for this one —
          the serving layer's degraded fallback takes over.
        - A :class:`WorkerFailure` re-raises the worker's typed staging
          error here, at the failed handle's collect position.
        """
        timeout = self._liveness_timeout()
        waited_from = time.perf_counter()
        while True:
            if task_id in self._hung:
                # Dropped by hang recovery (here or during dispatch
                # backpressure): surface the deadline that triggers the
                # serving layer's degraded fallback.
                self._hung.discard(task_id)
                self.warehouse.resilience_stats.note_deadline()
                raise DeadlineExceededError(
                    f"planner worker unresponsive after {timeout:.1f}s",
                    stage="optimize",
                    deadline_s=timeout,
                    elapsed_s=time.perf_counter() - waited_from,
                )
            found = self._results.pop(task_id, None)
            if found is not None:
                if isinstance(found, WorkerFailure):
                    raise found.error
                return found
            index = self._owner.get(task_id)
            if index is None:
                raise ReproError(f"unknown or already-collected task {task_id}")
            conn = self._conns[index]
            remaining = timeout - (time.perf_counter() - waited_from)
            if remaining <= 0 or not conn.poll(max(remaining, 0.0)):
                # The FIFO head (this task or one ahead of it) hung; if
                # it was another task, ours was just re-staged on the
                # fresh worker — wait on with a fresh liveness budget.
                self._handle_hang(index)
                waited_from = time.perf_counter()
                continue
            try:
                message = conn.recv()
            except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
                self._restart(index)
                # Re-staged work gets a fresh liveness budget.
                waited_from = time.perf_counter()
                continue
            self._consume(index, message)

    def _consume(self, index: int, message: tuple) -> None:
        kind = message[0]
        if kind == "pong":
            return
        if kind not in ("done", "fail"):
            raise ReproError(
                f"planner worker {index} sent unknown message {kind!r}"
            )
        payload = message[1]
        fifo = self._outstanding[index]
        if not fifo or fifo[0].task_id != payload.task_id:
            # Workers are strictly FIFO and every restart swaps in a
            # fresh pipe, so a reply that skips past live in-flight work
            # is a protocol bug, not a stale leftover — losing those
            # tasks silently would strand their handles.
            if any(task.task_id == payload.task_id for task in fifo):
                raise ReproError(
                    f"planner worker {index} replied to task "
                    f"{payload.task_id} out of FIFO order"
                )
            # Not in the FIFO at all: a reply for a task this pool no
            # longer tracks (defensive; drained pipes die with restarts).
            return
        task = fifo.popleft()
        self._owner.pop(payload.task_id, None)
        sent_at = self._send_marks.pop(payload.task_id, None)
        if sent_at is not None:
            self.warehouse.metrics.histogram(
                "repro_worker_ipc_roundtrip_seconds",
                time.perf_counter() - sent_at,
            )
        if isinstance(payload, StagedPlan):
            if payload.warm_bind:
                self.warm_bind_hits += 1
            if payload.warm_skeleton:
                self.warm_skeleton_hits += 1
            # Whether warm or freshly computed, the worker now holds
            # this template's skeleton: stop shipping hints for it.
            kind = "sla" if task.constraint.is_sla else "budget"
            self._warmed[index].add(
                (task.template_key, kind, task.stats_version)
            )
        if payload.task_id in self._abandoned:
            self._abandoned.discard(payload.task_id)
            return
        self._results[payload.task_id] = payload

    def _handle_hang(self, index: int) -> None:
        """Recover from an unresponsive worker: drop the hung FIFO head
        (its handle takes the degraded fallback when collected), restart
        the worker, and re-stage the rest of its in-flight work."""
        fifo = self._outstanding[index]
        if fifo:
            head = fifo.popleft()
            self._hung.add(head.task_id)
            self._owner.pop(head.task_id, None)
            self._send_marks.pop(head.task_id, None)
        self._restart(index)

    # -- observability -------------------------------------------------- #
    @property
    def warm_hits(self) -> dict:
        """Warm-task hits by cache level (metric-source shape)."""
        return {
            ("bind",): self.warm_bind_hits,
            ("skeleton",): self.warm_skeleton_hits,
        }

    def describe(self) -> str:
        return (
            f"planner pool: {self.size} worker(s), "
            f"{self.tasks_dispatched} task(s) dispatched, "
            f"{self.warm_bind_hits}/{self.warm_skeleton_hits} warm "
            f"bind/skeleton hits, {self.restarts} restart(s), "
            f"{self.restaged_tasks} re-staged, "
            f"{self.injected_kills} injected kill(s)"
        )
