"""Planner worker process entrypoint (the isolated side of sharding).

This module is everything a planner worker process runs: a
:class:`PlannerShard` replicating the coordinator's parameterized
bind -> optimize path over *private* warm caches, and the
:func:`worker_main` message loop.  It is deliberately minimal and
machine-isolated: the ``worker-isolation`` lint rule forbids this
module from importing or calling anything that could append to the
write-ahead journal, mutate a :class:`~repro.core.service.TenantBill`,
or write the statistics log — those are authoritative, ordered,
exactly-once effects that belong to the coordinator's finalize phase
alone.  A worker computes pure planning functions of (catalog,
hardware, query, constraint) and nothing else, which is exactly why a
crashed worker can be restarted and its tasks re-staged without any
risk of double-billing or double-logging.

Staging here mirrors ``CostIntelligentWarehouse._plan``'s parameterized
path, unguarded (fault points and retries are coordinator-side
machinery): template-keyed binding reuse, MV rewrite after the binding
cache, skeleton-shape reuse keyed on (template key, constraint kind,
stats version), and ``variant_trees`` export on a skeleton miss so the
coordinator can absorb freshly computed shapes.  Caches are plain
dicts — the process is single-threaded, so the coordinator's
lock-striped LRUs would buy nothing — seeded warm from the
:class:`~repro.core.sharding.WorkerSpec` at (re)start.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Any

from repro.core.bioptimizer import BiObjectiveOptimizer
from repro.core.sharding import RefreshState, StagedPlan, StageTask, WorkerFailure, WorkerSpec
from repro.cost.estimator import CostEstimator
from repro.errors import ReproError
from repro.sql.binder import Binder
from repro.sql.parameterize import parameterize_sql
from repro.tuning.mv import try_rewrite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.binder import BoundQuery


def _picklable(error: Exception) -> Exception:
    """The error itself when it survives pickle, else a plain stand-in
    (the reply must cross the pipe whatever the binder/optimizer threw)."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 - any pickle failure takes the fallback
        return ReproError(f"{type(error).__name__}: {error}")


class PlannerShard:
    """One worker's warm planning state: catalog, binder, optimizer,
    and private binding/skeleton caches."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.worker_index = spec.worker_index
        self.seed = spec.seed
        self.max_dop = spec.max_dop
        self.explore_bushy = spec.explore_bushy
        self.hardware = spec.hardware
        self._install(spec.catalog, spec.applied_mvs, spec.fingerprint)
        for key, trees in spec.skeleton_seed:
            self._skeletons.setdefault(key, trees)

    def _install(
        self, catalog: Any, applied_mvs: tuple, fingerprint: tuple
    ) -> None:
        self.catalog = catalog
        self.applied_mvs = tuple(applied_mvs)
        self.fingerprint = fingerprint
        self.estimator = CostEstimator(self.hardware)
        self.optimizer = BiObjectiveOptimizer(
            catalog,
            self.estimator,
            max_dop=self.max_dop,
            explore_bushy=self.explore_bushy,
        )
        self.binder = Binder(catalog)
        self._bindings: dict = {}
        self._skeletons: dict = {}

    def refresh(self, state: RefreshState) -> None:
        """Apply a coherency broadcast: rebuild planning state over the
        new catalog and drop every warm entry (their keys embed the old
        stats version; a flush-epoch bump has no version change, so the
        caches must be dropped explicitly)."""
        self._install(state.catalog, state.applied_mvs, state.fingerprint)

    def _maybe_rewrite_mv(self, bound: "BoundQuery") -> "BoundQuery":
        # Mirrors CostIntelligentWarehouse._maybe_rewrite_mv over the
        # spec's applied-MV snapshot, so worker plans rewrite onto
        # applied views exactly as coordinator plans do.
        for candidate in self.applied_mvs:
            if not self.catalog.has_table(candidate.name) or not self.catalog.has_view(
                candidate.name
            ):
                continue
            rewritten = try_rewrite(bound, candidate)
            if rewritten is not None:
                return rewritten
        return bound

    def stage(self, task: StageTask) -> StagedPlan:
        """Bind + optimize one task (the remote half of ``_plan``)."""
        self.current_stage = "protocol"
        if task.stats_version != self.catalog.version:
            raise ReproError(
                f"stale dispatch: task planned against stats version "
                f"{task.stats_version}, worker {self.worker_index} is at "
                f"{self.catalog.version} (missed RefreshState broadcast?)"
            )
        self.current_stage = "bind"
        parameterized = parameterize_sql(task.sql)
        version = self.catalog.version
        binding_key = (parameterized.normalized, version)
        bound = self._bindings.get(binding_key)
        warm_bind = bound is not None
        bind_start = time.perf_counter()
        if bound is None:
            bound = self.binder.bind_parameterized(
                parameterized.template_key, parameterized.constants, sql=task.sql
            )
            self._bindings[binding_key] = bound
        bind_s = time.perf_counter() - bind_start
        bound = self._maybe_rewrite_mv(bound)
        kind = "sla" if task.constraint.is_sla else "budget"
        skeleton_key = (parameterized.template_key, kind, version)
        trees = self._skeletons.get(skeleton_key)
        if trees is None and task.skeleton_trees is not None:
            # The coordinator's hint warms a cold (or restarted) worker.
            trees = tuple(task.skeleton_trees)
            self._skeletons[skeleton_key] = trees
        warm_skeleton = trees is not None
        self.current_stage = "optimize"
        optimize_start = time.perf_counter()
        choice = self.optimizer.optimize(bound, task.constraint, skeleton_trees=trees)
        optimize_s = time.perf_counter() - optimize_start
        new_trees = None
        if trees is None:
            new_trees = self.optimizer.variant_trees(bound)
            self._skeletons[skeleton_key] = new_trees
        return StagedPlan(
            task_id=task.task_id,
            bound=bound,
            choice=choice,
            new_skeleton_trees=new_trees,
            bind_s=bind_s,
            optimize_s=optimize_s,
            warm_bind=warm_bind,
            warm_skeleton=warm_skeleton,
        )

    def serve(self, task: StageTask) -> tuple:
        """One task to one picklable reply, failures included."""
        try:
            return ("done", self.stage(task))
        except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
            return (
                "fail",
                WorkerFailure(
                    task_id=task.task_id,
                    error=_picklable(exc),
                    stage=getattr(self, "current_stage", "protocol"),
                ),
            )


def worker_main(conn: Any, spec: WorkerSpec) -> None:
    """The worker process loop: recv task/refresh messages, send replies.

    Exits cleanly on a ``("stop",)`` message or pipe EOF (the
    coordinator went away).  The ``("drop",)`` control message makes the
    worker silently swallow every task from then on — the chaos suite's
    hook for an unresponsive-but-alive worker: the coordinator's
    liveness timeout must fire and recovery restarts the process (which
    clears the flag, the replacement is a fresh worker).
    """
    shard = PlannerShard(spec)
    conn.send(("ready", spec.worker_index))
    drop_tasks = False
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "refresh":
            shard.refresh(message[1])
            continue
        if kind == "ping":
            conn.send(("pong", message[1]))
            continue
        if kind == "drop":
            drop_tasks = True
            continue
        if kind == "task":
            if drop_tasks:
                continue
            conn.send(shard.serve(message[1]))
