"""Serving-layer request model: QueryRequest -> QueryHandle -> QueryOutcome.

The paper's interaction model (§2) is a *service* contract — "state a
latency SLA or a budget, get results plus an auditable cost report" —
and a service needs more than one blocking call with nine keyword
arguments.  This module is the warehouse's public serving API:

- :class:`QueryRequest` — one frozen value object describing a
  submission: the SQL, the user constraint, and the execution /
  simulation options that used to sprawl across ``submit()`` kwargs.
- :class:`QueryHandle` — the lifecycle of one submission
  (``QUEUED -> BOUND -> PLANNED -> SIMULATED -> DONE/FAILED``) with
  per-stage wall timings and ``result()`` returning the
  :class:`QueryOutcome`.  Failures are carried on the handle as
  :class:`~repro.errors.QueryFailedError` (which item, which SQL, what
  cause) instead of aborting a whole batch.
- :class:`Session` — who is asking.  A session carries per-tenant
  defaults (constraint, scaling policy, template namespace), sees an
  isolated per-tenant view of the Statistics Service log, and its
  spending rolls up into the warehouse's per-tenant billing.
- :class:`ServingScheduler` — the concurrent planner behind
  ``submit_many``.  Staging (bind -> optimize -> execute -> simulate) is
  deterministic and runs on a thread pool over the lock-striped plan
  caches; finalization (logging, billing, template bookkeeping) runs in
  submission order, so a threaded batch is bit-identical to sequential
  submission and the log order is deterministic.

Per-tenant admission and accounting follows the framing of *Saving Money
for Analytical Workloads in the Cloud* (Srivastava et al.): cost-aware
serving is a multi-tenant scheduling problem, not a single call.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.governance import AdmissionVerdict
from repro.core.journal import AdmissionDecision as JournalAdmissionDecision
from repro.dop.constraints import Constraint
from repro.engine.local_executor import LocalExecutor
from repro.errors import DeadlineExceededError, QueryFailedError, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bioptimizer import PlanChoice
    from repro.core.warehouse import CostIntelligentWarehouse
    from repro.engine.batch import Batch
    from repro.sim.distsim import ScalingPolicy, SimResult
    from repro.sql.binder import BoundQuery
    from repro.statsvc.logs import QueryRecord, TenantLogView


# --------------------------------------------------------------------- #
# Request
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryRequest:
    """One immutable submission: SQL + constraint + serving options.

    Fields left as ``None`` are filled from the submitting
    :class:`Session`'s defaults during resolution; a request without a
    constraint can only be served by a session that carries one.
    """

    sql: str
    constraint: Constraint | None = None
    template: str = "adhoc"
    at_time: float | None = None
    policy: "str | ScalingPolicy | None" = None
    execute_locally: bool = False
    simulate: bool = True
    truth: Mapping[int, float] | None = None
    use_plan_cache: bool = True
    tenant: str | None = None

    def replace(self, **changes) -> "QueryRequest":
        """A copy with the given fields changed (requests are frozen)."""
        return replace(self, **changes)


class QueryState(Enum):
    """Lifecycle states of one submission."""

    QUEUED = "queued"
    BOUND = "bound"
    PLANNED = "planned"
    SIMULATED = "simulated"
    DONE = "done"
    FAILED = "failed"
    #: Terminal: admission control refused the query (tenant budget
    #: exhausted) before any serving work ran.  The handle carries an
    #: :class:`~repro.errors.AdmissionDeniedError`.
    DENIED = "denied"


#: Forward progression of the lifecycle (``FAILED`` can follow any state,
#: ``DENIED`` only replaces ``QUEUED``; ``SIMULATED`` is skipped when
#: ``simulate=False``).
STATE_ORDER = (
    QueryState.QUEUED,
    QueryState.BOUND,
    QueryState.PLANNED,
    QueryState.SIMULATED,
    QueryState.DONE,
)


# --------------------------------------------------------------------- #
# Outcome
# --------------------------------------------------------------------- #
@dataclass
class QueryOutcome:
    """Everything one submission produced."""

    sql: str
    choice: "PlanChoice"
    sim: "SimResult | None"
    batch: "Batch | None"
    record: "QueryRecord"
    constraint: Constraint
    #: Degraded-mode serving: the optimize stage blew its deadline and
    #: the plan is the fallback (``degraded_mode``: ``"skeleton"`` =
    #: cached template shapes re-planned, bit-identical to full
    #: optimization; ``"heuristic"`` = the left-deep default plan).
    degraded: bool = False
    degraded_mode: str | None = None

    @property
    def tenant(self) -> str:
        return self.record.tenant

    @property
    def latency(self) -> float:
        if self.sim is not None:
            return self.sim.latency
        return self.choice.dop_plan.estimate.latency

    @property
    def dollars(self) -> float:
        if self.sim is not None:
            return self.sim.total_dollars
        return self.choice.dop_plan.estimate.total_dollars

    @property
    def sla_met(self) -> bool | None:
        if self.constraint.latency_sla is None:
            return None
        return self.latency <= self.constraint.latency_sla

    @property
    def constraint_met(self) -> bool:
        """Whether the outcome honored the user's constraint — the
        latency SLA or the dollar budget, whichever was stated
        (:attr:`sla_met` is ``None`` for budget-constrained queries;
        this covers both kinds)."""
        if self.constraint.is_sla:
            return self.sla_met  # type: ignore[return-value]
        assert self.constraint.budget is not None
        return self.dollars <= self.constraint.budget

    def describe(self) -> str:
        from repro.util.units import fmt_dollars, fmt_duration

        lines = [
            f"constraint: {self.constraint.describe()}",
            f"plan: {self.choice.describe()}",
            f"outcome: latency={fmt_duration(self.latency)} "
            f"cost={fmt_dollars(self.dollars)}",
            f"constraint met: {self.constraint_met}",
        ]
        if self.degraded:
            lines.append(f"degraded: optimize deadline ({self.degraded_mode} plan)")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# Handle
# --------------------------------------------------------------------- #
@dataclass
class _Staged:
    """Output of the concurrent stage phase, awaiting ordered finalize."""

    bound: "BoundQuery"
    choice: "PlanChoice"
    batch: "Batch | None"
    sim: "SimResult | None"
    degraded: bool = False
    degraded_mode: str | None = None


class QueryHandle:
    """The observable lifecycle of one submitted :class:`QueryRequest`.

    A handle moves ``QUEUED -> BOUND -> PLANNED [-> SIMULATED] -> DONE``
    (or ``FAILED`` from any state), accumulating wall time per stage in
    :attr:`stage_timings` (keys: ``queued``, ``bind``, ``plan``,
    ``execute``, ``simulate``, ``finalize``).  :meth:`result` returns
    the :class:`QueryOutcome` or raises the carried
    :class:`~repro.errors.QueryFailedError`.
    """

    def __init__(self, request: QueryRequest, index: int = 0) -> None:
        self.request = request
        self.index = index
        self.state = QueryState.QUEUED
        self.stage_timings: dict[str, float] = {}
        self.error: QueryFailedError | None = None
        #: Warehouse-clock admission timestamp (set at admission, used
        #: for the log record — identical to sequential submission).
        self.timestamp: float | None = None
        #: The admission controller's verdict (``None`` when no tenant
        #: budgets are configured — the admit-all fast path).
        self.admission: AdmissionVerdict | None = None
        #: Retry attempts the resilience layer burned staging this
        #: request (their modeled dollars are on the tenant's bill).
        self.retries = 0
        self._outcome: QueryOutcome | None = None
        #: Exactly-once finalize latch (set under the serving lock):
        #: logging and billing must never apply twice to one handle.
        self._finalized = False
        self._last_mark = time.perf_counter()

    # -- lifecycle bookkeeping (serving internals) --------------------- #
    def _advance(self, state: QueryState, stage: str) -> None:
        now = time.perf_counter()
        self.stage_timings[stage] = (
            self.stage_timings.get(stage, 0.0) + now - self._last_mark
        )
        self._last_mark = now
        self.state = state

    def _complete(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._advance(QueryState.DONE, "finalize")

    def _fail(self, error: QueryFailedError) -> None:
        self.error = error
        self.state = QueryState.FAILED

    def _deny(self, error: QueryFailedError) -> None:
        self.error = error
        self.state = QueryState.DENIED

    # -- public surface ------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.state in (QueryState.DONE, QueryState.FAILED, QueryState.DENIED)

    @property
    def failed(self) -> bool:
        return self.state is QueryState.FAILED

    @property
    def denied(self) -> bool:
        """Admission control refused this query (budget exhausted)."""
        return self.state is QueryState.DENIED

    @property
    def degraded(self) -> bool:
        """Whether this query was served by the degraded-mode fallback."""
        return self._outcome is not None and self._outcome.degraded

    def result(self) -> QueryOutcome:
        """The outcome; raises the carried error for failed queries."""
        if self.error is not None:
            raise self.error
        if self._outcome is None:
            raise ReproError(
                f"query #{self.index} has not finished serving "
                f"(state: {self.state.value})"
            )
        return self._outcome

    def describe(self) -> str:
        sql = self.request.sql
        head = f"[{self.state.value}] #{self.index} {sql[:60]}"
        if not self.stage_timings:
            return head
        stages = ", ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in self.stage_timings.items()
        )
        return f"{head}\n  stages: {stages}"


# --------------------------------------------------------------------- #
# Per-tenant billing
# --------------------------------------------------------------------- #
class TenantBill:
    """Running per-tenant spend, rolled up into warehouse billing.

    Serving dollars (``dollars``) and background-tuning dollars
    (``background_dollars``) are metered separately so experiments can
    report foreground vs background spend per tenant; the
    :class:`~repro.tuning.service.TuningService` attributes each applied
    action's cost to the tenants whose traffic motivated it.

    Dollar balances accumulate internally in **integral ledger units**
    (:data:`~repro.core.journal.LEDGER_SCALE` units per dollar — a
    power of two, so each charge's conversion is exact and accumulation
    is order-independent).  Floats drift; a crash-recovery replay must
    reproduce live totals *to the last bit*, and integer sums do.  The
    public ``dollars`` / ``background_dollars`` / ``retry_dollars``
    views stay floats.
    """

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        self.queries = 0
        self.machine_seconds = 0.0
        self.background_actions = 0
        self.retries = 0
        self._dollars_units = 0
        self._background_units = 0
        self._retry_units = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TenantBill(tenant={self.tenant!r}, queries={self.queries}, "
            f"dollars={self.dollars:.6f}, total={self.total_dollars:.6f})"
        )

    def charge(self, record: "QueryRecord") -> None:
        from repro.core.journal import to_ledger_units

        self.queries += 1
        self._dollars_units += to_ledger_units(record.dollars)
        self.machine_seconds += record.machine_seconds

    def charge_background(self, dollars: float) -> None:
        """Meter one background tuning apply/rollback against this tenant."""
        from repro.core.journal import to_ledger_units

        self.background_actions += 1
        self._background_units += to_ledger_units(dollars)

    def charge_retry(self, dollars: float) -> None:
        """Meter one retry attempt's modeled compute against this tenant."""
        from repro.core.journal import to_ledger_units

        self.retries += 1
        self._retry_units += to_ledger_units(dollars)

    @property
    def dollars(self) -> float:
        """Serving spend (sum of served records' dollars)."""
        from repro.core.journal import from_ledger_units

        return from_ledger_units(self._dollars_units)

    @property
    def background_dollars(self) -> float:
        from repro.core.journal import from_ledger_units

        return from_ledger_units(self._background_units)

    @property
    def retry_dollars(self) -> float:
        from repro.core.journal import from_ledger_units

        return from_ledger_units(self._retry_units)

    @property
    def total_dollars(self) -> float:
        """Serving plus background plus retry spend."""
        from repro.core.journal import from_ledger_units

        return from_ledger_units(
            self._dollars_units + self._background_units + self._retry_units
        )

    # -- exact ledger views (observability reconciles against these) --- #
    @property
    def serving_units(self) -> int:
        """Serving spend in integral ledger units."""
        return self._dollars_units

    @property
    def background_units(self) -> int:
        """Background-tuning spend in integral ledger units."""
        return self._background_units

    @property
    def retry_units(self) -> int:
        """Retry spend in integral ledger units."""
        return self._retry_units

    @property
    def total_units(self) -> int:
        """Total spend in integral ledger units."""
        return self._dollars_units + self._background_units + self._retry_units

    # -- durability ----------------------------------------------------- #
    def ledger_snapshot(self) -> tuple:
        """The bill's exact state as a plain tuple (checkpointing, and
        bit-equality assertions in the recovery tests)."""
        return (
            self.tenant,
            self.queries,
            self._dollars_units,
            self.machine_seconds,
            self._background_units,
            self.background_actions,
            self._retry_units,
            self.retries,
        )

    @classmethod
    def from_ledger_snapshot(cls, snapshot: tuple) -> "TenantBill":
        """Rebuild a bill from :meth:`ledger_snapshot` output."""
        (
            tenant,
            queries,
            dollars_units,
            machine_seconds,
            background_units,
            background_actions,
            retry_units,
            retries,
        ) = snapshot
        bill = cls(tenant)
        bill.queries = queries
        bill._dollars_units = dollars_units
        bill.machine_seconds = machine_seconds
        bill._background_units = background_units
        bill.background_actions = background_actions
        bill._retry_units = retry_units
        bill.retries = retries
        return bill


# --------------------------------------------------------------------- #
# Session
# --------------------------------------------------------------------- #
class Session:
    """A tenant's connection to the warehouse.

    Carries per-tenant defaults (constraint, scaling policy, template
    namespace) so requests stay terse, exposes an isolated view of the
    Statistics Service log, and accounts every served query's dollars
    against its tenant in the warehouse's billing roll-up.
    """

    def __init__(
        self,
        warehouse: "CostIntelligentWarehouse",
        *,
        tenant: str = "default",
        constraint: Constraint | None = None,
        policy: "str | ScalingPolicy | None" = None,
        template_namespace: str | None = None,
    ) -> None:
        self.warehouse = warehouse
        self.tenant = tenant
        self.default_constraint = constraint
        self.default_policy = policy
        self.template_namespace = template_namespace

    # -- request resolution -------------------------------------------- #
    def resolve(
        self, request: QueryRequest | str, constraint: Constraint | None = None
    ) -> QueryRequest:
        """Fill a request's open fields from this session's defaults."""
        if isinstance(request, str):
            request = QueryRequest(sql=request, constraint=constraint)
        elif constraint is not None and request.constraint is None:
            request = request.replace(constraint=constraint)
        resolved_constraint = request.constraint or self.default_constraint
        if resolved_constraint is None:
            raise ReproError(
                "no constraint for query: set one on the QueryRequest "
                "or give the session a default"
            )
        template = request.template
        prefix = f"{self.template_namespace}." if self.template_namespace else ""
        if prefix and not template.startswith(prefix):
            # Idempotent: resubmitting an already-resolved request (e.g.
            # ``handle.request``) must not double-prefix the template and
            # split the family in the log / skeleton cache / advisor.
            template = prefix + template
        return request.replace(
            constraint=resolved_constraint,
            template=template,
            policy=request.policy
            if request.policy is not None
            else (self.default_policy or "dop-monitor"),
            tenant=request.tenant or self.tenant,
        )

    # -- submission ----------------------------------------------------- #
    def submit(
        self, request: QueryRequest | str, constraint: Constraint | None = None
    ) -> QueryHandle:
        """Serve one request through the full lifecycle; never raises —
        failures (including resolution failures such as a missing
        constraint) and admission denials are carried on the returned
        handle."""
        try:
            resolved = self.resolve(request, constraint)
        except Exception as exc:  # noqa: BLE001 - carried on the handle
            handle = QueryHandle(_as_request(request, constraint))
            handle._fail(_wrap_failure(handle, exc))
            return handle
        handle = QueryHandle(resolved)
        # A single submission has no batch to defer behind, so DEFER
        # downgrades to THROTTLE (which for one query just serves it).
        self._admit([handle], defer_ok=False)
        if handle.denied:
            return handle
        _serve_one(self, handle)
        self.warehouse._maybe_autotune()
        self.warehouse._maybe_collect()
        return handle

    def submit_many(
        self,
        items: Iterable["QueryRequest | str | tuple[str, Constraint]"],
        *,
        constraint: Constraint | None = None,
        fail_fast: bool = False,
        max_workers: int | None = None,
    ) -> list[QueryHandle]:
        """Serve a batch of requests through the :class:`ServingScheduler`.

        Items are :class:`QueryRequest`\\ s, bare SQL strings (planned
        under ``constraint`` or the session default), or ``(sql,
        constraint)`` pairs.  With ``fail_fast=False`` (default) a
        failing item — including one that fails *resolution*, e.g. a
        bare SQL string with no constraint anywhere, or one *denied* by
        admission control (:class:`~repro.errors.AdmissionDeniedError`,
        handle in the ``DENIED`` state) — is reported on its own handle
        (index + SQL prefix) and the rest of the batch proceeds;
        ``fail_fast=True`` keeps the legacy abort-the-batch behavior.
        ``max_workers`` > 1 plans on a thread pool, bit-identical to
        sequential submission.
        """
        entries: list[QueryRequest | QueryHandle] = []
        for index, item in enumerate(items):
            try:
                if isinstance(item, (QueryRequest, str)):
                    # resolve() rejects constraint-less items itself.
                    entries.append(self.resolve(item, constraint))
                else:
                    sql, item_constraint = item
                    entries.append(
                        self.resolve(QueryRequest(sql=sql, constraint=item_constraint))
                    )
            except Exception as exc:  # noqa: BLE001 - carried on the handle
                handle = QueryHandle(_as_request(item, constraint), index=index)
                handle._fail(_wrap_failure(handle, exc))
                if fail_fast:
                    raise handle.error from exc
                entries.append(handle)
        scheduler = ServingScheduler(
            self, max_workers=max_workers, fail_fast=fail_fast
        )
        handles = scheduler.run(entries)
        # Recurring tuning runs *between* batches (policy cadence), never
        # while scheduler threads are staging over the shared caches;
        # scheduled cost collection follows the same contract.
        self.warehouse._maybe_autotune()
        self.warehouse._maybe_collect()
        return handles

    def plan(
        self,
        sql: str,
        constraint: Constraint | None = None,
        *,
        use_plan_cache: bool = True,
    ) -> "tuple[BoundQuery, PlanChoice]":
        """Bind + optimize without executing or logging (the serving-layer
        planning path; see :meth:`CostIntelligentWarehouse.plan`)."""
        resolved = constraint or self.default_constraint
        if resolved is None:
            raise ReproError(
                "no constraint for query: pass one or give the session a default"
            )
        return self.warehouse._plan(sql, resolved, use_plan_cache)

    # -- per-tenant views ----------------------------------------------- #
    @property
    def logs(self) -> "TenantLogView":
        """This tenant's isolated view of the Statistics Service log."""
        return self.warehouse.logs.for_tenant(self.tenant)

    @property
    def bill(self) -> TenantBill:
        """This tenant's running bill (zeroed view if nothing served)."""
        return self.warehouse.billing.get(self.tenant) or TenantBill(self.tenant)

    @property
    def dollars_spent(self) -> float:
        return self.bill.dollars

    # -- serving internals ---------------------------------------------- #
    def _admit(self, handles: list[QueryHandle], *, defer_ok: bool = True) -> None:
        """Admission-check and timestamp handles in submission order.

        Done up front under the serving lock so threaded staging cannot
        perturb the clock semantics sequential submission would have,
        and so the admission controller reads billing state no finalize
        can be mutating concurrently.  When tenant budgets are
        configured, each handle gets the controller's verdict: ``DENY``
        marks the handle ``DENIED`` (typed error, no timestamp — the
        warehouse clock never advances for work that is not served);
        ``DEFER`` leaves the timestamp unassigned, to be granted by a
        re-admission at the tail of the batch; ``ADMIT``/``THROTTLE``
        proceed.  Each admitted handle also *reserves* its tenant's
        historical average cost per query, so a long batch from one
        tenant escalates mid-batch (to THROTTLE, then DEFER — whose
        tail re-check sees the real dollars and may deny) instead of
        being admitted wholesale against the bill as of batch start.
        With no budgets this is timestamping only — the pre-governance
        fast path, byte for byte.
        """
        warehouse = self.warehouse
        controller = warehouse.admission
        reserved: dict[str, float] = {}
        with warehouse._serving_lock:
            for handle in handles:
                was_deferred = handle.admission is AdmissionVerdict.DEFER
                if controller.active:
                    tenant = handle.request.tenant or self.tenant
                    bill = warehouse.billing.get(tenant)
                    verdict = controller.check(
                        tenant,
                        bill,
                        defer_ok=defer_ok,
                        reserved_dollars=reserved.get(tenant, 0.0),
                    )
                    # Verdict counters are authoritative state (budget
                    # enforcement history): journal every decision.  For
                    # a DENY this is the *only* record the query leaves
                    # — no billing, no log entry.
                    warehouse._journal_append(
                        JournalAdmissionDecision(tenant=tenant, verdict=verdict.value)
                    )
                    handle.admission = verdict
                    if verdict is AdmissionVerdict.DENY:
                        warehouse.metrics.counter(
                            "repro_queries_denied_total", tenant=tenant
                        )
                        handle._deny(
                            controller.denied_error(
                                tenant,
                                warehouse.billing.get(tenant),
                                index=handle.index,
                                sql=handle.request.sql,
                            )
                        )
                        continue
                    if verdict is AdmissionVerdict.DEFER:
                        continue
                    # Admitted: reserve the tenant's average per-query
                    # spend so later batch items see it as projected.
                    if bill is not None and bill.queries:
                        reserved[tenant] = reserved.get(tenant, 0.0) + (
                            bill.dollars / bill.queries
                        )
                at_time = handle.request.at_time
                timestamp = warehouse.clock if at_time is None else at_time
                if was_deferred:
                    # A re-admitted deferred handle finalizes behind work
                    # admitted after it; clamp its explicit at_time up to
                    # the clock so the log stays append-ordered.
                    timestamp = max(timestamp, warehouse.clock)
                warehouse.clock = max(warehouse.clock, timestamp)
                handle.timestamp = timestamp

    def _stage(self, handle: QueryHandle) -> _Staged:
        """The concurrent phase: bind -> optimize -> execute -> simulate.

        Deterministic given the request (caches only memoize pure
        planning functions and the simulator derives its own RNG), so
        outcomes, logs, and billing are exact on scheduler threads.
        The optimizer/estimator *observability counters* (stage times,
        memo hits, timing-evaluation counts) are updated without locks
        and may under-count slightly under a concurrent batch; the
        benchmark measures them on single-threaded runs only.
        """
        warehouse = self.warehouse
        request = handle.request
        handle._advance(handle.state, "queued")
        assert request.constraint is not None  # resolved at submission
        guard = warehouse._stage_guard(request.tenant)

        def on_bound(_bound: "BoundQuery") -> None:
            handle._advance(QueryState.BOUND, "bind")

        degraded = False
        degraded_mode: str | None = None
        try:
            bound, choice = warehouse._plan(
                request.sql,
                request.constraint,
                request.use_plan_cache,
                on_bound=on_bound,
                guard=guard,
            )
        except DeadlineExceededError as exc:
            if (
                guard is None
                or exc.stage != "optimize"
                or not warehouse.resilience.degraded_fallback
            ):
                raise
            # Degraded-mode serving: an optimize timeout never fails the
            # batch.  Fall back to the skeleton-cache shapes or the
            # heuristic default plan, and finish the remaining stages
            # unguarded — the request already blew its deadline; what is
            # left is completing at floor quality, not enforcing it.
            handle.retries += guard.retries
            guard = None
            bound, choice, degraded_mode = warehouse._plan_degraded(
                request.sql, request.constraint
            )
            degraded = True
            warehouse.resilience_stats.note_degraded()
        return self._finish_stage(
            handle, guard, bound, choice, degraded, degraded_mode
        )

    def _finish_stage(
        self,
        handle: QueryHandle,
        guard,
        bound: "BoundQuery",
        choice: "PlanChoice",
        degraded: bool,
        degraded_mode: str | None,
    ) -> _Staged:
        """The post-planning half of staging: execute -> simulate.

        Shared by the in-process path (:meth:`_stage`) and the sharded
        path (:meth:`_collect_sharded`), which differ only in where the
        plan came from.
        """
        warehouse = self.warehouse
        request = handle.request
        handle._advance(QueryState.PLANNED, "plan")

        batch: "Batch | None" = None
        truth = dict(request.truth) if request.truth is not None else None
        if request.execute_locally:
            if warehouse.database is None:
                raise ReproError("cannot execute locally without a Database")
            result = LocalExecutor(warehouse.database).execute(choice.plan)
            batch = result.batch
            if truth is None:
                truth = {k: float(v) for k, v in result.true_rows.items()}
            handle._advance(QueryState.PLANNED, "execute")

        sim: "SimResult | None" = None
        if request.simulate:
            assert request.policy is not None  # resolved at submission

            def simulate() -> "SimResult":
                return warehouse._simulate(
                    choice, request.constraint, request.policy, truth
                )

            sim = guard.run("simulate", simulate) if guard is not None else simulate()
            handle._advance(QueryState.SIMULATED, "simulate")
        if guard is not None:
            handle.retries += guard.retries
        return _Staged(
            bound=bound,
            choice=choice,
            batch=batch,
            sim=sim,
            degraded=degraded,
            degraded_mode=degraded_mode,
        )

    # -- sharded staging (see repro.core.sharding) ---------------------- #
    def _sharded_eligible(self, handle: QueryHandle) -> bool:
        """Whether a handle's planning can run on a worker process.

        Remote staging replicates the *parameterized cached* planning
        path only; anything else (cache bypass, local execution, the
        PR 1 exact-match-only mode) stages in-process at its collect
        position, preserving submission-order semantics.
        """
        request = handle.request
        warehouse = self.warehouse
        return (
            request.use_plan_cache
            and not request.execute_locally
            and warehouse.plan_cache is not None
            and warehouse.parameterized_serving
        )

    def _dispatch_sharded(self, handle: QueryHandle, pool) -> int | None:
        """Send one handle's planning to the pool; ``None`` = stage it
        in-process (ineligible request, or an exact-cache hit that
        needs no planning at all)."""
        if not self._sharded_eligible(handle):
            return None
        from repro.sql.parameterize import parameterize_sql

        warehouse = self.warehouse
        request = handle.request
        assert request.constraint is not None  # resolved at submission
        parameterized = parameterize_sql(request.sql)
        version = warehouse.catalog.version
        exact_key = (parameterized.normalized, request.constraint, version)
        assert warehouse.plan_cache is not None
        if warehouse.plan_cache.lookup(exact_key) is not None:
            # A hit costs no planning: the in-process stage at this
            # handle's collect position will hit the cache again.
            return None
        skeleton_hint = None
        skeleton_key = None
        if warehouse.skeleton_cache is not None:
            kind = "sla" if request.constraint.is_sla else "budget"
            skeleton_key = (parameterized.template_key, kind, version)
            skeleton_hint = warehouse.skeleton_cache.lookup(skeleton_key)
        handle._advance(handle.state, "queued")
        return pool.dispatch(
            sql=request.sql,
            constraint=request.constraint,
            template_key=parameterized.template_key,
            stats_version=version,
            skeleton_trees=skeleton_hint,
            skeleton_key=skeleton_key,
        )

    def _collect_sharded(
        self, handle: QueryHandle, pool, task_id: int
    ) -> _Staged:
        """Await one remote plan and finish staging in-process.

        Mirrors :meth:`_stage`'s degraded-fallback contract: an
        unresponsive worker surfaces as a
        :class:`~repro.errors.DeadlineExceededError` on the ``optimize``
        stage and falls back to degraded-mode planning instead of
        failing the batch.  Worker crashes never reach here — the pool
        restarts them warm and re-stages transparently.
        """
        warehouse = self.warehouse
        request = handle.request
        assert request.constraint is not None  # resolved at submission
        guard = warehouse._stage_guard(request.tenant)
        degraded = False
        degraded_mode: str | None = None
        try:
            plan = pool.result_for(task_id)
        except DeadlineExceededError as exc:
            if (
                guard is None
                or exc.stage != "optimize"
                or not warehouse.resilience.degraded_fallback
            ):
                raise
            handle.retries += guard.retries
            guard = None
            bound, choice, degraded_mode = warehouse._plan_degraded(
                request.sql, request.constraint
            )
            degraded = True
            warehouse.resilience_stats.note_degraded()
            handle._advance(QueryState.BOUND, "bind")
        else:
            bound, choice = plan.bound, plan.choice
            self._absorb_staged(handle, plan)
            handle._advance(QueryState.BOUND, "bind")
        return self._finish_stage(
            handle, guard, bound, choice, degraded, degraded_mode
        )

    def _absorb_staged(self, handle: QueryHandle, plan) -> None:
        """Fold one remote plan into the coordinator's caches.

        The exact plan cache gets the (bound, choice) pair under the
        same key and governed annotations ``_plan`` would use; freshly
        computed skeleton shapes land in the skeleton cache so later
        batches (and the degraded fallback) reuse them.  The binding
        cache is *not* written: it stores pre-MV-rewrite bindings while
        a worker returns the post-rewrite bound query, and storing the
        wrong flavor would double-rewrite on the next in-process plan.

        Handle stage timings get the worker's measured planning costs
        (``worker_bind`` / ``worker_optimize``) alongside the wall
        timings ``_advance`` records coordinator-side.
        """
        from repro.sql.parameterize import parameterize_sql

        warehouse = self.warehouse
        request = handle.request
        assert request.constraint is not None
        parameterized = parameterize_sql(request.sql)
        version = warehouse.catalog.version
        governed = warehouse._governed
        template = parameterized.template_key if governed else None
        if plan.new_skeleton_trees is not None and warehouse.skeleton_cache is not None:
            kind = "sla" if request.constraint.is_sla else "budget"
            warehouse.skeleton_cache.store(
                (parameterized.template_key, kind, version),
                plan.new_skeleton_trees,
                template=template,
                cost_s=plan.optimize_s if governed else 0.0,
            )
        assert warehouse.plan_cache is not None
        warehouse.plan_cache.store(
            (parameterized.normalized, request.constraint, version),
            plan.bound,
            plan.choice,
            template=template,
            cost_s=plan.optimize_s if governed else 0.0,
        )
        handle.stage_timings["worker_bind"] = plan.bind_s
        handle.stage_timings["worker_optimize"] = plan.optimize_s

    def _finalize(self, handle: QueryHandle, staged: _Staged) -> None:
        """The ordered phase: log, bill the tenant, track templates.

        Exactly-once: the handle's finalize latch is checked and set
        under the serving lock, so no interleaving of scheduler threads
        (or a retried finalize after a mid-batch fault) can log or bill
        the same handle twice.
        """
        warehouse = self.warehouse
        request = handle.request
        assert handle.timestamp is not None and request.constraint is not None
        assert request.tenant is not None
        with warehouse._serving_lock:
            if handle._finalized:
                return
            handle._finalized = True
            record = warehouse._log(
                request.sql,
                staged.bound,
                request.template,
                handle.timestamp,
                staged.choice,
                staged.sim,
                request.constraint,
                tenant=request.tenant,
            )
            warehouse._account(record)
            warehouse._remember_template(request.template, staged.bound)
            # Serving-event metrics (registry lock is innermost; dollar
            # amounts are integral ledger units).
            from repro.core.journal import to_ledger_units

            warehouse.metrics.counter(
                "repro_queries_served_total", tenant=record.tenant
            )
            warehouse.metrics.counter(
                "repro_serving_cost_ledger_units",
                to_ledger_units(record.dollars),
                tenant=record.tenant,
            )
            warehouse.metrics.histogram(
                "repro_query_latency_seconds",
                record.latency_s,
                tenant=record.tenant,
            )
        # Outside the serving lock (checkpoint re-acquires it): roll a
        # checkpoint when the journal's interval policy says so.
        warehouse._maybe_checkpoint()
        handle._complete(
            QueryOutcome(
                sql=request.sql,
                choice=staged.choice,
                sim=staged.sim,
                batch=staged.batch,
                record=record,
                constraint=request.constraint,
                degraded=staged.degraded,
                degraded_mode=staged.degraded_mode,
            )
        )


def _as_request(item: object, constraint: Constraint | None) -> QueryRequest:
    """Best-effort request for a handle whose item failed resolution."""
    if isinstance(item, QueryRequest):
        return item
    if isinstance(item, str):
        return QueryRequest(sql=item, constraint=constraint)
    return QueryRequest(sql=repr(item), constraint=constraint)


def _wrap_failure(handle: QueryHandle, exc: Exception) -> QueryFailedError:
    if isinstance(exc, QueryFailedError):
        return exc
    return QueryFailedError(
        str(exc),
        index=handle.index,
        sql=handle.request.sql,
        cause=exc,
        # Typed resilience errors name the stage that failed; for
        # anything else, the handle's lifecycle state at failure time
        # is the best picklable locator we have.
        stage=getattr(exc, "stage", None) or handle.state.value,
    )


def _serve_one(session: Session, handle: QueryHandle) -> bool:
    """Stage + finalize one admitted handle inline; False on failure."""
    try:
        session._finalize(handle, session._stage(handle))
        return True
    except Exception as exc:  # noqa: BLE001 - carried on the handle
        handle._fail(_wrap_failure(handle, exc))
        session.warehouse.metrics.counter(
            "repro_queries_failed_total",
            tenant=handle.request.tenant or session.tenant,
        )
        return False


# --------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------- #
class ServingScheduler:
    """Concurrent request scheduler over one session.

    Splits serving into the deterministic *stage* phase (bind ->
    optimize -> execute -> simulate), fanned out over a thread pool with
    the lock-striped plan caches shared between workers, and the ordered
    *finalize* phase (Statistics Service logging, per-tenant billing,
    template bookkeeping) applied strictly in submission order.  A
    threaded batch therefore produces bit-identical outcomes and an
    identical, deterministic log to sequential submission — enforced by
    the concurrency parity test.
    """

    def __init__(
        self,
        session: Session,
        *,
        max_workers: int | None = None,
        fail_fast: bool = False,
    ) -> None:
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 2)
        if max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        self.session = session
        self.max_workers = max_workers
        self.fail_fast = fail_fast

    def run(
        self, entries: "list[QueryRequest | QueryHandle]"
    ) -> list[QueryHandle]:
        """Serve resolved requests; already-failed handles (items that
        died during resolution) pass through in position, unscheduled.

        Admission verdicts shape the batch: ``DENIED`` handles pass
        through unserved (typed error carried; other tenants' items are
        unaffected), ``THROTTLE``\\ d handles lose batch parallelism
        (staged serially on the calling thread, finalized in submission
        order like everything else), and ``DEFER``\\ red handles are
        pushed behind the rest of the batch and re-admitted once it has
        finalized — by which point the deferring tenant's bill includes
        the batch's spend, so the re-check may deny them.
        """
        handles = [
            entry
            if isinstance(entry, QueryHandle)
            else QueryHandle(entry, index=index)
            for index, entry in enumerate(entries)
        ]
        live = [handle for handle in handles if not handle.failed]
        self.session._admit(live)
        batch = [h for h in live if h.admission is not AdmissionVerdict.DEFER]
        deferred = [h for h in live if h.admission is AdmissionVerdict.DEFER]
        self._serve(batch)
        for handle in deferred:
            # Re-admission assigns the timestamp now, so the log stays
            # append-ordered behind the batch it deferred to.
            self.session._admit([handle], defer_ok=False)
            if handle.denied:
                if self.fail_fast:
                    assert handle.error is not None
                    raise handle.error
                continue
            if not _serve_one(self.session, handle) and self.fail_fast:
                assert handle.error is not None
                raise handle.error
        return handles

    def _serve(self, batch: list[QueryHandle]) -> None:
        """Stage + finalize admitted handles, finalizing in submission
        order.  Throttled handles never enter the thread pool; denied
        handles pass through unserved — under ``fail_fast`` a denial
        aborts *at its position*, so items submitted before it are
        served, logged, and billed exactly as sequential submission
        would have (the legacy abort-the-batch contract).
        """
        worker_pool = self.session.warehouse._worker_pool
        if worker_pool is not None and worker_pool.alive:
            self._serve_sharded(batch, worker_pool)
            return

        pooled = [
            h
            for h in batch
            if not h.denied and h.admission is not AdmissionVerdict.THROTTLE
        ]
        if self.max_workers == 1 or len(pooled) <= 1:
            for handle in batch:
                if handle.denied:
                    if self.fail_fast:
                        assert handle.error is not None
                        raise handle.error
                    continue
                if not _serve_one(self.session, handle) and self.fail_fast:
                    assert handle.error is not None
                    raise handle.error
            return

        with ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="serving"
        ) as pool:
            futures = {h: pool.submit(self.session._stage, h) for h in pooled}
            for handle in batch:
                if handle.denied:
                    if self.fail_fast:
                        for pending in futures.values():
                            pending.cancel()
                        assert handle.error is not None
                        raise handle.error
                    continue
                try:
                    future = futures.get(handle)
                    staged = (
                        future.result()
                        if future is not None
                        else self.session._stage(handle)
                    )
                    self.session._finalize(handle, staged)
                except Exception as exc:  # noqa: BLE001 - carried on handle
                    handle._fail(_wrap_failure(handle, exc))
                    if self.fail_fast:
                        for pending in futures.values():
                            pending.cancel()
                        raise handle.error from exc

    def _serve_sharded(self, batch: list[QueryHandle], pool) -> None:
        """Stage over the warm worker-process pool, finalize in order.

        Two phases: dispatch every eligible handle's planning in
        submission order (pipelining — every worker starts planning
        immediately), then collect + finalize in submission order.
        Per-worker pipe FIFO plus ordered collection means each recv
        yields exactly the task being waited on.  Throttled and
        ineligible handles (and exact-cache hits) stage in-process *at
        their collect position*, exactly where the threaded path would
        run them serially.  Outcomes, logs, and bills are bit-identical
        to the threaded and sequential paths — enforced by the sharded
        parity matrix.
        """
        session = self.session
        pool.sync()
        task_ids: dict[QueryHandle, int] = {}
        for handle in batch:
            if handle.denied or handle.admission is AdmissionVerdict.THROTTLE:
                continue
            task_id = session._dispatch_sharded(handle, pool)
            if task_id is not None:
                task_ids[handle] = task_id
        for handle in batch:
            if handle.denied:
                if self.fail_fast:
                    pool.abandon(list(task_ids.values()))
                    assert handle.error is not None
                    raise handle.error
                continue
            try:
                task_id = task_ids.pop(handle, None)
                staged = (
                    session._collect_sharded(handle, pool, task_id)
                    if task_id is not None
                    else session._stage(handle)
                )
                session._finalize(handle, staged)
            except Exception as exc:  # noqa: BLE001 - carried on handle
                handle._fail(_wrap_failure(handle, exc))
                if self.fail_fast:
                    pool.abandon(list(task_ids.values()))
                    raise handle.error from exc
