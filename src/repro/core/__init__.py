"""Cost intelligence core: the bi-objective optimizer and the warehouse.

This package wires the paper's architecture (Figure 3) together: the
bi-objective optimizer turns a bound query plus a user constraint into a
cost-aware distributed plan (DAG planning -> bushy variants -> DOP
planning), and :class:`CostIntelligentWarehouse` is the user-facing
service that optimizes, provisions, executes (simulated and/or local),
meters cost, logs to the Statistics Service, and hosts background
auto-tuning.

The serving surface is the request/lifecycle API in
:mod:`repro.core.service`: a frozen :class:`QueryRequest` goes in, a
:class:`QueryHandle` tracks ``QUEUED -> BOUND -> PLANNED -> SIMULATED ->
DONE/FAILED`` (or ``DENIED``, when admission control refuses the
tenant), per-tenant :class:`Session`\\ s carry defaults and isolated
log/billing views, and the :class:`ServingScheduler` plans batches
concurrently over the lock-striped plan caches.

Resource decisions live in :mod:`repro.core.governance`, not in the
caches or sessions they govern.  Cache *retention* is a pluggable
:class:`RetentionPolicy` threaded through all three plan-cache levels:
:class:`LruPolicy` (default) evicts by recency, bit-identical to the
pre-governance warehouse; :class:`CostAwarePolicy` scores entries by the
Statistics Service's forecast template frequency times the measured
re-optimization seconds an entry saves, so hot recurring reports survive
eviction pressure (``warehouse.warm_cache`` pre-plans the hottest
forecast templates the same way).  Tenant *admission* is an
:class:`AdmissionController` consulted at ``Session._admit`` time: per
:class:`TenantBudget` dollar ceilings over the tenant's full
:class:`TenantBill` (serving + background tuning) escalate ``ADMIT ->
THROTTLE -> DEFER -> DENY``, with denials surfaced as typed
:class:`~repro.errors.AdmissionDeniedError`\\ s on the handle — one
tenant running dry never fails another tenant's in-flight batch.
"""

from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.governance import (
    AdmissionController,
    AdmissionVerdict,
    CostAwarePolicy,
    LruPolicy,
    RetentionPolicy,
    TemplateFrequencyProvider,
    TenantBudget,
    make_retention_policy,
)
from repro.core.service import (
    QueryHandle,
    QueryOutcome,
    QueryRequest,
    QueryState,
    ServingScheduler,
    Session,
    TenantBill,
)
from repro.core.warehouse import CostIntelligentWarehouse

__all__ = [
    "BiObjectiveOptimizer",
    "PlanChoice",
    "CostIntelligentWarehouse",
    "AdmissionController",
    "AdmissionVerdict",
    "CostAwarePolicy",
    "LruPolicy",
    "RetentionPolicy",
    "TemplateFrequencyProvider",
    "TenantBudget",
    "make_retention_policy",
    "QueryHandle",
    "QueryOutcome",
    "QueryRequest",
    "QueryState",
    "ServingScheduler",
    "Session",
    "TenantBill",
]
