"""Cost intelligence core: the bi-objective optimizer and the warehouse.

This package wires the paper's architecture (Figure 3) together: the
bi-objective optimizer turns a bound query plus a user constraint into a
cost-aware distributed plan (DAG planning -> bushy variants -> DOP
planning), and :class:`CostIntelligentWarehouse` is the user-facing
service that optimizes, provisions, executes (simulated and/or local),
meters cost, logs to the Statistics Service, and hosts background
auto-tuning.

The serving surface is the request/lifecycle API in
:mod:`repro.core.service`: a frozen :class:`QueryRequest` goes in, a
:class:`QueryHandle` tracks ``QUEUED -> BOUND -> PLANNED -> SIMULATED ->
DONE/FAILED`` (or ``DENIED``, when admission control refuses the
tenant), per-tenant :class:`Session`\\ s carry defaults and isolated
log/billing views, and the :class:`ServingScheduler` plans batches
concurrently over the lock-striped plan caches.

Resource decisions live in :mod:`repro.core.governance`, not in the
caches or sessions they govern.  Cache *retention* is a pluggable
:class:`RetentionPolicy` threaded through all three plan-cache levels:
:class:`LruPolicy` (default) evicts by recency, bit-identical to the
pre-governance warehouse; :class:`CostAwarePolicy` scores entries by the
Statistics Service's forecast template frequency times the measured
re-optimization seconds an entry saves, so hot recurring reports survive
eviction pressure (``warehouse.warm_cache`` pre-plans the hottest
forecast templates the same way).  Tenant *admission* is an
:class:`AdmissionController` consulted at ``Session._admit`` time: per
:class:`TenantBudget` dollar ceilings over the tenant's full
:class:`TenantBill` (serving + background tuning) escalate ``ADMIT ->
THROTTLE -> DEFER -> DENY``, with denials surfaced as typed
:class:`~repro.errors.AdmissionDeniedError`\\ s on the handle — one
tenant running dry never fails another tenant's in-flight batch.

Failure domains are hardened in :mod:`repro.core.resilience`.  The
serving stages (``bind`` / ``optimize`` / ``simulate``), the Statistics
Service forecaster, and background tuning applies are named *fault
points*; a :class:`~repro.core.resilience.ResiliencePolicy` on the
warehouse wraps the serving stages in a per-request
:class:`~repro.core.resilience.StageGuard` that (a) retries transient
failures under a :class:`~repro.core.resilience.RetryPolicy` — bounded
attempts, exponential backoff with deterministic seeded jitter, retry
dollars metered into the tenant's :class:`TenantBill` and *budget-aware*
(a tenant near ``DENY`` gets fewer attempts); (b) enforces per-request
and per-stage :class:`~repro.core.resilience.Deadline`\\ s, where an
``optimize`` timeout falls back to *degraded-mode serving* (cached
skeleton shapes, else the heuristic left-deep default plan — bit-
identical to a cold ``explore_bushy=False`` optimizer; the outcome is
marked ``degraded=True`` and the batch never fails); and (c) guards the
forecaster and the tuner with
:class:`~repro.core.resilience.CircuitBreaker`\\ s — an open statsvc
breaker degrades cost-aware retention to plain LRU, an open tuning
breaker stops a failing tuner from burning background dollars.
Failures are a deterministic, testable input: a seeded
:class:`~repro.testing.faults.FaultPlan` (``warehouse.inject_faults``)
drives the chaos suite, and ``warehouse.describe_health()`` reports
breaker states, retry/degraded counters, and the tuning service's last
swallowed error.
"""

from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.governance import (
    AdmissionController,
    AdmissionVerdict,
    CostAwarePolicy,
    LruPolicy,
    RetentionPolicy,
    TemplateFrequencyProvider,
    TenantBudget,
    make_retention_policy,
)
from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilienceStats,
    RetryPolicy,
    StageGuard,
)
from repro.core.service import (
    QueryHandle,
    QueryOutcome,
    QueryRequest,
    QueryState,
    ServingScheduler,
    Session,
    TenantBill,
)
from repro.core.warehouse import CostIntelligentWarehouse

__all__ = [
    "BiObjectiveOptimizer",
    "PlanChoice",
    "CostIntelligentWarehouse",
    "AdmissionController",
    "AdmissionVerdict",
    "CostAwarePolicy",
    "LruPolicy",
    "RetentionPolicy",
    "TemplateFrequencyProvider",
    "TenantBudget",
    "make_retention_policy",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "ResiliencePolicy",
    "ResilienceStats",
    "RetryPolicy",
    "StageGuard",
    "QueryHandle",
    "QueryOutcome",
    "QueryRequest",
    "QueryState",
    "ServingScheduler",
    "Session",
    "TenantBill",
]
