"""Cost intelligence core: the bi-objective optimizer and the warehouse.

This package wires the paper's architecture (Figure 3) together: the
bi-objective optimizer turns a bound query plus a user constraint into a
cost-aware distributed plan (DAG planning -> bushy variants -> DOP
planning), and :class:`CostIntelligentWarehouse` is the user-facing
service that optimizes, provisions, executes (simulated and/or local),
meters cost, logs to the Statistics Service, and hosts background
auto-tuning.

The serving surface is the request/lifecycle API in
:mod:`repro.core.service`: a frozen :class:`QueryRequest` goes in, a
:class:`QueryHandle` tracks ``QUEUED -> BOUND -> PLANNED -> SIMULATED ->
DONE/FAILED``, per-tenant :class:`Session`\\ s carry defaults and
isolated log/billing views, and the :class:`ServingScheduler` plans
batches concurrently over the lock-striped plan caches.
"""

from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.service import (
    QueryHandle,
    QueryOutcome,
    QueryRequest,
    QueryState,
    ServingScheduler,
    Session,
    TenantBill,
)
from repro.core.warehouse import CostIntelligentWarehouse

__all__ = [
    "BiObjectiveOptimizer",
    "PlanChoice",
    "CostIntelligentWarehouse",
    "QueryHandle",
    "QueryOutcome",
    "QueryRequest",
    "QueryState",
    "ServingScheduler",
    "Session",
    "TenantBill",
]
