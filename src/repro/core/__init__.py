"""Cost intelligence core: the bi-objective optimizer and the warehouse.

This package wires the paper's architecture (Figure 3) together: the
bi-objective optimizer turns a bound query plus a user constraint into a
cost-aware distributed plan (DAG planning -> bushy variants -> DOP
planning), and :class:`CostIntelligentWarehouse` is the user-facing
service that optimizes, provisions, executes (simulated and/or local),
meters cost, logs to the Statistics Service, and hosts background
auto-tuning.
"""

from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.warehouse import CostIntelligentWarehouse, QueryOutcome

__all__ = [
    "BiObjectiveOptimizer",
    "PlanChoice",
    "CostIntelligentWarehouse",
    "QueryOutcome",
]
