"""Cost intelligence core: the bi-objective optimizer and the warehouse.

This package wires the paper's architecture (Figure 3) together: the
bi-objective optimizer turns a bound query plus a user constraint into a
cost-aware distributed plan (DAG planning -> bushy variants -> DOP
planning), and :class:`CostIntelligentWarehouse` is the user-facing
service that optimizes, provisions, executes (simulated and/or local),
meters cost, logs to the Statistics Service, and hosts background
auto-tuning.

The serving surface is the request/lifecycle API in
:mod:`repro.core.service`: a frozen :class:`QueryRequest` goes in, a
:class:`QueryHandle` tracks ``QUEUED -> BOUND -> PLANNED -> SIMULATED ->
DONE/FAILED`` (or ``DENIED``, when admission control refuses the
tenant), per-tenant :class:`Session`\\ s carry defaults and isolated
log/billing views, and the :class:`ServingScheduler` plans batches
concurrently over the lock-striped plan caches.

Resource decisions live in :mod:`repro.core.governance`, not in the
caches or sessions they govern.  Cache *retention* is a pluggable
:class:`RetentionPolicy` threaded through all three plan-cache levels:
:class:`LruPolicy` (default) evicts by recency, bit-identical to the
pre-governance warehouse; :class:`CostAwarePolicy` scores entries by the
Statistics Service's forecast template frequency times the measured
re-optimization seconds an entry saves, so hot recurring reports survive
eviction pressure (``warehouse.warm_cache`` pre-plans the hottest
forecast templates the same way).  Tenant *admission* is an
:class:`AdmissionController` consulted at ``Session._admit`` time: per
:class:`TenantBudget` dollar ceilings over the tenant's full
:class:`TenantBill` (serving + background tuning) escalate ``ADMIT ->
THROTTLE -> DEFER -> DENY``, with denials surfaced as typed
:class:`~repro.errors.AdmissionDeniedError`\\ s on the handle — one
tenant running dry never fails another tenant's in-flight batch.

Failure domains are hardened in :mod:`repro.core.resilience`.  The
serving stages (``bind`` / ``optimize`` / ``simulate``), the Statistics
Service forecaster, and background tuning applies are named *fault
points*; a :class:`~repro.core.resilience.ResiliencePolicy` on the
warehouse wraps the serving stages in a per-request
:class:`~repro.core.resilience.StageGuard` that (a) retries transient
failures under a :class:`~repro.core.resilience.RetryPolicy` — bounded
attempts, exponential backoff with deterministic seeded jitter, retry
dollars metered into the tenant's :class:`TenantBill` and *budget-aware*
(a tenant near ``DENY`` gets fewer attempts); (b) enforces per-request
and per-stage :class:`~repro.core.resilience.Deadline`\\ s, where an
``optimize`` timeout falls back to *degraded-mode serving* (cached
skeleton shapes, else the heuristic left-deep default plan — bit-
identical to a cold ``explore_bushy=False`` optimizer; the outcome is
marked ``degraded=True`` and the batch never fails); and (c) guards the
forecaster and the tuner with
:class:`~repro.core.resilience.CircuitBreaker`\\ s — an open statsvc
breaker degrades cost-aware retention to plain LRU, an open tuning
breaker stops a failing tuner from burning background dollars.
Failures are a deterministic, testable input: a seeded
:class:`~repro.testing.faults.FaultPlan` (``warehouse.inject_faults``)
drives the chaos suite, and ``warehouse.describe_health()`` reports
breaker states, retry/degraded counters, and the tuning service's last
swallowed error.

Crash consistency lives in :mod:`repro.core.journal` and
:mod:`repro.core.recovery`.  With a :class:`WriteAheadJournal` attached
(``CostIntelligentWarehouse(journal=...)``), every authoritative state
transition — a served query's log append plus its billing delta, each
admission verdict, each retry charge, and every tuning-lifecycle edge —
is journaled *before* it is applied in memory, with periodic inline
checkpoints.  Billing accumulates in integral dyadic ledger units
(:data:`~repro.core.journal.LEDGER_SCALE` per dollar), so a replay
reproduces live totals to the last bit.  Tuning applies are a
two-record protocol: a ``TuningIntent`` carrying a declarative,
picklable :class:`~repro.core.journal.UndoSnapshot` (captured before
the catalog mutates) and a ``TuningCommit`` after; a crash between the
two leaves the apply *in doubt*, and
``CostIntelligentWarehouse.recover(journal, database=...)`` — which
restores the latest checkpoint, replays the tail in LSN order, and
resolves in-doubt records (forward if the commit landed, back via the
journaled snapshot otherwise) — guarantees no recommendation is ever
left ``APPLYING``.  The catalog/database is durable storage shared
with the crashed process; recovery rebuilds warehouse memory over the
*same* objects and never redoes storage mutations.  The kill-point
harness (:func:`~repro.testing.faults.kill` at the
:data:`~repro.testing.faults.CRASH_POINTS` record boundaries) drives
the crash-recovery chaos suite; ``describe_health()`` carries a
``durability`` block (journal length, last checkpoint, records
replayed, in-doubt resolutions).

Cost observability lives in :mod:`repro.obsvc`.  The warehouse owns a
typed :class:`~repro.obsvc.metrics.MetricsRegistry` (every metric
declared up front; dollar metrics carried in integral ledger units) that
``describe_health()``/``describe_caches()`` are read-only views over,
and a :class:`~repro.obsvc.collector.SnapshotCollector`
(``warehouse.enable_collection``, off by default) that folds the
statistics log into per-tenant :class:`~repro.obsvc.history.CostSnapshot`\\ s
on a virtual-time or query-count cadence — journaled write-ahead as
``CostSnapshotTaken`` records, so the
:class:`~repro.obsvc.history.CostHistoryStore` participates in
checkpoint/recovery like every other authoritative state.  The
:class:`~repro.obsvc.drilldown.DrillDownNavigator` decomposes spend
tenant → template family → pipeline → operator with each level an exact
integral partition of the one above, and ``warehouse.observe()``
exports the whole picture as a dict, JSON, or Prometheus text.

Process-sharded serving lives in :mod:`repro.core.sharding` (the
coordinator-side :class:`~repro.core.sharding.PlannerWorkerPool`) and
:mod:`repro.core.sharding_worker` (the worker entrypoint).  Threaded
batch serving interleaves CPU-bound planning under the GIL; with
``warehouse.enable_sharding(workers=N)`` the scheduler instead stages
``bind -> optimize`` in warm, long-lived worker *processes*, keyed by
literal-free template so each worker's private binding/skeleton caches
serve every instantiation of its templates.  Workers exchange only
picklable wire records (:class:`~repro.core.sharding.StageTask` out,
:class:`~repro.core.sharding.StagedPlan` back); every authoritative
effect — admission, billing, statistics logs, journal appends,
simulation — happens at the coordinator's ordered finalize, so sharded
output is bit-identical to the threaded and sequential paths (plans,
logs, ledger bills, admission verdicts — enforced by the sharded
parity matrix).  Crashed workers (including the seeded
``worker_crash`` fault point) restart warm with their in-flight tasks
re-staged exactly-once; an unresponsive worker surfaces as an
``optimize`` deadline and takes the degraded fallback above.  The
``worker-isolation`` lint rule machine-checks that the worker module
can never import or call the coordinator's journal/billing/logging
surfaces.

The contracts above are *machine-enforced*: ``python -m repro.analysis
--strict src tests`` (the CI ``lint`` gate — see
:mod:`repro.analysis`) lints this package's journal-before-mutate
append sites, ledger-unit billing, StageGuard-only fault handling,
virtual-time discipline, lock hygiene, worker isolation, and the
frozen warehouse constructor surface; the lock-order sanitizer
(:mod:`repro.testing.locks`) checks the runtime complement, a
cycle-free lock acquisition order, across the chaos matrix.
"""

from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.journal import (
    LEDGER_SCALE,
    Checkpoint,
    CheckpointState,
    DurableRecommendation,
    JournalEntry,
    UndoSnapshot,
    WriteAheadJournal,
    from_ledger_units,
    to_ledger_units,
)
from repro.core.recovery import RecoveryReport, recover_warehouse
from repro.core.governance import (
    AdmissionController,
    AdmissionVerdict,
    CostAwarePolicy,
    LruPolicy,
    RetentionPolicy,
    TemplateFrequencyProvider,
    TenantBudget,
    make_retention_policy,
)
from repro.core.resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    ResilienceStats,
    RetryPolicy,
    StageGuard,
)
from repro.core.service import (
    QueryHandle,
    QueryOutcome,
    QueryRequest,
    QueryState,
    ServingScheduler,
    Session,
    TenantBill,
)
from repro.core.sharding import PlannerWorkerPool
from repro.core.warehouse import CostIntelligentWarehouse

__all__ = [
    "BiObjectiveOptimizer",
    "PlanChoice",
    "CostIntelligentWarehouse",
    "AdmissionController",
    "AdmissionVerdict",
    "CostAwarePolicy",
    "LruPolicy",
    "RetentionPolicy",
    "TemplateFrequencyProvider",
    "TenantBudget",
    "make_retention_policy",
    "LEDGER_SCALE",
    "Checkpoint",
    "CheckpointState",
    "DurableRecommendation",
    "JournalEntry",
    "UndoSnapshot",
    "WriteAheadJournal",
    "from_ledger_units",
    "to_ledger_units",
    "RecoveryReport",
    "recover_warehouse",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "ResiliencePolicy",
    "ResilienceStats",
    "RetryPolicy",
    "StageGuard",
    "QueryHandle",
    "QueryOutcome",
    "QueryRequest",
    "QueryState",
    "ServingScheduler",
    "Session",
    "TenantBill",
    "PlannerWorkerPool",
]
