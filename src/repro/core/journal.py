"""Write-ahead journal of the warehouse's authoritative state transitions.

The cost-intelligence loop is only as trustworthy as the ledger behind
it: a crash that double-bills a tenant, loses logged queries that feed
the Statistics Service forecast, or strands a tuning recommendation in
``APPLYING`` with the catalog half-mutated corrupts every downstream
decision (admission, cost-aware retention, auto-tuning break-even
gates).  This module is the durability substrate:

- a small hierarchy of frozen, picklable **journal records** — one per
  authoritative transition: a served query's log append plus its billing
  delta (:class:`QueryServed`), an admission verdict
  (:class:`AdmissionDecision`), a retry's modeled compute
  (:class:`RetryCharge`), and the tuning lifecycle edges
  (:class:`TuningIntent` / :class:`TuningCommit` / :class:`TuningFailed`
  and their rollback mirrors), plus periodic :class:`Checkpoint`\\ s;
- :class:`UndoSnapshot` — a *declarative*, picklable capture of how to
  reverse a tuning action, journaled in the intent record **before**
  the catalog mutates, so recovery can roll an in-doubt apply back even
  though the live closure-based undo token died with the process;
- :class:`WriteAheadJournal` — the append-ordered, LSN-stamped record
  store the warehouse writes to (write-ahead: the record lands before
  the in-memory state it describes mutates, so redo replay is always
  sufficient).

The catalog/database object is treated as *durable storage shared with
the crashed process* (it survives, possibly half-mutated); the journal
therefore records warehouse-memory transitions, not storage bytes, and
recovery (:mod:`repro.core.recovery`) replays memory while resolving
storage via the journaled undo snapshots.

Billing is journaled and accumulated in **integral ledger units** of
``1 / LEDGER_SCALE`` dollars (a dyadic scale, so float -> unit
conversion is exact and replayed totals match live totals to the last
bit, independent of accumulation order).
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from repro.errors import JournalError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.catalog import Catalog
    from repro.engine.database import Database
    from repro.statsvc.logs import QueryRecord


# Fixed-point billing units live in :mod:`repro.util.units` so that
# modules below the core layer (e.g. :mod:`repro.core.resilience`,
# which may import only ``repro.errors`` and ``repro.util``) can meter
# dollars in the same ledger units.  Re-exported here because the
# journal is the canonical consumer and existing call sites import
# them from this module.
from repro.util.units import (  # noqa: F401  (re-export)
    LEDGER_SCALE,
    from_ledger_units,
    to_ledger_units,
)


# --------------------------------------------------------------------- #
# Undo snapshots (journaled before the catalog mutation)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class UndoSnapshot:
    """Declarative, picklable capture of how to reverse a tuning action.

    The live :class:`~repro.tuning.background.UndoAction` holds a
    closure and dies with the process; this snapshot carries the same
    prior state as plain data (captured *before* anything mutates) so
    recovery can resolve an in-doubt apply.  :meth:`apply` is
    idempotent: every step checks current state first, so resolving the
    same in-doubt record twice (a crash during recovery) is safe.
    """

    action_name: str
    kind: str  # "materialized-view" | "recluster"
    dollars: float  # what executing the reversal costs
    physical: bool
    base_tables: tuple[str, ...] = ()
    table: str | None = None
    prior_entry: object | None = None  # recluster: prior catalog entry
    prior_stored: object | None = None  # recluster (physical): prior table

    def apply(self, database: "Database | None", catalog: "Catalog") -> None:
        """Physically reverse the action; no-op for any step already done."""
        if self.kind == "materialized-view":
            name = self.action_name
            if (
                self.physical
                and database is not None
                and name in database.table_names
            ):
                database.drop_table(name)
            elif catalog.has_table(name):
                catalog.drop_table(name)
            if catalog.has_view(name):
                catalog.drop_view(name)
            return
        if self.kind == "recluster":
            assert self.table is not None and self.prior_entry is not None
            if (
                self.physical
                and database is not None
                and self.prior_stored is not None
            ):
                database.replace_table_storage(self.table, self.prior_stored)
            catalog.register_table(self.prior_entry, replace_existing=True)
            return
        raise JournalError(f"no undo semantics for action kind {self.kind!r}")


def capture_undo_snapshot(
    action, report, database: "Database | None", catalog: "Catalog"
) -> UndoSnapshot:
    """Snapshot prior state for ``action`` before anything mutates.

    Mirrors the capture the background executor performs for its live
    undo closures (:mod:`repro.tuning.background`), but as plain data —
    this is what :class:`TuningIntent` journals.
    """
    from repro.tuning.service import MaterializeView, Recluster

    if isinstance(action, MaterializeView):
        candidate = action.candidate
        physical = database is not None and all(
            t in database.table_names for t in candidate.base_tables
        )
        return UndoSnapshot(
            action_name=candidate.name,
            kind="materialized-view",
            dollars=0.0,  # dropping a view is metadata-only
            physical=physical,
            base_tables=tuple(candidate.base_tables),
        )
    if isinstance(action, Recluster):
        candidate = action.candidate
        physical = (
            database is not None and candidate.table in database.table_names
        )
        return UndoSnapshot(
            action_name=candidate.name,
            kind="recluster",
            dollars=report.one_time_dollars,  # sorting back is a rewrite
            physical=physical,
            table=candidate.table,
            prior_entry=catalog.table(candidate.table),
            prior_stored=(
                database.stored_table(candidate.table) if physical else None
            ),
        )
    raise JournalError(
        f"cannot snapshot undo state for action kind "
        f"{getattr(action, 'kind', type(action).__name__)!r}"
    )


# --------------------------------------------------------------------- #
# Journal records
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryServed:
    """One served query: its Statistics Service log record *is* its
    billing delta (dollars + machine-seconds land on ``record.tenant``)."""

    record: "QueryRecord"


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict for one query from one tenant.

    ``DENY`` decisions journal *only* this record — a denied query must
    leave no billing or log records (no timestamp, no clock advance),
    so replay restores exactly the verdict counters and nothing else.
    """

    tenant: str
    verdict: str  # AdmissionVerdict.value


@dataclass(frozen=True)
class RetryCharge:
    """One resilience retry's modeled compute, billed to the tenant."""

    tenant: str
    dollars: float


@dataclass(frozen=True)
class CostSnapshotTaken:
    """One scheduled cost-observability snapshot landed.

    Journaled write-ahead by the
    :class:`~repro.obsvc.collector.SnapshotCollector` before the
    in-memory :class:`~repro.obsvc.history.CostHistoryStore` append;
    replay re-appends idempotently by ``seq``.  ``tenants`` holds
    plain-tuple :class:`~repro.obsvc.history.TenantCostSlice` rows
    (ledger-unit totals plus the exact drill-down leaves) so the
    record stays picklable without importing the observability layer.
    """

    seq: int
    clock: float
    log_len: int
    tenants: tuple


@dataclass(frozen=True)
class TuningIntent:
    """A tuning apply is about to mutate the catalog.

    Journaled *before* the mutation, carrying the pre-mutation
    :class:`UndoSnapshot` — the write-ahead half of the two-record
    apply protocol.  An intent without a matching :class:`TuningCommit`
    at recovery time is *in doubt* and is rolled back via the snapshot.
    """

    rec_id: int
    name: str
    kind: str
    undo: UndoSnapshot
    tenant_shares: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class TuningCommit:
    """The apply's catalog mutation completed; replay re-registers the
    MV with the serving rewriter, meters the one-time dollars into the
    originating tenants' bills, and re-creates the background ledger
    entry."""

    rec_id: int
    name: str
    kind: str
    dollars: float
    tenant_shares: tuple[tuple[str, float], ...] = ()
    candidate: object | None = None  # MVCandidate for the serving rewriter
    physical: bool = False


@dataclass(frozen=True)
class TuningFailed:
    """The apply failed *in-process* (typed error, handled live): the
    recommendation moved ``APPLYING -> FAILED`` with nothing mutated.
    Replay just closes the durable record — no state effects."""

    rec_id: int
    name: str
    kind: str
    message: str = ""


@dataclass(frozen=True)
class RollbackIntent:
    """A rollback of an applied action is about to mutate the catalog.

    Carries the *original* apply-time :class:`UndoSnapshot`: if the
    process dies mid-rollback, recovery completes it forward (the user
    asked for the rollback) by re-applying the snapshot idempotently.
    """

    rec_id: int
    name: str
    kind: str
    undo: UndoSnapshot | None
    dollars: float = 0.0
    tenant_shares: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class RollbackCommit:
    """The rollback completed; replay unregisters the MV, meters the
    reversal dollars, and re-creates the ledger entry."""

    rec_id: int
    name: str
    kind: str
    dollars: float = 0.0
    tenant_shares: tuple[tuple[str, float], ...] = ()
    candidate: object | None = None
    physical: bool = False


@dataclass
class DurableRecommendation:
    """Journal-derived bookkeeping for one recommendation's lifecycle.

    Maintained identically by live appends and by replay
    (``warehouse._note_durable``), so the recovered warehouse knows
    which applies committed, which are in doubt, and how to undo them.
    ``state`` is one of ``applying`` / ``applied`` / ``failed`` /
    ``rolling_back`` / ``rolled_back``; recovery guarantees no record
    is ever left in an in-doubt state (``applying`` / ``rolling_back``).
    """

    rec_id: int
    name: str
    kind: str
    state: str
    undo: UndoSnapshot | None = None
    dollars: float = 0.0
    tenant_shares: tuple[tuple[str, float], ...] = ()
    candidate: object | None = None
    physical: bool = False
    #: Set by recovery when this record was resolved from an in-doubt
    #: state: "forward" (rollback completed) or "back" (apply undone).
    resolution: str | None = None

    @property
    def in_doubt(self) -> bool:
        return self.state in ("applying", "rolling_back")

    def copy(self) -> "DurableRecommendation":
        return replace(self)


@dataclass(frozen=True)
class CheckpointState:
    """A consistent snapshot of the warehouse's journaled state.

    Everything replay would otherwise rebuild from the full journal:
    the query log, the clock, per-tenant bills (as integral ledger-unit
    snapshots), admission verdict counters, the applied-MV registry,
    the durable tuning bookkeeping, the background-compute ledger, and
    the next recommendation id.
    """

    clock: float
    records: tuple["QueryRecord", ...]
    bills: tuple[tuple, ...]  # TenantBill.ledger_snapshot() tuples
    verdicts: tuple[tuple[str, tuple[tuple[str, int], ...]], ...]
    applied_mvs: tuple[object, ...]  # MVCandidate values
    durable_tuning: tuple[DurableRecommendation, ...]
    ledger: tuple[object, ...] = ()  # background LedgerEntry values
    next_rec_id: int = 1
    #: CostHistoryStore.as_state() rows (plain tuples); trailing default
    #: keeps pre-observability checkpoints loadable.
    cost_history: tuple = ()


@dataclass(frozen=True)
class Checkpoint:
    """A checkpoint record inline in the journal: recovery restores the
    latest one, then replays only the records after it."""

    checkpoint_id: int
    state: CheckpointState


#: Every concrete record type the journal accepts (and the order they
#: are documented in) — used by validation and the round-trip tests.
RECORD_TYPES = (
    QueryServed,
    AdmissionDecision,
    RetryCharge,
    CostSnapshotTaken,
    TuningIntent,
    TuningCommit,
    TuningFailed,
    RollbackIntent,
    RollbackCommit,
    Checkpoint,
)


# --------------------------------------------------------------------- #
# The journal
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class JournalEntry:
    """One appended record, stamped with its log sequence number (LSN,
    1-based, gap-free, append-ordered)."""

    lsn: int
    record: object


class WriteAheadJournal:
    """Append-ordered, LSN-stamped store of warehouse state transitions.

    The warehouse appends a record *before* applying the in-memory
    mutation it describes (redo semantics), so replaying the journal
    from the latest :class:`Checkpoint` restores a bit-identical
    ledger.  Thread-safe; ``checkpoint_every`` (records between
    checkpoints) drives the warehouse's automatic checkpointing —
    ``None`` disables it (explicit ``warehouse.checkpoint()`` only).
    """

    def __init__(self, *, checkpoint_every: int | None = None) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise JournalError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.checkpoint_every = checkpoint_every
        self._entries: list[JournalEntry] = []
        self._lock = threading.Lock()
        self._next_checkpoint_id = 1
        self._last_checkpoint_lsn = 0  # 0 = no checkpoint yet

    def append(self, record: object) -> JournalEntry:
        """Append one record; returns its LSN-stamped entry."""
        if not isinstance(record, RECORD_TYPES):
            raise JournalError(
                f"unknown journal record type {type(record).__name__!r}"
            )
        with self._lock:
            entry = JournalEntry(lsn=len(self._entries) + 1, record=record)
            self._entries.append(entry)
            if isinstance(record, Checkpoint):
                self._last_checkpoint_lsn = entry.lsn
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self, *, after_lsn: int = 0) -> list[JournalEntry]:
        """All entries with ``lsn > after_lsn``, in LSN order."""
        with self._lock:
            return self._entries[after_lsn:]

    def last_checkpoint(self) -> JournalEntry | None:
        """The most recent :class:`Checkpoint` entry, if any."""
        with self._lock:
            if self._last_checkpoint_lsn == 0:
                return None
            return self._entries[self._last_checkpoint_lsn - 1]

    @property
    def last_checkpoint_id(self) -> int | None:
        entry = self.last_checkpoint()
        if entry is None:
            return None
        assert isinstance(entry.record, Checkpoint)
        return entry.record.checkpoint_id

    @property
    def records_since_checkpoint(self) -> int:
        """Appends since the latest checkpoint (drives auto-checkpointing)."""
        with self._lock:
            return len(self._entries) - self._last_checkpoint_lsn

    def next_checkpoint_id(self) -> int:
        with self._lock:
            checkpoint_id = self._next_checkpoint_id
            self._next_checkpoint_id += 1
            return checkpoint_id

    # -- persistence ---------------------------------------------------- #
    def save(self, path: str) -> None:
        """Serialize the journal to ``path`` (pickle)."""
        with self._lock:
            payload = {
                "entries": list(self._entries),
                "checkpoint_every": self.checkpoint_every,
                "next_checkpoint_id": self._next_checkpoint_id,
            }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

    @classmethod
    def load(cls, path: str) -> "WriteAheadJournal":
        """Rebuild a journal from :meth:`save` output."""
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            entries = payload["entries"]
            journal = cls(checkpoint_every=payload.get("checkpoint_every"))
        except (OSError, pickle.PickleError, KeyError, EOFError) as exc:
            raise JournalError(f"cannot load journal from {path!r}: {exc}")
        journal._entries = list(entries)
        last_cp = 0
        for entry in journal._entries:
            if isinstance(entry.record, Checkpoint):
                last_cp = entry.lsn
        journal._last_checkpoint_lsn = last_cp
        journal._next_checkpoint_id = payload.get("next_checkpoint_id", 1)
        return journal

    def describe(self) -> str:
        with self._lock:
            total = len(self._entries)
            since = total - self._last_checkpoint_lsn
        return (
            f"journal: {total} records, last checkpoint "
            f"{self.last_checkpoint_id}, {since} since"
        )


def shares_tuple(shares: "dict[str, float] | None") -> tuple[tuple[str, float], ...]:
    """Canonical journaled form of a tenant-shares mapping (sorted, so
    record equality and replay metering order are deterministic)."""
    if not shares:
        return ()
    return tuple(sorted(shares.items()))


def shares_dict(shares: Iterable[tuple[str, float]]) -> dict[str, float]:
    return dict(shares)
