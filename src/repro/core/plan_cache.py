"""Serving-layer plan caches for the cost-intelligent warehouse.

Analytical traffic is dominated by recurring report templates — the same
SQL shapes resubmitted with *varying literals* under the same
constraints.  Re-running the bi-objective optimizer for each arrival
wastes exactly the machine time the paper's economics are about, so the
warehouse memoizes planning work at two levels:

- **Exact level** (:class:`PlanCache`): the full
  :class:`~repro.core.bioptimizer.PlanChoice` keyed on the *normalized*
  SQL token stream (whitespace, letter case, and comments do not
  fragment the cache), the user constraint, and the catalog's stats
  version.  A verbatim resubmission pays nothing.
- **Skeleton level** (:class:`SkeletonCache`): the template's *plan
  skeleton* — the DP-chosen join tree plus its bushy variant shapes —
  keyed on the literal-free template key
  (:func:`~repro.sql.parameterize.parameterize_sql`), the constraint
  kind, and the stats version.  A resubmission with new literals skips
  join-order DP and bushy generation and re-runs only constant binding,
  cardinality re-estimation over the cached shapes, and the incremental
  DOP search — bit-identical to fresh optimization whenever the new
  literals would lead the DP to the same shapes (enforced on the
  workload suite by ``tests/cost/test_estimation_parity.py`` and the
  benchmark's parity guard).

The stats version inside both keys is the invalidation story: any
catalog mutation (stats refresh, recluster, MV creation, table DDL)
bumps the version, so stale entries can never be served — they simply
stop matching and age out of the LRU.  ``invalidate()`` exists for
explicit flushes (e.g. hardware recalibration, which changes cost
without touching the catalog).

Retention
---------

*Which* entry leaves a full stripe is delegated to a pluggable
:class:`~repro.core.governance.RetentionPolicy`.  The default
:class:`~repro.core.governance.LruPolicy` evicts the stripe's
least-recently-used entry — bit-identical (plans, hit/miss/eviction
counters) to the pre-governance hardcoded behavior.  A
:class:`~repro.core.governance.CostAwarePolicy` instead scores entries
by forecast template frequency times re-optimization cost saved, so hot
recurring templates survive eviction pressure that plain recency would
age them out of; the warehouse attaches the scoring metadata via
``cache.policy.record(...)`` when it stores an entry.

Thread safety
-------------

The :class:`~repro.core.service.ServingScheduler` plans concurrently, so
every cache is a *lock-striped* LRU: keys hash onto one of N stripes,
each a lock-guarded OrderedDict with ``capacity / N`` slots.  Planning
threads touching different templates never contend on the same lock, and
the per-stripe recency is exact within its stripe (global recency is
approximate under striping, which only matters under eviction pressure).
Small capacities collapse to a single stripe, so the sequential eviction
semantics the unit tests pin down are unchanged below
``_MIN_STRIPE_CAPACITY`` entries per stripe.  Victim selection runs
under the stripe lock; policies guard their own shared metadata.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.governance import LruPolicy, RetentionPolicy
from repro.sql.parameterize import normalize_sql  # noqa: F401  (re-export)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bioptimizer import PlanChoice
    from repro.optimizer.join_order import JoinTree, Leaf
    from repro.sql.binder import BoundQuery

#: Upper bound on stripes per cache; more stripes than planning threads
#: buys nothing.
_MAX_STRIPES = 8
#: Don't split a cache into stripes smaller than this — tiny stripes
#: evict under no memory pressure and tiny caches are only used by unit
#: tests that pin down exact sequential LRU behavior.
_MIN_STRIPE_CAPACITY = 64


class _Stripe:
    """One lock-guarded LRU shard."""

    __slots__ = ("lock", "capacity", "entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.capacity = capacity
        self.entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class _LruStats:
    """Shared lock-striped LRU bookkeeping with hit/miss counters."""

    def __init__(
        self,
        capacity: int,
        name: str,
        *,
        stripes: int | None = None,
        policy: RetentionPolicy | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"{name} capacity must be >= 1, got {capacity}")
        if stripes is None:
            stripes = max(1, min(_MAX_STRIPES, capacity // _MIN_STRIPE_CAPACITY))
        if stripes < 1:
            raise ValueError(f"{name} stripe count must be >= 1, got {stripes}")
        stripes = min(stripes, capacity)
        self.capacity = capacity
        self.name = name
        #: Who decides evictions; one policy instance per cache (its
        #: metadata is keyed by this cache's keys).
        self.policy = policy or LruPolicy()
        base, extra = divmod(capacity, stripes)
        self._stripes = tuple(
            _Stripe(base + (1 if index < extra else 0)) for index in range(stripes)
        )

    @property
    def stripe_count(self) -> int:
        return len(self._stripes)

    def _stripe(self, key: Hashable) -> _Stripe:
        return self._stripes[hash(key) % len(self._stripes)]

    def _get(self, key: Hashable):
        stripe = self._stripe(key)
        with stripe.lock:
            found = stripe.entries.get(key)
            if found is None:
                stripe.misses += 1
                return None
            stripe.entries.move_to_end(key)
            stripe.hits += 1
            return found

    def _put(
        self,
        key: Hashable,
        value: object,
        *,
        template: Hashable | None = None,
        cost_s: float = 0.0,
    ) -> None:
        stripe = self._stripe(key)
        with stripe.lock:
            stripe.entries[key] = value
            stripe.entries.move_to_end(key)
            if template is not None:
                # Metadata must land before victim selection: the entry
                # being stored competes in its own store's eviction, and
                # an unscored newcomer would evict itself against any
                # scored resident (and leak its metadata, recorded after
                # the fact for a key no longer present).
                self.policy.record(key, template=template, cost_s=cost_s)
            while len(stripe.entries) > stripe.capacity:
                victim = self.policy.victim(stripe.entries)
                del stripe.entries[victim]
                stripe.evictions += 1
                self.policy.on_evict(victim)

    def invalidate(self) -> None:
        """Drop every cached entry (and the policy's per-key metadata)."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.entries.clear()
        self.policy.clear()

    def export_state(self) -> tuple[tuple[Hashable, object], ...]:
        """Snapshot the cached entries as ``(key, value)`` pairs.

        Entries come out stripe by stripe, least-recently-used first
        within each stripe, so replaying them through
        :meth:`import_state` reproduces the per-stripe recency order.
        The warm hand-off to planner worker processes pickles this
        snapshot into the :class:`~repro.core.sharding.WorkerSpec`; the
        values themselves must therefore be picklable (skeleton trees
        and bound/choice pairs are — see ``tests/core/test_pickling.py``).
        """
        pairs: list[tuple[Hashable, object]] = []
        for stripe in self._stripes:
            with stripe.lock:
                pairs.extend(stripe.entries.items())
        return tuple(pairs)

    def import_state(
        self, pairs: Iterable[tuple[Hashable, object]]
    ) -> None:
        """Replay exported ``(key, value)`` pairs into this cache.

        Insertion goes through the normal store path, so capacity and
        the retention policy apply; importing more entries than fit
        simply evicts as usual.
        """
        for key, value in pairs:
            self._put(key, value)

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (benchmark warmup)."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.hits = 0
                stripe.misses = 0
                stripe.evictions = 0
        self.policy.reset_stats()

    def __len__(self) -> int:
        return sum(len(stripe.entries) for stripe in self._stripes)

    @property
    def hits(self) -> int:
        return sum(stripe.hits for stripe in self._stripes)

    @property
    def misses(self) -> int:
        return sum(stripe.misses for stripe in self._stripes)

    @property
    def evictions(self) -> int:
        return sum(stripe.evictions for stripe in self._stripes)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self)}/{self.capacity} entries "
            f"({self.stripe_count} stripe(s), {self.policy.name} retention), "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%}), {self.evictions} evictions"
        )


class PlanCache(_LruStats):
    """A bounded LRU of optimized plans (the exact-match level).

    Values are ``(bound_query, plan_choice)`` pairs: the bound query is
    needed downstream for logging and template bookkeeping, and binding
    is part of the work the cache amortizes.
    """

    def __init__(
        self, capacity: int = 256, *, policy: RetentionPolicy | None = None
    ) -> None:
        super().__init__(capacity, "plan cache", policy=policy)

    def lookup(self, key: Hashable) -> tuple["BoundQuery", "PlanChoice"] | None:
        return self._get(key)  # type: ignore[return-value]

    def store(
        self,
        key: Hashable,
        bound: "BoundQuery",
        choice: "PlanChoice",
        *,
        template: Hashable | None = None,
        cost_s: float = 0.0,
    ) -> None:
        self._put(key, (bound, choice), template=template, cost_s=cost_s)


class BindingCache(_LruStats):
    """A bounded LRU of bound queries keyed on normalized SQL.

    Binding is constraint-independent, so one entry serves every
    constraint a query is planned under — and because the optimizer's
    DAG-planning memo and the estimator's timing cache key on object
    identity, reusing the *same* :class:`BoundQuery` across constraints
    transitively shares physical planning and pipeline timings too.
    """

    def __init__(
        self, capacity: int = 256, *, policy: RetentionPolicy | None = None
    ) -> None:
        super().__init__(capacity, "binding cache", policy=policy)

    def lookup(self, key: Hashable) -> "BoundQuery | None":
        return self._get(key)  # type: ignore[return-value]

    def store(
        self,
        key: Hashable,
        bound: "BoundQuery",
        *,
        template: Hashable | None = None,
        cost_s: float = 0.0,
    ) -> None:
        self._put(key, bound, template=template, cost_s=cost_s)


class SkeletonCache(_LruStats):
    """A bounded LRU of template plan skeletons (the parameterized level).

    Values are tuples of join-tree shapes — the DP winner plus its bushy
    variants, in the exact order the optimizer would generate them.
    Shapes reference only table names and join edges (no literals), so
    one entry serves every instantiation of the template.
    """

    def __init__(
        self, capacity: int = 256, *, policy: RetentionPolicy | None = None
    ) -> None:
        super().__init__(capacity, "skeleton cache", policy=policy)

    def lookup(self, key: Hashable) -> tuple["JoinTree | Leaf", ...] | None:
        return self._get(key)  # type: ignore[return-value]

    def store(
        self,
        key: Hashable,
        trees: tuple["JoinTree | Leaf", ...],
        *,
        template: Hashable | None = None,
        cost_s: float = 0.0,
    ) -> None:
        self._put(key, tuple(trees), template=template, cost_s=cost_s)
