"""Serving-layer plan cache for the cost-intelligent warehouse.

Analytical traffic is dominated by recurring report templates — the same
SQL shapes resubmitted with the same constraints.  Re-running the
bi-objective optimizer for each arrival wastes exactly the machine time
the paper's economics are about, so the warehouse memoizes the full
:class:`~repro.core.bioptimizer.PlanChoice` keyed on:

- the *normalized* SQL text (token stream: whitespace, letter case, and
  comments do not fragment the cache),
- the user constraint (SLA seconds or budget dollars), and
- the catalog's stats version.

The stats version inside the key is the invalidation story: any catalog
mutation (stats refresh, recluster, MV creation, table DDL) bumps the
version, so stale entries can never be served — they simply stop
matching and age out of the LRU.  ``invalidate()`` exists for explicit
flushes (e.g. hardware recalibration, which changes cost without
touching the catalog).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.sql.lexer import TokenType, tokenize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bioptimizer import PlanChoice
    from repro.sql.binder import BoundQuery


def normalize_sql(sql: str) -> tuple:
    """Whitespace/case/comment-insensitive identity of a SQL text.

    Returns the token stream as a hashable tuple of ``(kind, text)``
    pairs; the lexer already lowercases keywords and identifiers and
    drops comments, so formatting differences collapse to one key.
    String and numeric literals keep their exact text — two queries with
    different parameters are different plans.
    """
    return tuple(
        (token.type.name, token.text)
        for token in tokenize(sql)
        if token.type is not TokenType.EOF
    )


class PlanCache:
    """A bounded LRU of optimized plans.

    Values are ``(bound_query, plan_choice)`` pairs: the bound query is
    needed downstream for logging and template bookkeeping, and binding
    is part of the work the cache amortizes.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple["BoundQuery", "PlanChoice"]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def lookup(self, key: Hashable) -> tuple["BoundQuery", "PlanChoice"] | None:
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return found

    def store(self, key: Hashable, bound: "BoundQuery", choice: "PlanChoice") -> None:
        self._entries[key] = (bound, choice)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every cached plan."""
        self._entries.clear()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"plan cache: {len(self._entries)}/{self.capacity} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%}), {self.evictions} evictions"
        )
