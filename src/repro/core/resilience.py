"""Failure-domain hardening for the serving stack: retries, deadlines,
circuit breakers, and degraded-mode fallbacks.

The paper's premise is a *production* cloud warehouse: cost intelligence
has to keep working when a component misbehaves, and — following the
"Saving Money for Analytical Workloads in the Cloud" framing — failure
handling itself costs dollars, so it must be metered and budget-aware
like everything else.  This module holds the three mechanisms and the
per-request guard that applies them:

- :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* seeded jitter (:func:`repro.util.rng.derive_rng`, so a
  replayed fault schedule produces byte-identical backoff sequences).
  Only :class:`~repro.errors.TransientError` subclasses retry:
  deterministic user errors (bind/parse failures, infeasible
  constraints) re-fail identically on every attempt and propagate
  immediately, keeping fault-free behavior bit-identical to the
  pre-resilience serving path.  Retries are *budget-aware*: the serving
  layer maps the tenant's admission pressure to
  :meth:`RetryPolicy.attempts_for`, so a tenant near ``DENY`` gets
  fewer attempts, and every backoff's modeled compute is charged to the
  tenant's :class:`~repro.core.service.TenantBill` as ``retry_dollars``
  (visible to admission on the next check).
- :class:`Deadline` — per-request and per-stage timeout enforcement.
  Wall time plus *virtual* charged seconds (injected latency spikes,
  retry backoffs) count against the deadline; expiry raises a typed
  :class:`~repro.errors.DeadlineExceededError` naming the stage.  An
  ``optimize`` deadline never fails the query: the serving layer falls
  back to degraded-mode planning (skeleton-cache shapes, else the
  heuristic left-deep default plan — bit-identical to a cold
  ``explore_bushy=False`` optimizer) and marks the outcome
  ``degraded=True``.
- :class:`CircuitBreaker` — a CLOSED -> OPEN -> HALF_OPEN state machine
  guarding the Statistics Service forecaster (an open breaker degrades
  cost-aware retention scoring to plain LRU) and background tuning (an
  open breaker stops a failing tuner from burning background dollars).
  Cooldown is measured in *denied calls*, not wall-clock seconds, so
  breaker transitions are deterministic under test fault schedules.

Layering: this module imports only :mod:`repro.errors` and
:mod:`repro.util` — governance, serving, and tuning all sit above it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    RetryExhaustedError,
    TransientError,
)
from repro.util.rng import derive_rng
from repro.util.units import from_ledger_units, to_ledger_units


# --------------------------------------------------------------------- #
# Retry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, budget-aware retries with deterministic seeded jitter.

    ``backoff_s(stage, attempt)`` is a pure function of the policy seed,
    the stage name, and the attempt number — two runs of the same fault
    schedule back off (and bill) identically.  ``dollars_per_retry_s``
    prices the modeled compute a retry burns (the backoff window spent
    holding serving resources), metered into the tenant's bill.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    dollars_per_retry_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_multiplier < 1.0:
            raise ReproError(
                "backoff must satisfy base >= 0 and multiplier >= 1, got "
                f"base={self.backoff_base_s}, multiplier={self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, stage: str, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (1-based)."""
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if self.jitter == 0.0:
            return base
        rng = derive_rng(self.seed, "retry-backoff", stage, str(attempt))
        # Jitter within [1 - jitter, 1 + jitter], seeded per (stage,
        # attempt) so adding a retry elsewhere never perturbs this one.
        return base * (1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0))

    def attempts_for(self, pressure: int) -> int:
        """Allowed attempts under admission ``pressure``.

        ``pressure`` is the ordinal of the tenant's admission verdict
        (0=admit, 1=throttle, 2=defer, 3=deny): each escalation step
        costs one attempt, floored at a single try — a tenant out of
        budget still gets its query served once, but pays for no
        retries.
        """
        return max(1, self.max_attempts - max(0, int(pressure)))


# --------------------------------------------------------------------- #
# Deadlines
# --------------------------------------------------------------------- #
class Deadline:
    """A budget of seconds: wall time plus virtually charged seconds.

    ``charge()`` adds virtual time (injected latency spikes, retry
    backoffs — modeled, never slept) so fault schedules trip deadlines
    deterministically regardless of host speed.  ``None`` seconds means
    no deadline (every check passes).
    """

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and seconds <= 0:
            raise ReproError(f"deadline seconds must be positive, got {seconds}")
        self.seconds = seconds
        self._started = time.perf_counter()
        self._charged = 0.0

    def charge(self, seconds: float) -> None:
        """Count ``seconds`` of virtual time against this deadline."""
        self._charged += max(0.0, seconds)

    @property
    def elapsed_s(self) -> float:
        return (time.perf_counter() - self._started) + self._charged

    @property
    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed_s >= self.seconds

    def check(self, stage: str) -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if expired."""
        if self.expired:
            assert self.seconds is not None
            raise DeadlineExceededError(
                f"stage {stage!r} exceeded deadline "
                f"({self.elapsed_s:.3f}s elapsed of {self.seconds:.3f}s)",
                stage=stage,
                deadline_s=self.seconds,
                elapsed_s=self.elapsed_s,
            )


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #
class BreakerState(Enum):
    """Classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN guard around one failing dependency.

    ``failure_threshold`` consecutive failures open the breaker; while
    OPEN, :meth:`allow` denies calls (callers skip the dependency and
    use their degraded path).  After ``cooldown_calls`` denials the
    breaker moves to HALF_OPEN and allows one probe: a recorded success
    closes it, a failure re-opens it.  Cooldown counts *denied calls*
    rather than wall-clock time so state transitions are deterministic
    under seeded fault schedules.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        cooldown_calls: int = 8,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_calls < 1:
            raise ReproError(f"cooldown_calls must be >= 1, got {cooldown_calls}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_calls = cooldown_calls
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._denied_since_open = 0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Whether the caller should attempt the guarded dependency."""
        with self._lock:
            if self.state is BreakerState.CLOSED:
                return True
            if self.state is BreakerState.HALF_OPEN:
                return True
            self._denied_since_open += 1
            if self._denied_since_open >= self.cooldown_calls:
                self.state = BreakerState.HALF_OPEN
                return True  # the probe call
            return False

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self.state = BreakerState.CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if self.state is BreakerState.HALF_OPEN or (
                self.state is BreakerState.CLOSED
                and self.consecutive_failures >= self.failure_threshold
            ):
                self.state = BreakerState.OPEN
                self.opens += 1
                self._denied_since_open = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state.value,
                "consecutive_failures": self.consecutive_failures,
                "opens": self.opens,
            }


# --------------------------------------------------------------------- #
# Policy + per-request guard
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResiliencePolicy:
    """Warehouse-level resilience configuration.

    ``enabled=False`` removes every wrapper (the benchmark's A/B
    baseline: the pre-resilience serving path, byte for byte).  Stage
    deadlines are keyed by fault-point name (``bind`` / ``optimize`` /
    ``simulate``); the request deadline spans all of one submission's
    stages.  ``degraded_fallback`` controls whether an ``optimize``
    deadline falls back to degraded-mode planning instead of failing.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    request_deadline_s: float | None = None
    stage_deadline_s: Mapping[str, float] = field(default_factory=dict)
    degraded_fallback: bool = True
    enabled: bool = True


class ResilienceStats:
    """Thread-safe counters for ``warehouse.describe_health()``.

    Retry dollars accumulate in integral ledger units (the same
    fixed-point scale as :class:`~repro.core.service.TenantBill` and the
    journal), so the health snapshot's total matches the sum of the
    per-tenant ``retry_dollars`` metered onto bills bit for bit,
    independent of accumulation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.retries = 0
        self._retry_units = 0
        self.deadline_hits = 0
        self.degraded_queries = 0

    @property
    def retry_dollars(self) -> float:
        return from_ledger_units(self._retry_units)

    @property
    def retry_units(self) -> int:
        """Retry spend in integral ledger units (the exact form the
        metrics registry and billing reconciliation consume)."""
        return self._retry_units

    def note_retry(self, dollars: float) -> None:
        with self._lock:
            self.retries += 1
            self._retry_units += to_ledger_units(dollars)

    def note_deadline(self) -> None:
        with self._lock:
            self.deadline_hits += 1

    def note_degraded(self) -> None:
        with self._lock:
            self.degraded_queries += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "retries": self.retries,
                "retry_dollars": from_ledger_units(self._retry_units),
                "deadline_hits": self.deadline_hits,
                "degraded_queries": self.degraded_queries,
            }

    def reset(self) -> None:
        """Zero every counter (benchmark warmup resets, alongside
        ``warehouse.reset_cache_stats()``)."""
        with self._lock:
            self.retries = 0
            self._retry_units = 0
            self.deadline_hits = 0
            self.degraded_queries = 0


class StageGuard:
    """Applies faults, deadlines, and retries around one request's stages.

    Built per admitted request by the warehouse
    (:meth:`~repro.core.warehouse.CostIntelligentWarehouse._stage_guard`)
    and threaded through ``Session._stage`` into the planning path.
    ``run(stage, fn)`` is the only entry point: it draws the stage's
    fault decision (if a :class:`~repro.testing.faults.FaultPlan` is
    active), charges injected latency against the deadlines, retries
    transient failures within the budget-aware attempt allowance, and
    surfaces terminal failures as typed errors
    (:class:`~repro.errors.DeadlineExceededError`,
    :class:`~repro.errors.RetryExhaustedError`, or the original
    non-transient exception).
    """

    def __init__(
        self,
        policy: ResiliencePolicy,
        *,
        attempts: int,
        fault_decision: "Callable[[str], object | None] | None" = None,
        charge_retry: Callable[[float], None] | None = None,
        stats: ResilienceStats | None = None,
    ) -> None:
        self.policy = policy
        self.attempts = max(1, attempts)
        self._fault_decision = fault_decision
        self._charge_retry = charge_retry
        self._stats = stats
        self.deadline = Deadline(policy.request_deadline_s)
        self.retries = 0

    def run(self, stage: str, fn: Callable[[], object]) -> object:
        """Execute ``fn`` under this guard's fault/deadline/retry rules."""
        stage_limit = self.policy.stage_deadline_s.get(stage)
        stage_deadline = Deadline(stage_limit) if stage_limit is not None else None
        attempt = 0
        while True:
            attempt += 1
            decision = (
                self._fault_decision(stage)
                if self._fault_decision is not None
                else None
            )
            try:
                if decision is not None:
                    latency = getattr(decision, "latency_s", 0.0)
                    if latency:
                        self.deadline.charge(latency)
                        if stage_deadline is not None:
                            stage_deadline.charge(latency)
                    self._check(stage, stage_deadline)
                    error = getattr(decision, "error", None)
                    if error is not None:
                        raise error
                else:
                    self._check(stage, stage_deadline)
                return fn()
            except TransientError as exc:
                if attempt >= self.attempts:
                    if attempt == 1:
                        # No retry budget was available (tenant out of
                        # headroom, or max_attempts=1): surface the
                        # failure as-is rather than claiming exhaustion.
                        self._name_stage(exc, stage)
                        raise
                    raise RetryExhaustedError(
                        f"stage {stage!r} failed {attempt} times "
                        f"(last: {type(exc).__name__}: {exc})",
                        stage=stage,
                        attempts=attempt,
                        cause_type=type(exc).__name__,
                        cause_message=str(exc),
                    ) from exc
                backoff = self.policy.retry.backoff_s(stage, attempt)
                # Backoff is modeled, not slept: it charges the
                # deadlines and bills the tenant's retry dollars.
                self.deadline.charge(backoff)
                if stage_deadline is not None:
                    stage_deadline.charge(backoff)
                dollars = backoff * self.policy.retry.dollars_per_retry_s
                if self._charge_retry is not None:
                    self._charge_retry(dollars)
                if self._stats is not None:
                    self._stats.note_retry(dollars)
                self.retries += 1
                self._check(stage, stage_deadline)
            except ReproError as exc:
                # Deterministic (non-transient) failures propagate on
                # the first attempt — but still leave the guard knowing
                # which stage broke, for the picklable cause chain.
                self._name_stage(exc, stage)
                raise

    @staticmethod
    def _name_stage(exc: BaseException, stage: str) -> None:
        if getattr(exc, "stage", None) is None:
            exc.stage = stage

    def _check(self, stage: str, stage_deadline: Deadline | None) -> None:
        try:
            self.deadline.check(stage)
            if stage_deadline is not None:
                stage_deadline.check(stage)
        except DeadlineExceededError:
            if self._stats is not None:
                self._stats.note_deadline()
            raise
