"""Resource governance: policy-driven cache retention + tenant admission.

The paper's thesis is that the warehouse should spend compute and memory
where the *dollars* say to, not where raw recency says to.  Before this
module, the serving stack made its two resource decisions implicitly:
plan retention was three plain LRUs (an entry survived eviction pressure
exactly as long as it was recently touched), and admission was
unconditional (every query of every tenant was served regardless of what
the tenant had already spent).  Both decisions now live here, behind
explicit, pluggable objects the warehouse wires through serving,
statistics, and billing:

- **Retention** (:class:`RetentionPolicy`): which cache entry to evict
  when a lock-striped plan cache exceeds capacity.  :class:`LruPolicy`
  is the default and is bit-identical to the pre-governance behavior.
  :class:`CostAwarePolicy` scores each entry by *forecast-fed template
  frequency* (from the Statistics Service log, via
  :class:`TemplateFrequencyProvider`) times the *re-optimization cost
  saved* (the measured planning seconds the entry amortizes), so a hot
  recurring report's skeleton survives eviction pressure that plain
  recency would age out.
- **Admission** (:class:`AdmissionController`): whether to serve a
  tenant's query at all, given the tenant's running
  :class:`~repro.core.service.TenantBill` (serving *plus* background
  tuning spend) against a configured :class:`TenantBudget`.  Verdicts
  escalate ``ADMIT -> THROTTLE -> DEFER -> DENY`` as spend approaches
  the budget; a denial surfaces as a typed
  :class:`~repro.errors.AdmissionDeniedError` and a ``DENIED`` terminal
  state on the :class:`~repro.core.service.QueryHandle`, never as a
  failure of other tenants' in-flight work.

Layering: this module sits between the Statistics Service (it *reads*
logs and forecasts) and the serving layer (which *consults* it); it
imports neither :mod:`repro.core.plan_cache` nor
:mod:`repro.core.service` at runtime, so caches and sessions can depend
on it without cycles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Mapping

from repro.errors import AdmissionDeniedError, ReproError
from repro.statsvc.forecast import WorkloadForecaster

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import OrderedDict

    from repro.core.resilience import CircuitBreaker
    from repro.core.service import TenantBill
    from repro.statsvc.logs import QueryLogStore

#: Retention policies constructible by name (the warehouse constructor's
#: ``retention_policy`` argument).
RETENTION_POLICY_NAMES = ("lru", "cost-aware")


# --------------------------------------------------------------------- #
# Retention policies
# --------------------------------------------------------------------- #
class RetentionPolicy:
    """Pluggable eviction decision for one lock-striped serving cache.

    The cache calls :meth:`victim` under the stripe lock whenever a
    stripe exceeds capacity, :meth:`record` when the warehouse stores an
    entry (attaching the template identity and the planning seconds the
    entry saves), :meth:`on_evict` after removing the chosen victim, and
    :meth:`clear` on explicit invalidation.  One policy instance governs
    one cache (metadata is keyed by that cache's keys); construct a
    fresh instance per cache via :func:`make_retention_policy`.
    """

    name = "retention"

    def __init__(self) -> None:
        #: Evictions decided by this policy (per-policy counter, distinct
        #: from the cache's lifetime ``evictions`` total only when the
        #: policy is swapped mid-flight).
        self.evictions = 0
        self._lock = threading.Lock()

    def victim(self, entries: "OrderedDict[Hashable, object]") -> Hashable:
        """The key to evict; ``entries`` iterates LRU -> MRU."""
        raise NotImplementedError

    def record(
        self,
        key: Hashable,
        *,
        template: Hashable | None = None,
        cost_s: float = 0.0,
    ) -> None:
        """Metadata hook: ``key`` was stored for ``template`` and took
        ``cost_s`` seconds of planning work to produce (the re-optimization
        cost an eviction would re-incur).  No-op for recency policies."""

    def on_evict(self, key: Hashable) -> None:
        with self._lock:
            self.evictions += 1

    def clear(self) -> None:
        """Drop per-key metadata (the cache was invalidated)."""

    def reset_stats(self) -> None:
        with self._lock:
            self.evictions = 0


class LruPolicy(RetentionPolicy):
    """Evict the least-recently-used entry — the pre-governance default.

    ``victim`` returns the front of the stripe's ordered dict, which is
    exactly what ``popitem(last=False)`` removed before retention became
    pluggable; behavior and counters are bit-identical (pinned by the
    parity tests in ``tests/core/test_governance.py``).
    """

    name = "lru"

    def victim(self, entries: "OrderedDict[Hashable, object]") -> Hashable:
        return next(iter(entries))


class CostAwarePolicy(RetentionPolicy):
    """Evict the entry whose loss costs the fewest forecast dollars.

    Each entry's retention score is ``expected re-uses per hour x
    planning seconds saved per re-use``: the arrival-rate forecast of
    the entry's template family (from the Statistics Service, via the
    ``frequency`` callable) times the measured planning time the entry
    amortizes.  The victim is the lowest-scoring entry; ties (including
    the cold-start case where no forecast exists yet) break toward the
    least recently used, so with no signal the policy degrades to exact
    LRU.  Entries never :meth:`record`-ed score zero and are evicted
    first.
    """

    name = "cost-aware"

    def __init__(
        self,
        frequency: Callable[[Hashable], float] | None = None,
        *,
        min_cost_s: float = 1e-6,
    ) -> None:
        super().__init__()
        self._frequency = frequency
        self._min_cost_s = min_cost_s
        #: key -> (template identity, planning seconds saved)
        self._meta: dict[Hashable, tuple[Hashable | None, float]] = {}

    def record(
        self,
        key: Hashable,
        *,
        template: Hashable | None = None,
        cost_s: float = 0.0,
    ) -> None:
        with self._lock:
            self._meta[key] = (template, float(cost_s))

    def score(self, key: Hashable) -> float:
        meta = self._meta.get(key)
        if meta is None:
            return 0.0
        template, cost_s = meta
        if template is None or self._frequency is None:
            return 0.0
        return self._frequency(template) * max(cost_s, self._min_cost_s)

    def victim(self, entries: "OrderedDict[Hashable, object]") -> Hashable:
        best_key: Hashable = None
        best_score = float("inf")
        for key in entries:  # LRU -> MRU; strict < keeps LRU order on ties
            current = self.score(key)
            if current < best_score:
                best_key, best_score = key, current
        return best_key

    def on_evict(self, key: Hashable) -> None:
        super().on_evict(key)
        with self._lock:
            self._meta.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._meta.clear()


def make_retention_policy(
    policy: "str | Callable[[], RetentionPolicy]",
    *,
    frequency: Callable[[Hashable], float] | None = None,
) -> RetentionPolicy:
    """One fresh policy instance for one cache.

    ``policy`` is a name from :data:`RETENTION_POLICY_NAMES` or a
    zero-argument factory (for custom policies).  ``frequency`` feeds
    :class:`CostAwarePolicy` the forecast arrival rate of a template.
    """
    if callable(policy):
        made = policy()
        if not isinstance(made, RetentionPolicy):
            raise ReproError(
                f"retention policy factory returned {type(made).__name__}, "
                "expected a RetentionPolicy"
            )
        return made
    if policy == "lru":
        return LruPolicy()
    if policy == "cost-aware":
        return CostAwarePolicy(frequency)
    raise ReproError(
        f"unknown retention policy {policy!r}; known: {RETENTION_POLICY_NAMES}"
    )


# --------------------------------------------------------------------- #
# Forecast-fed template frequency
# --------------------------------------------------------------------- #
class TemplateFrequencyProvider:
    """Per-template arrival-rate forecasts for retention and warming.

    Bridges the Statistics Service to the cache layer: the serving path
    registers which literal-free *template key* belongs to which logged
    template *family* (:meth:`note_template`), and the provider answers
    ``rate_for(template_key)`` from the
    :class:`~repro.statsvc.forecast.WorkloadForecaster`'s per-family
    arrival rates — the same forecasts that gate
    :class:`~repro.tuning.service.TuningPolicy` auto-apply.  Forecasts
    are recomputed on the *log-append* path (:meth:`note_template`), at
    most once every ``refresh_every`` new records and only over the most
    recent ``window_records`` of the log (refresh cost is bounded, not
    O(total history) — it runs under the serving lock); :meth:`rate_for`
    is a lock-free dictionary read, because it runs during victim
    selection under a cache stripe lock — a full-log forecast there
    would stall every planning thread hashing to that stripe.
    """

    def __init__(
        self,
        logs: "QueryLogStore",
        forecaster: WorkloadForecaster | None = None,
        *,
        refresh_every: int = 32,
        window_records: int = 2048,
        breaker: "CircuitBreaker | None" = None,
        fault_hook: Callable[[], None] | None = None,
    ) -> None:
        if refresh_every < 1:
            raise ReproError(f"refresh_every must be >= 1, got {refresh_every}")
        if window_records < 1:
            raise ReproError(f"window_records must be >= 1, got {window_records}")
        self.logs = logs
        self.forecaster = forecaster or WorkloadForecaster()
        self.refresh_every = refresh_every
        self.window_records = window_records
        #: Optional circuit breaker around forecast refreshes (the
        #: ``statsvc`` failure domain): a failing forecaster clears the
        #: rates — cost-aware retention scores drop to zero, which is
        #: exact LRU — and an OPEN breaker skips refresh attempts until
        #: its call-counted cooldown elapses.  ``fault_hook`` is the
        #: ``statsvc`` fault-injection point (chaos testing); it runs at
        #: the top of every attempted refresh.
        self.breaker = breaker
        self.fault_hook = fault_hook
        self._rates: dict[str, float] = {}
        self._families: dict[Hashable, str] = {}
        self._refreshed_at = -1
        self._lock = threading.Lock()

    def note_template(self, family: str, template_key: Hashable) -> None:
        """Register that ``template_key`` instantiates log family
        ``family``, refreshing the forecasts when enough new records
        have accumulated (this runs once per logged query, outside any
        cache stripe lock)."""
        with self._lock:
            self._families[template_key] = family
        self._maybe_refresh()

    def rate_for(self, template_key: Hashable) -> float:
        """Forecast arrivals/hour for a template key (0.0 when unknown).

        Lock-free: reads the dictionaries the refresh path replaces
        wholesale — safe to call from eviction under a stripe lock.
        """
        family = self._families.get(template_key)
        if family is None:
            return 0.0
        return self._rates.get(family, 0.0)

    def family_rates(self) -> dict[str, float]:
        """Forecast arrivals/hour per logged template family."""
        self._maybe_refresh()
        with self._lock:
            return dict(self._rates)

    def invalidate(self) -> None:
        """Force a forecast recompute at the next refresh point (the
        next logged query or :meth:`family_rates` call)."""
        with self._lock:
            self._refreshed_at = -1

    def _maybe_refresh(self) -> None:
        size = len(self.logs)
        with self._lock:
            if (
                self._refreshed_at >= 0
                and size - self._refreshed_at < self.refresh_every
            ):
                return
            if self.breaker is not None and not self.breaker.allow():
                # OPEN: skip the refresh but advance the watermark so an
                # outage costs one denied call per refresh window, not
                # one per logged query; rates stay degraded (possibly
                # empty — LRU behavior) until the breaker half-opens.
                self._refreshed_at = size
                return
            try:
                if self.fault_hook is not None:
                    self.fault_hook()
                rates = self._compute_rates()
            except ReproError:
                # Forecaster down: degrade retention scoring to LRU
                # (empty rates score every entry 0.0, and CostAwarePolicy
                # ties break toward least-recently-used) rather than
                # failing the serving path that triggered the refresh.
                self._refreshed_at = size
                self._rates = {}
                if self.breaker is not None:
                    self.breaker.record_failure()
                return
            self._refreshed_at = size
            self._rates = rates
            if self.breaker is not None:
                self.breaker.record_success()

    def _compute_rates(self) -> dict[str, float]:
        """Per-family rates over the recent tail of the log (bounded)."""
        records = self.logs.tail(self.window_records)
        if not records:
            return {}
        return self.forecaster.rates(_LogTail(records))


class _LogTail:
    """A bounded slice of a log, store-shaped for the forecaster.

    Exposes exactly the read surface
    :meth:`~repro.statsvc.forecast.WorkloadForecaster.rates` consumes
    (``by_template()`` + ``horizon``), so the provider's windowed
    refresh runs the same forecasting code as a full-store call.
    """

    def __init__(self, records: list) -> None:
        self._records = records

    def by_template(self) -> dict[str, list]:
        grouped: dict[str, list] = {}
        for record in self._records:
            grouped.setdefault(record.template, []).append(record)
        return grouped

    @property
    def horizon(self) -> tuple[float, float]:
        if not self._records:
            return (0.0, 0.0)
        return (self._records[0].timestamp, self._records[-1].timestamp)


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #
class AdmissionVerdict(Enum):
    """Escalating decisions as a tenant's spend approaches its budget."""

    ADMIT = "admit"
    THROTTLE = "throttle"
    DEFER = "defer"
    DENY = "deny"


@dataclass(frozen=True)
class TenantBudget:
    """A per-tenant dollar ceiling with escalation thresholds.

    Spend is the tenant's *total* bill — serving plus background tuning
    dollars — against ``dollars``.  At ``throttle_at`` of the budget the
    tenant's queries lose batch parallelism (staged serially); at
    ``defer_at`` they are pushed behind other tenants' work in the batch
    and re-checked; at the full budget they are denied.
    """

    dollars: float
    throttle_at: float = 0.75
    defer_at: float = 0.9

    def __post_init__(self) -> None:
        if self.dollars <= 0:
            raise ReproError(f"budget dollars must be positive, got {self.dollars}")
        if not 0.0 < self.throttle_at <= self.defer_at <= 1.0:
            raise ReproError(
                "budget thresholds must satisfy 0 < throttle_at <= defer_at <= 1, "
                f"got throttle_at={self.throttle_at}, defer_at={self.defer_at}"
            )

    def verdict(self, spent_dollars: float) -> AdmissionVerdict:
        if spent_dollars >= self.dollars:
            return AdmissionVerdict.DENY
        if spent_dollars >= self.defer_at * self.dollars:
            return AdmissionVerdict.DEFER
        if spent_dollars >= self.throttle_at * self.dollars:
            return AdmissionVerdict.THROTTLE
        return AdmissionVerdict.ADMIT


class AdmissionController:
    """Budget-driven admission decisions, consulted at query admission.

    Owned by the warehouse; :class:`~repro.core.service.Session` calls
    :meth:`check` (under the serving lock, so bills are consistent) for
    every admitted handle when any budget is configured.  Verdict counts
    are kept per tenant for observability — a deferred query that is
    later re-admitted or denied counts each decision.
    """

    def __init__(
        self, budgets: "Mapping[str, TenantBudget | float] | None" = None
    ) -> None:
        self._budgets: dict[str, TenantBudget] = {}
        self._verdicts: dict[str, dict[str, int]] = {}
        self._lock = threading.Lock()
        for tenant, budget in (budgets or {}).items():
            self.set_budget(tenant, budget)

    @property
    def active(self) -> bool:
        """Whether any tenant has a budget (False = admit-all fast path)."""
        return bool(self._budgets)

    def set_budget(self, tenant: str, budget: "TenantBudget | float") -> None:
        if not isinstance(budget, TenantBudget):
            budget = TenantBudget(dollars=float(budget))
        self._budgets[tenant] = budget

    def remove_budget(self, tenant: str) -> None:
        self._budgets.pop(tenant, None)

    def budget_for(self, tenant: str) -> TenantBudget | None:
        return self._budgets.get(tenant)

    def check(
        self,
        tenant: str,
        bill: "TenantBill | None",
        *,
        defer_ok: bool = True,
        reserved_dollars: float = 0.0,
    ) -> AdmissionVerdict:
        """The verdict for one query from ``tenant`` right now.

        ``reserved_dollars`` is the projected spend of this tenant's
        queries admitted *earlier in the same batch* but not yet billed
        (the serving layer reserves the tenant's historical average cost
        per query).  Projection can escalate the verdict up to ``DEFER``
        — pushing the query behind the batch, where the re-check sees
        real dollars — but never to ``DENY``: only actually-billed spend
        denies, so an estimate cannot refuse work a budget would have
        covered.

        ``defer_ok=False`` (single submissions, and the re-check of a
        deferred query at the tail of its batch) downgrades ``DEFER`` to
        ``THROTTLE`` — there is nothing left to defer behind, and spend
        at the defer threshold is above the throttle threshold by
        construction.
        """
        budget = self._budgets.get(tenant)
        if budget is None:
            verdict = AdmissionVerdict.ADMIT
        else:
            spent = bill.total_dollars if bill is not None else 0.0
            verdict = budget.verdict(spent)
            if verdict is not AdmissionVerdict.DENY and reserved_dollars > 0.0:
                projected = budget.verdict(spent + reserved_dollars)
                if projected is AdmissionVerdict.DENY:
                    projected = AdmissionVerdict.DEFER
                verdict = projected  # spend is monotone: never less severe
            if verdict is AdmissionVerdict.DEFER and not defer_ok:
                verdict = AdmissionVerdict.THROTTLE
        with self._lock:
            counts = self._verdicts.setdefault(tenant, {})
            counts[verdict.value] = counts.get(verdict.value, 0) + 1
        return verdict

    def peek(self, tenant: str, bill: "TenantBill | None") -> AdmissionVerdict:
        """The verdict ``tenant`` would get right now, without counting.

        A read-only check for consumers that need the tenant's budget
        *pressure* but are not admitting a query — the resilience layer
        uses it to shrink a near-DENY tenant's retry allowance.  Ignores
        batch reservations and the ``defer_ok`` downgrade; never touches
        the observability counters.
        """
        budget = self._budgets.get(tenant)
        if budget is None:
            return AdmissionVerdict.ADMIT
        return budget.verdict(bill.total_dollars if bill is not None else 0.0)

    def denied_error(
        self,
        tenant: str,
        bill: "TenantBill | None",
        *,
        index: int | None = None,
        sql: str | None = None,
    ) -> AdmissionDeniedError:
        """The typed denial for one query (budget + spend attached)."""
        budget = self._budgets.get(tenant)
        spent = bill.total_dollars if bill is not None else 0.0
        ceiling = budget.dollars if budget is not None else 0.0
        return AdmissionDeniedError(
            f"tenant {tenant!r} budget exhausted "
            f"(${spent:.4f} spent of ${ceiling:.4f})",
            tenant=tenant,
            spent_dollars=spent,
            budget_dollars=ceiling,
            index=index,
            sql=sql,
        )

    @property
    def verdict_counts(self) -> dict[str, dict[str, int]]:
        """Per-tenant admission decisions, e.g. ``{"a": {"admit": 3}}``."""
        with self._lock:
            return {tenant: dict(counts) for tenant, counts in self._verdicts.items()}

    def restore_verdict(self, tenant: str, verdict: str) -> None:
        """Re-count one journaled verdict during crash-recovery replay
        (no budget check runs — the decision already happened)."""
        with self._lock:
            counts = self._verdicts.setdefault(tenant, {})
            counts[verdict] = counts.get(verdict, 0) + 1

    def restore_counts(
        self, counts: "Mapping[str, Mapping[str, int]]"
    ) -> None:
        """Replace the verdict counters wholesale from a recovery
        checkpoint."""
        with self._lock:
            self._verdicts = {
                tenant: dict(per_tenant) for tenant, per_tenant in counts.items()
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._verdicts.clear()

    def describe(self) -> str:
        if not self.active:
            return "admission: no tenant budgets configured (admit all)"
        lines = ["admission by tenant:"]
        counts = self.verdict_counts
        for tenant in sorted(self._budgets):
            budget = self._budgets[tenant]
            decided = counts.get(tenant, {})
            summary = ", ".join(
                f"{name}={decided.get(name, 0)}"
                for name in ("admit", "throttle", "defer", "deny")
            )
            lines.append(f"  {tenant}: ${budget.dollars:.4f} budget, {summary}")
        return "\n".join(lines)


def rank_by_forecast(
    workload: "Mapping[str, str] | Iterable[tuple[str, str]]",
    rates: Mapping[str, float],
    counts: Mapping[str, int] | None = None,
) -> list[tuple[str, str]]:
    """Order ``(template family, sql)`` pairs hottest-first.

    Primary key: forecast arrivals/hour; tiebreak: observed log counts,
    then input order (stable) — so with an empty log the input order is
    preserved.  Used by :meth:`CostIntelligentWarehouse.warm_cache`.
    """
    items = list(workload.items()) if isinstance(workload, Mapping) else list(workload)
    counts = counts or {}
    return [
        (family, sql)
        for _, _, _, (family, sql) in sorted(
            (
                (-rates.get(family, 0.0), -counts.get(family, 0), index, (family, sql))
                for index, (family, sql) in enumerate(items)
            ),
        )
    ]
