"""Bi-objective query optimizer (paper §3.2).

Downgrades Pareto search to constrained single-objective optimization:

1. *DAG planning*: classical left-deep join ordering and physical
   planning (:class:`~repro.optimizer.dag_planner.DagPlanner`).
2. *Bushy exploration*: generate increasingly bushy, non-expanding join
   variants of the chosen left-deep order.
3. *DOP planning*: for each variant, search per-pipeline DOPs that
   minimize the constrained objective; pick the best variant.

The search cost stays "comparable to a traditional cost-based optimizer":
one join-ordering DP plus a handful of DOP searches, each linear in the
number of pipelines per evaluation.

DAG-planning memo
-----------------

Stages 1–2 and the physical planning inside stage 3 do not depend on the
user constraint, so their output — the variant join trees, physical
plans, and pipeline DAGs — is memoized per bound query (weakly, entries
die with the query).  Optimizing the same bound query under a second
constraint, or re-optimizing it after a plan-cache eviction, pays for
DAG planning once and re-runs only the DOP search.  The memo also powers
the serving layer's *plan skeletons*: :meth:`BiObjectiveOptimizer.optimize`
accepts pre-chosen ``skeleton_trees`` (from
:class:`~repro.core.plan_cache.SkeletonCache`) and then skips join-order
DP and bushy generation entirely, re-running only physical planning with
fresh cardinalities plus the DOP search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence
from weakref import WeakKeyDictionary

from repro.catalog.catalog import Catalog
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import Constraint
from repro.dop.planner import DopPlan, DopPlanner
from repro.optimizer.bushy import bushiness, bushy_variants
from repro.optimizer.dag_planner import DagPlanner
from repro.optimizer.join_order import JoinTree, Leaf
from repro.plan.physical import PhysNode
from repro.plan.pipelines import PipelineDag, decompose_pipelines
from repro.sql.binder import BoundQuery


@dataclass
class PlanChoice:
    """The optimizer's selected cost-aware plan."""

    plan: PhysNode
    dag: PipelineDag
    dop_plan: DopPlan
    join_tree: JoinTree | Leaf
    variant_index: int
    bushiness: int
    variants_considered: int

    @property
    def feasible(self) -> bool:
        return self.dop_plan.feasible

    def describe(self) -> str:
        return (
            f"variant {self.variant_index}/{self.variants_considered} "
            f"(bushiness={self.bushiness})\n"
            f"{self.dop_plan.describe()}"
        )


@dataclass(frozen=True)
class PlannedVariant:
    """One join-tree variant carried through physical planning."""

    tree: JoinTree | Leaf
    plan: PhysNode
    dag: PipelineDag


class BiObjectiveOptimizer:
    """Produces cost-aware distributed plans under user constraints."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: CostEstimator | None = None,
        *,
        max_dop: int = 64,
        explore_bushy: bool = True,
        max_variants: int = 4,
        incremental_dop: bool = True,
        memoize_dag: bool = True,
    ) -> None:
        self.catalog = catalog
        self.estimator = estimator or CostEstimator()
        self.dag_planner = DagPlanner(catalog)
        self.dop_planner = DopPlanner(
            self.estimator, max_dop=max_dop, incremental=incremental_dop
        )
        self.explore_bushy = explore_bushy
        self.max_variants = max_variants
        #: Per-query memo of ``(catalog version, planned variants)``;
        #: ``memoize_dag=False`` is the A/B escape hatch (the
        #: benchmark's pre-overhaul baseline).
        self._dag_memo: (
            WeakKeyDictionary[BoundQuery, tuple[int, list[PlannedVariant]]] | None
        ) = WeakKeyDictionary() if memoize_dag else None
        self.dag_memo_hits = 0
        self.dag_plans = 0
        #: Cumulative wall time per optimize() stage (seconds), for the
        #: benchmark's breakdown: join-order DP, bushy generation,
        #: physical planning + pipeline decomposition, and DOP search.
        self.stage_times: dict[str, float] = {
            "join_order": 0.0,
            "bushy": 0.0,
            "physical": 0.0,
            "dop": 0.0,
        }

    def reset_counters(self) -> None:
        """Zero the memo-hit/plan counters and stage timings (benchmark
        warmup) without dropping memoized state."""
        self.dag_memo_hits = 0
        self.dag_plans = 0
        for stage in self.stage_times:
            self.stage_times[stage] = 0.0

    # ------------------------------------------------------------------ #
    # DAG planning (constraint-independent)
    # ------------------------------------------------------------------ #
    def dag_variants(
        self,
        query: BoundQuery,
        *,
        skeleton_trees: Sequence[JoinTree | Leaf] | None = None,
    ) -> list[PlannedVariant]:
        """Join-tree variants of ``query``, physically planned.

        Memoized per bound query.  With ``skeleton_trees`` (a cached
        template skeleton), join-order DP and bushy generation are
        skipped and the given shapes are re-planned against the query's
        fresh cardinalities — everything a literal change can affect
        (build sides, broadcast decisions, operator estimates) is
        re-derived, exactly as fresh planning with those trees would.
        """
        version = self.catalog.version
        if self._dag_memo is not None:
            memoized = self._dag_memo.get(query)
            # The catalog version guards against serving plans built
            # from stale statistics when the same bound query is
            # re-optimized across a stats refresh / DDL.
            if memoized is not None and memoized[0] == version:
                self.dag_memo_hits += 1
                return memoized[1]

        self.dag_plans += 1
        if skeleton_trees is not None:
            trees: list[JoinTree | Leaf] = list(skeleton_trees)
        else:
            t0 = time.perf_counter()
            base_tree = self.dag_planner.choose_join_tree(query)
            t1 = time.perf_counter()
            self.stage_times["join_order"] += t1 - t0
            trees = [base_tree]
            if self.explore_bushy and len(query.tables) >= 4:
                base_relations = {
                    ref.name: self.dag_planner.base_relation(query, ref.name)
                    for ref in query.tables
                }
                trees = bushy_variants(
                    base_tree,
                    base_relations,
                    query.join_edges,
                    self.dag_planner.estimator,
                    max_variants=self.max_variants,
                )
                self.stage_times["bushy"] += time.perf_counter() - t1

        t2 = time.perf_counter()
        variants = []
        for tree in trees:
            plan = self.dag_planner.plan_with_tree(query, tree)
            variants.append(
                PlannedVariant(tree=tree, plan=plan, dag=decompose_pipelines(plan))
            )
        self.stage_times["physical"] += time.perf_counter() - t2

        if self._dag_memo is not None:
            self._dag_memo[query] = (version, variants)
        return variants

    def variant_trees(self, query: BoundQuery) -> tuple[JoinTree | Leaf, ...]:
        """The query's variant join-tree shapes (the plan skeleton)."""
        return tuple(v.tree for v in self.dag_variants(query))

    # ------------------------------------------------------------------ #
    # Full optimization
    # ------------------------------------------------------------------ #
    def optimize(
        self,
        query: BoundQuery,
        constraint: Constraint,
        *,
        skeleton_trees: Sequence[JoinTree | Leaf] | None = None,
    ) -> PlanChoice:
        """Full §3.2 pipeline: DAG plan -> bushy variants -> DOP plans.

        ``skeleton_trees`` short-circuits stages 1–2 with a cached
        template skeleton (see :meth:`dag_variants`).
        """
        variants = self.dag_variants(query, skeleton_trees=skeleton_trees)

        t0 = time.perf_counter()
        best: PlanChoice | None = None
        for index, variant in enumerate(variants):
            dop_plan = self.dop_planner.plan(variant.dag, constraint)
            choice = PlanChoice(
                plan=variant.plan,
                dag=variant.dag,
                dop_plan=dop_plan,
                join_tree=variant.tree,
                variant_index=index,
                bushiness=bushiness(variant.tree),
                variants_considered=len(variants),
            )
            if best is None or _better(choice, best, constraint):
                best = choice
        self.stage_times["dop"] += time.perf_counter() - t0
        assert best is not None
        return best

    def optimize_heuristic(self, query: BoundQuery, constraint: Constraint) -> PlanChoice:
        """Degraded-mode default plan: the left-deep DP winner, no bushy
        exploration.

        Bit-identical to what a cold ``explore_bushy=False`` optimizer
        produces for ``query`` — one join-ordering DP, one physical
        plan, one DOP search — which is the contract the serving layer's
        degraded fallback promises (parity-tested).  When the DAG memo
        already holds the query's variants, their variant 0 *is* that
        left-deep base plan (``bushy_variants`` keeps the original tree
        first), so no planning is repeated.
        """
        version = self.catalog.version
        if self._dag_memo is not None:
            memoized = self._dag_memo.get(query)
            if memoized is not None and memoized[0] == version:
                self.dag_memo_hits += 1
                variant = memoized[1][0]
                return PlanChoice(
                    plan=variant.plan,
                    dag=variant.dag,
                    dop_plan=self.dop_planner.plan(variant.dag, constraint),
                    join_tree=variant.tree,
                    variant_index=0,
                    bushiness=bushiness(variant.tree),
                    variants_considered=1,
                )
        self.dag_plans += 1
        tree = self.dag_planner.choose_join_tree(query)
        plan = self.dag_planner.plan_with_tree(query, tree)
        dag = decompose_pipelines(plan)
        return PlanChoice(
            plan=plan,
            dag=dag,
            dop_plan=self.dop_planner.plan(dag, constraint),
            join_tree=tree,
            variant_index=0,
            bushiness=bushiness(tree),
            variants_considered=1,
        )


def _better(candidate: PlanChoice, incumbent: PlanChoice, constraint: Constraint) -> bool:
    """Prefer feasible plans; among feasible, the lower objective wins."""
    if candidate.feasible != incumbent.feasible:
        return candidate.feasible
    cand_obj = constraint.objective(candidate.dop_plan.estimate)
    inc_obj = constraint.objective(incumbent.dop_plan.estimate)
    if candidate.feasible:
        return cand_obj < inc_obj
    # Both infeasible: minimize constraint violation instead.
    return constraint.bound_value(candidate.dop_plan.estimate) < constraint.bound_value(
        incumbent.dop_plan.estimate
    )
