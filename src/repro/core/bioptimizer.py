"""Bi-objective query optimizer (paper §3.2).

Downgrades Pareto search to constrained single-objective optimization:

1. *DAG planning*: classical left-deep join ordering and physical
   planning (:class:`~repro.optimizer.dag_planner.DagPlanner`).
2. *Bushy exploration*: generate increasingly bushy, non-expanding join
   variants of the chosen left-deep order.
3. *DOP planning*: for each variant, search per-pipeline DOPs that
   minimize the constrained objective; pick the best variant.

The search cost stays "comparable to a traditional cost-based optimizer":
one join-ordering DP plus a handful of DOP searches, each linear in the
number of pipelines per evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import Constraint
from repro.dop.planner import DopPlan, DopPlanner
from repro.optimizer.bushy import bushiness, bushy_variants
from repro.optimizer.dag_planner import DagPlanner
from repro.optimizer.join_order import JoinTree, Leaf
from repro.plan.physical import PhysNode
from repro.plan.pipelines import PipelineDag, decompose_pipelines
from repro.sql.binder import BoundQuery


@dataclass
class PlanChoice:
    """The optimizer's selected cost-aware plan."""

    plan: PhysNode
    dag: PipelineDag
    dop_plan: DopPlan
    join_tree: JoinTree | Leaf
    variant_index: int
    bushiness: int
    variants_considered: int

    @property
    def feasible(self) -> bool:
        return self.dop_plan.feasible

    def describe(self) -> str:
        return (
            f"variant {self.variant_index}/{self.variants_considered} "
            f"(bushiness={self.bushiness})\n"
            f"{self.dop_plan.describe()}"
        )


class BiObjectiveOptimizer:
    """Produces cost-aware distributed plans under user constraints."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: CostEstimator | None = None,
        *,
        max_dop: int = 64,
        explore_bushy: bool = True,
        max_variants: int = 4,
        incremental_dop: bool = True,
    ) -> None:
        self.catalog = catalog
        self.estimator = estimator or CostEstimator()
        self.dag_planner = DagPlanner(catalog)
        self.dop_planner = DopPlanner(
            self.estimator, max_dop=max_dop, incremental=incremental_dop
        )
        self.explore_bushy = explore_bushy
        self.max_variants = max_variants

    def optimize(self, query: BoundQuery, constraint: Constraint) -> PlanChoice:
        """Full §3.2 pipeline: DAG plan -> bushy variants -> DOP plans."""
        base_tree = self.dag_planner.choose_join_tree(query)
        variants: list[JoinTree | Leaf] = [base_tree]
        if self.explore_bushy and len(query.tables) >= 4:
            base_relations = {
                ref.name: self.dag_planner.base_relation(query, ref.name)
                for ref in query.tables
            }
            variants = bushy_variants(
                base_tree,
                base_relations,
                query.join_edges,
                self.dag_planner.estimator,
                max_variants=self.max_variants,
            )

        best: PlanChoice | None = None
        for index, tree in enumerate(variants):
            plan = self.dag_planner.plan_with_tree(query, tree)
            dag = decompose_pipelines(plan)
            dop_plan = self.dop_planner.plan(dag, constraint)
            choice = PlanChoice(
                plan=plan,
                dag=dag,
                dop_plan=dop_plan,
                join_tree=tree,
                variant_index=index,
                bushiness=bushiness(tree),
                variants_considered=len(variants),
            )
            if best is None or _better(choice, best, constraint):
                best = choice
        assert best is not None
        return best


def _better(candidate: PlanChoice, incumbent: PlanChoice, constraint: Constraint) -> bool:
    """Prefer feasible plans; among feasible, the lower objective wins."""
    if candidate.feasible != incumbent.feasible:
        return candidate.feasible
    cand_obj = constraint.objective(candidate.dop_plan.estimate)
    inc_obj = constraint.objective(incumbent.dop_plan.estimate)
    if candidate.feasible:
        return cand_obj < inc_obj
    # Both infeasible: minimize constraint violation instead.
    return constraint.bound_value(candidate.dop_plan.estimate) < constraint.bound_value(
        incumbent.dop_plan.estimate
    )
