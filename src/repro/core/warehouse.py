"""The cost-intelligent cloud data warehouse facade (paper Figure 3).

One object wiring the whole architecture: SQL frontend -> bi-objective
optimizer (cost estimator inside) -> elastic compute (simulated cluster
with the DOP monitor) -> billing -> Statistics Service logs ->
background auto-tuning.  Users state a latency SLA or a budget per query
— never a T-shirt size — and receive results plus an auditable cost
report, exactly the interaction model §2 calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.catalog import Catalog
from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.plan_cache import BindingCache, PlanCache, SkeletonCache
from repro.sql.parameterize import normalize_sql, parameterize_sql
from repro.cost.estimator import CostEstimator
from repro.cost.hardware import HardwareCalibration
from repro.dop.constraints import Constraint
from repro.engine.batch import Batch
from repro.engine.database import Database
from repro.engine.local_executor import LocalExecutor
from repro.errors import ReproError
from repro.monitor.policies import (
    IntervalScalerPolicy,
    PerStageScalerPolicy,
    PipelineDopMonitor,
    StaticPolicy,
)
from repro.plan.expressions import referenced_columns
from repro.sim.distsim import DistributedSimulator, ScalingPolicy, SimConfig, SimResult
from repro.sql.binder import Binder, BoundQuery
from repro.statsvc.logs import QueryLogStore, QueryRecord
from repro.tuning.advisor import AdvisorProposals, AutoTuningAdvisor
from repro.tuning.background import BackgroundComputeService
from repro.tuning.whatif import WhatIfService

POLICY_NAMES = ("dop-monitor", "static", "interval-scaler", "stage-scaler")


@dataclass
class QueryOutcome:
    """Everything one submission produced."""

    sql: str
    choice: PlanChoice
    sim: SimResult | None
    batch: Batch | None
    record: QueryRecord
    constraint: Constraint

    @property
    def latency(self) -> float:
        if self.sim is not None:
            return self.sim.latency
        return self.choice.dop_plan.estimate.latency

    @property
    def dollars(self) -> float:
        if self.sim is not None:
            return self.sim.total_dollars
        return self.choice.dop_plan.estimate.total_dollars

    @property
    def sla_met(self) -> bool | None:
        if self.constraint.latency_sla is None:
            return None
        return self.latency <= self.constraint.latency_sla

    @property
    def constraint_met(self) -> bool:
        """Whether the outcome honored the user's constraint — the
        latency SLA or the dollar budget, whichever was stated
        (:attr:`sla_met` is ``None`` for budget-constrained queries;
        this covers both kinds)."""
        if self.constraint.is_sla:
            return self.sla_met  # type: ignore[return-value]
        assert self.constraint.budget is not None
        return self.dollars <= self.constraint.budget

    def describe(self) -> str:
        from repro.util.units import fmt_dollars, fmt_duration

        lines = [
            f"constraint: {self.constraint.describe()}",
            f"plan: {self.choice.describe()}",
            f"outcome: latency={fmt_duration(self.latency)} "
            f"cost={fmt_dollars(self.dollars)}",
            f"constraint met: {self.constraint_met}",
        ]
        return "\n".join(lines)


class CostIntelligentWarehouse:
    """The user-facing cost-intelligent warehouse service."""

    def __init__(
        self,
        database: Database | None = None,
        catalog: Catalog | None = None,
        *,
        hardware: HardwareCalibration | None = None,
        estimator: CostEstimator | None = None,
        sim_config: SimConfig | None = None,
        max_dop: int = 64,
        explore_bushy: bool = True,
        plan_cache_size: int = 256,
        parameterized_serving: bool = True,
    ) -> None:
        if database is None and catalog is None:
            raise ReproError("provide a Database (with data) or a Catalog (stats-only)")
        self.database = database
        self.catalog = database.catalog if database is not None else catalog
        assert self.catalog is not None
        self.hw = hardware or HardwareCalibration()
        self.estimator = estimator or CostEstimator(self.hw)
        self.optimizer = BiObjectiveOptimizer(
            self.catalog,
            self.estimator,
            max_dop=max_dop,
            explore_bushy=explore_bushy,
        )
        self.binder = Binder(self.catalog)
        self.sim_config = sim_config or SimConfig()
        self.max_dop = max_dop
        self.logs = QueryLogStore()
        self.clock = 0.0
        self._template_queries: dict[str, BoundQuery] = {}
        #: Serving-layer plan caches; ``plan_cache_size=0`` disables both
        #: levels.  Exact level: full plans keyed (normalized SQL,
        #: constraint, stats version).  Skeleton level: template plan
        #: skeletons keyed (literal-free template key, constraint kind,
        #: stats version) — literal-varying resubmissions skip join-order
        #: DP and bushy generation.
        #: ``parameterized_serving=False`` reproduces the exact-match-only
        #: serving path (PR 1 semantics) for A/B benchmarking: no
        #: skeleton or binding level, keys recomputed per submission.
        self.parameterized_serving = parameterized_serving
        parameterized = parameterized_serving and plan_cache_size > 0
        self.plan_cache: PlanCache | None = (
            PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        self.skeleton_cache: SkeletonCache | None = (
            SkeletonCache(plan_cache_size) if parameterized else None
        )
        self.binding_cache: BindingCache | None = (
            BindingCache(plan_cache_size) if parameterized else None
        )

    # ------------------------------------------------------------------ #
    # Query path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        sql: str,
        constraint: Constraint,
        *,
        template: str = "adhoc",
        at_time: float | None = None,
        policy: str | ScalingPolicy = "dop-monitor",
        execute_locally: bool = False,
        simulate: bool = True,
        truth: dict[int, float] | None = None,
        use_plan_cache: bool = True,
    ) -> QueryOutcome:
        """Optimize, (optionally) execute locally, and simulate one query.

        ``truth`` overrides plan-node cardinalities in the simulator;
        when ``execute_locally`` is set and the warehouse holds real
        data, true cardinalities come from actual execution instead.

        Binding and optimization are served from the plan cache when the
        same normalized SQL was planned under the same constraint and
        stats version; ``use_plan_cache=False`` forces a fresh plan.
        """
        timestamp = self.clock if at_time is None else at_time
        self.clock = max(self.clock, timestamp)

        bound, choice = self._plan(sql, constraint, use_plan_cache)
        self._template_queries[template] = bound

        batch: Batch | None = None
        if execute_locally:
            if self.database is None:
                raise ReproError("cannot execute locally without a Database")
            result = LocalExecutor(self.database).execute(choice.plan)
            batch = result.batch
            if truth is None:
                truth = {k: float(v) for k, v in result.true_rows.items()}

        sim_result: SimResult | None = None
        if simulate:
            sim_result = self._simulate(choice, constraint, policy, truth)

        record = self._log(sql, bound, template, timestamp, choice, sim_result, constraint)
        return QueryOutcome(
            sql=sql,
            choice=choice,
            sim=sim_result,
            batch=batch,
            record=record,
            constraint=constraint,
        )

    def submit_many(
        self,
        queries: Iterable[str | tuple[str, Constraint]],
        *,
        constraint: Constraint | None = None,
        **submit_kwargs,
    ) -> list[QueryOutcome]:
        """Submit a batch of queries through one warehouse session.

        ``queries`` yields SQL strings (planned under the shared
        ``constraint``) or ``(sql, constraint)`` pairs.  The binding and
        planning amortization comes from the plan cache each
        :meth:`submit` consults: a workload driver replaying a template
        pool pays for each distinct (SQL, constraint) plan once.
        Remaining keyword arguments are forwarded to :meth:`submit`.
        """
        outcomes: list[QueryOutcome] = []
        for item in queries:
            if isinstance(item, str):
                if constraint is None:
                    raise ReproError(
                        "submit_many needs a shared constraint for bare SQL items"
                    )
                sql, item_constraint = item, constraint
            else:
                sql, item_constraint = item
            outcomes.append(self.submit(sql, item_constraint, **submit_kwargs))
        return outcomes

    def plan(
        self, sql: str, constraint: Constraint, *, use_plan_cache: bool = True
    ) -> tuple[BoundQuery, PlanChoice]:
        """Bind + optimize one query without executing or logging it.

        This is the serving-layer planning path :meth:`submit` uses —
        exact plan-cache hit, then skeleton-cache hit (re-plan cached
        join shapes under fresh literals), then full optimization.
        """
        return self._plan(sql, constraint, use_plan_cache)

    def _plan(
        self, sql: str, constraint: Constraint, use_plan_cache: bool
    ) -> tuple[BoundQuery, PlanChoice]:
        """Bind + optimize, via the two-level plan cache when possible."""
        if not use_plan_cache or self.plan_cache is None:
            bound = self.binder.bind_sql(sql)
            return bound, self.optimizer.optimize(bound, constraint)

        if not self.parameterized_serving:
            # PR 1 serving semantics: exact-match level only, key
            # recomputed per submission, fresh bind on every miss.
            key = (normalize_sql(sql), constraint, self.catalog.version)
            cached = self.plan_cache.lookup(key)
            if cached is not None:
                return cached
            bound = self.binder.bind_sql(sql)
            choice = self.optimizer.optimize(bound, constraint)
            self.plan_cache.store(key, bound, choice)
            return bound, choice

        version = self.catalog.version
        parameterized = parameterize_sql(sql)
        normalized = parameterized.normalized
        exact_key = (normalized, constraint, version)
        cached = self.plan_cache.lookup(exact_key)
        if cached is not None:
            return cached

        # Binding (and, via the optimizer's DAG memo keyed on the bound
        # object, physical planning) is constraint-independent: reuse it
        # when the same query arrives under a second constraint.
        bound = None
        binding_key = (normalized, version)
        if self.binding_cache is not None:
            bound = self.binding_cache.lookup(binding_key)
        if bound is None:
            # Reuse the parameterization already lexed for the cache
            # keys: recurring templates bind from a cached template AST
            # with the fresh constants substituted (no lex, no parse).
            bound = self.binder.bind_parameterized(
                parameterized.template_key, parameterized.constants, sql=sql
            )
            if self.binding_cache is not None:
                self.binding_cache.store(binding_key, bound)
        skeleton_key = None
        trees = None
        if self.skeleton_cache is not None:
            # The constraint kind is conservative key hygiene (DAG
            # planning never reads the constraint); it costs one extra
            # DP per template and kind.  Skeleton reuse trusts the
            # template's join shapes to be stable under literal changes
            # — enforced for the workload suite by the parity tests and
            # the benchmark guard; a template whose literals swing the
            # join-order DP would be re-planned on its cached shapes.
            kind = "sla" if constraint.is_sla else "budget"
            skeleton_key = (parameterized.template_key, kind, version)
            trees = self.skeleton_cache.lookup(skeleton_key)
        choice = self.optimizer.optimize(bound, constraint, skeleton_trees=trees)
        if skeleton_key is not None and trees is None:
            # variant_trees() reads the optimizer's DAG memo — no rework.
            self.skeleton_cache.store(
                skeleton_key, self.optimizer.variant_trees(bound)
            )
        self.plan_cache.store(exact_key, bound, choice)
        return bound, choice

    def invalidate_plan_cache(self) -> None:
        """Explicitly flush cached plans and skeletons (catalog mutations
        invalidate automatically via the stats version; use this after
        out-of-band changes such as hardware recalibration)."""
        if self.plan_cache is not None:
            self.plan_cache.invalidate()
        if self.skeleton_cache is not None:
            self.skeleton_cache.invalidate()
        if self.binding_cache is not None:
            self.binding_cache.invalidate()

    def reset_cache_stats(self) -> None:
        """Zero all cache and optimizer counters without dropping
        entries (benchmark warmup: report steady-state rates only)."""
        for cache in (self.plan_cache, self.skeleton_cache, self.binding_cache):
            if cache is not None:
                cache.reset_stats()
        if self.estimator.models.cache is not None:
            self.estimator.models.cache.stats.reset()
        self.optimizer.dag_memo_hits = 0
        self.optimizer.dag_plans = 0
        for stage in self.optimizer.stage_times:
            self.optimizer.stage_times[stage] = 0.0

    def describe_caches(self) -> dict[str, dict[str, float | int]]:
        """Hit-rate observability across the serving-layer caches.

        Reports the exact plan cache, the template skeleton cache, and
        the estimator's timing/volume caches — the numbers the
        throughput benchmark records next to its speedups.
        """
        report: dict[str, dict[str, float | int]] = {}
        for label, cache in (
            ("plan_cache", self.plan_cache),
            ("skeleton_cache", self.skeleton_cache),
            ("binding_cache", self.binding_cache),
        ):
            if cache is None:
                continue
            report[label] = {
                "entries": len(cache),
                "capacity": cache.capacity,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "hit_rate": cache.hit_rate,
            }
        timing_cache = self.estimator.models.cache
        if timing_cache is not None:
            stats = timing_cache.stats
            timing_total = stats.timing_hits + stats.timing_computations
            volume_total = stats.volume_hits + stats.volume_computations
            report["timing_cache"] = {
                "timing_hits": stats.timing_hits,
                "timing_computations": stats.timing_computations,
                "timing_hit_rate": (
                    stats.timing_hits / timing_total if timing_total else 0.0
                ),
                "volume_hits": stats.volume_hits,
                "volume_computations": stats.volume_computations,
                "volume_hit_rate": (
                    stats.volume_hits / volume_total if volume_total else 0.0
                ),
            }
        return report

    def _simulate(
        self,
        choice: PlanChoice,
        constraint: Constraint,
        policy: str | ScalingPolicy,
        truth: dict[int, float] | None,
    ) -> SimResult:
        policy_obj = (
            policy
            if isinstance(policy, ScalingPolicy)
            else self.make_policy(policy, choice, constraint)
        )
        config = self.sim_config
        if getattr(policy_obj, "name", "") == "stage-scaler":
            config = SimConfig(
                **{**config.__dict__, "materialize_exchanges": True}
            )
        simulator = DistributedSimulator(
            choice.dag,
            choice.dop_plan.dops,
            self.estimator.models,
            truth=truth,
            planned=choice.dop_plan.estimate,
            policy=policy_obj,
            config=config,
        )
        return simulator.run()

    def make_policy(
        self, name: str, choice: PlanChoice, constraint: Constraint
    ) -> ScalingPolicy:
        """Instantiate a scaling policy by name for one query."""
        if name == "static":
            return StaticPolicy()
        if name == "dop-monitor":
            return PipelineDopMonitor(
                choice.dag,
                self.estimator,
                constraint,
                choice.dop_plan.dops,
                planned_latency=choice.dop_plan.estimate.latency,
                planned_durations={
                    pid: p.duration
                    for pid, p in choice.dop_plan.estimate.pipelines.items()
                },
                max_dop=self.max_dop,
            )
        if name == "interval-scaler":
            sla = constraint.latency_sla or choice.dop_plan.estimate.latency * 1.5
            durations = {
                pid: p.duration
                for pid, p in choice.dop_plan.estimate.pipelines.items()
            }
            return IntervalScalerPolicy(
                choice.dag,
                sla,
                choice.dop_plan.dops,
                durations,
                max_dop=self.max_dop,
            )
        if name == "stage-scaler":
            return PerStageScalerPolicy(
                choice.dag, choice.dop_plan.dops, max_dop=self.max_dop
            )
        raise ReproError(f"unknown policy {name!r}; known: {POLICY_NAMES}")

    # ------------------------------------------------------------------ #
    # Statistics Service logging
    # ------------------------------------------------------------------ #
    def _log(
        self,
        sql: str,
        bound: BoundQuery,
        template: str,
        timestamp: float,
        choice: PlanChoice,
        sim: SimResult | None,
        constraint: Constraint,
    ) -> QueryRecord:
        columns: set[str] = set()
        filter_columns: set[str] = set()
        for table in bound.table_names:
            for column in bound.columns_needed(table):
                columns.add(f"{table}.{column}")
            for predicate in bound.filters.get(table, []):
                for column in referenced_columns(predicate):
                    filter_columns.add(column)
        edges = tuple(
            (
                f"{e.left.table}.{e.left.name}",
                f"{e.right.table}.{e.right.name}",
            )
            for e in bound.join_edges
        )
        latency = sim.latency if sim is not None else choice.dop_plan.estimate.latency
        dollars = sim.total_dollars if sim is not None else choice.dop_plan.estimate.total_dollars
        machine = (
            sim.machine_seconds if sim is not None else choice.dop_plan.estimate.machine_seconds
        )
        bytes_scanned = sum(
            op.node.input_bytes
            for pipeline in choice.dag
            for op in pipeline.ops
            if hasattr(op.node, "input_bytes")
        )
        record = QueryRecord(
            query_id=self.logs.next_query_id(),
            timestamp=timestamp,
            sql=sql,
            template=template,
            tables=tuple(bound.table_names),
            columns=tuple(sorted(columns)),
            join_edges=edges,
            group_keys=tuple(k.name for k in bound.group_keys),
            filter_columns=tuple(sorted(filter_columns)),
            aggregate_sqls=tuple(a.sql() for a in bound.aggregates),
            latency_s=latency,
            machine_seconds=machine,
            dollars=dollars,
            bytes_scanned=bytes_scanned,
            sla_seconds=constraint.latency_sla,
        )
        self.logs.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Background auto-tuning
    # ------------------------------------------------------------------ #
    def run_tuning_cycle(
        self,
        *,
        apply: bool = False,
        storage_budget_bytes: float | None = None,
    ) -> AdvisorProposals:
        """One advisor pass over the logged workload.

        With ``apply=True``, accepted actions run on background compute
        (physically when the warehouse holds data).
        """
        whatif = WhatIfService(self.catalog, self.estimator)
        kwargs = {}
        if storage_budget_bytes is not None:
            kwargs["storage_budget_bytes"] = storage_budget_bytes
        advisor = AutoTuningAdvisor(self.catalog, whatif, **kwargs)
        proposals = advisor.propose(self.logs, self._template_queries)
        if apply and proposals.accepted:
            background = BackgroundComputeService(
                database=self.database, catalog=self.catalog
            )
            from repro.tuning.clustering import ReclusterCandidate
            from repro.tuning.mv import mv_candidate_from_query

            for report in proposals.accepted:
                if report.kind == "materialized-view":
                    template = report.action_name.removeprefix("mv_")
                    query = self._template_queries.get(template)
                    if query is None:
                        continue
                    candidate = mv_candidate_from_query(
                        query, self.catalog, name=report.action_name
                    )
                    background.apply_mv(candidate, report)
                elif report.kind == "recluster":
                    parts = report.action_name.removeprefix("recluster_").split("_on_")
                    background.apply_recluster(
                        ReclusterCandidate(table=parts[0], key=parts[1]), report
                    )
        return proposals
