"""The cost-intelligent cloud data warehouse facade (paper Figure 3).

One object wiring the whole architecture: SQL frontend -> bi-objective
optimizer (cost estimator inside) -> elastic compute (simulated cluster
with the DOP monitor) -> billing -> Statistics Service logs ->
background auto-tuning.  Users state a latency SLA or a budget per query
— never a T-shirt size — and receive results plus an auditable cost
report, exactly the interaction model §2 calls for.

The public serving API lives in :mod:`repro.core.service`
(:class:`~repro.core.service.QueryRequest` in,
:class:`~repro.core.service.QueryHandle` /
:class:`~repro.core.service.QueryOutcome` out, per-tenant
:class:`~repro.core.service.Session`\\ s, and the concurrent
:class:`~repro.core.service.ServingScheduler`).  The warehouse owns the
shared serving machinery — catalog, optimizer, the lock-striped
three-level plan-cache stack, the Statistics Service log, and per-tenant
billing — and keeps :meth:`CostIntelligentWarehouse.submit` /
:meth:`~CostIntelligentWarehouse.submit_many` as thin shims over the
default session so existing callers work unchanged.

The tuning surface mirrors it in :mod:`repro.tuning.service`:
``warehouse.tuning`` is a persistent
:class:`~repro.tuning.service.TuningService` whose typed
:class:`~repro.tuning.service.Recommendation`\\ s are applied and rolled
back with full serving-cache coherence;
:meth:`~CostIntelligentWarehouse.run_tuning_cycle` is the deprecated
shim over it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace as dataclasses_replace
from typing import Callable, Iterable, Mapping

from repro.catalog.catalog import Catalog
from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.governance import (
    AdmissionController,
    AdmissionVerdict,
    RetentionPolicy,
    TemplateFrequencyProvider,
    TenantBudget,
    make_retention_policy,
    rank_by_forecast,
)
from repro.core.journal import (
    Checkpoint,
    CheckpointState,
    DurableRecommendation,
    QueryServed,
    RetryCharge,
    RollbackCommit,
    RollbackIntent,
    TuningCommit,
    TuningFailed,
    TuningIntent,
    WriteAheadJournal,
    from_ledger_units,
    to_ledger_units,
)
from repro.core.plan_cache import BindingCache, PlanCache, SkeletonCache
from repro.core.recovery import RecoveryReport, recover_warehouse
from repro.core.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilienceStats,
    StageGuard,
)
from repro.core.service import QueryOutcome, QueryRequest, Session, TenantBill
from repro.sql.parameterize import normalize_sql, parameterize_sql
from repro.cost.estimator import CostEstimator
from repro.cost.hardware import HardwareCalibration
from repro.dop.constraints import Constraint
from repro.engine.database import Database
from repro.errors import ReproError
from repro.monitor.policies import (
    IntervalScalerPolicy,
    PerStageScalerPolicy,
    PipelineDopMonitor,
    StaticPolicy,
)
from repro.obsvc.collector import CollectionPolicy, SnapshotCollector
from repro.obsvc.history import CostHistoryStore
from repro.obsvc.metrics import MetricsRegistry
from repro.plan.expressions import referenced_columns
from repro.sim.distsim import DistributedSimulator, ScalingPolicy, SimConfig, SimResult
from repro.sql.binder import Binder, BoundQuery
from repro.statsvc.logs import QueryLogStore, QueryRecord
from repro.tuning.advisor import AdvisorProposals
from repro.tuning.mv import MVCandidate, try_rewrite
from repro.tuning.service import TuningPolicy, TuningService

POLICY_NAMES = ("dop-monitor", "static", "interval-scaler", "stage-scaler")

#: Admission verdict -> retry-pressure ordinal: each escalation step a
#: tenant's spend has climbed costs one retry attempt (see
#: :meth:`repro.core.resilience.RetryPolicy.attempts_for`).
_RETRY_PRESSURE = {
    AdmissionVerdict.ADMIT: 0,
    AdmissionVerdict.THROTTLE: 1,
    AdmissionVerdict.DEFER: 2,
    AdmissionVerdict.DENY: 3,
}

#: Breaker state <-> numeric code for the ``repro_breaker_state`` gauge
#: (Prometheus samples are numbers; ``describe_health`` maps back).
_BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}
_BREAKER_STATE_NAMES = {code: name for name, code in _BREAKER_STATE_CODES.items()}


def _int_weights(weights: "list[float]") -> list[int]:
    """Apportionment weights as integers (exact big-int arithmetic);
    all-zero weight vectors degrade to uniform."""
    scaled = [max(int(round(weight * 1e9)), 0) for weight in weights]
    if not any(scaled):
        return [1] * len(scaled)
    return scaled


def _largest_remainder(total: int, weights: list[int]) -> list[int]:
    """Split ``total`` integral units proportionally to ``weights`` with
    no unit created or lost: floor shares first, then one extra unit to
    the largest remainders (ties broken by position, so the split is
    deterministic)."""
    if not weights:
        return []
    if total <= 0:
        return [0] * len(weights)
    weight_sum = sum(weights)
    shares = [total * weight // weight_sum for weight in weights]
    remainders = [total * weight % weight_sum for weight in weights]
    leftover = total - sum(shares)
    for index in sorted(
        range(len(weights)), key=lambda i: (-remainders[i], i)
    )[:leftover]:
        shares[index] += 1
    return shares


class CostIntelligentWarehouse:
    """The user-facing cost-intelligent warehouse service."""

    def __init__(
        self,
        database: Database | None = None,
        catalog: Catalog | None = None,
        *,
        hardware: HardwareCalibration | None = None,
        estimator: CostEstimator | None = None,
        sim_config: SimConfig | None = None,
        max_dop: int = 64,
        explore_bushy: bool = True,
        plan_cache_size: int = 256,
        parameterized_serving: bool = True,
        tuning_policy: TuningPolicy | None = None,
        retention_policy: "str | Callable[[], RetentionPolicy]" = "lru",
        tenant_budgets: "Mapping[str, TenantBudget | float] | None" = None,
        resilience: ResiliencePolicy | None = None,
        journal: WriteAheadJournal | None = None,
    ) -> None:
        if database is None and catalog is None:
            raise ReproError("provide a Database (with data) or a Catalog (stats-only)")
        self.database = database
        self.catalog = database.catalog if database is not None else catalog
        assert self.catalog is not None
        self.hw = hardware or HardwareCalibration()
        self.estimator = estimator or CostEstimator(self.hw)
        self.optimizer = BiObjectiveOptimizer(
            self.catalog,
            self.estimator,
            max_dop=max_dop,
            explore_bushy=explore_bushy,
        )
        self.binder = Binder(self.catalog)
        self.sim_config = sim_config or SimConfig()
        self.max_dop = max_dop
        self.logs = QueryLogStore()
        self.clock = 0.0
        #: Per-tenant spend roll-up; ``billed_dollars`` totals it.
        self.billing: dict[str, TenantBill] = {}
        #: Crash durability (see :mod:`repro.core.journal`): when a
        #: :class:`~repro.core.journal.WriteAheadJournal` is attached,
        #: every authoritative state transition (log append + billing
        #: delta, admission verdict, retry charge, tuning lifecycle
        #: edge) is journaled *before* it is applied in memory, and
        #: :meth:`recover` rebuilds a bit-identical warehouse over the
        #: surviving catalog/database after a crash.  ``None`` (the
        #: default) is the journal-free fast path, byte for byte.
        self.journal = journal
        #: Highest journal LSN whose effects are reflected in memory —
        #: the replay-idempotence watermark (see
        #: :func:`repro.core.recovery.apply_entry`).
        self._applied_lsn = 0
        #: Journal-derived recommendation lifecycle bookkeeping, by
        #: recommendation id (kept identically by live appends and by
        #: replay; recovery resolves any record left in doubt).
        self._durable_tuning: dict[int, DurableRecommendation] = {}
        #: The :class:`~repro.core.recovery.RecoveryReport` of the pass
        #: that built this warehouse, when it came from :meth:`recover`.
        self.last_recovery: RecoveryReport | None = None
        #: Orders admission (timestamps) and finalization (log append,
        #: billing, template bookkeeping) under concurrent serving.
        self._serving_lock = threading.Lock()
        #: Representative bound query per template family, tagged with
        #: the stats version it was bound under so the tuning advisor
        #: never reasons over bindings from stale statistics.
        self._template_queries: dict[str, tuple[int, BoundQuery]] = {}
        self._default_session = Session(self)
        #: The persistent tuning service (lazily created on first use);
        #: ``tuning_policy`` configures cadence / budgets / auto-apply.
        self.tuning_policy = tuning_policy
        self._tuning: TuningService | None = None
        #: Applied materialized views, by name.  The serving plan path
        #: rewrites matching queries onto these views, so an applied MV
        #: actually changes served plans (and a rollback restores them).
        self._applied_mvs: dict[str, MVCandidate] = {}
        #: Serving-layer plan caches; ``plan_cache_size=0`` disables both
        #: levels.  Exact level: full plans keyed (normalized SQL,
        #: constraint, stats version).  Skeleton level: template plan
        #: skeletons keyed (literal-free template key, constraint kind,
        #: stats version) — literal-varying resubmissions skip join-order
        #: DP and bushy generation.
        #: ``parameterized_serving=False`` reproduces the exact-match-only
        #: serving path (PR 1 semantics) for A/B benchmarking: no
        #: skeleton or binding level, keys recomputed per submission.
        self.parameterized_serving = parameterized_serving
        parameterized = parameterized_serving and plan_cache_size > 0
        #: Resource governance (see :mod:`repro.core.governance`).
        #: ``self.frequency`` bridges the Statistics Service's per-family
        #: arrival forecasts to cache retention and warming;
        #: ``self.admission`` enforces per-tenant dollar budgets at
        #: :meth:`Session._admit` time.  The default ``retention_policy``
        #: ("lru") keeps served plans and cache counters bit-identical to
        #: the pre-governance warehouse; "cost-aware" keeps hot forecast
        #: templates alive under eviction pressure.
        #: Failure-domain hardening (see :mod:`repro.core.resilience`).
        #: The policy configures per-stage retries/deadlines and the
        #: degraded-mode fallback; ``resilience=ResiliencePolicy(
        #: enabled=False)`` is the unwrapped A/B baseline.  ``faults``
        #: holds the active :class:`~repro.testing.faults.FaultPlan`
        #: (``None`` outside chaos testing — see :meth:`inject_faults`).
        self.resilience = resilience or ResiliencePolicy()
        self.resilience_stats = ResilienceStats()
        self.faults = None
        #: Breaker around the Statistics Service forecaster: while OPEN,
        #: forecast refreshes are skipped and cost-aware retention
        #: scores degrade to plain LRU instead of stalling serving.
        self.statsvc_breaker = CircuitBreaker("statsvc")
        self.frequency = TemplateFrequencyProvider(
            self.logs,
            breaker=self.statsvc_breaker,
            fault_hook=lambda: self._fire_fault("statsvc"),
        )
        self.admission = AdmissionController(tenant_budgets)
        self.retention_policy_name = (
            retention_policy if isinstance(retention_policy, str) else "custom"
        )
        self._governed = retention_policy != "lru"

        def _policy() -> RetentionPolicy:
            return make_retention_policy(
                retention_policy, frequency=self.frequency.rate_for
            )

        self.plan_cache: PlanCache | None = (
            PlanCache(plan_cache_size, policy=_policy())
            if plan_cache_size > 0
            else None
        )
        self.skeleton_cache: SkeletonCache | None = (
            SkeletonCache(plan_cache_size, policy=_policy()) if parameterized else None
        )
        self.binding_cache: BindingCache | None = (
            BindingCache(plan_cache_size, policy=_policy()) if parameterized else None
        )
        #: Cost observability (see :mod:`repro.obsvc`): the typed
        #: metrics registry every serving emission and the
        #: ``describe_health`` / ``describe_caches`` views go through,
        #: the crash-consistent cost history, and the scheduled
        #: snapshot collector.  The collector is configured
        #: post-construction (:meth:`enable_collection`) so the frozen
        #: constructor surface is untouched.
        self.metrics = MetricsRegistry()
        self.cost_history = CostHistoryStore()
        self.collector = SnapshotCollector(self)
        #: Process-sharded serving (see :mod:`repro.core.sharding`):
        #: a warm :class:`~repro.core.sharding.PlannerWorkerPool` when
        #: :meth:`enable_sharding` has been called, else ``None`` (the
        #: in-process fast path, byte for byte).  Configured
        #: post-construction like :meth:`enable_collection`, so the
        #: frozen constructor surface is untouched.
        self._worker_pool = None
        #: Bumped by every explicit :meth:`invalidate_plan_cache` —
        #: part of the coherency fingerprint the worker pool broadcasts
        #: on (version-less flushes must still reach the workers).
        self._plan_cache_epoch = 0
        self._register_metric_sources()

    # ------------------------------------------------------------------ #
    # Observability: metric sources + unified entry point
    # ------------------------------------------------------------------ #
    def _register_metric_sources(self) -> None:
        """Wire every sourced metric to its authoritative subsystem.

        Sources are read-through: the caches keep their lock-striped
        integer stats, admission its journaled verdict counters,
        resilience its ledger-unit tallies — the registry only *views*
        them, so nothing on a hot path pays for observability twice.
        """
        metrics = self.metrics
        metrics.source("repro_tenant_cost_ledger_units", self._billing_units_source)
        metrics.source("repro_cache_entries", lambda: self._cache_source(len))
        metrics.source(
            "repro_cache_capacity", lambda: self._cache_source(lambda c: c.capacity)
        )
        metrics.source(
            "repro_cache_hits_total", lambda: self._cache_source(lambda c: c.hits)
        )
        metrics.source(
            "repro_cache_misses_total", lambda: self._cache_source(lambda c: c.misses)
        )
        metrics.source(
            "repro_cache_evictions_total",
            lambda: self._cache_source(lambda c: c.evictions),
        )
        metrics.source(
            "repro_cache_policy_evictions_total",
            lambda: self._cache_source(lambda c: c.policy.evictions),
        )
        metrics.source(
            "repro_timing_cache_hits_total",
            lambda: self._timing_cache_source("hits"),
        )
        metrics.source(
            "repro_timing_cache_computations_total",
            lambda: self._timing_cache_source("computations"),
        )
        metrics.source("repro_admission_verdicts_total", self._admission_source)
        metrics.source("repro_retries_total", lambda: self.resilience_stats.retries)
        metrics.source(
            "repro_retry_cost_ledger_units",
            lambda: self.resilience_stats.retry_units,
        )
        metrics.source(
            "repro_deadline_hits_total",
            lambda: self.resilience_stats.deadline_hits,
        )
        metrics.source(
            "repro_degraded_queries_total",
            lambda: self.resilience_stats.degraded_queries,
        )
        metrics.source("repro_breaker_state", lambda: self._breaker_source("state"))
        metrics.source(
            "repro_breaker_opens_total", lambda: self._breaker_source("opens")
        )
        metrics.source(
            "repro_breaker_consecutive_failures",
            lambda: self._breaker_source("consecutive_failures"),
        )
        metrics.source(
            "repro_tuning_cycles_total",
            lambda: self._tuning.cycles_run if self._tuning is not None else 0,
        )
        metrics.source(
            "repro_tuning_consecutive_failures",
            lambda: (
                self._tuning.consecutive_failures if self._tuning is not None else 0
            ),
        )
        metrics.source(
            "repro_background_cost_ledger_units", self._background_units_source
        )
        metrics.source(
            "repro_tuning_estimated_savings_ledger_units_per_hour",
            self._estimated_savings_source,
        )
        metrics.source(
            "repro_journal_records_total",
            lambda: len(self.journal) if self.journal is not None else 0,
        )
        metrics.source(
            "repro_journal_records_since_checkpoint",
            lambda: (
                self.journal.records_since_checkpoint
                if self.journal is not None
                else 0
            ),
        )
        metrics.source(
            "repro_journal_last_checkpoint_id",
            lambda: (
                (self.journal.last_checkpoint_id or 0)
                if self.journal is not None
                else 0
            ),
        )
        metrics.source("repro_virtual_clock_seconds", lambda: self.clock)
        metrics.source("repro_queries_logged_total", lambda: len(self.logs))
        metrics.source(
            "repro_worker_pool_size",
            lambda: self._worker_pool.size if self._worker_pool is not None else 0,
        )
        metrics.source(
            "repro_worker_restarts_total",
            lambda: (
                self._worker_pool.restarts if self._worker_pool is not None else 0
            ),
        )
        metrics.source(
            "repro_worker_restaged_tasks_total",
            lambda: (
                self._worker_pool.restaged_tasks
                if self._worker_pool is not None
                else 0
            ),
        )
        metrics.source(
            "repro_worker_warm_task_hits_total",
            lambda: (
                self._worker_pool.warm_hits if self._worker_pool is not None else {}
            ),
        )

    def _cache_source(self, read) -> dict:
        values = {}
        for name, cache in (
            ("plan", self.plan_cache),
            ("skeleton", self.skeleton_cache),
            ("binding", self.binding_cache),
        ):
            if cache is not None:
                values[(name,)] = read(cache)
        return values

    def _timing_cache_source(self, field: str) -> dict:
        cache = self.estimator.models.cache
        if cache is None:
            return {}
        stats = cache.stats
        return {
            ("timing",): getattr(stats, f"timing_{field}"),
            ("volume",): getattr(stats, f"volume_{field}"),
        }

    def _admission_source(self) -> dict:
        return {
            (tenant, verdict): count
            for tenant, counts in self.admission.verdict_counts.items()
            for verdict, count in counts.items()
        }

    def _billing_units_source(self) -> dict:
        values = {}
        for tenant, bill in sorted(self.billing.items()):
            values[(tenant, "serving")] = bill.serving_units
            values[(tenant, "background")] = bill.background_units
            values[(tenant, "retry")] = bill.retry_units
        return values

    def _background_units_source(self) -> dict:
        return {
            (tenant,): bill.background_units
            for tenant, bill in sorted(self.billing.items())
            if bill.background_units
        }

    def _breaker_source(self, field: str) -> dict:
        breakers = [("statsvc", self.statsvc_breaker)]
        if self._tuning is not None:
            breakers.append(("tuning", self._tuning.breaker))
        values = {}
        for name, breaker in breakers:
            value = breaker.snapshot()[field]
            if field == "state":
                value = _BREAKER_STATE_CODES[value]
            values[(name,)] = value
        return values

    def _estimated_savings_source(self) -> int:
        if self._tuning is None:
            return 0
        return sum(
            to_ledger_units(rec.report.net_per_hour)
            for rec in self._tuning.applied_recommendations
        )

    def observe(self, format: str = "dict"):
        """Unified observability entry point (see :mod:`repro.obsvc`).

        ``format="dict"`` (default) returns health + cache views, the
        full metrics registry, and the collected cost history as plain
        data; ``"json"`` returns the same serialized; ``"prometheus"``
        returns the registry in the Prometheus text exposition format.
        """
        from repro.obsvc.export import history_json, prometheus_text, registry_json

        if format == "prometheus":
            return prometheus_text(self.metrics)
        data = {
            "health": self.describe_health(),
            "caches": self.describe_caches(),
            "metrics": registry_json(self.metrics),
            "cost_history": history_json(self.cost_history),
        }
        if format == "json":
            return json.dumps(data, indent=2, sort_keys=True, default=str)
        if format != "dict":
            raise ReproError(f"unknown observe() format {format!r}")
        return data

    def enable_collection(
        self,
        *,
        cadence_queries: "int | None" = None,
        cadence_seconds: "float | None" = None,
    ) -> None:
        """Install a recurring cost-snapshot schedule (cadence counted
        in logged queries or *virtual* seconds, like ``TuningPolicy``);
        the serving layer collects between batches.
        ``warehouse.collector.configure(None)`` disables."""
        self.collector.configure(
            CollectionPolicy(
                cadence_queries=cadence_queries,
                cadence_seconds=cadence_seconds,
            )
        )

    def enable_sharding(
        self,
        *,
        workers: "int | None" = None,
        base_seed: int = 0,
        liveness_timeout_s: "float | None" = None,
    ) -> None:
        """Serve batches over a warm planner worker-*process* pool.

        Spawns ``workers`` long-lived planner processes (default:
        core-count capped at 4) that execute the CPU-heavy bind ->
        optimize staging out-of-process with template affinity, escaping
        the GIL (see :mod:`repro.core.sharding`).  All journal appends,
        billing, admission, simulation, and statistics-log writes stay
        in this process; sharded batches are bit-identical to threaded
        and sequential submission.  Configured post-construction (like
        :meth:`enable_collection`) so the frozen constructor surface is
        untouched; :meth:`disable_sharding` restores the in-process
        path.
        """
        from repro.core.sharding import PlannerWorkerPool

        self.disable_sharding()
        pool = PlannerWorkerPool(
            self,
            workers=workers,
            base_seed=base_seed,
            liveness_timeout_s=liveness_timeout_s,
        )
        pool.start()
        self._worker_pool = pool

    def disable_sharding(self) -> None:
        """Shut down the planner worker pool (no-op when not sharded)."""
        pool = self._worker_pool
        if pool is not None:
            pool.close()
            self._worker_pool = None

    @property
    def worker_pool(self):
        """The active planner worker pool, or ``None``."""
        return self._worker_pool

    def _maybe_collect(self) -> None:
        """Serving-layer hook mirroring :meth:`_maybe_autotune`: take a
        scheduled cost snapshot when the collection policy is due."""
        collector = self.collector
        if collector.policy is None or not collector.policy.recurring:
            return
        collector.maybe_collect()

    # ------------------------------------------------------------------ #
    # Sessions / query path
    # ------------------------------------------------------------------ #
    def session(
        self,
        *,
        tenant: str = "default",
        constraint: Constraint | None = None,
        policy: str | ScalingPolicy | None = None,
        template_namespace: str | None = None,
    ) -> Session:
        """Open a per-tenant session (the primary serving entry point).

        The session carries the tenant's defaults, sees an isolated view
        of the query log, and bills served queries against the tenant.
        """
        return Session(
            self,
            tenant=tenant,
            constraint=constraint,
            policy=policy,
            template_namespace=template_namespace,
        )

    def submit(
        self,
        sql: str,
        constraint: Constraint,
        *,
        template: str = "adhoc",
        at_time: float | None = None,
        policy: str | ScalingPolicy = "dop-monitor",
        execute_locally: bool = False,
        simulate: bool = True,
        truth: dict[int, float] | None = None,
        use_plan_cache: bool = True,
    ) -> QueryOutcome:
        """Optimize, (optionally) execute locally, and simulate one query.

        Thin shim over the default :class:`~repro.core.service.Session`:
        builds a :class:`~repro.core.service.QueryRequest` and returns
        ``session.submit(request).result()``.  ``truth`` overrides
        plan-node cardinalities in the simulator; when
        ``execute_locally`` is set and the warehouse holds real data,
        true cardinalities come from actual execution instead.
        ``use_plan_cache=False`` forces a fresh plan.
        """
        request = QueryRequest(
            sql=sql,
            constraint=constraint,
            template=template,
            at_time=at_time,
            policy=policy,
            execute_locally=execute_locally,
            simulate=simulate,
            truth=truth,
            use_plan_cache=use_plan_cache,
        )
        handle = self._default_session.submit(request)
        if handle.error is not None and handle.error.cause is not None:
            # Legacy contract: submit() raises the original error type
            # (BindError, ParseError, ...), not the serving wrapper —
            # pre-redesign callers catch concrete subclasses.
            raise handle.error.cause
        return handle.result()

    def submit_many(
        self,
        queries: Iterable[str | tuple[str, Constraint] | QueryRequest],
        *,
        constraint: Constraint | None = None,
        max_workers: int = 1,
        **submit_kwargs,
    ) -> list[QueryOutcome]:
        """Submit a batch through the default session's scheduler.

        ``queries`` yields SQL strings (planned under the shared
        ``constraint``), ``(sql, constraint)`` pairs, or full
        :class:`~repro.core.service.QueryRequest`\\ s.  Remaining keyword
        arguments become request fields — batch-wide settings that also
        override the corresponding fields of explicit ``QueryRequest``
        items, and the shared ``constraint`` fills any request without
        one.  ``max_workers`` > 1 plans on
        the concurrent :class:`~repro.core.service.ServingScheduler`
        (bit-identical outcomes, deterministic log order).  A failing
        item aborts the batch with a
        :class:`~repro.errors.QueryFailedError` naming the item (an
        admission denial aborts with the typed
        :class:`~repro.errors.AdmissionDeniedError`); use
        :meth:`Session.submit_many` with ``fail_fast=False`` for
        per-handle error reporting instead.
        """
        requests: list[QueryRequest] = []
        for item in queries:
            if isinstance(item, QueryRequest):
                request = item.replace(**submit_kwargs) if submit_kwargs else item
                if request.constraint is None and constraint is not None:
                    request = request.replace(constraint=constraint)
            elif isinstance(item, str):
                if constraint is None:
                    raise ReproError(
                        "submit_many needs a shared constraint for bare SQL items"
                    )
                request = QueryRequest(sql=item, constraint=constraint, **submit_kwargs)
            else:
                sql, item_constraint = item
                request = QueryRequest(
                    sql=sql, constraint=item_constraint, **submit_kwargs
                )
            requests.append(request)
        handles = self._default_session.submit_many(
            requests, fail_fast=True, max_workers=max_workers
        )
        return [handle.result() for handle in handles]

    def plan(
        self, sql: str, constraint: Constraint, *, use_plan_cache: bool = True
    ) -> tuple[BoundQuery, PlanChoice]:
        """Bind + optimize one query without executing or logging it.

        This is the serving-layer planning path :meth:`submit` uses —
        exact plan-cache hit, then skeleton-cache hit (re-plan cached
        join shapes under fresh literals), then full optimization.
        """
        return self._plan(sql, constraint, use_plan_cache)

    def _plan(
        self,
        sql: str,
        constraint: Constraint,
        use_plan_cache: bool,
        on_bound: Callable[[BoundQuery], None] | None = None,
        guard: StageGuard | None = None,
    ) -> tuple[BoundQuery, PlanChoice]:
        """Bind + optimize, via the two-level plan cache when possible.

        ``on_bound`` fires as soon as the bound query is available (from
        a cache or a fresh bind) — the serving layer uses it to stamp the
        :class:`~repro.core.service.QueryHandle`'s ``BOUND`` transition.
        ``guard`` (when resilience is enabled) wraps the ``bind`` and
        ``optimize`` fault points with retry/deadline/fault-injection
        handling; cache hits bypass both points — a cached plan needs no
        binding or optimization, so there is nothing to fail.
        """

        def staged(stage: str, fn: Callable[[], object]):
            return guard.run(stage, fn) if guard is not None else fn()

        if not use_plan_cache or self.plan_cache is None:
            bound = staged(
                "bind", lambda: self._maybe_rewrite_mv(self.binder.bind_sql(sql))
            )
            if on_bound is not None:
                on_bound(bound)
            return bound, staged(
                "optimize", lambda: self.optimizer.optimize(bound, constraint)
            )

        if not self.parameterized_serving:
            # PR 1 serving semantics: exact-match level only, key
            # recomputed per submission, fresh bind on every miss.
            key = (normalize_sql(sql), constraint, self.catalog.version)
            cached = self.plan_cache.lookup(key)
            if cached is not None:
                if on_bound is not None:
                    on_bound(cached[0])
                return cached
            bound = staged(
                "bind", lambda: self._maybe_rewrite_mv(self.binder.bind_sql(sql))
            )
            if on_bound is not None:
                on_bound(bound)
            choice = staged(
                "optimize", lambda: self.optimizer.optimize(bound, constraint)
            )
            self.plan_cache.store(key, bound, choice)
            return bound, choice

        version = self.catalog.version
        parameterized = parameterize_sql(sql)
        normalized = parameterized.normalized
        exact_key = (normalized, constraint, version)
        cached = self.plan_cache.lookup(exact_key)
        if cached is not None:
            if on_bound is not None:
                on_bound(cached[0])
            return cached

        # Binding (and, via the optimizer's DAG memo keyed on the bound
        # object, physical planning) is constraint-independent: reuse it
        # when the same query arrives under a second constraint.
        # ``governed`` = a non-LRU retention policy is active: stores are
        # annotated with the template identity and the planning seconds
        # the entry saves, so eviction can weigh forecast value.
        governed = self._governed
        bound = None
        binding_key = (normalized, version)
        if self.binding_cache is not None:
            bound = self.binding_cache.lookup(binding_key)
        if bound is None:
            # Reuse the parameterization already lexed for the cache
            # keys: recurring templates bind from a cached template AST
            # with the fresh constants substituted (no lex, no parse).
            bind_start = time.perf_counter() if governed else 0.0
            bound = staged(
                "bind",
                lambda: self.binder.bind_parameterized(
                    parameterized.template_key, parameterized.constants, sql=sql
                ),
            )
            if self.binding_cache is not None:
                if governed:
                    self.binding_cache.store(
                        binding_key,
                        bound,
                        template=parameterized.template_key,
                        cost_s=time.perf_counter() - bind_start,
                    )
                else:
                    self.binding_cache.store(binding_key, bound)
        # MV rewriting happens after the binding cache (which keeps the
        # original binding) and is deterministic per (template, catalog
        # version), so skeleton reuse stays coherent: every instance of a
        # template either rewrites onto the view or none does.
        bound = self._maybe_rewrite_mv(bound)
        if on_bound is not None:
            on_bound(bound)
        skeleton_key = None
        trees = None
        if self.skeleton_cache is not None:
            # The constraint kind is conservative key hygiene (DAG
            # planning never reads the constraint); it costs one extra
            # DP per template and kind.  Skeleton reuse trusts the
            # template's join shapes to be stable under literal changes
            # — enforced for the workload suite by the parity tests and
            # the benchmark guard; a template whose literals swing the
            # join-order DP would be re-planned on its cached shapes.
            kind = "sla" if constraint.is_sla else "budget"
            skeleton_key = (parameterized.template_key, kind, version)
            trees = self.skeleton_cache.lookup(skeleton_key)
        plan_start = time.perf_counter() if governed else 0.0
        choice = staged(
            "optimize",
            lambda: self.optimizer.optimize(bound, constraint, skeleton_trees=trees),
        )
        # The planning seconds this optimize took are what a future hit
        # on the stored entries saves (a proxy for the skeleton level,
        # whose hits still re-run physical planning and the DOP search).
        planning_s = time.perf_counter() - plan_start if governed else 0.0
        if skeleton_key is not None and trees is None:
            # variant_trees() reads the optimizer's DAG memo — no rework.
            self.skeleton_cache.store(
                skeleton_key,
                self.optimizer.variant_trees(bound),
                template=parameterized.template_key if governed else None,
                cost_s=planning_s,
            )
        self.plan_cache.store(
            exact_key,
            bound,
            choice,
            template=parameterized.template_key if governed else None,
            cost_s=planning_s,
        )
        return bound, choice

    def _plan_degraded(
        self, sql: str, constraint: Constraint
    ) -> tuple[BoundQuery, PlanChoice, str]:
        """Degraded-mode planning: never fails, never pollutes the caches.

        The fallback the serving layer takes when the ``optimize`` stage
        blows its deadline.  Runs *unguarded* (no fault points, no
        deadlines — the degraded path is the floor under the batch) and
        returns ``(bound, choice, mode)`` where ``mode`` is:

        - ``"skeleton"`` — the template's cached skeleton shapes were
          re-planned under the query's literals, exactly as a skeleton
          cache hit would have (bit-identical to full optimization by
          the skeleton parity contract), or
        - ``"heuristic"`` — the default plan: the left-deep DP winner
          with one DOP search, bit-identical to a cold
          ``explore_bushy=False`` optimizer.

        Nothing is stored in the exact plan cache: a heuristic plan is
        *not* what full optimization would produce, and caching it would
        serve degraded plans to healthy future submissions (the chaos
        suite's cache-consistency invariant).
        """
        if self.plan_cache is None or not self.parameterized_serving:
            bound = self._maybe_rewrite_mv(self.binder.bind_sql(sql))
            return bound, self.optimizer.optimize_heuristic(bound, constraint), "heuristic"
        version = self.catalog.version
        parameterized = parameterize_sql(sql)
        bound = None
        if self.binding_cache is not None:
            # The guarded path usually bound this query before its
            # optimize deadline tripped; reuse that binding.
            bound = self.binding_cache.lookup((parameterized.normalized, version))
        if bound is None:
            bound = self.binder.bind_parameterized(
                parameterized.template_key, parameterized.constants, sql=sql
            )
        bound = self._maybe_rewrite_mv(bound)
        if self.skeleton_cache is not None:
            kind = "sla" if constraint.is_sla else "budget"
            trees = self.skeleton_cache.lookup(
                (parameterized.template_key, kind, version)
            )
            if trees is not None:
                choice = self.optimizer.optimize(
                    bound, constraint, skeleton_trees=trees
                )
                return bound, choice, "skeleton"
        return bound, self.optimizer.optimize_heuristic(bound, constraint), "heuristic"

    # ------------------------------------------------------------------ #
    # Resilience / fault injection
    # ------------------------------------------------------------------ #
    def inject_faults(self, plan) -> None:
        """Install (or clear, with ``None``) a deterministic fault plan.

        ``plan`` is a :class:`~repro.testing.faults.FaultPlan`; the
        named fault points (``bind``, ``optimize``, ``simulate``,
        ``statsvc``, ``tuning_apply``, and — under sharded serving —
        ``worker_crash``) consult it live, so a plan can be
        swapped mid-workload to model an outage starting or ending.  The
        three *crash* points (``crash_pre_write``, ``crash_post_write``,
        ``crash_pre_commit`` — see
        :data:`~repro.testing.faults.CRASH_POINTS`) consult it too: they
        sever the process at journal-record boundaries for the
        kill-point recovery harness, raising
        :class:`~repro.testing.faults.SimulatedCrashError` (a
        ``BaseException`` no serving-layer handler swallows).
        """
        self.faults = plan

    def _fault_decision(self, point: str):
        plan = self.faults
        if plan is None:
            return None
        return plan.draw(point)

    def _fire_fault(self, point: str) -> None:
        """Raise the injected error for ``point``, if one fires (hook
        for non-staged fault points: ``statsvc``, ``tuning_apply``)."""
        decision = self._fault_decision(point)
        if decision is not None and decision.error is not None:
            raise decision.error

    def _stage_guard(self, tenant: str | None) -> StageGuard | None:
        """One per-request :class:`~repro.core.resilience.StageGuard`.

        ``None`` when resilience is disabled (the unwrapped A/B
        baseline).  The retry allowance is budget-aware: the tenant's
        current admission verdict (a lock-free peek — advisory, never
        counted) maps to a pressure ordinal that shrinks the attempts a
        near-DENY tenant may burn.
        """
        policy = self.resilience
        if not policy.enabled:
            return None
        attempts = policy.retry.max_attempts
        if tenant is not None and self.admission.active:
            verdict = self.admission.peek(tenant, self.billing.get(tenant))
            attempts = policy.retry.attempts_for(_RETRY_PRESSURE[verdict])

        def charge(dollars: float) -> None:
            if tenant is not None:
                self._charge_retry(tenant, dollars)

        return StageGuard(
            policy,
            attempts=attempts,
            fault_decision=self._fault_decision,
            charge_retry=charge,
            stats=self.resilience_stats,
        )

    def _charge_retry(self, tenant: str, dollars: float) -> None:
        """Meter one retry's modeled compute into the tenant's bill
        (write-ahead: the charge is journaled before it lands)."""
        if dollars <= 0.0:
            return
        with self._serving_lock:
            self._journal_append(RetryCharge(tenant=tenant, dollars=dollars))
            self._bill_for(tenant).charge_retry(dollars)

    # ------------------------------------------------------------------ #
    # Durability: write-ahead journal + checkpoint/restore
    # ------------------------------------------------------------------ #
    def _bill_for(self, tenant: str) -> TenantBill:
        """The tenant's bill, created on first charge."""
        bill = self.billing.get(tenant)
        if bill is None:
            bill = self.billing[tenant] = TenantBill(tenant)
        return bill

    def _journal_append(self, record) -> None:
        """Write-ahead append: the record lands in the journal *before*
        the in-memory state it describes mutates.

        No-op without an attached journal.  The two crash fault points
        bracketing the append (``crash_pre_write`` /
        ``crash_post_write``) are where the kill-point recovery harness
        severs the process: before the point the transition never
        happened; after it, replay redoes it exactly once.
        """
        journal = self.journal
        if journal is None:
            return
        self._fire_fault("crash_pre_write")
        entry = journal.append(record)
        self._note_durable(record)
        self._applied_lsn = entry.lsn
        self._fire_fault("crash_post_write")

    def _note_durable(self, record) -> None:
        """Fold one journal record into the durable tuning bookkeeping.

        Called on every live append *and* on every replayed record, so
        the live process and a recovered one agree on which
        recommendations committed and which are in doubt.
        """
        if isinstance(record, TuningIntent):
            self._durable_tuning[record.rec_id] = DurableRecommendation(
                rec_id=record.rec_id,
                name=record.name,
                kind=record.kind,
                state="applying",
                undo=record.undo,
                tenant_shares=record.tenant_shares,
            )
            return
        durable = (
            self._durable_tuning.get(record.rec_id)
            if isinstance(
                record, (TuningCommit, TuningFailed, RollbackIntent, RollbackCommit)
            )
            else None
        )
        if isinstance(record, TuningCommit):
            if durable is None:
                durable = self._durable_tuning[record.rec_id] = (
                    DurableRecommendation(
                        rec_id=record.rec_id,
                        name=record.name,
                        kind=record.kind,
                        state="applied",
                    )
                )
            # Keep the apply-time undo snapshot on the committed record:
            # a later rollback (live or crash-resolved) needs it.
            durable.state = "applied"
            durable.dollars = record.dollars
            durable.tenant_shares = record.tenant_shares
            durable.candidate = record.candidate
            durable.physical = record.physical
        elif isinstance(record, TuningFailed) and durable is not None:
            durable.state = "failed"
        elif isinstance(record, RollbackIntent) and durable is not None:
            durable.state = "rolling_back"
            if record.undo is not None:
                durable.undo = record.undo
            durable.dollars = record.dollars
            durable.tenant_shares = record.tenant_shares
        elif isinstance(record, RollbackCommit) and durable is not None:
            durable.state = "rolled_back"
            durable.dollars = record.dollars

    def checkpoint(self) -> None:
        """Write a :class:`~repro.core.journal.Checkpoint` record
        capturing the warehouse's full journaled state, so recovery
        replays only the records after it.  Taken under the serving
        lock: the snapshot is consistent with no finalize in flight.
        """
        journal = self.journal
        if journal is None:
            raise ReproError("checkpoint() needs an attached journal")
        with self._serving_lock:
            state = self._checkpoint_state()
            entry = journal.append(
                Checkpoint(checkpoint_id=journal.next_checkpoint_id(), state=state)
            )
            self._applied_lsn = entry.lsn

    def _checkpoint_state(self) -> CheckpointState:
        ledger: tuple = ()
        next_rec_id = 1
        if self._tuning is not None:
            ledger = tuple(self._tuning.background.ledger)
            next_rec_id = self._tuning._next_id
        return CheckpointState(
            clock=self.clock,
            records=tuple(self.logs),
            bills=tuple(
                bill.ledger_snapshot()
                for _, bill in sorted(self.billing.items())
            ),
            verdicts=tuple(
                (tenant, tuple(sorted(counts.items())))
                for tenant, counts in sorted(
                    self.admission.verdict_counts.items()
                )
            ),
            applied_mvs=tuple(self._applied_mvs.values()),
            durable_tuning=tuple(
                durable.copy() for durable in self._durable_tuning.values()
            ),
            ledger=ledger,
            next_rec_id=next_rec_id,
            cost_history=self.cost_history.as_state(),
        )

    def _maybe_checkpoint(self) -> None:
        """Roll a checkpoint when the journal's interval policy says so
        (called by the serving layer after each finalize, outside the
        serving lock)."""
        journal = self.journal
        if journal is None or journal.checkpoint_every is None:
            return
        if journal.records_since_checkpoint >= journal.checkpoint_every:
            self.checkpoint()

    @classmethod
    def recover(
        cls,
        journal: WriteAheadJournal,
        database: Database | None = None,
        catalog: Catalog | None = None,
        **kwargs,
    ) -> "CostIntelligentWarehouse":
        """Rebuild a warehouse from ``journal`` after a crash.

        ``database`` / ``catalog`` must be the *same* durable objects
        the crashed process was serving over (storage survives a
        process crash; only warehouse memory dies).  Construction
        kwargs should match the crashed warehouse's.  Restores the
        latest checkpoint, replays the journal tail, resolves in-doubt
        tuning applies (forward if committed, back via the journaled
        undo snapshot otherwise), then attaches the journal and writes
        a post-recovery checkpoint so a crash during a later replay
        never re-reads this one's work.
        """
        warehouse = cls(database, catalog, **kwargs)
        report = recover_warehouse(warehouse, journal)
        warehouse.journal = journal
        warehouse.last_recovery = report
        warehouse.checkpoint()
        return warehouse

    def describe_health(self) -> dict:
        """Failure-domain observability, alongside :meth:`describe_caches`.

        Reports the resilience counters (retries, retry dollars,
        deadline hits, degraded outcomes), both circuit breakers
        (``statsvc`` and ``tuning``), the tuning service's last swallowed
        error and consecutive-failure count, and the active fault plan's
        fired tallies (empty outside chaos testing).

        Every counter here is a **read-only view over the metrics
        registry** (:mod:`repro.obsvc.metrics`): the registry's sourced
        providers are the single path to the underlying subsystems, so
        this dict, the Prometheus exposition, and the JSON export can
        never disagree.
        """
        metrics = self.metrics
        resilience = {
            "retries": metrics.value("repro_retries_total"),
            "retry_dollars": from_ledger_units(
                metrics.value("repro_retry_cost_ledger_units")
            ),
            "deadline_hits": metrics.value("repro_deadline_hits_total"),
            "degraded_queries": metrics.value("repro_degraded_queries_total"),
            "enabled": self.resilience.enabled,
        }
        last_error = self._tuning.last_error if self._tuning is not None else None
        tuning = {
            "cycles_run": metrics.value("repro_tuning_cycles_total"),
            "consecutive_failures": metrics.value(
                "repro_tuning_consecutive_failures"
            ),
            "last_error": (
                f"{type(last_error).__name__}: {last_error}"
                if last_error is not None
                else None
            ),
        }
        states = metrics.sourced("repro_breaker_state")
        opens = metrics.sourced("repro_breaker_opens_total")
        failures = metrics.sourced("repro_breaker_consecutive_failures")
        breakers = {
            name: {
                "state": _BREAKER_STATE_NAMES[states.get((name,), 0)],
                "consecutive_failures": failures.get((name,), 0),
                "opens": opens.get((name,), 0),
            }
            for name in ("statsvc", "tuning")
        }
        journal = self.journal
        recovery = self.last_recovery
        durability = {
            "journaled": journal is not None,
            "journal_records": metrics.value("repro_journal_records_total"),
            "last_checkpoint_id": (
                journal.last_checkpoint_id if journal is not None else None
            ),
            "records_since_checkpoint": metrics.value(
                "repro_journal_records_since_checkpoint"
            ),
            "recovered": recovery is not None,
            "records_replayed": (
                recovery.records_replayed if recovery is not None else 0
            ),
            "in_doubt_forward": (
                recovery.in_doubt_forward if recovery is not None else 0
            ),
            "in_doubt_back": recovery.in_doubt_back if recovery is not None else 0,
        }
        return {
            "resilience": resilience,
            "durability": durability,
            "breakers": breakers,
            "tuning": tuning,
            "faults": {
                "active": self.faults is not None,
                "fired": self.faults.fired if self.faults is not None else {},
            },
        }

    def _maybe_rewrite_mv(self, bound: BoundQuery) -> BoundQuery:
        """Rewrite a bound query onto an applied materialized view.

        Applied MVs must change served plans — without this hook the
        caches would keep returning (version-keyed but semantically
        pre-tuning) base-table plans forever.  Rewrites only happen for
        views the :class:`~repro.tuning.service.TuningService` has
        applied and that are still present in the catalog, so a rollback
        (or an out-of-band drop) immediately restores base-table plans.
        """
        if not self._applied_mvs:
            return bound
        assert self.catalog is not None
        for candidate in self._applied_mvs.values():
            if not self.catalog.has_table(candidate.name) or not self.catalog.has_view(
                candidate.name
            ):
                continue
            rewritten = try_rewrite(bound, candidate)
            if rewritten is not None:
                return rewritten
        return bound

    def _register_applied_mv(self, candidate: MVCandidate) -> None:
        self._applied_mvs[candidate.name] = candidate

    def _unregister_applied_mv(self, candidate: MVCandidate) -> None:
        self._applied_mvs.pop(candidate.name, None)

    def warm_cache(
        self,
        workload: "Mapping[str, str] | Iterable[tuple[str, str]]",
        constraint: Constraint,
        *,
        top: int | None = None,
    ) -> list[str]:
        """Pre-plan the hottest forecast templates through the skeleton path.

        ``workload`` maps template family names to one representative SQL
        text each (a mapping or ``(family, sql)`` pairs).  Families are
        ranked by the Statistics Service's forecast arrival rates (raw
        log counts break ties, input order last, so an empty log warms in
        the given order), the ``top`` hottest are planned under
        ``constraint`` — populating the binding, skeleton, and exact
        caches exactly as serving would — and the warmed family names are
        returned hottest-first.  Nothing is logged, billed, or
        admission-checked: warming is the warehouse spending background
        planning time, not tenant traffic.  No-op when plan caching is
        disabled.
        """
        if self.plan_cache is None:
            return []
        ranked = rank_by_forecast(
            workload, self.frequency.family_rates(), self.logs.template_counts()
        )
        if top is not None:
            ranked = ranked[: max(top, 0)]
        warmed: list[str] = []
        for family, sql in ranked:
            self._plan(sql, constraint, True)
            if self._governed:
                self.frequency.note_template(
                    family, parameterize_sql(sql).template_key
                )
            warmed.append(family)
        return warmed

    def invalidate_plan_cache(self) -> None:
        """Explicitly flush cached plans, skeletons, and template
        bindings (catalog mutations invalidate automatically via the
        stats version; use this after out-of-band changes such as
        hardware recalibration)."""
        self._plan_cache_epoch += 1
        if self.plan_cache is not None:
            self.plan_cache.invalidate()
        if self.skeleton_cache is not None:
            self.skeleton_cache.invalidate()
        if self.binding_cache is not None:
            self.binding_cache.invalidate()
        # The representative template bindings embed the same statistics
        # the plan caches do; a flush that leaves them behind would hand
        # the tuning advisor bound queries from a world that no longer
        # exists.
        self._template_queries.clear()

    @property
    def template_queries(self) -> dict[str, BoundQuery]:
        """Representative bound query per template family, restricted to
        bindings made under the *current* stats version (stale ones are
        invisible until the template is served again)."""
        version = self.catalog.version
        return {
            template: bound
            for template, (bound_version, bound) in self._template_queries.items()
            if bound_version == version
        }

    def _remember_template(self, template: str, bound: BoundQuery) -> None:
        self._template_queries[template] = (self.catalog.version, bound)

    def _account(self, record: QueryRecord) -> None:
        """Roll one served query into the tenant's running bill."""
        self._bill_for(record.tenant).charge(record)

    @property
    def billed_dollars(self) -> float:
        """Total serving dollars billed across all tenants."""
        return sum(bill.dollars for bill in self.billing.values())

    @property
    def background_dollars(self) -> float:
        """Total background-tuning dollars metered across all tenants."""
        return sum(bill.background_dollars for bill in self.billing.values())

    def describe_billing(self) -> str:
        """Per-tenant spend roll-up, one line per tenant plus the total."""
        if not self.billing:
            return "billing: no queries served"
        lines = []
        for bill in sorted(self.billing.values(), key=lambda b: b.tenant):
            line = (
                f"  {bill.tenant}: {bill.queries} queries, ${bill.dollars:.4f}, "
                f"{bill.machine_seconds:.1f} machine-seconds"
            )
            if bill.background_actions:
                line += (
                    f", ${bill.background_dollars:.4f} background "
                    f"({bill.background_actions} tuning actions)"
                )
            lines.append(line)
        total = f"\n  total: ${self.billed_dollars:.4f}"
        if self.background_dollars:
            total += f" serving + ${self.background_dollars:.4f} background"
        return "billing by tenant:\n" + "\n".join(lines) + total

    def reset_cache_stats(self) -> None:
        """Zero all cache, optimizer, retention-policy, admission, and
        resilience counters without dropping entries or budgets
        (benchmark warmup: report steady-state rates only)."""
        for cache in (self.plan_cache, self.skeleton_cache, self.binding_cache):
            if cache is not None:
                cache.reset_stats()
        if self.estimator.models.cache is not None:
            self.estimator.models.cache.stats.reset()
        self.optimizer.reset_counters()
        self.admission.reset_stats()
        # Retry / deadline / degraded tallies are warmup noise too: a
        # benchmark that resets cache counters but keeps phantom retries
        # reports steady-state hit rates against warmup failures.
        self.resilience_stats.reset()
        # Owned registry metrics (served/failed/denied counters, latency
        # histograms, snapshot tallies) are warmup noise by the same
        # argument; sourced metrics re-read the subsystems just reset.
        self.metrics.reset()

    def describe_caches(self) -> dict[str, dict]:
        """Hit-rate and governance observability across serving caches.

        Reports the exact plan cache, the template skeleton cache, and
        the estimator's timing/volume caches — the numbers the
        throughput benchmark records next to its speedups — plus, per
        cache, the retention policy's name and its eviction count, and an
        ``admission`` block with per-tenant verdict counts (empty until a
        tenant budget is configured).

        Like :meth:`describe_health`, every number is a read-only view
        over the metrics registry's sourced providers; only the policy
        *name* (a string, not a metric) is read off the cache directly.
        """
        metrics = self.metrics
        entries = metrics.sourced("repro_cache_entries")
        capacity = metrics.sourced("repro_cache_capacity")
        hits = metrics.sourced("repro_cache_hits_total")
        misses = metrics.sourced("repro_cache_misses_total")
        evictions = metrics.sourced("repro_cache_evictions_total")
        policy_evictions = metrics.sourced("repro_cache_policy_evictions_total")
        report: dict[str, dict] = {}
        for name, label, cache in (
            ("plan", "plan_cache", self.plan_cache),
            ("skeleton", "skeleton_cache", self.skeleton_cache),
            ("binding", "binding_cache", self.binding_cache),
        ):
            if cache is None:
                continue
            cache_hits = hits.get((name,), 0)
            lookups = cache_hits + misses.get((name,), 0)
            report[label] = {
                "entries": entries.get((name,), 0),
                "capacity": capacity.get((name,), 0),
                "hits": cache_hits,
                "misses": misses.get((name,), 0),
                "evictions": evictions.get((name,), 0),
                "hit_rate": cache_hits / lookups if lookups else 0.0,
                "policy": cache.policy.name,
                "policy_evictions": policy_evictions.get((name,), 0),
            }
        verdicts: dict[str, dict[str, int]] = {}
        for (tenant, verdict), count in sorted(
            metrics.sourced("repro_admission_verdicts_total").items()
        ):
            verdicts.setdefault(tenant, {})[verdict] = count
        report["admission"] = verdicts
        if self.estimator.models.cache is not None:
            cache_hits = metrics.sourced("repro_timing_cache_hits_total")
            computations = metrics.sourced("repro_timing_cache_computations_total")
            block: dict[str, float] = {}
            for kind in ("timing", "volume"):
                kind_hits = cache_hits.get((kind,), 0)
                total = kind_hits + computations.get((kind,), 0)
                block[f"{kind}_hits"] = kind_hits
                block[f"{kind}_computations"] = computations.get((kind,), 0)
                block[f"{kind}_hit_rate"] = kind_hits / total if total else 0.0
            report["timing_cache"] = block
        return report

    def _simulate(
        self,
        choice: PlanChoice,
        constraint: Constraint,
        policy: str | ScalingPolicy,
        truth: dict[int, float] | None,
    ) -> SimResult:
        policy_obj = (
            policy
            if isinstance(policy, ScalingPolicy)
            else self.make_policy(policy, choice, constraint)
        )
        config = self.sim_config
        if getattr(policy_obj, "name", "") == "stage-scaler":
            config = dataclasses_replace(config, materialize_exchanges=True)
        simulator = DistributedSimulator(
            choice.dag,
            choice.dop_plan.dops,
            self.estimator.models,
            truth=truth,
            planned=choice.dop_plan.estimate,
            policy=policy_obj,
            config=config,
        )
        return simulator.run()

    def make_policy(
        self, name: str, choice: PlanChoice, constraint: Constraint
    ) -> ScalingPolicy:
        """Instantiate a scaling policy by name for one query."""
        if name == "static":
            return StaticPolicy()
        if name == "dop-monitor":
            return PipelineDopMonitor(
                choice.dag,
                self.estimator,
                constraint,
                choice.dop_plan.dops,
                planned_latency=choice.dop_plan.estimate.latency,
                planned_durations={
                    pid: p.duration
                    for pid, p in choice.dop_plan.estimate.pipelines.items()
                },
                max_dop=self.max_dop,
            )
        if name == "interval-scaler":
            sla = constraint.latency_sla or choice.dop_plan.estimate.latency * 1.5
            durations = {
                pid: p.duration
                for pid, p in choice.dop_plan.estimate.pipelines.items()
            }
            return IntervalScalerPolicy(
                choice.dag,
                sla,
                choice.dop_plan.dops,
                durations,
                max_dop=self.max_dop,
            )
        if name == "stage-scaler":
            return PerStageScalerPolicy(
                choice.dag, choice.dop_plan.dops, max_dop=self.max_dop
            )
        raise ReproError(f"unknown policy {name!r}; known: {POLICY_NAMES}")

    # ------------------------------------------------------------------ #
    # Statistics Service logging
    # ------------------------------------------------------------------ #
    def _log(
        self,
        sql: str,
        bound: BoundQuery,
        template: str,
        timestamp: float,
        choice: PlanChoice,
        sim: SimResult | None,
        constraint: Constraint,
        tenant: str = "default",
    ) -> QueryRecord:
        """Build, journal, and apply one served query's log record.

        Write-ahead: the :class:`~repro.core.journal.QueryServed` record
        (which carries the billing delta) is journaled *before* the log
        append, so a crash between the two is redone by replay and a
        crash before the journal write leaves no trace (the consumed
        query id is re-issued after recovery).
        """
        record = self._build_record(
            sql, bound, template, timestamp, choice, sim, constraint, tenant
        )
        self._journal_append(QueryServed(record=record))
        self._apply_served(record)
        return record

    def _build_record(
        self,
        sql: str,
        bound: BoundQuery,
        template: str,
        timestamp: float,
        choice: PlanChoice,
        sim: SimResult | None,
        constraint: Constraint,
        tenant: str = "default",
    ) -> QueryRecord:
        # Timestamps are assigned at *admission* (monotonic across the
        # warehouse), but concurrent sessions interleave their finalize
        # phases arbitrarily, so a later-admitted handle from one batch
        # can reach the log before an earlier-admitted one from another.
        # Clamp up to the last logged timestamp: the log stays
        # append-ordered and no finalize ever dies on the ordering check
        # (which would lose the record and fail a successful query).
        tail = self.logs.tail(1)
        if tail and timestamp < tail[0].timestamp:
            timestamp = tail[0].timestamp
        columns: set[str] = set()
        filter_columns: set[str] = set()
        for table in bound.table_names:
            for column in bound.columns_needed(table):
                columns.add(f"{table}.{column}")
            for predicate in bound.filters.get(table, []):
                for column in referenced_columns(predicate):
                    filter_columns.add(column)
        edges = tuple(
            (
                f"{e.left.table}.{e.left.name}",
                f"{e.right.table}.{e.right.name}",
            )
            for e in bound.join_edges
        )
        latency = sim.latency if sim is not None else choice.dop_plan.estimate.latency
        dollars = sim.total_dollars if sim is not None else choice.dop_plan.estimate.total_dollars
        machine = (
            sim.machine_seconds if sim is not None else choice.dop_plan.estimate.machine_seconds
        )
        bytes_scanned = sum(
            op.node.input_bytes
            for pipeline in choice.dag
            for op in pipeline.ops
            if hasattr(op.node, "input_bytes")
        )
        record = QueryRecord(
            query_id=self.logs.next_query_id(),
            timestamp=timestamp,
            sql=sql,
            template=template,
            tables=tuple(bound.table_names),
            columns=tuple(sorted(columns)),
            join_edges=edges,
            group_keys=tuple(k.name for k in bound.group_keys),
            filter_columns=tuple(sorted(filter_columns)),
            aggregate_sqls=tuple(a.sql() for a in bound.aggregates),
            latency_s=latency,
            machine_seconds=machine,
            dollars=dollars,
            bytes_scanned=bytes_scanned,
            sla_seconds=constraint.latency_sla,
            tenant=tenant,
            cost_breakdown=self._cost_breakdown(choice, dollars),
        )
        return record

    def _cost_breakdown(
        self, choice: PlanChoice, dollars: float
    ) -> tuple[tuple[str, str, int], ...]:
        """Apportion one query's spend over its plan's operators, exactly.

        Two-level largest-remainder split of ``to_ledger_units(dollars)``:
        pipelines weighted by their planned durations, operators within a
        pipeline by ``input_bytes`` (uniform when unknown).  Integer math
        throughout, so the returned ``(pipeline, operator, units)`` leaves
        always sum bitwise to the units the tenant's bill is charged —
        the invariant the drill-down navigator reconciles against.
        Zero-share leaves are dropped.
        """
        total_units = to_ledger_units(dollars)
        pipelines = list(choice.dag)
        if not pipelines:
            return ((("(plan)"), "(operator)", total_units),) if total_units else ()
        per_pipe = choice.dop_plan.estimate.pipelines
        pipe_weights = _int_weights(
            getattr(per_pipe.get(p.pipeline_id), "duration", 0.0)
            for p in pipelines
        )
        leaves: list[tuple[str, str, int]] = []
        for pipeline, pipe_units in zip(
            pipelines, _largest_remainder(total_units, pipe_weights)
        ):
            label = f"P{pipeline.pipeline_id}"
            ops = list(pipeline.ops)
            if not ops:
                if pipe_units:
                    leaves.append((label, "(pipeline)", pipe_units))
                continue
            op_weights = _int_weights(
                float(getattr(op.node, "input_bytes", 0.0)) for op in ops
            )
            for op, op_units in zip(
                ops, _largest_remainder(pipe_units, op_weights)
            ):
                if op_units:
                    leaves.append(
                        (label, f"{op.node.describe()}[{op.role}]", op_units)
                    )
        return tuple(leaves)

    def _apply_served(self, record: QueryRecord) -> None:
        """Apply a (journaled) served-query record to warehouse memory:
        append it to the Statistics Service log and register its
        template key with the frequency provider.  Shared verbatim by
        live serving and recovery replay."""
        self.logs.append(record)
        template = record.template
        if self._governed and template.rpartition(".")[2] != "adhoc":
            # Teach the frequency provider which literal-free template
            # key this logged family instantiates, so forecast rates can
            # score that template's cache entries (parameterize_sql is
            # lru-cached — the serving path just computed this).  The
            # default "adhoc" family (any namespace) is deliberately
            # skipped: it aggregates unrelated one-off queries, and its
            # combined arrival rate would let never-reused entries
            # outscore genuinely recurring templates.  Unregistered keys
            # score zero — exactly right for one-offs.
            self.frequency.note_template(
                template, parameterize_sql(record.sql).template_key
            )

    # ------------------------------------------------------------------ #
    # Background auto-tuning
    # ------------------------------------------------------------------ #
    @property
    def tuning(self) -> TuningService:
        """The warehouse's persistent tuning service (lazily created).

        Holds one What-If Service / advisor / background-compute
        executor for the warehouse's lifetime and exposes the typed
        ``propose() / apply() / apply_all() / rollback()`` lifecycle —
        see :mod:`repro.tuning.service`.
        """
        if self._tuning is None:
            self._tuning = TuningService(self, self.tuning_policy)
        return self._tuning

    def _maybe_autotune(self) -> None:
        """Serving-layer hook: run a tuning cycle when the policy is due.

        Called between batches by :class:`~repro.core.service.Session` /
        :class:`~repro.core.service.ServingScheduler`; a no-op unless a
        recurring :class:`~repro.tuning.service.TuningPolicy` is set.
        """
        policy = self._tuning.policy if self._tuning is not None else self.tuning_policy
        if policy is None or not policy.recurring:
            return
        self.tuning.maybe_run_cycle()

    def run_tuning_cycle(
        self,
        *,
        apply: bool = False,
        storage_budget_bytes: float | None = None,
    ) -> AdvisorProposals:
        """One advisor pass over the logged workload.

        .. deprecated::
            Thin shim over :attr:`tuning` for pre-redesign callers.
            Prefer the typed lifecycle — ``warehouse.tuning.propose()``
            returns :class:`~repro.tuning.service.Recommendation`\\ s
            that can be applied *and rolled back* individually, with
            background spend metered per tenant.

        With ``apply=True``, accepted actions run on background compute
        (physically when the warehouse holds data).
        """
        service = self.tuning
        recommendations = service.propose(
            storage_budget_bytes=storage_budget_bytes
        )
        if apply:
            service.apply_all(recommendations)
        assert service.last_proposals is not None
        return service.last_proposals
