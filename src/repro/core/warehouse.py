"""The cost-intelligent cloud data warehouse facade (paper Figure 3).

One object wiring the whole architecture: SQL frontend -> bi-objective
optimizer (cost estimator inside) -> elastic compute (simulated cluster
with the DOP monitor) -> billing -> Statistics Service logs ->
background auto-tuning.  Users state a latency SLA or a budget per query
— never a T-shirt size — and receive results plus an auditable cost
report, exactly the interaction model §2 calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.catalog.catalog import Catalog
from repro.core.bioptimizer import BiObjectiveOptimizer, PlanChoice
from repro.core.plan_cache import PlanCache, normalize_sql
from repro.cost.estimator import CostEstimator
from repro.cost.hardware import HardwareCalibration
from repro.dop.constraints import Constraint
from repro.engine.batch import Batch
from repro.engine.database import Database
from repro.engine.local_executor import LocalExecutor
from repro.errors import ReproError
from repro.monitor.policies import (
    IntervalScalerPolicy,
    PerStageScalerPolicy,
    PipelineDopMonitor,
    StaticPolicy,
)
from repro.plan.expressions import referenced_columns
from repro.sim.distsim import DistributedSimulator, ScalingPolicy, SimConfig, SimResult
from repro.sql.binder import Binder, BoundQuery
from repro.statsvc.logs import QueryLogStore, QueryRecord
from repro.tuning.advisor import AdvisorProposals, AutoTuningAdvisor
from repro.tuning.background import BackgroundComputeService
from repro.tuning.whatif import WhatIfService

POLICY_NAMES = ("dop-monitor", "static", "interval-scaler", "stage-scaler")


@dataclass
class QueryOutcome:
    """Everything one submission produced."""

    sql: str
    choice: PlanChoice
    sim: SimResult | None
    batch: Batch | None
    record: QueryRecord
    constraint: Constraint

    @property
    def latency(self) -> float:
        if self.sim is not None:
            return self.sim.latency
        return self.choice.dop_plan.estimate.latency

    @property
    def dollars(self) -> float:
        if self.sim is not None:
            return self.sim.total_dollars
        return self.choice.dop_plan.estimate.total_dollars

    @property
    def sla_met(self) -> bool | None:
        if self.constraint.latency_sla is None:
            return None
        return self.latency <= self.constraint.latency_sla

    def describe(self) -> str:
        from repro.util.units import fmt_dollars, fmt_duration

        lines = [
            f"constraint: {self.constraint.describe()}",
            f"plan: {self.choice.describe()}",
            f"outcome: latency={fmt_duration(self.latency)} "
            f"cost={fmt_dollars(self.dollars)}",
        ]
        if self.sla_met is not None:
            lines.append(f"SLA met: {self.sla_met}")
        return "\n".join(lines)


class CostIntelligentWarehouse:
    """The user-facing cost-intelligent warehouse service."""

    def __init__(
        self,
        database: Database | None = None,
        catalog: Catalog | None = None,
        *,
        hardware: HardwareCalibration | None = None,
        estimator: CostEstimator | None = None,
        sim_config: SimConfig | None = None,
        max_dop: int = 64,
        explore_bushy: bool = True,
        plan_cache_size: int = 256,
    ) -> None:
        if database is None and catalog is None:
            raise ReproError("provide a Database (with data) or a Catalog (stats-only)")
        self.database = database
        self.catalog = database.catalog if database is not None else catalog
        assert self.catalog is not None
        self.hw = hardware or HardwareCalibration()
        self.estimator = estimator or CostEstimator(self.hw)
        self.optimizer = BiObjectiveOptimizer(
            self.catalog,
            self.estimator,
            max_dop=max_dop,
            explore_bushy=explore_bushy,
        )
        self.binder = Binder(self.catalog)
        self.sim_config = sim_config or SimConfig()
        self.max_dop = max_dop
        self.logs = QueryLogStore()
        self.clock = 0.0
        self._template_queries: dict[str, BoundQuery] = {}
        #: Serving-layer plan cache keyed (normalized SQL, constraint,
        #: stats version); ``plan_cache_size=0`` disables it.
        self.plan_cache: PlanCache | None = (
            PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        )

    # ------------------------------------------------------------------ #
    # Query path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        sql: str,
        constraint: Constraint,
        *,
        template: str = "adhoc",
        at_time: float | None = None,
        policy: str | ScalingPolicy = "dop-monitor",
        execute_locally: bool = False,
        simulate: bool = True,
        truth: dict[int, float] | None = None,
        use_plan_cache: bool = True,
    ) -> QueryOutcome:
        """Optimize, (optionally) execute locally, and simulate one query.

        ``truth`` overrides plan-node cardinalities in the simulator;
        when ``execute_locally`` is set and the warehouse holds real
        data, true cardinalities come from actual execution instead.

        Binding and optimization are served from the plan cache when the
        same normalized SQL was planned under the same constraint and
        stats version; ``use_plan_cache=False`` forces a fresh plan.
        """
        timestamp = self.clock if at_time is None else at_time
        self.clock = max(self.clock, timestamp)

        bound, choice = self._plan(sql, constraint, use_plan_cache)
        self._template_queries[template] = bound

        batch: Batch | None = None
        if execute_locally:
            if self.database is None:
                raise ReproError("cannot execute locally without a Database")
            result = LocalExecutor(self.database).execute(choice.plan)
            batch = result.batch
            if truth is None:
                truth = {k: float(v) for k, v in result.true_rows.items()}

        sim_result: SimResult | None = None
        if simulate:
            sim_result = self._simulate(choice, constraint, policy, truth)

        record = self._log(sql, bound, template, timestamp, choice, sim_result, constraint)
        return QueryOutcome(
            sql=sql,
            choice=choice,
            sim=sim_result,
            batch=batch,
            record=record,
            constraint=constraint,
        )

    def submit_many(
        self,
        queries: Iterable[str | tuple[str, Constraint]],
        *,
        constraint: Constraint | None = None,
        **submit_kwargs,
    ) -> list[QueryOutcome]:
        """Submit a batch of queries through one warehouse session.

        ``queries`` yields SQL strings (planned under the shared
        ``constraint``) or ``(sql, constraint)`` pairs.  The binding and
        planning amortization comes from the plan cache each
        :meth:`submit` consults: a workload driver replaying a template
        pool pays for each distinct (SQL, constraint) plan once.
        Remaining keyword arguments are forwarded to :meth:`submit`.
        """
        outcomes: list[QueryOutcome] = []
        for item in queries:
            if isinstance(item, str):
                if constraint is None:
                    raise ReproError(
                        "submit_many needs a shared constraint for bare SQL items"
                    )
                sql, item_constraint = item, constraint
            else:
                sql, item_constraint = item
            outcomes.append(self.submit(sql, item_constraint, **submit_kwargs))
        return outcomes

    def _plan(
        self, sql: str, constraint: Constraint, use_plan_cache: bool
    ) -> tuple[BoundQuery, PlanChoice]:
        """Bind + optimize, via the plan cache when possible."""
        key = None
        if use_plan_cache and self.plan_cache is not None:
            key = (normalize_sql(sql), constraint, self.catalog.version)
            cached = self.plan_cache.lookup(key)
            if cached is not None:
                return cached
        bound = self.binder.bind_sql(sql)
        choice = self.optimizer.optimize(bound, constraint)
        if key is not None:
            self.plan_cache.store(key, bound, choice)
        return bound, choice

    def invalidate_plan_cache(self) -> None:
        """Explicitly flush cached plans (catalog mutations invalidate
        automatically via the stats version; use this after out-of-band
        changes such as hardware recalibration)."""
        if self.plan_cache is not None:
            self.plan_cache.invalidate()

    def _simulate(
        self,
        choice: PlanChoice,
        constraint: Constraint,
        policy: str | ScalingPolicy,
        truth: dict[int, float] | None,
    ) -> SimResult:
        policy_obj = (
            policy
            if isinstance(policy, ScalingPolicy)
            else self.make_policy(policy, choice, constraint)
        )
        config = self.sim_config
        if getattr(policy_obj, "name", "") == "stage-scaler":
            config = SimConfig(
                **{**config.__dict__, "materialize_exchanges": True}
            )
        simulator = DistributedSimulator(
            choice.dag,
            choice.dop_plan.dops,
            self.estimator.models,
            truth=truth,
            planned=choice.dop_plan.estimate,
            policy=policy_obj,
            config=config,
        )
        return simulator.run()

    def make_policy(
        self, name: str, choice: PlanChoice, constraint: Constraint
    ) -> ScalingPolicy:
        """Instantiate a scaling policy by name for one query."""
        if name == "static":
            return StaticPolicy()
        if name == "dop-monitor":
            return PipelineDopMonitor(
                choice.dag,
                self.estimator,
                constraint,
                choice.dop_plan.dops,
                planned_latency=choice.dop_plan.estimate.latency,
                planned_durations={
                    pid: p.duration
                    for pid, p in choice.dop_plan.estimate.pipelines.items()
                },
                max_dop=self.max_dop,
            )
        if name == "interval-scaler":
            sla = constraint.latency_sla or choice.dop_plan.estimate.latency * 1.5
            durations = {
                pid: p.duration
                for pid, p in choice.dop_plan.estimate.pipelines.items()
            }
            return IntervalScalerPolicy(
                choice.dag,
                sla,
                choice.dop_plan.dops,
                durations,
                max_dop=self.max_dop,
            )
        if name == "stage-scaler":
            return PerStageScalerPolicy(
                choice.dag, choice.dop_plan.dops, max_dop=self.max_dop
            )
        raise ReproError(f"unknown policy {name!r}; known: {POLICY_NAMES}")

    # ------------------------------------------------------------------ #
    # Statistics Service logging
    # ------------------------------------------------------------------ #
    def _log(
        self,
        sql: str,
        bound: BoundQuery,
        template: str,
        timestamp: float,
        choice: PlanChoice,
        sim: SimResult | None,
        constraint: Constraint,
    ) -> QueryRecord:
        columns: set[str] = set()
        filter_columns: set[str] = set()
        for table in bound.table_names:
            for column in bound.columns_needed(table):
                columns.add(f"{table}.{column}")
            for predicate in bound.filters.get(table, []):
                for column in referenced_columns(predicate):
                    filter_columns.add(column)
        edges = tuple(
            (
                f"{e.left.table}.{e.left.name}",
                f"{e.right.table}.{e.right.name}",
            )
            for e in bound.join_edges
        )
        latency = sim.latency if sim is not None else choice.dop_plan.estimate.latency
        dollars = sim.total_dollars if sim is not None else choice.dop_plan.estimate.total_dollars
        machine = (
            sim.machine_seconds if sim is not None else choice.dop_plan.estimate.machine_seconds
        )
        bytes_scanned = sum(
            op.node.input_bytes
            for pipeline in choice.dag
            for op in pipeline.ops
            if hasattr(op.node, "input_bytes")
        )
        record = QueryRecord(
            query_id=self.logs.next_query_id(),
            timestamp=timestamp,
            sql=sql,
            template=template,
            tables=tuple(bound.table_names),
            columns=tuple(sorted(columns)),
            join_edges=edges,
            group_keys=tuple(k.name for k in bound.group_keys),
            filter_columns=tuple(sorted(filter_columns)),
            aggregate_sqls=tuple(a.sql() for a in bound.aggregates),
            latency_s=latency,
            machine_seconds=machine,
            dollars=dollars,
            bytes_scanned=bytes_scanned,
            sla_seconds=constraint.latency_sla,
        )
        self.logs.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Background auto-tuning
    # ------------------------------------------------------------------ #
    def run_tuning_cycle(
        self,
        *,
        apply: bool = False,
        storage_budget_bytes: float | None = None,
    ) -> AdvisorProposals:
        """One advisor pass over the logged workload.

        With ``apply=True``, accepted actions run on background compute
        (physically when the warehouse holds data).
        """
        whatif = WhatIfService(self.catalog, self.estimator)
        kwargs = {}
        if storage_budget_bytes is not None:
            kwargs["storage_budget_bytes"] = storage_budget_bytes
        advisor = AutoTuningAdvisor(self.catalog, whatif, **kwargs)
        proposals = advisor.propose(self.logs, self._template_queries)
        if apply and proposals.accepted:
            background = BackgroundComputeService(
                database=self.database, catalog=self.catalog
            )
            from repro.tuning.clustering import ReclusterCandidate
            from repro.tuning.mv import mv_candidate_from_query

            for report in proposals.accepted:
                if report.kind == "materialized-view":
                    template = report.action_name.removeprefix("mv_")
                    query = self._template_queries.get(template)
                    if query is None:
                        continue
                    candidate = mv_candidate_from_query(
                        query, self.catalog, name=report.action_name
                    )
                    background.apply_mv(candidate, report)
                elif report.kind == "recluster":
                    parts = report.action_name.removeprefix("recluster_").split("_on_")
                    background.apply_recluster(
                        ReclusterCandidate(table=parts[0], key=parts[1]), report
                    )
        return proposals
