"""Scaling policies: the paper's DOP monitor and the prior-art baselines.

All policies implement the :class:`repro.sim.distsim.ScalingPolicy`
protocol and run inside the distributed simulator.

- :class:`StaticPolicy` — execute the static plan unchanged.
- :class:`PipelineDopMonitor` — the paper's §3.3 design: pipeline-granular
  adjustment for moderate deviations, full DOP replanning for substantial
  ones, fed by observed true cardinalities.
- :class:`IntervalScalerPolicy` — whole-cluster scaling on a fixed cadence
  against an SLA (Jockey/Ellis family): scales *every* active pipeline by
  the same factor, which the paper notes "could hurt their resource
  utilization".
- :class:`PerStageScalerPolicy` — BigQuery-style: only re-sizes *future*
  stages using cardinalities revealed at stage boundaries; pair it with
  ``SimConfig(materialize_exchanges=True)`` to charge the "clean cut"
  materialization the paper argues is nonessential.
"""

from __future__ import annotations

import math

from repro.cost.estimator import CostEstimator
from repro.dop.cofinish import min_dop_for_duration
from repro.dop.constraints import Constraint
from repro.dop.planner import DopPlanner
from repro.monitor.deviation import DeviationThresholds, deviation_ratio
from repro.plan.pipelines import PipelineDag
from repro.sim.distsim import (
    CheckpointObservation,
    ResizeDecision,
    ScalingPolicy,
)


class StaticPolicy(ScalingPolicy):
    """No run-time adaptation (the static-plan baseline)."""

    name = "static"


class PipelineDopMonitor(ScalingPolicy):
    """The paper's DOP monitor (§3.3).

    Collects true cardinalities at checkpoints.  A deviation between the
    minor and major thresholds re-derives *this pipeline's* DOP from the
    scalability models so the pipeline still finishes near its planned
    duration.  A deviation beyond the major threshold re-invokes the DOP
    planner over the remaining pipelines with all observations learned
    so far.
    """

    name = "dop-monitor"

    def __init__(
        self,
        dag: PipelineDag,
        estimator: CostEstimator,
        constraint: Constraint,
        planned_dops: dict[int, int],
        *,
        planned_latency: float | None = None,
        planned_durations: dict[int, float] | None = None,
        thresholds: DeviationThresholds | None = None,
        max_dop: int = 64,
        max_replans: int = 2,
    ) -> None:
        self.dag = dag
        self.estimator = estimator
        self.constraint = constraint
        self.planned_dops = dict(planned_dops)
        self.planned_latency = planned_latency
        self.planned_durations = dict(planned_durations or {})
        self.thresholds = thresholds or DeviationThresholds()
        self.max_dop = max_dop
        self.max_replans = max_replans
        self.learned: dict[int, float] = {}
        self.adjustments = 0
        self.replans = 0
        self._finished: set[int] = set()

    def _sla_slack(self) -> float:
        """How much looser than the plan the SLA is (>= 1 when headroom).

        Per-pipeline correction targets scale by this factor: there is no
        point restoring the planned duration exactly when the SLA leaves
        4x headroom — doing so buys latency nobody asked for (and pays
        for it).
        """
        if (
            self.constraint.latency_sla is None
            or self.planned_latency is None
            or self.planned_latency <= 0
        ):
            return 1.0
        return max(1.0, self.constraint.latency_sla / self.planned_latency)

    # ------------------------------------------------------------------ #
    def on_checkpoint(self, obs: CheckpointObservation) -> ResizeDecision | None:
        self._learn(obs.pipeline_id, obs.true_source_rows)
        deviation = max(
            deviation_ratio(obs.true_source_rows, obs.planned_source_rows),
            deviation_ratio(obs.projected_duration, obs.planned_duration)
            if obs.planned_duration > 0
            else 1.0,
        )
        action = self.thresholds.classify(deviation)
        if action == "none":
            return None
        if action == "adjust":
            return self._adjust_single(obs)
        return self._full_replan(obs)

    def _adjust_single(self, obs: CheckpointObservation) -> ResizeDecision | None:
        """Re-derive this pipeline's DOP from its remaining SLA budget.

        The remaining wall-clock budget is split across this pipeline and
        the not-yet-finished rest proportionally to their planned
        durations; the pipeline then gets the smallest DOP whose modeled
        remaining time fits its share.
        """
        pipeline = self.dag.pipeline(obs.pipeline_id)
        target_full = self._target_full_duration(obs)
        if target_full is None or obs.projected_duration <= target_full:
            return None
        new_dop = min_dop_for_duration(
            pipeline,
            max(target_full, 1e-3),
            self.estimator.models,
            max_dop=self.max_dop,
            overrides=self.learned,
        )
        if new_dop == obs.dop:
            return None
        self.adjustments += 1
        return ResizeDecision(new_dop=new_dop)

    def _target_full_duration(self, obs: CheckpointObservation) -> float | None:
        planned_here = (
            obs.planned_duration if obs.planned_duration > 0 else obs.projected_duration
        )
        if self.constraint.latency_sla is None or not self.planned_durations:
            return planned_here * self._sla_slack()
        remaining_sla = self.constraint.latency_sla - obs.time
        if remaining_sla <= 0:
            return planned_here  # SLA already blown; recover the plan pace
        planned_remaining_here = (1.0 - obs.progress) * planned_here
        planned_rest = sum(
            duration
            for pid, duration in self.planned_durations.items()
            if pid != obs.pipeline_id and pid not in self._finished
        )
        total = planned_remaining_here + planned_rest
        if total <= 0:
            return planned_here * self._sla_slack()
        share = planned_remaining_here / total
        target_remaining = max(1e-3, remaining_sla * share)
        remaining_fraction = max(1e-3, 1.0 - obs.progress)
        return target_remaining / remaining_fraction

    def _full_replan(self, obs: CheckpointObservation) -> ResizeDecision | None:
        if self.replans >= self.max_replans:
            return self._adjust_single(obs)
        self.replans += 1
        planner = DopPlanner(self.estimator, max_dop=self.max_dop)
        plan = planner.plan(self.dag, self.constraint, overrides=self.learned)
        replan = {
            pid: dop for pid, dop in plan.dops.items() if pid != obs.pipeline_id
        }
        # The replanned DOP for the running pipeline may still be too slow
        # given the time already burned; take the max with the
        # budget-aware single-pipeline correction.
        adjusted = self._adjust_single(obs)
        new_dop = plan.dops.get(obs.pipeline_id, obs.dop)
        if adjusted is not None and adjusted.new_dop is not None:
            new_dop = max(new_dop, adjusted.new_dop)
        return ResizeDecision(
            new_dop=new_dop if new_dop != obs.dop else None, replan=replan
        )

    def on_pipeline_finish(
        self, pipeline_id: int, time: float, true_rows: float
    ) -> dict[int, int] | None:
        self._learn(pipeline_id, true_rows)
        self._finished.add(pipeline_id)
        return None

    def _learn(self, pipeline_id: int, true_rows: float) -> None:
        pipeline = self.dag.pipeline(pipeline_id)
        source = pipeline.ops[0].node
        self.learned[source.node_id] = true_rows


class IntervalScalerPolicy(ScalingPolicy):
    """Whole-cluster interval scaling against an SLA (Jockey/Ellis style).

    At each observation it projects query completion assuming remaining
    pipelines run at planned durations; if the projection misses the SLA
    it scales the *current* pipeline and all pending pipelines by the
    same lateness factor — the coarse-grained behavior the paper
    contrasts with pipeline-granular resizing.
    """

    name = "interval-scaler"

    def __init__(
        self,
        dag: PipelineDag,
        sla_seconds: float,
        planned_dops: dict[int, int],
        planned_durations: dict[int, float],
        *,
        max_dop: int = 64,
        slack: float = 0.9,
    ) -> None:
        self.dag = dag
        self.sla = sla_seconds
        self.planned_dops = dict(planned_dops)
        self.planned_durations = dict(planned_durations)
        self.max_dop = max_dop
        self.slack = slack
        self.scale_ups = 0

    def on_checkpoint(self, obs: CheckpointObservation) -> ResizeDecision | None:
        remaining_here = (1.0 - obs.progress) * obs.projected_duration
        pending = [
            pid
            for pid, state_duration in self.planned_durations.items()
            if pid != obs.pipeline_id
        ]
        # Crude serial projection (the style of SLA-progress scalers).
        remaining_rest = sum(
            self.planned_durations[pid] for pid in pending if pid > obs.pipeline_id
        )
        projected_finish = obs.time + remaining_here + remaining_rest
        deadline = self.sla * self.slack
        if projected_finish <= deadline:
            return None
        lateness = projected_finish / max(deadline, 1e-9)
        factor = max(2.0, lateness)
        self.scale_ups += 1
        new_dop = min(self.max_dop, max(obs.dop + 1, math.ceil(obs.dop * factor)))
        replan = {
            pid: min(self.max_dop, math.ceil(self.planned_dops.get(pid, 1) * factor))
            for pid in pending
        }
        return ResizeDecision(new_dop=new_dop, replan=replan)


class PerStageScalerPolicy(ScalingPolicy):
    """Per-stage scaling at shuffle boundaries (BigQuery style).

    Never resizes a running pipeline.  When a pipeline finishes, its true
    output cardinality re-sizes the not-yet-started pipelines
    proportionally to the volume they will now receive.  Use together
    with ``SimConfig(materialize_exchanges=True)`` so every exchange pays
    the materialization round-trip such engines require.
    """

    name = "stage-scaler"

    def __init__(
        self,
        dag: PipelineDag,
        planned_dops: dict[int, int],
        *,
        max_dop: int = 64,
    ) -> None:
        self.dag = dag
        self.planned_dops = dict(planned_dops)
        self.max_dop = max_dop
        self.restages = 0
        self._ratios: dict[int, float] = {}

    def on_pipeline_finish(
        self, pipeline_id: int, time: float, true_rows: float
    ) -> dict[int, int] | None:
        pipeline = self.dag.pipeline(pipeline_id)
        planned_rows = float(pipeline.ops[0].node.est_rows)
        ratio = true_rows / planned_rows if planned_rows > 0 else 1.0
        self._ratios[pipeline_id] = ratio
        consumer = pipeline.consumer_id
        if consumer is None:
            return None
        sibling_ratios = [
            self._ratios.get(p.pipeline_id, 1.0)
            for p in self.dag.siblings(pipeline_id)
        ]
        factor = max(sibling_ratios)
        planned = self.planned_dops.get(consumer, 1)
        new_dop = min(self.max_dop, max(1, math.ceil(planned * factor)))
        if new_dop != planned:
            self.restages += 1
        return {consumer: new_dop}
