"""DOP monitor: run-time cluster resizing at pipeline granularity (§3.3).

The monitor watches true cardinalities and flow rates during execution.
Small deviations from the static plan adjust the affected pipeline's DOP
via the scalability models; substantial deviations re-invoke the DOP
planner with the observed statistics.  Baseline policies reproduce the
two prior-art categories the paper contrasts: whole-cluster interval
scaling (Jockey/Ellis-style) and per-stage scaling with materialized
"clean cuts" (BigQuery-style).
"""

from repro.monitor.deviation import DeviationThresholds, deviation_ratio
from repro.monitor.policies import (
    IntervalScalerPolicy,
    PerStageScalerPolicy,
    PipelineDopMonitor,
    StaticPolicy,
)

__all__ = [
    "DeviationThresholds",
    "deviation_ratio",
    "StaticPolicy",
    "PipelineDopMonitor",
    "IntervalScalerPolicy",
    "PerStageScalerPolicy",
]
