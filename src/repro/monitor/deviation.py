"""Deviation detection for the DOP monitor.

"If the measures of a pipeline deviate from the statically-planned
values within a threshold, we correct the deviation by adjusting the DOP
of this pipeline only ... If the deviation is substantial, we will
reinvoke the DOP planner" (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


def deviation_ratio(observed: float, planned: float) -> float:
    """Symmetric deviation: max(obs/plan, plan/obs); 1.0 = on plan."""
    if observed <= 0 or planned <= 0:
        return 1.0
    ratio = observed / planned
    return max(ratio, 1.0 / ratio)


@dataclass(frozen=True)
class DeviationThresholds:
    """Two-level thresholds separating the §3.3 reactions.

    deviation <= minor  -> leave the plan alone
    minor < deviation <= major -> adjust this pipeline's DOP only
    deviation > major  -> re-invoke the DOP planner for pending pipelines
    """

    minor: float = 1.3
    major: float = 3.0

    def __post_init__(self) -> None:
        if not 1.0 <= self.minor <= self.major:
            raise ReproError(
                f"thresholds must satisfy 1 <= minor <= major, got "
                f"{self.minor}, {self.major}"
            )

    def classify(self, deviation: float) -> str:
        """Return 'none', 'adjust', or 'replan'."""
        if deviation <= self.minor:
            return "none"
        if deviation <= self.major:
            return "adjust"
        return "replan"
