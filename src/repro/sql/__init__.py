"""SQL frontend: lexer, parser, and binder for an analytical SQL subset.

Supported surface: ``SELECT [DISTINCT] exprs FROM tables [JOIN .. ON ..]
[WHERE ..] [GROUP BY ..] [HAVING ..] [ORDER BY ..] [LIMIT n]`` with
arithmetic/comparison/logical expressions, ``BETWEEN``, ``IN`` lists,
``DATE '...'`` literals, and the aggregates sum/count/avg/min/max —
enough to express the TPC-H-style workloads used in the experiments.
"""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse
from repro.sql.binder import Binder, BoundQuery, JoinEdge, TableRef
from repro.sql.parameterize import (
    ParameterizedSQL,
    bind_constants,
    normalize_sql,
    parameterize_sql,
    render_sql,
)

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "Binder",
    "BoundQuery",
    "JoinEdge",
    "TableRef",
    "ParameterizedSQL",
    "bind_constants",
    "normalize_sql",
    "parameterize_sql",
    "render_sql",
]
