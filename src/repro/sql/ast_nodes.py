"""Unbound SQL AST produced by the parser, consumed by the binder.

These nodes mirror the textual query; names are unresolved and string
literals are raw.  The binder converts them into bound
:mod:`repro.plan.expressions` trees plus a :class:`~repro.sql.binder.BoundQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class AstExpr:
    """Base class for unbound expressions."""


@dataclass(frozen=True)
class AstColumn(AstExpr):
    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class AstLiteral(AstExpr):
    value: float | int | str
    is_date: bool = False

    def __str__(self) -> str:
        if isinstance(self.value, str):
            prefix = "DATE " if self.is_date else ""
            return f"{prefix}'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class AstBinary(AstExpr):
    op: str
    left: AstExpr
    right: AstExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AstUnary(AstExpr):
    op: str
    operand: AstExpr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class AstBetween(AstExpr):
    operand: AstExpr
    low: AstExpr
    high: AstExpr
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {word} {self.low} AND {self.high})"


@dataclass(frozen=True)
class AstInList(AstExpr):
    operand: AstExpr
    values: tuple[AstLiteral, ...]
    negated: bool = False

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {word} ({', '.join(map(str, self.values))}))"


@dataclass(frozen=True)
class AstFuncCall(AstExpr):
    """Function call; covers aggregates and scalar functions uniformly.

    ``star`` marks ``count(*)``.
    """

    name: str
    args: tuple[AstExpr, ...]
    distinct: bool = False
    star: bool = False

    def __str__(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(map(str, self.args))
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class AstTableRef:
    name: str
    alias: str | None = None


@dataclass(frozen=True)
class AstJoin:
    table: AstTableRef
    condition: AstExpr


@dataclass(frozen=True)
class AstOrderItem:
    expr: AstExpr
    ascending: bool = True


@dataclass(frozen=True)
class AstSelectItem:
    expr: AstExpr
    alias: str | None = None


@dataclass
class AstSelect:
    """A full SELECT statement."""

    items: list[AstSelectItem] = field(default_factory=list)
    tables: list[AstTableRef] = field(default_factory=list)
    joins: list[AstJoin] = field(default_factory=list)
    where: AstExpr | None = None
    group_by: list[AstColumn] = field(default_factory=list)
    having: AstExpr | None = None
    order_by: list[AstOrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
