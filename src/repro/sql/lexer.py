"""SQL lexer: text -> token stream.

Hand-rolled single-pass scanner.  Keywords are case-insensitive;
identifiers are lower-cased at lexing time (the workload schemas use
lower-case names throughout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "order",
    "limit",
    "join",
    "inner",
    "on",
    "and",
    "or",
    "not",
    "in",
    "between",
    "as",
    "asc",
    "desc",
    "date",
}

#: Multi-character symbols first so the scanner is greedy.
_SYMBOLS = ("<>", "!=", "<=", ">=", "<", ">", "=", "(", ")", ",", ".", "+", "-", "*", "/", ";")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type is TokenType.SYMBOL and self.text == symbol


def tokenize(sql: str) -> list[Token]:
    """Scan ``sql`` into tokens, ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
                if sql[i] == ".":
                    # A dot not followed by a digit is a qualifier, not a
                    # decimal point (e.g. ``t1.c2``).
                    if i + 1 >= length or not sql[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= length:
                    raise ParseError("unterminated string literal", start)
                if sql[i] == "'":
                    if i + 1 < length and sql[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(sql[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
