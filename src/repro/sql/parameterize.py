"""Template parameterization: SQL text -> (template key, constants).

Real report traffic re-issues the same SQL *shape* with different
literals, so keying a plan cache on the literal-bearing token stream
(PR 1's ``normalize_sql``) makes every parameter change a full miss.
This module splits the normalized token stream into two parts:

- the **template key**: the token stream with every literal replaced by
  a positional placeholder — whitespace-, case-, and comment-insensitive
  like the normalized stream, but shared by all instantiations of one
  template;
- the **constants**: the extracted ``(kind, text)`` literal tokens, in
  query order.

``bind_constants(template_key, constants)`` is the exact inverse: it
reproduces the literal-bearing normalized stream, so the pair is a
lossless factorization of :func:`normalize_sql` (property-tested in
``tests/sql/test_parameterize.py``).  ``render_sql`` re-emits executable
SQL text from a template and constants for re-binding and round-trip
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ReproError
from repro.sql.lexer import TokenType, tokenize

#: Placeholder marker used inside template keys.  A plain string cannot
#: collide with real tokens because every real entry is a 2-tuple.
PARAM = "?"

#: Token kinds treated as extractable constants.
_LITERAL_KINDS = frozenset({TokenType.NUMBER.name, TokenType.STRING.name})


class HashedKey(tuple):
    """A tuple that caches its hash.

    Cache keys built from token streams are long (one entry per token)
    and get hashed on every dict operation; caching the hash makes
    repeated lookups with the same key object O(1) instead of O(tokens).
    """

    def __hash__(self) -> int:  # type: ignore[override]
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = tuple.__hash__(self)
            self.__dict__["_hash"] = cached
        return cached


@dataclass(frozen=True)
class ParameterizedSQL:
    """The two-part identity of a SQL text.

    ``template_key`` entries are ``(kind, text)`` tuples for structural
    tokens and the :data:`PARAM` marker for literal positions;
    ``constants`` holds the extracted ``(kind, text)`` literals in order.
    ``normalized`` is the literal-bearing normalized stream (the
    exact-match cache key), precomputed because the serving path reads
    it on every arrival.
    """

    template_key: tuple
    constants: tuple[tuple[str, str], ...]
    normalized: tuple


def normalize_sql(sql: str) -> tuple:
    """Whitespace/case/comment-insensitive identity of a SQL text.

    Returns the token stream as a hashable tuple of ``(kind, text)``
    pairs; the lexer already lowercases keywords and identifiers and
    drops comments, so formatting differences collapse to one key.
    String and numeric literals keep their exact text — two queries with
    different parameters are different exact-match keys (the skeleton
    level uses :func:`parameterize_sql` to collapse them).
    """
    return tuple(
        (token.type.name, token.text)
        for token in tokenize(sql)
        if token.type is not TokenType.EOF
    )


@lru_cache(maxsize=4096)
def parameterize_sql(sql: str) -> ParameterizedSQL:
    """Split ``sql`` into a literal-free template key plus its constants.

    One tokenize pass produces both halves plus the exact-match key, so
    callers need only this function on the serving path.  Memoized on
    the raw text (a pure function of it): report traffic re-sends
    byte-identical SQL per (template, parameters) pair, and one arrival
    is typically planned under more than one constraint.
    """
    template: list = []
    constants: list[tuple[str, str]] = []
    normalized: list[tuple[str, str]] = []
    for token in tokenize(sql):
        if token.type is TokenType.EOF:
            continue
        entry = (token.type.name, token.text)
        normalized.append(entry)
        if token.type.name in _LITERAL_KINDS:
            template.append(PARAM)
            constants.append(entry)
        else:
            template.append(entry)
    return ParameterizedSQL(
        template_key=HashedKey(template),
        constants=tuple(constants),
        normalized=HashedKey(normalized),
    )


def bind_constants(
    template_key: tuple, constants: tuple[tuple[str, str], ...]
) -> tuple:
    """Substitute ``constants`` back into ``template_key``.

    Returns the normalized token stream the original query would produce
    (``normalize_sql(sql)``); raises when the constant count does not
    match the template's placeholder count.
    """
    bound: list = []
    index = 0
    for entry in template_key:
        if entry == PARAM:
            if index >= len(constants):
                raise ReproError(
                    f"template expects more than {len(constants)} constants"
                )
            bound.append(constants[index])
            index += 1
        else:
            bound.append(entry)
    if index != len(constants):
        raise ReproError(
            f"template takes {index} constants, got {len(constants)}"
        )
    return tuple(bound)


def render_sql(
    template_key: tuple, constants: tuple[tuple[str, str], ...]
) -> str:
    """Re-emit executable SQL text from a template and constants.

    The output is a formatting-normalized equivalent of the original
    query: re-tokenizing it reproduces exactly
    ``bind_constants(template_key, constants)``.
    """
    parts: list[str] = []
    for kind, text in bind_constants(template_key, constants):
        if kind == TokenType.STRING.name:
            escaped = text.replace("'", "''")
            parts.append(f"'{escaped}'")
        else:
            parts.append(text)
    return " ".join(parts)
