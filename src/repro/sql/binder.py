"""Binder: unbound AST + catalog -> bound query graph.

The binder resolves names, type-checks string comparisons against sorted
column dictionaries, splits the WHERE clause into per-table filters and
equi-join edges, and extracts aggregates — producing the
:class:`BoundQuery` "query graph" that the DAG planner optimizes.
Representing the query as a graph (rather than a fixed operator tree)
is what lets join ordering and bushy-plan generation (§3.2) explore
shapes freely.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.catalog.schema import DataType
from repro.errors import BindError
from repro.plan.expressions import (
    AggCall,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    conjuncts,
    contains_aggregate,
    referenced_columns,
    walk,
)
from repro.sql.ast_nodes import (
    AstBetween,
    AstBinary,
    AstColumn,
    AstExpr,
    AstFuncCall,
    AstInList,
    AstLiteral,
    AstSelect,
    AstUnary,
)
from repro.sql.parser import parse, parse_parameterized


@dataclass(frozen=True)
class TableRef:
    """A base table participating in the query."""

    name: str
    alias: str


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join predicate between two tables' columns."""

    left: ColumnRef
    right: ColumnRef

    def tables(self) -> tuple[str, str]:
        assert self.left.table is not None and self.right.table is not None
        return (self.left.table, self.right.table)


@dataclass(eq=False)
class BoundQuery:
    """A bound query graph ready for optimization.

    For aggregating queries, ``select_exprs`` and ``having`` live in the
    *post-aggregate* namespace: group keys keep their column names and
    each aggregate is exposed under its generated name in ``agg_names``.

    Identity semantics (``eq=False``): bound queries are compared and
    hashed by object identity so the optimizer's DAG-planning memo can
    key weak per-query entries on them.
    """

    sql: str
    tables: list[TableRef]
    filters: dict[str, list[Expr]]
    join_edges: list[JoinEdge]
    residuals: list[Expr]
    group_keys: list[ColumnRef]
    aggregates: list[AggCall]
    agg_names: list[str]
    select_exprs: list[Expr]
    select_names: list[str]
    having: Expr | None
    order_by: list[tuple[str, bool]]
    limit: int | None
    distinct: bool = False

    @property
    def has_aggregation(self) -> bool:
        return bool(self.aggregates) or bool(self.group_keys)

    @property
    def table_names(self) -> list[str]:
        return [t.name for t in self.tables]

    def columns_needed(self, table: str) -> tuple[str, ...]:
        """Columns of ``table`` referenced anywhere in the query.

        Memoized per table: the planner asks once per join-tree variant
        and the query graph is immutable after binding.
        """
        cache = self.__dict__.setdefault("_columns_needed", {})
        found = cache.get(table)
        if found is None:
            found = self._compute_columns_needed(table)
            cache[table] = found
        return found

    def _compute_columns_needed(self, table: str) -> tuple[str, ...]:
        needed: set[str] = set()
        exprs: list[Expr] = []
        exprs.extend(self.filters.get(table, []))
        exprs.extend(self.residuals)
        for edge in self.join_edges:
            exprs.extend([edge.left, edge.right])
        exprs.extend(self.group_keys)
        for agg in self.aggregates:
            if agg.arg is not None:
                exprs.append(agg.arg)
        if not self.has_aggregation:
            exprs.extend(self.select_exprs)
        for expr in exprs:
            for node in walk(expr):
                if isinstance(node, ColumnRef) and node.table == table:
                    needed.add(node.name)
        return tuple(sorted(needed))


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def bind_sql(self, sql: str) -> BoundQuery:
        return self.bind(parse(sql), sql=sql)

    def bind_parameterized(
        self, template_key: tuple, constants: tuple, sql: str = ""
    ) -> BoundQuery:
        """Bind a ``(template_key, constants)`` pair via the template-AST
        cache — recurring templates skip lexing and parsing entirely."""
        return self.bind(parse_parameterized(template_key, constants), sql=sql)

    # ------------------------------------------------------------------ #
    # Statement binding
    # ------------------------------------------------------------------ #
    def bind(self, stmt: AstSelect, sql: str = "") -> BoundQuery:
        tables, alias_map = self._bind_tables(stmt)
        owners = self._column_owners(tables)

        scope = _Scope(self.catalog, alias_map, owners)

        # WHERE plus JOIN..ON conditions all feed one conjunct pool.
        predicates: list[Expr] = []
        if stmt.where is not None:
            predicates.extend(conjuncts(scope.bind(stmt.where)))
        for join in stmt.joins:
            predicates.extend(conjuncts(scope.bind(join.condition)))

        filters: dict[str, list[Expr]] = {t.name: [] for t in tables}
        join_edges: list[JoinEdge] = []
        residuals: list[Expr] = []
        for predicate in predicates:
            edge = _as_join_edge(predicate)
            if edge is not None:
                join_edges.append(edge)
                continue
            pred_tables = {
                node.table
                for node in walk(predicate)
                if isinstance(node, ColumnRef) and node.table
            }
            if len(pred_tables) == 1:
                filters[pred_tables.pop()].append(predicate)
            elif not pred_tables:
                raise BindError(f"constant predicate not supported: {predicate.sql()}")
            else:
                residuals.append(predicate)

        group_keys = [scope.bind_column(col) for col in stmt.group_by]

        # Select list: bind, then extract aggregates.
        raw_items: list[tuple[Expr, str]] = []
        for index, item in enumerate(stmt.items):
            bound = scope.bind(item.expr)
            name = item.alias or _default_name(bound, index)
            raw_items.append((bound, name))

        extractor = _AggregateExtractor()
        select_exprs: list[Expr] = []
        select_names: list[str] = []
        for bound, name in raw_items:
            select_exprs.append(extractor.rewrite(bound))
            select_names.append(name)
        if len(set(select_names)) != len(select_names):
            raise BindError(f"duplicate output column names: {select_names}")

        aggregates = extractor.aggregates
        agg_names = extractor.names

        has_agg = bool(aggregates) or bool(group_keys)
        if has_agg:
            self._check_grouping(select_exprs, group_keys, agg_names)

        having: Expr | None = None
        if stmt.having is not None:
            if not has_agg:
                raise BindError("HAVING requires GROUP BY or aggregates")
            bound_having = scope.bind(stmt.having)
            having = extractor.rewrite(bound_having)
            aggregates = extractor.aggregates
            agg_names = extractor.names
            self._check_grouping([having], group_keys, agg_names)

        distinct = stmt.distinct
        if distinct and has_agg:
            raise BindError("DISTINCT with aggregation is not supported")

        order_by = self._bind_order_by(stmt, scope, select_exprs, select_names, has_agg)

        return BoundQuery(
            sql=sql,
            tables=tables,
            filters=filters,
            join_edges=join_edges,
            residuals=residuals,
            group_keys=group_keys,
            aggregates=list(aggregates),
            agg_names=list(agg_names),
            select_exprs=select_exprs,
            select_names=select_names,
            having=having,
            order_by=order_by,
            limit=stmt.limit,
            distinct=distinct,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _bind_tables(self, stmt: AstSelect) -> tuple[list[TableRef], dict[str, str]]:
        refs: list[TableRef] = []
        alias_map: dict[str, str] = {}
        all_tables = list(stmt.tables) + [j.table for j in stmt.joins]
        for ast_ref in all_tables:
            if not self.catalog.has_table(ast_ref.name):
                raise BindError(f"unknown table {ast_ref.name!r}")
            alias = ast_ref.alias or ast_ref.name
            if alias in alias_map:
                raise BindError(f"duplicate table alias {alias!r}")
            if any(r.name == ast_ref.name for r in refs):
                raise BindError(
                    f"table {ast_ref.name!r} appears twice; self-joins are "
                    "not supported"
                )
            alias_map[alias] = ast_ref.name
            refs.append(TableRef(name=ast_ref.name, alias=alias))
        return refs, alias_map

    def _column_owners(self, tables: list[TableRef]) -> dict[str, list[str]]:
        owners: dict[str, list[str]] = {}
        for ref in tables:
            entry = self.catalog.table(ref.name)
            for column in entry.schema.columns:
                owners.setdefault(column.name, []).append(ref.name)
        return owners

    @staticmethod
    def _check_grouping(
        exprs: list[Expr], group_keys: list[ColumnRef], agg_names: list[str]
    ) -> None:
        """Non-aggregate references must be group keys or aggregate outputs."""
        allowed = {k.name for k in group_keys} | set(agg_names)
        for expr in exprs:
            for name in referenced_columns(expr):
                if name not in allowed:
                    raise BindError(
                        f"column {name!r} must appear in GROUP BY or inside "
                        "an aggregate"
                    )

    @staticmethod
    def _bind_order_by(
        stmt: AstSelect,
        scope: "_Scope",
        select_exprs: list[Expr],
        select_names: list[str],
        has_agg: bool,
    ) -> list[tuple[str, bool]]:
        order_by: list[tuple[str, bool]] = []
        for item in stmt.order_by:
            expr = item.expr
            if isinstance(expr, AstColumn) and expr.qualifier is None:
                name = expr.name
                if name in select_names:
                    order_by.append((name, item.ascending))
                    continue
            bound = scope.bind(expr) if not has_agg else None
            if bound is not None:
                # Allow ordering by a bare column that is already projected.
                for sel, sel_name in zip(select_exprs, select_names):
                    if sel == bound:
                        order_by.append((sel_name, item.ascending))
                        break
                else:
                    raise BindError(
                        f"ORDER BY expression {item.expr} must appear in the "
                        "select list"
                    )
            else:
                raise BindError(
                    f"ORDER BY {item.expr} must reference an output column"
                )
        return order_by


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    return f"col{index}"


def _as_join_edge(predicate: Expr) -> JoinEdge | None:
    if not (isinstance(predicate, BinaryOp) and predicate.op == "="):
        return None
    left, right = predicate.left, predicate.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    if left.table is None or right.table is None or left.table == right.table:
        return None
    return JoinEdge(left=left, right=right)


class _AggregateExtractor:
    """Replaces AggCall subtrees with refs to generated output names."""

    def __init__(self) -> None:
        self.aggregates: list[AggCall] = []
        self.names: list[str] = []

    def rewrite(self, expr: Expr) -> Expr:
        if isinstance(expr, AggCall):
            return ColumnRef(name=self._register(expr))
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, self.rewrite(expr.left), self.rewrite(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.rewrite(expr.operand))
        if isinstance(expr, FuncCall):
            return FuncCall(expr.name, tuple(self.rewrite(a) for a in expr.args))
        if isinstance(expr, InList):
            return InList(self.rewrite(expr.operand), expr.values, expr.negated)
        return expr

    def _register(self, agg: AggCall) -> str:
        for existing, name in zip(self.aggregates, self.names):
            if existing == agg:
                return name
        name = f"agg{len(self.aggregates)}"
        self.aggregates.append(agg)
        self.names.append(name)
        return name


class _Scope:
    """Expression binding scope: resolves columns and encodes strings."""

    def __init__(
        self,
        catalog: Catalog,
        alias_map: dict[str, str],
        owners: dict[str, list[str]],
    ) -> None:
        self.catalog = catalog
        self.alias_map = alias_map
        self.owners = owners

    # -------------------------- column resolution ---------------------- #
    def bind_column(self, ast: AstColumn) -> ColumnRef:
        if ast.qualifier is not None:
            table = self.alias_map.get(ast.qualifier)
            if table is None:
                raise BindError(f"unknown table alias {ast.qualifier!r}")
            if not self.catalog.table(table).schema.has_column(ast.name):
                raise BindError(f"table {table!r} has no column {ast.name!r}")
            return ColumnRef(name=ast.name, table=table)
        candidates = self.owners.get(ast.name, [])
        if not candidates:
            raise BindError(f"unknown column {ast.name!r}")
        if len(candidates) > 1:
            raise BindError(
                f"ambiguous column {ast.name!r} (in tables {candidates})"
            )
        return ColumnRef(name=ast.name, table=candidates[0])

    def column_type(self, ref: ColumnRef) -> DataType:
        assert ref.table is not None
        return self.catalog.table(ref.table).schema.column(ref.name).dtype

    def dictionary(self, ref: ColumnRef) -> tuple[str, ...]:
        assert ref.table is not None
        entry = self.catalog.table(ref.table)
        dictionary = entry.dictionaries.get(ref.name)
        if dictionary is None:
            raise BindError(
                f"string column {ref.table}.{ref.name} has no dictionary; "
                "cannot compare against string literals"
            )
        return dictionary

    # ----------------------------- binding ----------------------------- #
    def bind(self, ast: AstExpr) -> Expr:
        if isinstance(ast, AstColumn):
            return self.bind_column(ast)
        if isinstance(ast, AstLiteral):
            if isinstance(ast.value, str):
                # Bare string literal outside a comparison context: defer;
                # comparisons intercept these before binding.
                return Literal(ast.value)
            return Literal(ast.value)
        if isinstance(ast, AstBinary):
            return self._bind_binary(ast)
        if isinstance(ast, AstUnary):
            op = ast.op
            return UnaryOp(op, self.bind(ast.operand))
        if isinstance(ast, AstBetween):
            lo = AstBinary(">=", ast.operand, ast.low)
            hi = AstBinary("<=", ast.operand, ast.high)
            both = AstBinary("and", lo, hi)
            bound = self.bind(both)
            return UnaryOp("not", bound) if ast.negated else bound
        if isinstance(ast, AstInList):
            return self._bind_in_list(ast)
        if isinstance(ast, AstFuncCall):
            return self._bind_func(ast)
        raise BindError(f"cannot bind expression {ast!r}")

    def _bind_func(self, ast: AstFuncCall) -> Expr:
        from repro.plan.expressions import AGGREGATE_FUNCS, SCALAR_FUNCS

        if ast.name in AGGREGATE_FUNCS:
            if ast.star:
                return AggCall(func="count", arg=None, distinct=False)
            if len(ast.args) != 1:
                raise BindError(f"aggregate {ast.name} takes one argument")
            return AggCall(
                func=ast.name, arg=self.bind(ast.args[0]), distinct=ast.distinct
            )
        if ast.name in SCALAR_FUNCS:
            return FuncCall(ast.name, tuple(self.bind(a) for a in ast.args))
        raise BindError(f"unknown function {ast.name!r}")

    def _bind_binary(self, ast: AstBinary) -> Expr:
        if ast.op in ("and", "or"):
            return BinaryOp(ast.op, self.bind(ast.left), self.bind(ast.right))
        # String comparison: column vs string literal -> dictionary codes.
        string_side = None
        if isinstance(ast.right, AstLiteral) and isinstance(ast.right.value, str):
            string_side = "right"
        elif isinstance(ast.left, AstLiteral) and isinstance(ast.left.value, str):
            string_side = "left"
        if string_side is not None and ast.op in ("=", "<>", "<", "<=", ">", ">="):
            if string_side == "right":
                column_ast, literal_ast, op = ast.left, ast.right, ast.op
            else:
                column_ast, literal_ast, op = ast.right, ast.left, _flip(ast.op)
            column = self.bind(column_ast)
            if not isinstance(column, ColumnRef):
                raise BindError(
                    f"string literal comparison requires a plain column, got "
                    f"{column.sql()}"
                )
            if self.column_type(column) is not DataType.STRING:
                raise BindError(
                    f"cannot compare non-string column {column.sql()} with a "
                    "string literal"
                )
            assert isinstance(literal_ast, AstLiteral)
            assert isinstance(literal_ast.value, str)
            return self._encode_string_comparison(column, op, literal_ast.value)
        return BinaryOp(ast.op, self.bind(ast.left), self.bind(ast.right))

    def _encode_string_comparison(
        self, column: ColumnRef, op: str, value: str
    ) -> Expr:
        dictionary = self.dictionary(column)
        position = bisect.bisect_left(dictionary, value)
        exact = position < len(dictionary) and dictionary[position] == value
        if op == "=":
            if not exact:
                return _impossible(column)
            return BinaryOp("=", column, Literal(position))
        if op == "<>":
            if not exact:
                return _always_true(column)
            return BinaryOp("<>", column, Literal(position))
        if op == "<":
            return BinaryOp("<", column, Literal(position))
        if op == "<=":
            if exact:
                return BinaryOp("<=", column, Literal(position))
            return BinaryOp("<", column, Literal(position))
        if op == ">":
            if exact:
                return BinaryOp(">", column, Literal(position))
            return BinaryOp(">=", column, Literal(position))
        if op == ">=":
            return BinaryOp(">=", column, Literal(position))
        raise BindError(f"unsupported string comparison operator {op!r}")

    def _bind_in_list(self, ast: AstInList) -> Expr:
        operand = self.bind(ast.operand)
        raw_values = [lit.value for lit in ast.values]
        if any(isinstance(v, str) for v in raw_values):
            if not isinstance(operand, ColumnRef):
                raise BindError("string IN-list requires a plain column")
            if self.column_type(operand) is not DataType.STRING:
                raise BindError(
                    f"cannot apply string IN-list to {operand.sql()}"
                )
            dictionary = self.dictionary(operand)
            codes = tuple(
                dictionary.index(v)  # type: ignore[arg-type]
                for v in raw_values
                if isinstance(v, str) and v in dictionary
            )
            if not codes:
                return (
                    _always_true(operand) if ast.negated else _impossible(operand)
                )
            return InList(operand, codes, negated=ast.negated)
        return InList(operand, tuple(raw_values), negated=ast.negated)  # type: ignore[arg-type]


def _flip(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}[op]


def _impossible(column: ColumnRef) -> Expr:
    """A predicate on ``column`` that never matches (codes are >= 0)."""
    return BinaryOp("<", column, Literal(-1))


def _always_true(column: ColumnRef) -> Expr:
    """A predicate on ``column`` that always matches."""
    return BinaryOp(">=", column, Literal(-1))
